//! # earlybird
//!
//! A production-quality Rust reproduction of **"Detection of Early-Stage
//! Enterprise Infection by Mining Large-Scale Log Data"** (Oprea, Li, Yen,
//! Chin, Alrwais — DSN 2015, arXiv:1411.5005): belief propagation over
//! host↔domain graphs seeded by SOC hints or by a timing-based C&C
//! detector, together with the full log-mining substrate the paper depends
//! on (normalization, reduction, profiling, rare-destination extraction,
//! dynamic-histogram beacon detection, linear-regression scoring) and the
//! synthetic LANL / enterprise dataset generators used to evaluate it.
//!
//! The canonical public API is the unified streaming facade in
//! [`engine`]: build one [`engine::Engine`] with
//! [`engine::EngineBuilder`], feed it daily [`engine::DayBatch`]es from
//! either log source, and consume typed [`engine::DayReport`]s and
//! [`engine::Alert`]s through pluggable [`engine::AlertSink`]s. The
//! remaining modules are the substrate the engine composes — useful for
//! building blocks and experiments, but callers should not re-assemble the
//! daily detection cycle by hand.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`engine`] | `earlybird-engine` | **the unified ingest → detect → alert API** |
//! | [`serve`] | `earlybird-serve` | multi-tenant ingest + query service daemon (HTTP/1.1 + JSON over `std::net`) |
//! | [`store`] | `earlybird-store` | durable checkpoint/restore: versioned, self-checking binary snapshots |
//! | [`obs`] | `earlybird-obs` | metrics + tracing substrate: atomic counters/gauges/histograms, stage spans, Prometheus exposition |
//! | [`logmodel`] | `earlybird-logmodel` | timestamps, hosts, interned domains/UAs, DNS & proxy records |
//! | [`timing`] | `earlybird-timing` | dynamic histograms, Jeffrey divergence, automation detectors |
//! | [`features`] | `earlybird-features` | feature vectors, OLS regression, additive LANL score |
//! | [`intel`] | `earlybird-intel` | WHOIS / VirusTotal / IOC / ground-truth simulators |
//! | [`pipeline`] | `earlybird-pipeline` | normalization, reduction, histories, rare sieve, day index |
//! | [`synthgen`] | `earlybird-synthgen` | LANL & AC dataset generators with injected campaigns |
//! | [`core`] | `earlybird-core` | C&C detector, Algorithm 1 belief propagation, daily pipeline (internal plumbing behind [`engine`]) |
//! | [`eval`] | `earlybird-eval` | harnesses regenerating every table and figure of the paper |
//!
//! # Quickstart
//!
//! Stream the LANL challenge through one engine and detect a campaign:
//!
//! ```
//! use earlybird::engine::{DayBatch, EngineBuilder, Investigation};
//! use earlybird::synthgen::lanl::{LanlConfig, LanlGenerator};
//! use std::sync::Arc;
//!
//! let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
//! let mut engine = EngineBuilder::lanl()
//!     .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
//!     .unwrap();
//! // February bootstraps the profiles; March days are detected on.
//! for day in &challenge.dataset.days {
//!     engine.ingest_day(DayBatch::Dns(day));
//! }
//! // Investigate a campaign day from its SOC hint host.
//! let campaign = &challenge.campaigns[0];
//! let report = engine
//!     .investigate(
//!         campaign.day,
//!         Investigation::from_hint_hosts(campaign.hint_hosts.iter().copied()),
//!     )
//!     .unwrap();
//! assert!(
//!     report.alerts.iter().any(|a| campaign.answer_domains().contains(&a.name.as_str())),
//!     "the hinted campaign's domains are detected"
//! );
//! ```
//!
//! The full paper evaluation lives one level up:
//!
//! ```
//! use earlybird::eval::lanl::LanlRun;
//! use earlybird::synthgen::lanl::{LanlConfig, LanlGenerator};
//!
//! let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
//! let run = LanlRun::new(&challenge);
//! let (table3, _results) = run.table3();
//! assert!(table3.overall_rates().tdr > 0.5, "most campaign domains detected");
//! ```

#![forbid(unsafe_code)]

pub use earlybird_core as core;
pub use earlybird_engine as engine;
pub use earlybird_eval as eval;
pub use earlybird_features as features;
pub use earlybird_intel as intel;
pub use earlybird_logmodel as logmodel;
pub use earlybird_obs as obs;
pub use earlybird_pipeline as pipeline;
pub use earlybird_serve as serve;
pub use earlybird_store as store;
pub use earlybird_synthgen as synthgen;
pub use earlybird_timing as timing;
