//! The unified persistence facade: one handle, one policy, no pauses.
//!
//! [`Persistence`] owns a [`StoreDir`] and drives the whole
//! freeze → serialize → commit → compact cycle behind a single entry
//! point, [`Persistence::commit`]:
//!
//! 1. the engine's state is frozen into an [`crate::EngineSnapshot`]
//!    under a short critical section ([`Engine::freeze`] /
//!    [`Engine::freeze_day`], per the policy's [`SnapshotMode`]);
//! 2. the frozen view serializes and commits through the store —
//!    inline ([`CommitMode::Sync`]) or on the handle's background worker
//!    thread ([`CommitMode::Background`]), where ingestion continues
//!    while the bytes travel;
//! 3. if the store's compaction trigger has fired, the chain is folded —
//!    whole-chain, or only its oldest `K` segments when a tier is set
//!    ([`SnapshotPolicy::tier`] or the trigger's own `fold_segments`).
//!
//! Every commit returns a [`CommitHandle`]; [`CommitHandle::wait`] blocks
//! until the bytes are durable and yields the [`CommitOutcome`] — this is
//! what a serving layer awaits before acknowledging a day as persisted.
//!
//! # Failure contract
//!
//! Freezing advances the engine's persist cursor *eagerly*: the engine
//! assumes frozen bytes will reach the chain. If a block write or commit
//! fails, the handle **poisons itself** — every later
//! [`Persistence::commit`] / [`Persistence::drain`] returns
//! [`StoreError::PersistencePoisoned`] — because the next delta would
//! silently assume state the chain never received. The store itself stays
//! intact (failed commits never become visible): recover by restoring
//! from it ([`Persistence::restore`]) and resuming from the restored
//! engine, exactly as after a crash. A *compaction* failure does not
//! poison: the freshly committed block is already durable and the old
//! chain remains valid, so the error is reported on the handle and the
//! cycle may simply continue.

use crate::builder::EngineBuilder;
use crate::core_loop::Engine;
use crate::persist::{compact_store, compact_store_tiered, EngineSnapshot};
use earlybird_logmodel::DomainInterner;
use earlybird_store::{
    BlockKind, CheckpointMeta, CompactionReport, StoreDir, StoreError, StoreResult,
};
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Which snapshot a [`Persistence::commit`] freezes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SnapshotMode {
    /// Full snapshot when the chain is empty (first commit), O(day)
    /// segment afterwards — the daily-cycle default.
    #[default]
    Auto,
    /// Always a full snapshot (replaces the whole chain).
    Full,
    /// Always a day segment (errors on an empty chain at commit time).
    Day,
}

/// Where a [`Persistence::commit`] serializes and commits the frozen
/// snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum CommitMode {
    /// On the calling thread; the returned handle is already resolved.
    #[default]
    Sync,
    /// On the handle's worker thread; ingestion continues while the
    /// bytes travel. Commits are applied strictly in submission order.
    Background,
}

/// How a [`Persistence`] handle snapshots, commits, and compacts.
///
/// Construct fluently: `SnapshotPolicy::default().background().tier(4)`
/// is the always-on daily cycle — auto full/segment, commits off-thread,
/// compaction bounded to folding the 4 oldest segments per pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SnapshotPolicy {
    /// Full snapshot vs day segment vs automatic.
    pub mode: SnapshotMode,
    /// Inline vs background commit.
    pub commit: CommitMode,
    /// Fold at most this many oldest segments per compaction pass,
    /// overriding the store trigger's `fold_segments`; `None` defers to
    /// the trigger (whole-chain when that is also `None`).
    pub compaction_tier: Option<usize>,
}

impl SnapshotPolicy {
    /// Always freeze full snapshots ([`SnapshotMode::Full`]).
    pub fn full() -> Self {
        SnapshotPolicy { mode: SnapshotMode::Full, ..SnapshotPolicy::default() }
    }

    /// Always freeze day segments ([`SnapshotMode::Day`]).
    pub fn day() -> Self {
        SnapshotPolicy { mode: SnapshotMode::Day, ..SnapshotPolicy::default() }
    }

    /// Commit on the background worker ([`CommitMode::Background`]).
    pub fn background(mut self) -> Self {
        self.commit = CommitMode::Background;
        self
    }

    /// Commit inline ([`CommitMode::Sync`], the default).
    pub fn sync(mut self) -> Self {
        self.commit = CommitMode::Sync;
        self
    }

    /// Bound every compaction pass to folding the `fold_segments` oldest
    /// segments (see [`compact_store_tiered`]).
    pub fn tier(mut self, fold_segments: usize) -> Self {
        self.compaction_tier = Some(fold_segments);
        self
    }
}

/// What one commit cycle produced, returned by [`CommitHandle::wait`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommitOutcome {
    /// The committed block's summary (kind tells full vs segment).
    pub block: CheckpointMeta,
    /// The compaction pass this commit triggered, if any.
    pub compaction: Option<CompactionReport>,
    /// The store's manifest generation after this cycle — a durable,
    /// monotonic acknowledgement token.
    pub generation: u64,
}

/// A claim ticket for one in-flight commit. [`CommitHandle::wait`] blocks
/// until the commit (and any compaction it triggered) finished, then
/// yields its [`CommitOutcome`] or error. Dropping the handle does *not*
/// cancel the commit.
#[derive(Debug)]
pub struct CommitHandle {
    cell: Arc<CommitCell>,
}

impl CommitHandle {
    /// Blocks until the commit resolves.
    ///
    /// # Errors
    ///
    /// The commit's own [`StoreError`], or
    /// [`StoreError::PersistencePoisoned`] if an earlier queued commit
    /// failed before this one ran.
    pub fn wait(self) -> StoreResult<CommitOutcome> {
        self.cell.wait()
    }
}

#[derive(Debug, Default)]
struct CommitCell {
    slot: Mutex<Option<StoreResult<CommitOutcome>>>,
    done: Condvar,
}

impl CommitCell {
    fn fill(&self, result: StoreResult<CommitOutcome>) {
        *self.slot.lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
        self.done.notify_all();
    }

    fn wait(&self) -> StoreResult<CommitOutcome> {
        let mut slot = self.slot.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.done.wait(slot).unwrap_or_else(PoisonError::into_inner);
        }
    }
}

struct Job {
    snapshot: EngineSnapshot,
    tier: Option<usize>,
    cell: Arc<CommitCell>,
}

struct WorkerState {
    queue: VecDeque<Job>,
    /// A popped job is being committed right now (drain must wait for it).
    busy: bool,
    /// Display of the failure that poisoned the handle, if any.
    poisoned: Option<String>,
    /// The chain has (or will have, once queued commits land) a full
    /// block, so [`SnapshotMode::Auto`] freezes segments from here on.
    chain_started: bool,
    shutdown: bool,
}

struct Shared {
    store: Mutex<StoreDir>,
    state: Mutex<WorkerState>,
    /// Wakes the worker (new job / shutdown) and drain waiters (job done).
    work: Condvar,
}

impl Shared {
    fn lock_state(&self) -> MutexGuard<'_, WorkerState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn lock_store(&self) -> MutexGuard<'_, StoreDir> {
        self.store.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn poison(&self, err: &StoreError) {
        let mut state = self.lock_state();
        if state.poisoned.is_none() {
            state.poisoned = Some(err.to_string());
        }
    }
}

/// The unified persistence handle: owns the [`StoreDir`], applies a
/// [`SnapshotPolicy`], and (in background mode) runs the commit worker.
/// [`CommitHandle`] and [`CommitOutcome`] document the lifecycle and
/// failure contract of an individual commit.
pub struct Persistence {
    shared: Arc<Shared>,
    policy: SnapshotPolicy,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for Persistence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.shared.lock_state();
        f.debug_struct("Persistence")
            .field("policy", &self.policy)
            .field("queued", &state.queue.len())
            .field("poisoned", &state.poisoned)
            .finish_non_exhaustive()
    }
}

impl Persistence {
    /// Wraps `dir` behind `policy`, spawning the commit worker when the
    /// policy is [`CommitMode::Background`].
    pub fn new(dir: StoreDir, policy: SnapshotPolicy) -> Self {
        let chain_started = !dir.is_empty();
        let shared = Arc::new(Shared {
            store: Mutex::new(dir),
            state: Mutex::new(WorkerState {
                queue: VecDeque::new(),
                busy: false,
                poisoned: None,
                chain_started,
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let worker = match policy.commit {
            CommitMode::Background => {
                let shared = Arc::clone(&shared);
                Some(
                    std::thread::Builder::new()
                        .name("earlybird-persist".into())
                        .spawn(move || worker_loop(&shared))
                        .expect("spawn persistence commit worker"),
                )
            }
            CommitMode::Sync => None,
        };
        Persistence { shared, policy, worker }
    }

    /// The policy this handle was built with.
    pub fn policy(&self) -> SnapshotPolicy {
        self.policy
    }

    /// Freezes the engine per the policy's [`SnapshotMode`] (a short
    /// critical section — ingestion resumes immediately after), then
    /// serializes and commits the frozen view per its [`CommitMode`].
    /// Await the returned [`CommitHandle`] for durability.
    ///
    /// # Errors
    ///
    /// [`StoreError::PersistencePoisoned`] if an earlier commit failed;
    /// [`StoreError::StaleSegment`] from a day freeze of back-filled
    /// days. Commit-side failures surface on the handle, not here.
    pub fn commit(&self, engine: &Engine) -> StoreResult<CommitHandle> {
        let mut state = self.shared.lock_state();
        if let Some(why) = &state.poisoned {
            return Err(StoreError::PersistencePoisoned { context: why.clone() });
        }
        let full = match self.policy.mode {
            SnapshotMode::Full => true,
            SnapshotMode::Day => false,
            SnapshotMode::Auto => !state.chain_started,
        };
        let snapshot = if full { engine.freeze() } else { engine.freeze_day()? };
        state.chain_started = true;
        let cell = Arc::new(CommitCell::default());
        match self.policy.commit {
            CommitMode::Sync => {
                drop(state);
                cell.fill(run_commit(&self.shared, &snapshot, self.policy.compaction_tier));
            }
            CommitMode::Background => {
                state.queue.push_back(Job {
                    snapshot,
                    tier: self.policy.compaction_tier,
                    cell: Arc::clone(&cell),
                });
                drop(state);
                self.shared.work.notify_all();
            }
        }
        Ok(CommitHandle { cell })
    }

    /// Blocks until every queued/in-flight commit has resolved.
    ///
    /// # Errors
    ///
    /// [`StoreError::PersistencePoisoned`] if the handle is (or became)
    /// poisoned — the drained commits' own outcomes live on their handles.
    pub fn drain(&self) -> StoreResult<()> {
        let mut state = self.shared.lock_state();
        while !state.queue.is_empty() || state.busy {
            state = self.shared.work.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
        match &state.poisoned {
            Some(why) => Err(StoreError::PersistencePoisoned { context: why.clone() }),
            None => Ok(()),
        }
    }

    /// Runs one compaction pass right now (regardless of the trigger),
    /// folding per the policy tier / store trigger.
    ///
    /// # Errors
    ///
    /// As for [`compact_store`]; an explicit pass does *not* poison the
    /// handle on failure (the chain stays valid).
    pub fn compact(&self) -> StoreResult<CompactionReport> {
        let mut dir = self.shared.lock_store();
        match self.policy.compaction_tier.or(dir.config().compaction.fold_segments) {
            Some(k) => compact_store_tiered(&mut dir, k),
            None => compact_store(&mut dir),
        }
    }

    /// The store's manifest generation — the durable acknowledgement
    /// token carried by [`CommitOutcome::generation`].
    pub fn generation(&self) -> u64 {
        self.shared.lock_store().generation()
    }

    /// Why the handle is poisoned, if it is.
    pub fn poisoned(&self) -> Option<String> {
        self.shared.lock_state().poisoned.clone()
    }

    /// Direct access to the owned [`StoreDir`] for inspection and
    /// store-level maintenance. Holding the guard blocks commits —
    /// keep it short, and bind one guard per statement: two `store()`
    /// calls in a single expression deadlock on the non-reentrant lock
    /// (the first guard's temporary lives to the end of the statement).
    pub fn store(&self) -> MutexGuard<'_, StoreDir> {
        self.shared.lock_store()
    }

    /// Rebuilds an engine from the owned chain (manifest order), exactly
    /// like `EngineBuilder::restore_stream` over the directory's chain.
    ///
    /// # Errors
    ///
    /// Typed [`StoreError`]s; see `EngineBuilder::restore_stream`.
    pub fn restore(&self, builder: EngineBuilder) -> Result<Engine, StoreError> {
        let dir = self.shared.lock_store();
        builder.restore_impl(None, &mut dir.reader()?)
    }

    /// [`Persistence::restore`] sharing the caller's raw domain interner
    /// (typically a dataset's), exactly like the pre-facade
    /// `EngineBuilder::restore_stream_with_domains` over the directory's chain.
    ///
    /// # Errors
    ///
    /// As for [`Persistence::restore`].
    pub fn restore_with_domains(
        &self,
        raw: Arc<DomainInterner>,
        builder: EngineBuilder,
    ) -> Result<Engine, StoreError> {
        let dir = self.shared.lock_store();
        builder.restore_impl(Some(raw), &mut dir.reader()?)
    }
}

impl Drop for Persistence {
    /// Stops the worker after it drains the queue — already-accepted
    /// commits are never abandoned by a clean shutdown.
    fn drop(&mut self) {
        if let Some(worker) = self.worker.take() {
            self.shared.lock_state().shutdown = true;
            self.shared.work.notify_all();
            let _ = worker.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut state = shared.lock_state();
            loop {
                if let Some(job) = state.queue.pop_front() {
                    state.busy = true;
                    break Some(job);
                }
                if state.shutdown {
                    break None;
                }
                state = shared.work.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
        };
        let Some(job) = job else { return };
        let poisoned = shared.lock_state().poisoned.clone();
        let result = match poisoned {
            // A failed predecessor already broke the cursor/chain
            // agreement; later frozen snapshots must not land on top.
            Some(why) => Err(StoreError::PersistencePoisoned { context: why }),
            None => run_commit(shared, &job.snapshot, job.tier),
        };
        job.cell.fill(result);
        let mut state = shared.lock_state();
        state.busy = false;
        drop(state);
        shared.work.notify_all();
    }
}

/// One commit cycle: stage + write + commit the block, then compact if
/// due. Block-side failures poison the handle (the engine's cursor is
/// already past the frozen bytes); compaction failures do not (the chain
/// is valid with or without the fold).
fn run_commit(
    shared: &Shared,
    snapshot: &EngineSnapshot,
    tier: Option<usize>,
) -> StoreResult<CommitOutcome> {
    let mut dir = shared.lock_store();
    let kind = snapshot.kind();
    let committed = (|| {
        let mut pending = dir.begin(kind)?;
        let block = snapshot.write_to(&mut pending)?;
        match kind {
            BlockKind::Full => dir.commit_full(pending, &block)?,
            BlockKind::DaySegment => dir.commit_segment(pending, &block)?,
        }
        Ok(block)
    })();
    let block = match committed {
        Ok(block) => block,
        Err(e) => {
            shared.poison(&e);
            return Err(e);
        }
    };
    let compaction = if dir.compaction_due() {
        let _compact_span = snapshot.metrics().compact.start();
        let report = match tier.or(dir.config().compaction.fold_segments) {
            Some(k) => compact_store_tiered(&mut dir, k)?,
            None => compact_store(&mut dir)?,
        };
        snapshot.metrics().compaction_replay.set(report.segments_replayed as i64);
        Some(report)
    } else {
        None
    };
    Ok(CommitOutcome { block, compaction, generation: dir.generation() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_constructors_compose() {
        let p = SnapshotPolicy::default();
        assert_eq!(p.mode, SnapshotMode::Auto);
        assert_eq!(p.commit, CommitMode::Sync);
        assert_eq!(p.compaction_tier, None);

        let p = SnapshotPolicy::full().background().tier(4);
        assert_eq!(p.mode, SnapshotMode::Full);
        assert_eq!(p.commit, CommitMode::Background);
        assert_eq!(p.compaction_tier, Some(4));

        let p = SnapshotPolicy::day().background().sync();
        assert_eq!(p.mode, SnapshotMode::Day);
        assert_eq!(p.commit, CommitMode::Sync);
    }
}
