//! Rare-destination extraction (§III-A): domains that are **new** (never
//! seen by any internal host in the history) and **unpopular** (contacted by
//! fewer than a threshold of distinct hosts in the day — "set at 10 based on
//! discussion with security professionals").

use crate::contact::Contact;
use crate::history::DomainHistory;
use earlybird_logmodel::{DomainSym, FastMap, FastSet, HostId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// The rare destinations of one day, plus the day's per-domain host sets
/// (which the sieve computes anyway and downstream indexing reuses).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RareDomains {
    rare: FastSet<DomainSym>,
    new_count: usize,
    domain_hosts: FastMap<DomainSym, BTreeSet<HostId>>,
}

impl RareDomains {
    /// Whether `domain` is rare today.
    pub fn contains(&self, domain: DomainSym) -> bool {
        self.rare.contains(&domain)
    }

    /// The rare domains (unordered).
    pub fn iter(&self) -> impl Iterator<Item = DomainSym> + '_ {
        self.rare.iter().copied()
    }

    /// Number of rare domains.
    pub fn len(&self) -> usize {
        self.rare.len()
    }

    /// Whether no domain is rare today.
    pub fn is_empty(&self) -> bool {
        self.rare.is_empty()
    }

    /// Number of *new* domains today (before the unpopularity filter) — the
    /// "New destinations" series of Fig. 2.
    pub fn new_count(&self) -> usize {
        self.new_count
    }

    /// Distinct hosts contacting `domain` today (any domain, not just rare).
    pub fn hosts_of(&self, domain: DomainSym) -> Option<&BTreeSet<HostId>> {
        self.domain_hosts.get(&domain)
    }

    /// The full per-domain host map for the day.
    pub fn domain_hosts(&self) -> &FastMap<DomainSym, BTreeSet<HostId>> {
        &self.domain_hosts
    }
}

/// The rare-destination sieve: combines a [`DomainHistory`] with the
/// unpopularity threshold.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RareSieve {
    unpopular_threshold: usize,
}

impl RareSieve {
    /// Creates a sieve labeling domains unpopular when contacted by fewer
    /// than `unpopular_threshold` distinct hosts in a day.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is zero.
    pub fn new(unpopular_threshold: usize) -> Self {
        assert!(unpopular_threshold > 0, "threshold must be positive");
        RareSieve { unpopular_threshold }
    }

    /// The paper's threshold of 10 hosts.
    pub fn paper_default() -> Self {
        RareSieve::new(10)
    }

    /// The unpopularity threshold.
    pub fn threshold(&self) -> usize {
        self.unpopular_threshold
    }

    /// Extracts the rare destinations of a day of contacts, relative to
    /// `history` (which must **not** yet include this day).
    pub fn extract(&self, contacts: &[Contact], history: &DomainHistory) -> RareDomains {
        let mut domain_hosts: FastMap<DomainSym, BTreeSet<HostId>> = FastMap::default();
        for c in contacts {
            domain_hosts.entry(c.domain).or_default().insert(c.host);
        }
        self.extract_with_hosts(domain_hosts, history)
    }

    /// Like [`RareSieve::extract`], but reuses a per-domain host map the
    /// caller already built (the streaming path computes one incrementally
    /// and would otherwise pay a second full pass over the day's contacts).
    pub fn extract_with_hosts(
        &self,
        domain_hosts: FastMap<DomainSym, BTreeSet<HostId>>,
        history: &DomainHistory,
    ) -> RareDomains {
        let mut rare = FastSet::default();
        let mut new_count = 0;
        for (&domain, hosts) in &domain_hosts {
            if history.is_new(domain) {
                new_count += 1;
                if hosts.len() < self.unpopular_threshold {
                    rare.insert(domain);
                }
            }
        }
        RareDomains { rare, new_count, domain_hosts }
    }
}

impl Default for RareSieve {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlybird_logmodel::{DomainInterner, Timestamp};

    fn contact(domain: DomainSym, host: u32) -> Contact {
        Contact {
            ts: Timestamp::from_secs(0),
            host: HostId::new(host),
            domain,
            dest_ip: None,
            http: None,
        }
    }

    #[test]
    fn new_and_unpopular_is_rare() {
        let domains = DomainInterner::new();
        let fresh = domains.intern("fresh.info");
        let history = DomainHistory::new();
        let sieve = RareSieve::new(10);
        let rare = sieve.extract(&[contact(fresh, 1)], &history);
        assert!(rare.contains(fresh));
        assert_eq!(rare.new_count(), 1);
    }

    #[test]
    fn known_domain_is_not_rare() {
        let domains = DomainInterner::new();
        let known = domains.intern("nbc.com");
        let mut history = DomainHistory::new();
        history.update_domains([known]);
        let sieve = RareSieve::new(10);
        let rare = sieve.extract(&[contact(known, 1)], &history);
        assert!(!rare.contains(known));
        assert_eq!(rare.new_count(), 0);
        // ... but its host set is still tracked for connectivity features.
        assert_eq!(rare.hosts_of(known).unwrap().len(), 1);
    }

    #[test]
    fn popular_new_domain_is_not_rare() {
        let domains = DomainInterner::new();
        let viral = domains.intern("viral.new");
        let history = DomainHistory::new();
        let sieve = RareSieve::new(3);
        let contacts: Vec<Contact> = (0..5).map(|h| contact(viral, h)).collect();
        let rare = sieve.extract(&contacts, &history);
        assert!(!rare.contains(viral), "5 hosts >= threshold 3");
        assert_eq!(rare.new_count(), 1, "still counted as new");
    }

    #[test]
    fn threshold_is_strictly_less_than() {
        let domains = DomainInterner::new();
        let d = domains.intern("edge.case");
        let history = DomainHistory::new();
        let contacts: Vec<Contact> = (0..10).map(|h| contact(d, h)).collect();
        assert!(
            !RareSieve::new(10).extract(&contacts, &history).contains(d),
            "exactly 10 hosts is not rare"
        );
        assert!(RareSieve::new(11).extract(&contacts, &history).contains(d));
    }

    #[test]
    fn duplicate_contacts_count_hosts_once() {
        let domains = DomainInterner::new();
        let d = domains.intern("dup.com");
        let history = DomainHistory::new();
        let contacts = vec![contact(d, 1), contact(d, 1), contact(d, 1)];
        let rare = RareSieve::new(2).extract(&contacts, &history);
        assert!(rare.contains(d));
        assert_eq!(rare.hosts_of(d).unwrap().len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_threshold_rejected() {
        let _ = RareSieve::new(0);
    }
}
