//! Dynamic histogram binning of inter-connection intervals (§IV-C).
//!
//! Static bins make the distance metric "highly sensitive to the histogram
//! bin size and alignment"; the paper instead *clusters* the intervals: the
//! first interval becomes the first cluster hub, and each subsequent interval
//! joins a cluster if it lies within `W` of that cluster's hub, otherwise it
//! founds a new cluster with itself as hub.

use earlybird_logmodel::Timestamp;
use serde::{Deserialize, Serialize};

/// One dynamic-histogram bin: a cluster hub and the number of intervals that
/// joined it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bin {
    /// The founding interval of the cluster, in seconds.
    pub hub: u64,
    /// Number of intervals assigned to the cluster.
    pub count: u64,
}

/// A normalized histogram over dynamic bins.
///
/// Frequencies sum to 1 (up to floating-point error) whenever at least one
/// interval was binned.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    bins: Vec<Bin>,
    total: u64,
}

impl Histogram {
    /// Builds a histogram from raw bins.
    pub fn from_bins(bins: Vec<Bin>) -> Self {
        let total = bins.iter().map(|b| b.count).sum();
        Histogram { bins, total }
    }

    /// The underlying bins.
    pub fn bins(&self) -> &[Bin] {
        &self.bins
    }

    /// Total number of binned intervals.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Relative frequency of bin `i`.
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty or `i` is out of range.
    pub fn frequency(&self, i: usize) -> f64 {
        assert!(self.total > 0, "empty histogram has no frequencies");
        self.bins[i].count as f64 / self.total as f64
    }

    /// Frequencies of all bins, in bin order.
    pub fn frequencies(&self) -> Vec<f64> {
        (0..self.bins.len()).map(|i| self.frequency(i)).collect()
    }

    /// Index of the highest-count bin (ties broken toward the earlier bin).
    pub fn mode(&self) -> Option<usize> {
        if self.bins.is_empty() {
            return None;
        }
        let mut best = 0;
        for (i, b) in self.bins.iter().enumerate().skip(1) {
            if b.count > self.bins[best].count {
                best = i;
            }
        }
        Some(best)
    }

    /// The hub of the highest-count bin — the paper's beacon-period estimate.
    pub fn dominant_period(&self) -> Option<u64> {
        self.mode().map(|i| self.bins[i].hub)
    }
}

/// Inter-connection intervals (in seconds) of a chronologically sorted
/// timestamp sequence.
///
/// Returns an empty vector for fewer than two timestamps.
///
/// # Panics
///
/// Panics if timestamps are not sorted in non-decreasing order.
///
/// # Example
///
/// ```
/// use earlybird_logmodel::Timestamp;
/// use earlybird_timing::intervals_of;
/// let ts: Vec<Timestamp> = [0u64, 600, 1205].iter().map(|&s| Timestamp::from_secs(s)).collect();
/// assert_eq!(intervals_of(&ts), vec![600, 605]);
/// ```
pub fn intervals_of(timestamps: &[Timestamp]) -> Vec<u64> {
    timestamps
        .windows(2)
        .map(|w| {
            assert!(w[1] >= w[0], "timestamps must be sorted");
            w[1] - w[0]
        })
        .collect()
}

/// Clusters `intervals` (in encounter order) into dynamic bins of width `W =
/// bin_width`, exactly as §IV-C prescribes: an interval joins the first
/// existing cluster whose *hub* is within `bin_width`, else founds a new
/// cluster.
///
/// # Example
///
/// ```
/// use earlybird_timing::dynamic_bins;
/// let bins = dynamic_bins(&[600, 603, 598, 4000], 10);
/// assert_eq!(bins.len(), 2);
/// assert_eq!(bins[0].hub, 600);
/// assert_eq!(bins[0].count, 3);
/// assert_eq!(bins[1].hub, 4000);
/// ```
pub fn dynamic_bins(intervals: &[u64], bin_width: u64) -> Vec<Bin> {
    let mut bins: Vec<Bin> = Vec::new();
    for &t in intervals {
        match bins.iter_mut().find(|b| b.hub.abs_diff(t) <= bin_width) {
            Some(bin) => bin.count += 1,
            None => bins.push(Bin { hub: t, count: 1 }),
        }
    }
    bins
}

/// The perfectly periodic reference histogram over the same bin layout as
/// `observed`: all probability mass on the highest-frequency cluster hub
/// (§IV-C: "compared to that of the periodic distribution with period equal
/// to the highest-frequency cluster hub").
///
/// Returns frequency vectors `(observed, reference)` aligned bin-by-bin, or
/// `None` when the histogram is empty.
pub fn periodic_reference(observed: &Histogram) -> Option<(Vec<f64>, Vec<f64>)> {
    let mode = observed.mode()?;
    let h = observed.frequencies();
    let mut k = vec![0.0; h.len()];
    k[mode] = 1.0;
    Some((h, k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_interval_founds_first_cluster() {
        let bins = dynamic_bins(&[100, 105, 300], 10);
        assert_eq!(bins, vec![Bin { hub: 100, count: 2 }, Bin { hub: 300, count: 1 }]);
    }

    #[test]
    fn membership_is_relative_to_hub_not_last_member() {
        // 100, 109 join hub=100 (within 10); 118 is 18 from hub -> new cluster,
        // even though it is within 10 of the previous member 109.
        let bins = dynamic_bins(&[100, 109, 118], 10);
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0], Bin { hub: 100, count: 2 });
        assert_eq!(bins[1], Bin { hub: 118, count: 1 });
    }

    #[test]
    fn empty_input_gives_empty_bins() {
        assert!(dynamic_bins(&[], 10).is_empty());
        assert!(Histogram::from_bins(vec![]).mode().is_none());
    }

    #[test]
    fn histogram_frequencies_sum_to_one() {
        let h = Histogram::from_bins(dynamic_bins(&[60, 61, 59, 240, 62], 5));
        let sum: f64 = h.frequencies().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn mode_prefers_earlier_bin_on_tie() {
        let h = Histogram::from_bins(vec![Bin { hub: 10, count: 2 }, Bin { hub: 99, count: 2 }]);
        assert_eq!(h.mode(), Some(0));
        assert_eq!(h.dominant_period(), Some(10));
    }

    #[test]
    fn periodic_reference_puts_all_mass_on_mode() {
        let h = Histogram::from_bins(dynamic_bins(&[600, 602, 601, 4000], 10));
        let (obs, refv) = periodic_reference(&h).unwrap();
        assert_eq!(obs.len(), refv.len());
        assert_eq!(refv.iter().filter(|&&x| x == 1.0).count(), 1);
        assert_eq!(refv[0], 1.0, "mode is the 600s cluster");
    }

    #[test]
    fn intervals_from_sorted_timestamps() {
        let ts: Vec<Timestamp> = [10u64, 20, 35].iter().map(|&s| Timestamp::from_secs(s)).collect();
        assert_eq!(intervals_of(&ts), vec![10, 15]);
        assert!(intervals_of(&ts[..1]).is_empty());
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn intervals_panic_on_unsorted() {
        let ts = vec![Timestamp::from_secs(20), Timestamp::from_secs(10)];
        let _ = intervals_of(&ts);
    }

    #[test]
    fn zero_bin_width_means_exact_matching() {
        let bins = dynamic_bins(&[5, 5, 6], 0);
        assert_eq!(bins.len(), 2);
        assert_eq!(bins[0], Bin { hub: 5, count: 2 });
    }
}
