//! Benchmarks of the C&C timing detectors (Table II machinery) and the
//! detector ablation: dynamic histogram vs std-dev vs autocorrelation.

use criterion::{criterion_group, criterion_main, Criterion};
use earlybird_logmodel::Timestamp;
use earlybird_timing::{AutocorrelationDetector, AutomationDetector, StdDevDetector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn beacon_series(n: u64, period: u64, jitter: u64, seed: u64) -> Vec<Timestamp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = 0i64;
    (0..n)
        .map(|_| {
            let out = Timestamp::from_secs(t as u64);
            let j =
                if jitter == 0 { 0 } else { rng.gen_range(0..=2 * jitter) as i64 - jitter as i64 };
            t += period as i64 + j;
            out
        })
        .collect()
}

fn random_series(n: u64, seed: u64) -> Vec<Timestamp> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut v: Vec<u64> = (0..n).map(|_| rng.gen_range(0..86_400)).collect();
    v.sort_unstable();
    v.into_iter().map(Timestamp::from_secs).collect()
}

fn bench_histogram(c: &mut Criterion) {
    let beacon = beacon_series(144, 600, 3, 1);
    let noise = random_series(144, 2);
    let det = AutomationDetector::paper_default();
    let mut group = c.benchmark_group("dynamic_histogram");
    group.bench_function("beacon_144", |b| b.iter(|| det.evaluate(std::hint::black_box(&beacon))));
    group.bench_function("noise_144", |b| b.iter(|| det.evaluate(std::hint::black_box(&noise))));
    group.finish();
}

fn bench_detector_ablation(c: &mut Criterion) {
    // One outlier in an otherwise perfect beacon: the case that motivated
    // the dynamic histogram (§IV-C). The bench reports the relative cost;
    // the assertions document the accuracy difference.
    let mut series = beacon_series(40, 600, 0, 3);
    for t in series.iter_mut().skip(20) {
        *t += 4_000;
    }
    let dynamic = AutomationDetector::paper_default();
    let stddev = StdDevDetector::new(30.0, 4);
    let autocorr = AutocorrelationDetector::new(10, 0.4, 4);
    assert!(dynamic.is_automated(&series), "dynamic histogram survives the outlier");
    assert!(!stddev.is_automated(&series), "std-dev baseline breaks (paper's observation)");

    let mut group = c.benchmark_group("detector_ablation_outlier_series");
    group.bench_function("dynamic_histogram", |b| {
        b.iter(|| dynamic.evaluate(std::hint::black_box(&series)))
    });
    group.bench_function("stddev_baseline", |b| {
        b.iter(|| stddev.interval_std(std::hint::black_box(&series)))
    });
    group.bench_function("autocorrelation_baseline", |b| {
        b.iter(|| autocorr.peak_autocorrelation(std::hint::black_box(&series)))
    });
    group.finish();
}

fn bench_table2_sweep(c: &mut Criterion) {
    // The Table II computation: evaluate every (W, J_T) cell over a bundle
    // of series.
    let series: Vec<Vec<Timestamp>> = (0..50)
        .map(|i| if i % 2 == 0 { beacon_series(100, 300 + i, 3, i) } else { random_series(100, i) })
        .collect();
    c.bench_function("table2_grid_50_series", |b| {
        b.iter(|| {
            let mut detected = 0usize;
            for &(w, jt) in &[(5u64, 0.06f64), (10, 0.06), (20, 0.06), (5, 0.35)] {
                let det = AutomationDetector::new(w, jt, 4);
                for s in &series {
                    if det.is_automated(s) {
                        detected += 1;
                    }
                }
            }
            detected
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_histogram, bench_detector_ablation, bench_table2_sweep
}
criterion_main!(benches);
