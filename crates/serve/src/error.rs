//! The typed wire-error surface: every failure the daemon can hand a
//! client is a `{code, message}` JSON envelope under a meaningful HTTP
//! status, and every envelope parses back into the same [`ServeError`] on
//! the client side — errors survive the wire round trip typed.

use crate::http::Response;
use earlybird_engine::{EngineError, StoreError};
use serde::json::Value;
use std::fmt;

/// A service failure as seen on the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ServeError {
    /// HTTP status the envelope travels under.
    pub status: u16,
    /// Stable, machine-matchable error code.
    pub code: String,
    /// Human-readable detail (safe to display; never carries raw state).
    pub message: String,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} ({})", self.status, self.code, self.message)
    }
}

impl std::error::Error for ServeError {}

impl ServeError {
    fn new(status: u16, code: &str, message: impl Into<String>) -> Self {
        ServeError { status, code: code.to_string(), message: message.into() }
    }

    /// `400 bad_request`: the request itself (syntax, JSON shape, day
    /// number, tenant spec) could not be understood.
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self::new(400, "bad_request", message)
    }

    /// `404 unknown_tenant`: no tenant by that name.
    pub fn unknown_tenant(name: &str) -> Self {
        Self::new(404, "unknown_tenant", format!("no tenant named {name:?}"))
    }

    /// `404 unknown_day`: the day was never ingested (and has no open
    /// span stream) for this tenant.
    pub fn unknown_day(day: u32) -> Self {
        Self::new(
            404,
            "unknown_day",
            format!("day {day} has no open ingest and was never ingested"),
        )
    }

    /// `404 not_found`: no such route.
    pub fn not_found(path: &str) -> Self {
        Self::new(404, "not_found", format!("no route for {path:?}"))
    }

    /// `405 method_not_allowed`.
    pub fn method_not_allowed(method: &str, path: &str) -> Self {
        Self::new(405, "method_not_allowed", format!("{method} is not supported on {path:?}"))
    }

    /// `409 stale_day`: the day is older than this tenant's newest
    /// ingested day — accepting it would wedge the segment chain.
    pub fn stale_day(day: u32, newest: u32) -> Self {
        Self::new(
            409,
            "stale_day",
            format!("day {day} is behind the newest ingested day {newest}; days must not regress"),
        )
    }

    /// `409 tenant_exists`: `PUT` on a name already registered.
    pub fn tenant_exists(name: &str) -> Self {
        Self::new(409, "tenant_exists", format!("tenant {name:?} already exists"))
    }

    /// `429 over_capacity`: per-tenant admission control rejected the
    /// span; the response carries `Retry-After: 1`.
    pub fn over_capacity(message: impl Into<String>) -> Self {
        Self::new(429, "over_capacity", message)
    }

    /// `503 draining`: the daemon is shutting down and accepts no new
    /// work.
    pub fn draining() -> Self {
        Self::new(503, "draining", "the service is draining for shutdown")
    }

    /// `500 internal`: an unexpected engine or storage failure; the day
    /// is NOT durable.
    pub fn internal(message: impl Into<String>) -> Self {
        Self::new(500, "internal", message)
    }

    /// Maps a storage failure onto the wire. [`StoreError::StaleSegment`]
    /// keeps its dedicated `409`; everything else is an internal fault of
    /// this deployment, not of the request.
    pub fn from_store(e: &StoreError) -> Self {
        match e {
            StoreError::StaleSegment { day, last_persisted } => {
                Self::stale_day(*day, *last_persisted)
            }
            other => Self::internal(format!("storage failure: {other}")),
        }
    }

    /// Maps an engine failure onto the wire.
    pub fn from_engine(e: &EngineError) -> Self {
        match e {
            EngineError::UnknownDay(day) => Self::unknown_day(day.index()),
            EngineError::InvalidConfig(msg) => Self::bad_request(format!("invalid config: {msg}")),
            other => Self::internal(format!("engine failure: {other}")),
        }
    }

    /// The JSON envelope body.
    pub fn to_json(&self) -> String {
        serde_json::to_string(&Value::Object(vec![
            ("code".to_string(), Value::Str(self.code.clone())),
            ("message".to_string(), Value::Str(self.message.clone())),
        ]))
        .expect("envelope serializes")
    }

    /// Parses an envelope received under `status` back into the typed
    /// error — the client-side inverse of [`ServeError::to_json`].
    ///
    /// # Errors
    ///
    /// A `400 bad_request`-shaped [`ServeError`] when the body is not an
    /// envelope (so transport garbage still surfaces as a typed value).
    pub fn from_json(status: u16, body: &str) -> Result<Self, ServeError> {
        let value: Value = serde_json::from_str(body)
            .map_err(|e| Self::bad_request(format!("unparseable error envelope: {e}")))?;
        let code = value
            .get("code")
            .and_then(Value::as_str)
            .ok_or_else(|| Self::bad_request("error envelope missing \"code\""))?;
        let message = value
            .get("message")
            .and_then(Value::as_str)
            .ok_or_else(|| Self::bad_request("error envelope missing \"message\""))?;
        Ok(ServeError { status, code: code.to_string(), message: message.to_string() })
    }

    /// Renders the error as its wire response (envelope body, plus
    /// `Retry-After` for `429`).
    pub fn to_response(&self) -> Response {
        let resp = Response::json(self.status, self.to_json());
        if self.status == 429 {
            resp.with_header("Retry-After", "1")
        } else {
            resp
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_code_round_trips_the_envelope() {
        let errors = [
            ServeError::bad_request("bad json"),
            ServeError::unknown_tenant("acme"),
            ServeError::unknown_day(7),
            ServeError::not_found("/nope"),
            ServeError::method_not_allowed("PATCH", "/v1/x"),
            ServeError::stale_day(3, 9),
            ServeError::tenant_exists("acme"),
            ServeError::over_capacity("too many open bytes"),
            ServeError::draining(),
            ServeError::internal("disk on fire"),
        ];
        for err in errors {
            let parsed = ServeError::from_json(err.status, &err.to_json()).unwrap();
            assert_eq!(parsed, err, "envelope must round-trip typed");
        }
    }

    #[test]
    fn store_errors_map_to_the_promised_statuses() {
        let stale = StoreError::StaleSegment { day: 2, last_persisted: 5 };
        let mapped = ServeError::from_store(&stale);
        assert_eq!((mapped.status, mapped.code.as_str()), (409, "stale_day"));

        let io = StoreError::Io(std::io::Error::other("boom"));
        let mapped = ServeError::from_store(&io);
        assert_eq!((mapped.status, mapped.code.as_str()), (500, "internal"));
    }

    #[test]
    fn engine_errors_map_to_the_promised_statuses() {
        let unknown = EngineError::UnknownDay(earlybird_logmodel::Day::new(11));
        let mapped = ServeError::from_engine(&unknown);
        assert_eq!((mapped.status, mapped.code.as_str()), (404, "unknown_day"));
        assert!(mapped.message.contains("11"));

        let invalid = EngineError::InvalidConfig("retain_days must be at least 1".into());
        let mapped = ServeError::from_engine(&invalid);
        assert_eq!((mapped.status, mapped.code.as_str()), (400, "bad_request"));

        let worker = EngineError::WorkerPanicked("scoring thread died".into());
        let mapped = ServeError::from_engine(&worker);
        assert_eq!((mapped.status, mapped.code.as_str()), (500, "internal"));
    }

    #[test]
    fn non_envelope_bodies_become_typed_parse_errors() {
        let err = ServeError::from_json(502, "<html>gateway</html>").unwrap_err();
        assert_eq!(err.code, "bad_request");
        let err = ServeError::from_json(500, "{\"nope\": 1}").unwrap_err();
        assert!(err.message.contains("code"));
    }

    #[test]
    fn retry_after_rides_the_429_response() {
        let resp = ServeError::over_capacity("span backlog full").to_response();
        assert_eq!(resp.status, 429);
        assert!(resp.extra_headers.iter().any(|(k, v)| k == "Retry-After" && v == "1"));
        let resp = ServeError::draining().to_response();
        assert!(resp.extra_headers.is_empty());
    }
}
