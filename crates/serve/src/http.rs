//! A deliberately small HTTP/1.1 layer over `std::io`: request parsing
//! with hard limits, response writing, persistent connections.
//!
//! The service speaks exactly the subset it needs — `Content-Length`
//! bodies (no chunked transfer), case-insensitive header lookup, and
//! `Connection: close` negotiation — so the whole wire layer stays
//! auditable and dependency-free.

use std::io::{self, BufRead, Write};

/// Maximum bytes of request line + headers before the request is refused.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Upper-case method (`GET`, `POST`, `PUT`, ...).
    pub method: String,
    /// Path portion of the target, before any `?`.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// Headers with lower-cased names, in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a header, by lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// First value of a query parameter.
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }

    /// Whether the client asked to close the connection after this
    /// exchange (HTTP/1.1 defaults to keep-alive).
    pub fn wants_close(&self) -> bool {
        self.header("connection").is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }

    /// Path segments between `/` separators, empty segments dropped.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The bytes on the wire are not a well-formed HTTP/1.1 request; the
    /// message is safe to echo back in an error envelope.
    Malformed(String),
    /// The head or body exceeds the configured limit.
    TooLarge(String),
    /// The underlying transport failed.
    Io(io::Error),
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

/// Reads one request from `input`, enforcing [`MAX_HEAD_BYTES`] on the
/// head and `max_body_bytes` on the body.
///
/// # Errors
///
/// [`ReadError::Closed`] on clean EOF before any request byte (the normal
/// end of a keep-alive connection); [`ReadError::Malformed`] /
/// [`ReadError::TooLarge`] for protocol violations the caller should
/// answer with `400`; [`ReadError::Io`] for transport failures.
pub fn read_request<R: BufRead>(
    input: &mut R,
    max_body_bytes: usize,
) -> Result<Request, ReadError> {
    let mut head_bytes = 0usize;
    let request_line = match read_line(input, &mut head_bytes)? {
        Some(line) => line,
        None => return Err(ReadError::Closed),
    };
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_ascii_uppercase();
    let target = parts.next().ok_or_else(|| malformed("request line missing target"))?;
    let version = parts.next().ok_or_else(|| malformed("request line missing HTTP version"))?;
    if method.is_empty() || parts.next().is_some() {
        return Err(malformed("request line must be METHOD SP TARGET SP VERSION"));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(malformed(&format!("unsupported protocol version {version:?}")));
    }

    let (path, query) = parse_target(target)?;

    let mut headers = Vec::new();
    loop {
        let line = read_line(input, &mut head_bytes)?
            .ok_or_else(|| malformed("connection closed mid-headers"))?;
        if line.is_empty() {
            break;
        }
        let (name, value) =
            line.split_once(':').ok_or_else(|| malformed("header line missing ':'"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let body = match headers.iter().find(|(k, _)| k == "content-length") {
        None => Vec::new(),
        Some((_, v)) => {
            let len: usize =
                v.parse().map_err(|_| malformed(&format!("bad Content-Length {v:?}")))?;
            if len > max_body_bytes {
                return Err(ReadError::TooLarge(format!(
                    "body of {len} bytes exceeds the {max_body_bytes}-byte limit"
                )));
            }
            let mut body = vec![0u8; len];
            input.read_exact(&mut body)?;
            body
        }
    };

    Ok(Request { method, path, query, headers, body })
}

/// One response, written by [`write_response`].
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (name must already be wire-ready).
    pub extra_headers: Vec<(String, String)>,
    /// The body bytes.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response in the Prometheus exposition content type
    /// (`GET /metrics`).
    pub fn text(status: u16, body: impl Into<Vec<u8>>) -> Self {
        Response {
            status,
            content_type: "text/plain; version=0.0.4",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: impl Into<String>) -> Self {
        self.extra_headers.push((name.to_string(), value.into()));
        self
    }
}

/// Writes `response`, announcing `Connection: close` unless `keep_alive`.
///
/// The head and body go out as **one** write: interleaving small writes
/// on a raw socket trips Nagle + delayed-ACK (a ~40ms stall per
/// response), which would dominate every round trip.
///
/// # Errors
///
/// [`io::Error`] from the transport.
pub fn write_response<W: Write>(
    out: &mut W,
    response: &Response,
    keep_alive: bool,
) -> io::Result<()> {
    let mut wire = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        response.status,
        status_reason(response.status),
        response.content_type,
        response.body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )
    .into_bytes();
    for (name, value) in &response.extra_headers {
        wire.extend_from_slice(format!("{name}: {value}\r\n").as_bytes());
    }
    wire.extend_from_slice(b"\r\n");
    wire.extend_from_slice(&response.body);
    out.write_all(&wire)?;
    out.flush()
}

/// The canonical reason phrase for every status the service emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

fn malformed(msg: &str) -> ReadError {
    ReadError::Malformed(msg.to_string())
}

/// Reads one CRLF- (or LF-) terminated line; `None` on EOF at a line
/// boundary with nothing read.
fn read_line<R: BufRead>(
    input: &mut R,
    head_bytes: &mut usize,
) -> Result<Option<String>, ReadError> {
    let mut raw = Vec::new();
    let n = input.read_until(b'\n', &mut raw)?;
    if n == 0 {
        return Ok(None);
    }
    *head_bytes += n;
    if *head_bytes > MAX_HEAD_BYTES {
        return Err(ReadError::TooLarge(format!(
            "request head exceeds the {MAX_HEAD_BYTES}-byte limit"
        )));
    }
    if raw.last() == Some(&b'\n') {
        raw.pop();
        if raw.last() == Some(&b'\r') {
            raw.pop();
        }
    }
    String::from_utf8(raw).map(Some).map_err(|_| malformed("request head is not UTF-8"))
}

fn parse_target(target: &str) -> Result<(String, Vec<(String, String)>), ReadError> {
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    if !path.starts_with('/') {
        return Err(malformed("target path must start with '/'"));
    }
    let mut query = Vec::new();
    for pair in query_str.split('&').filter(|p| !p.is_empty()) {
        let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
        query.push((percent_decode(k)?, percent_decode(v)?));
    }
    Ok((percent_decode(path)?, query))
}

/// Minimal percent-decoding (`%XX` and `+` as space in queries is *not*
/// applied — tenant names and day indexes never need it, and keeping the
/// mapping 1:1 avoids aliased routes).
fn percent_decode(s: &str) -> Result<String, ReadError> {
    if !s.contains('%') {
        return Ok(s.to_string());
    }
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes
                .get(i + 1..i + 3)
                .and_then(|h| std::str::from_utf8(h).ok())
                .and_then(|h| u8::from_str_radix(h, 16).ok())
                .ok_or_else(|| malformed("bad percent-escape in target"))?;
            out.push(hex);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| malformed("percent-escape decodes to invalid UTF-8"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        read_request(&mut Cursor::new(raw.as_bytes()), 1024)
    }

    #[test]
    fn parses_request_with_body_and_query() {
        let req = parse(
            "POST /v1/acme/days/3/spans?since=42&mode=x HTTP/1.1\r\n\
             Host: localhost\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/acme/days/3/spans");
        assert_eq!(req.segments(), vec!["v1", "acme", "days", "3", "spans"]);
        assert_eq!(req.query_param("since"), Some("42"));
        assert_eq!(req.query_param("mode"), Some("x"));
        assert_eq!(req.header("host"), Some("localhost"));
        assert_eq!(req.body, b"hello");
        assert!(!req.wants_close());
    }

    #[test]
    fn keep_alive_reads_sequential_requests() {
        let raw = "GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\nConnection: close\r\n\r\n";
        let mut cursor = Cursor::new(raw.as_bytes());
        let first = read_request(&mut cursor, 1024).unwrap();
        assert_eq!(first.path, "/a");
        let second = read_request(&mut cursor, 1024).unwrap();
        assert_eq!(second.path, "/b");
        assert!(second.wants_close());
        assert!(matches!(read_request(&mut cursor, 1024), Err(ReadError::Closed)));
    }

    #[test]
    fn malformed_requests_are_typed() {
        assert!(matches!(parse("NOT-HTTP\r\n\r\n"), Err(ReadError::Malformed(_))));
        assert!(matches!(parse("GET /x HTTP/9.9\r\n\r\n"), Err(ReadError::Malformed(_))));
        assert!(matches!(
            parse("GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(ReadError::Malformed(_))
        ));
        assert!(matches!(
            parse("POST /x HTTP/1.1\r\nContent-Length: 9999\r\n\r\n"),
            Err(ReadError::TooLarge(_))
        ));
    }

    #[test]
    fn responses_round_trip_the_wire_shape() {
        let mut out = Vec::new();
        let resp = Response::json(429, br#"{"code":"x"}"#.to_vec()).with_header("Retry-After", "1");
        write_response(&mut out, &resp, true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(text.contains("Retry-After: 1\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"code\":\"x\"}"));
    }
}
