//! Crash-restart durability of the service, end-to-end over HTTP: a
//! [`FaultInjector`] kills the daemon's store at **every** backend
//! mutation point of the serving schedule — the tenant-registration
//! snapshot, every day-finish commit, compaction — and a cold
//! `Server::bind` over the surviving state must then uphold the ack
//! contract:
//!
//! * every day whose finish returned `200` is present after restart,
//!   with counters identical to the library run;
//! * no day appears that ingestion never attempted to seal;
//! * a tenant whose registration snapshot never committed is cleanly
//!   absent (its creation was never acked).
//!
//! The sweep enumerates crash points from 0 upward until a run completes
//! with no fault fired, so every mutation in the schedule is killed
//! exactly once, per backend.

// Each integration-test crate uses a subset of the harness; the unused
// remainder is not a defect.
#[path = "support/backends.rs"]
#[allow(dead_code)]
mod support;

use earlybird::engine::{FaultInjector, FaultedStore, IngestSource};
use earlybird::logmodel::{
    format_dns_line, Day, DnsQuery, DnsRecordType, DomainInterner, HostId, Ipv4, Timestamp,
};
use earlybird::serve::{ServeClient, Server, ServerConfig, TenantSpec};
use earlybird_engine::CollectingSink;
use std::collections::BTreeSet;
use std::sync::Arc;
use support::Backend;

const N_HOSTS: u32 = 6;
const N_DAYS: u32 = 4;

fn spec() -> TenantSpec {
    let mut spec = TenantSpec::lanl(N_HOSTS, 1, N_DAYS);
    spec.auto_investigate = true;
    spec
}

/// A small deterministic day: background chatter plus a beaconing host,
/// rendered to interchange lines.
fn day_text(day: u32, domains: &Arc<DomainInterner>) -> String {
    let mut queries = Vec::new();
    for i in 0..120u32 {
        queries.push(DnsQuery {
            ts: Timestamp::from_secs(u64::from(i) * 613 % 86_400),
            src: HostId::new(i % N_HOSTS),
            src_ip: Ipv4::new(10, 0, 0, (i % N_HOSTS) as u8),
            qname: domains.intern(&format!("d{}.example.c3", (i * 7 + day) % 17)),
            qtype: DnsRecordType::A,
            answer: Some(Ipv4::new(50, (i % 17) as u8, 1, 1)),
        });
    }
    for beat in 0..16u64 {
        queries.push(DnsQuery {
            ts: Timestamp::from_secs(1_000 + beat * 600),
            src: HostId::new(1),
            src_ip: Ipv4::new(10, 0, 0, 1),
            qname: domains.intern("cc.alpha.c3"),
            qtype: DnsRecordType::A,
            answer: Some(Ipv4::new(198, 51, 100, 9)),
        });
    }
    queries.sort_by_key(|q| q.ts);
    let mut text = String::new();
    for q in &queries {
        text.push_str(&format_dns_line(q, domains));
        text.push('\n');
    }
    text
}

/// Kill the store at every mutation point of the service schedule; after
/// each crash, restart over the surviving state and check the ack
/// contract — `{localfs, mem, s3lite}`.
#[test]
fn every_crash_point_preserves_acked_days_over_http() {
    let domains = Arc::new(DomainInterner::new());
    let days: Vec<(u32, String)> = (0..N_DAYS).map(|d| (d, day_text(d, &domains))).collect();

    // Library reference: the per-day reports an unfailing run produces.
    let sink = CollectingSink::new();
    let mut reference = spec()
        .builder()
        .sink(sink)
        .build(Arc::new(DomainInterner::new()), spec().dataset_meta().unwrap())
        .expect("valid spec");
    let mut ref_reports = Vec::new();
    for (day, text) in &days {
        let mut ingest = reference.begin_day(Day::new(*day), IngestSource::Dns);
        ingest.push_lines(text);
        ref_reports.push(ingest.finish());
    }

    for backend in Backend::matrix("serve-crash") {
        let context = backend.name();
        let mut saw_clean_run = false;
        for crash_at in 0..600u64 {
            let state = backend.fresh();
            let injector = FaultInjector::new();
            injector.arm(crash_at);
            let faulted = Box::new(FaultedStore::boxed(state.boxed_store(), injector.clone()));
            // Bind on a fresh (empty) store never mutates, so the doomed
            // daemon always comes up.
            let server = Server::bind(faulted, ServerConfig::default())
                .unwrap_or_else(|e| panic!("{context}/{crash_at}: bind: {e}"));
            let addr = server.addr();
            let mut handle = Some(server.spawn());

            // Drive until the injected crash surfaces as a 500. Only the
            // finish acks promise durability.
            let mut client = ServeClient::new(addr);
            let mut acked = BTreeSet::new();
            let mut attempted = BTreeSet::new();
            if client.create_tenant("acme", &spec()).is_ok() {
                for (day, text) in &days {
                    if client.push_span("acme", *day, text).is_err() {
                        break;
                    }
                    attempted.insert(*day);
                    match client.finish_day("acme", *day) {
                        Ok(ack) => {
                            assert!(ack.durable, "{context}/{crash_at}: 200 finish is durable");
                            acked.insert(*day);
                        }
                        Err(_) => break,
                    }
                }
            }
            drop(client);
            let crashed = injector.crashed();
            if crashed {
                // The daemon's store is dead mid-flight; abandon it like
                // a killed process (graceful drain is impossible by
                // construction) and recover from the medium alone.
                handle.take();
            }

            // Cold restart over the surviving state, unfaulted.
            let restarted = Server::bind(state.boxed_store(), ServerConfig::default())
                .unwrap_or_else(|e| panic!("{context}/{crash_at}: recovery bind: {e}"));
            match restarted.tenant_count() {
                0 => assert!(
                    acked.is_empty(),
                    "{context}/{crash_at}: acked days {acked:?} lost with the tenant"
                ),
                1 => {
                    let addr = restarted.addr();
                    let h2 = restarted.spawn();
                    let mut c2 = ServeClient::new(addr);
                    let restored = c2.reports("acme").expect("restored tenant answers").reports;
                    let have: BTreeSet<u32> = restored.iter().map(|r| r.day.index()).collect();
                    for day in &acked {
                        assert!(
                            have.contains(day),
                            "{context}/{crash_at}: acked day {day} lost (restored: {have:?})"
                        );
                    }
                    for day in &have {
                        assert!(
                            attempted.contains(day),
                            "{context}/{crash_at}: day {day} appeared without a finish attempt"
                        );
                    }
                    for report in &restored {
                        let reference = &ref_reports[report.day.index() as usize];
                        assert_eq!(report.bootstrap, reference.bootstrap);
                        assert!(
                            report.stages.deterministic_eq(&reference.stages),
                            "{context}/{crash_at}: restored counters for {:?}",
                            report.day
                        );
                        assert_eq!(report.dns_counts, reference.dns_counts);
                    }
                    c2.shutdown().expect("recovered daemon shuts down");
                    drop(c2);
                    h2.join();
                }
                n => panic!("{context}/{crash_at}: {n} tenants restored"),
            }

            if !crashed {
                // Nothing fired: the whole schedule ran clean, so every
                // mutation point before `crash_at` has been exercised.
                assert_eq!(
                    acked,
                    (0..N_DAYS).collect::<BTreeSet<u32>>(),
                    "{context}: the clean run acks every day"
                );
                // The un-crashed daemon is still serving; retire it.
                let mut c = ServeClient::new(addr);
                c.shutdown().expect("clean daemon shuts down");
                drop(c);
                handle.take().expect("uncrashed daemon still owned").join();
                saw_clean_run = true;
                state.cleanup();
                break;
            }
            state.cleanup();
        }
        assert!(saw_clean_run, "{context}: sweep never reached a fault-free run");
        backend.cleanup();
    }
}
