//! Vendored, offline-buildable stand-in for the `rand` crate (0.8-era API).
//!
//! Implements exactly the surface this workspace uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension trait
//! (`gen`, `gen_range`, `gen_bool`, `sample_iter`), the
//! [`distributions::Standard`] distribution, and [`seq::SliceRandom`]
//! (`choose`, `choose_multiple`, `shuffle`).
//!
//! The generator is xoshiro256** — high quality and deterministic, but NOT
//! the same stream as upstream `StdRng`. All determinism tests in this
//! workspace compare runs against each other, never against upstream
//! constants, so this is safe.

#![forbid(unsafe_code)]

/// Core RNG interface: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// RNGs constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator (xoshiro256**).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Distributions over random values.
pub mod distributions {
    use super::RngCore;

    /// The standard distribution: "natural" uniform values per type.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Standard;

    /// Sampling a `T` from a distribution.
    pub trait Distribution<T> {
        /// Draws one value.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    impl Distribution<u64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            rng.next_u64()
        }
    }
    impl Distribution<u32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
            rng.next_u32()
        }
    }
    impl Distribution<u16> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
            (rng.next_u64() >> 48) as u16
        }
    }
    impl Distribution<u8> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
            (rng.next_u64() >> 56) as u8
        }
    }
    impl Distribution<i64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
            rng.next_u64() as i64
        }
    }
    impl Distribution<i32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
            rng.next_u32() as i32
        }
    }
    impl Distribution<usize> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
            rng.next_u64() as usize
        }
    }
    impl Distribution<bool> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
    impl Distribution<f64> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 uniform mantissa bits in [0, 1).
            (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
    impl Distribution<f32> for Standard {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }
    }

    /// Iterator yielded by [`crate::Rng::sample_iter`].
    pub struct DistIter<D, R, T> {
        pub(crate) distr: D,
        pub(crate) rng: R,
        pub(crate) _marker: core::marker::PhantomData<T>,
    }

    impl<D: Distribution<T>, R: RngCore, T> Iterator for DistIter<D, R, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            Some(self.distr.sample(&mut self.rng))
        }
    }
}

/// Types [`Rng::gen_range`] can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`
    /// (`inclusive = true`).
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! uniform_impl {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                debug_assert!(span > 0, "gen_range: empty range");
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
uniform_impl!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_in<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64, _inclusive: bool) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "gen_range: empty range");
        T::sample_in(rng, start, end, true)
    }
}

/// The user-facing RNG extension trait.
pub trait Rng: RngCore {
    /// Draws a value from the [`distributions::Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        distributions::Standard: distributions::Distribution<T>,
    {
        use distributions::Distribution;
        distributions::Standard.sample(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }

    /// Endless iterator of samples from `distr` (consumes the RNG).
    fn sample_iter<T, D: distributions::Distribution<T>>(
        self,
        distr: D,
    ) -> distributions::DistIter<D, Self, T>
    where
        Self: Sized,
    {
        distributions::DistIter { distr, rng: self, _marker: core::marker::PhantomData }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related random operations.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection / shuffling over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount` distinct elements in random order (fewer if the slice is
        /// shorter).
        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            // Partial Fisher–Yates over an index table.
            let mut indices: Vec<usize> = (0..self.len()).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..indices.len());
                indices.swap(i, j);
            }
            indices[..amount].iter().map(|&i| &self[i]).collect::<Vec<&T>>().into_iter()
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_and_divergence() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_are_bounded() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(5i32..=7);
            assert!((5..=7).contains(&y));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let unit: f64 = rng.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn slice_ops() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4, 5];
        assert!(items.choose(&mut rng).is_some());
        let picked: Vec<i32> = items.choose_multiple(&mut rng, 3).copied().collect();
        assert_eq!(picked.len(), 3);
        let mut sorted = picked.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 3, "distinct picks");
        let mut v = vec![1, 2, 3, 4, 5, 6, 7, 8];
        v.shuffle(&mut rng);
        let mut back = v.clone();
        back.sort_unstable();
        assert_eq!(back, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    }
}
