//! Component codecs: how each piece of engine state maps onto the wire.
//!
//! These functions encode *hooks* exposed by the substrate crates (interner
//! snapshots, history logs, day-index snapshots, model parts) rather than
//! private memory layouts, so the binary format stays stable under internal
//! refactors. Decoders validate every invariant the constructors would
//! otherwise `assert!` — a corrupt snapshot must surface a typed
//! [`StoreError`], never a panic.

use crate::codec::{Decoder, Encoder};
use crate::error::{StoreError, StoreResult};
use earlybird_features::{AdditiveScorer, FeatureScaler, Fit, RegressionModel};
use earlybird_intel::{Registration, WhoisRegistry};
use earlybird_logmodel::{
    DatasetMeta, Day, DomainSym, HostId, HostKind, HostMapper, Ipv4, Symbol, Timestamp,
    TypedInterner,
};
use earlybird_pipeline::{
    DayIndex, DayIndexSnapshot, DnsReductionCounts, DomainHistory, EdgeHttpSnapshot,
    NormalizationCounts, ProxyReductionCounts, UaHistory,
};
use earlybird_timing::{AutomationDetector, DistanceMetric};

// -- interners --------------------------------------------------------------

/// Writes the interner strings from `start` onward (`start = 0` for a full
/// snapshot, the persist cursor for a delta).
pub fn write_interner_slice<T>(e: &mut Encoder, interner: &TypedInterner<T>, start: usize) {
    let strings = interner.snapshot();
    let tail = strings.get(start..).unwrap_or(&[]);
    write_interner_tail(e, start, tail);
}

/// Writes an interner tail captured earlier by a frozen snapshot —
/// byte-identical to [`write_interner_slice`] over the same state.
pub fn write_interner_tail(e: &mut Encoder, start: usize, tail: &[std::sync::Arc<str>]) {
    e.usizev(start);
    e.usizev(tail.len());
    for s in tail {
        e.str(s);
    }
}

/// Reads an interner slice and appends it to `interner`, verifying the
/// start watermark and symbol numbering.
pub fn read_interner_into<T>(
    d: &mut Decoder<'_>,
    interner: &TypedInterner<T>,
    what: &str,
) -> StoreResult<()> {
    let start = d.usizev()?;
    if start > interner.len() {
        return Err(StoreError::corrupt(format!(
            "{what} interner delta starts at {start}, engine holds only {}",
            interner.len()
        )));
    }
    let count = d.seq_len(1)?;
    // Borrow every string straight out of the payload: the interner copies
    // each one exactly once (into its `Arc<str>` table), and the whole batch
    // lands under a single write-lock acquisition.
    let mut strings: Vec<&str> = Vec::with_capacity(count.min(64 * 1024));
    for _ in 0..count {
        strings.push(d.str_ref()?);
    }
    if !interner.extend_from_snapshot(start, strings) {
        return Err(StoreError::corrupt(format!(
            "{what} interner snapshot disagrees with existing contents \
             (duplicate or misnumbered symbols)"
        )));
    }
    Ok(())
}

// -- host mapper ------------------------------------------------------------

/// Writes the host-id assignments from id `start` onward.
pub fn write_host_mapper(e: &mut Encoder, hosts: &HostMapper, start: usize) {
    let ips = hosts.snapshot_ips();
    let tail = ips.get(start..).unwrap_or(&[]);
    write_host_mapper_tail(e, start, tail);
}

/// Writes a host-mapper tail captured earlier by a frozen snapshot —
/// byte-identical to [`write_host_mapper`] over the same state.
pub fn write_host_mapper_tail(e: &mut Encoder, start: usize, tail: &[Ipv4]) {
    e.usizev(start);
    e.usizev(tail.len());
    for ip in tail {
        e.u32v(ip.to_bits());
    }
}

/// Reads a host-mapper slice and replays it onto `hosts`.
pub fn read_host_mapper_into(d: &mut Decoder<'_>, hosts: &mut HostMapper) -> StoreResult<()> {
    let start = d.usizev()?;
    if start != hosts.len() {
        return Err(StoreError::corrupt(format!(
            "host mapper delta starts at {start}, engine holds {}",
            hosts.len()
        )));
    }
    let count = d.seq_len(1)?;
    let mut ips = Vec::with_capacity(count.min(64 * 1024));
    for _ in 0..count {
        ips.push(Ipv4::from_bits(d.u32v()?));
    }
    if !hosts.extend_restored(ips) {
        return Err(StoreError::corrupt("host mapper snapshot repeats an address"));
    }
    Ok(())
}

// -- histories --------------------------------------------------------------

/// Writes the destination-history insertion log from `start` onward, plus
/// the absolute ingested-day counter.
pub fn write_domain_history(e: &mut Encoder, history: &DomainHistory, start: usize) {
    let order = history.ordered();
    let tail = order.get(start..).unwrap_or(&[]);
    write_domain_history_tail(e, start, tail, history.days_ingested());
}

/// Writes a destination-history tail captured earlier by a frozen snapshot
/// — byte-identical to [`write_domain_history`] over the same state.
pub fn write_domain_history_tail(
    e: &mut Encoder,
    start: usize,
    tail: &[DomainSym],
    days_ingested: u32,
) {
    e.usizev(start);
    e.usizev(tail.len());
    for sym in tail {
        e.u32v(sym.raw());
    }
    e.u32v(days_ingested);
}

/// Reads a destination-history slice: `(start, new domains, days_ingested)`.
pub fn read_domain_history(d: &mut Decoder<'_>) -> StoreResult<(usize, Vec<DomainSym>, u32)> {
    let start = d.usizev()?;
    let count = d.seq_len(1)?;
    let mut syms = Vec::with_capacity(count.min(64 * 1024));
    for _ in 0..count {
        syms.push(Symbol::from_raw(d.u32v()?));
    }
    let days = d.u32v()?;
    Ok((start, syms, days))
}

/// Writes the user-agent history pair log from `start` onward.
pub fn write_ua_history(e: &mut Encoder, history: &UaHistory, start: usize) {
    let log = history.pair_log();
    let tail = log.get(start..).unwrap_or(&[]);
    write_ua_history_tail(e, history.rare_threshold(), start, tail);
}

/// Writes a user-agent history tail captured earlier by a frozen snapshot
/// — byte-identical to [`write_ua_history`] over the same state.
pub fn write_ua_history_tail(
    e: &mut Encoder,
    rare_threshold: usize,
    start: usize,
    tail: &[(earlybird_logmodel::UaSym, HostId)],
) {
    e.usizev(rare_threshold);
    e.usizev(start);
    e.usizev(tail.len());
    for (ua, host) in tail {
        e.u32v(ua.raw());
        e.u32v(host.index());
    }
}

/// Reads a user-agent history slice: `(threshold, start, new pairs)`.
#[allow(clippy::type_complexity)]
pub fn read_ua_history(
    d: &mut Decoder<'_>,
) -> StoreResult<(usize, usize, Vec<(earlybird_logmodel::UaSym, HostId)>)> {
    let threshold = d.usizev()?;
    if threshold == 0 {
        return Err(StoreError::corrupt("rare-UA threshold must be at least 1"));
    }
    let start = d.usizev()?;
    let count = d.seq_len(2)?;
    let mut pairs = Vec::with_capacity(count.min(64 * 1024));
    for _ in 0..count {
        let ua = Symbol::from_raw(d.u32v()?);
        let host = HostId::new(d.u32v()?);
        pairs.push((ua, host));
    }
    Ok((threshold, start, pairs))
}

// -- day index --------------------------------------------------------------

/// Writes one retained day's contact index.
pub fn write_day_index(e: &mut Encoder, index: &DayIndex) {
    // Live indexes carry their sorted form from seal time, so encoding
    // under a frozen always-on engine is pure emission — no sorting or
    // cloning here. Restored indexes (rare full rewrites) fall back to
    // decomposing on the fly.
    let fallback;
    let snap = match index.sealed() {
        Some(snap) => snap,
        None => {
            fallback = index.to_snapshot();
            &fallback
        }
    };
    e.u32v(snap.day.index());
    e.usizev(snap.new_count);
    e.usizev(snap.rare.len());
    for d in &snap.rare {
        e.u32v(d.raw());
    }
    e.usizev(snap.domain_hosts.len());
    for (d, hosts) in &snap.domain_hosts {
        e.u32v(d.raw());
        e.usizev(hosts.len());
        for h in hosts {
            e.u32v(h.index());
        }
    }
    e.usizev(snap.edge_series.len());
    for ((h, d), series) in &snap.edge_series {
        e.u32v(h.index());
        e.u32v(d.raw());
        e.usizev(series.len());
        // Series are sorted ascending: delta-encode for compactness.
        let mut prev = 0u64;
        for ts in series {
            e.varint(ts.as_secs().wrapping_sub(prev));
            prev = ts.as_secs();
        }
    }
    e.usizev(snap.first_contact.len());
    for ((h, d), ts) in &snap.first_contact {
        e.u32v(h.index());
        e.u32v(d.raw());
        e.varint(ts.as_secs());
    }
    e.usizev(snap.domain_ips.len());
    for (d, ips) in &snap.domain_ips {
        e.u32v(d.raw());
        e.usizev(ips.len());
        for ip in ips {
            e.u32v(ip.to_bits());
        }
    }
    e.usizev(snap.edge_http.len());
    for ((h, d), http) in &snap.edge_http {
        e.u32v(h.index());
        e.u32v(d.raw());
        e.u32v(http.connections);
        e.u32v(http.with_referer);
        e.u32v(http.with_common_ua);
        e.bool(http.saw_http);
    }
}

/// Reads one retained day's contact index.
pub fn read_day_index(d: &mut Decoder<'_>) -> StoreResult<DayIndex> {
    let day = Day::new(d.u32v()?);
    let new_count = d.usizev()?;

    let n = d.seq_len(1)?;
    let mut rare = Vec::with_capacity(n.min(64 * 1024));
    for _ in 0..n {
        rare.push(DomainSym::from_raw(d.u32v()?));
    }

    let n = d.seq_len(2)?;
    let mut domain_hosts = Vec::with_capacity(n.min(64 * 1024));
    for _ in 0..n {
        let dom = DomainSym::from_raw(d.u32v()?);
        let k = d.seq_len(1)?;
        let mut hosts = Vec::with_capacity(k.min(64 * 1024));
        for _ in 0..k {
            hosts.push(HostId::new(d.u32v()?));
        }
        domain_hosts.push((dom, hosts));
    }

    let n = d.seq_len(3)?;
    let mut edge_series = Vec::with_capacity(n.min(64 * 1024));
    for _ in 0..n {
        let h = HostId::new(d.u32v()?);
        let dom = DomainSym::from_raw(d.u32v()?);
        let k = d.seq_len(1)?;
        let mut series = Vec::with_capacity(k.min(64 * 1024));
        let mut prev = 0u64;
        for _ in 0..k {
            // checked_add keeps the decoded series non-decreasing even for
            // hostile input — downstream beacon estimators assert sorted
            // series, and that panic must not be reachable from a snapshot.
            let secs = prev
                .checked_add(d.varint()?)
                .ok_or_else(|| StoreError::corrupt("edge series timestamp delta overflows u64"))?;
            series.push(Timestamp::from_secs(secs));
            prev = secs;
        }
        edge_series.push(((h, dom), series));
    }

    let n = d.seq_len(3)?;
    let mut first_contact = Vec::with_capacity(n.min(64 * 1024));
    for _ in 0..n {
        let h = HostId::new(d.u32v()?);
        let dom = DomainSym::from_raw(d.u32v()?);
        first_contact.push(((h, dom), Timestamp::from_secs(d.varint()?)));
    }

    let n = d.seq_len(2)?;
    let mut domain_ips = Vec::with_capacity(n.min(64 * 1024));
    for _ in 0..n {
        let dom = DomainSym::from_raw(d.u32v()?);
        let k = d.seq_len(1)?;
        let mut ips = Vec::with_capacity(k.min(64 * 1024));
        for _ in 0..k {
            ips.push(Ipv4::from_bits(d.u32v()?));
        }
        domain_ips.push((dom, ips));
    }

    let n = d.seq_len(6)?;
    let mut edge_http = Vec::with_capacity(n.min(64 * 1024));
    for _ in 0..n {
        let h = HostId::new(d.u32v()?);
        let dom = DomainSym::from_raw(d.u32v()?);
        let http = EdgeHttpSnapshot {
            connections: d.u32v()?,
            with_referer: d.u32v()?,
            with_common_ua: d.u32v()?,
            saw_http: d.bool()?,
        };
        edge_http.push(((h, dom), http));
    }

    Ok(DayIndex::from_snapshot(DayIndexSnapshot {
        day,
        new_count,
        rare,
        domain_hosts,
        edge_series,
        first_contact,
        domain_ips,
        edge_http,
    }))
}

// -- reduction / normalization counters -------------------------------------

/// Writes optional DNS reduction counters.
pub fn write_opt_dns_counts(e: &mut Encoder, c: Option<&DnsReductionCounts>) {
    match c {
        None => e.bool(false),
        Some(c) => {
            e.bool(true);
            e.usizev(c.records_all);
            e.usizev(c.records_a_only);
            e.usizev(c.domains_all);
            e.usizev(c.domains_after_internal_filter);
            e.usizev(c.domains_after_server_filter);
        }
    }
}

/// Reads optional DNS reduction counters.
pub fn read_opt_dns_counts(d: &mut Decoder<'_>) -> StoreResult<Option<DnsReductionCounts>> {
    if !d.bool()? {
        return Ok(None);
    }
    Ok(Some(DnsReductionCounts {
        records_all: d.usizev()?,
        records_a_only: d.usizev()?,
        domains_all: d.usizev()?,
        domains_after_internal_filter: d.usizev()?,
        domains_after_server_filter: d.usizev()?,
    }))
}

/// Writes optional proxy reduction counters.
pub fn write_opt_proxy_counts(e: &mut Encoder, c: Option<&ProxyReductionCounts>) {
    match c {
        None => e.bool(false),
        Some(c) => {
            e.bool(true);
            e.usizev(c.records_all);
            e.usizev(c.domains_all);
            e.usizev(c.domains_after_internal_filter);
            e.usizev(c.domains_after_server_filter);
        }
    }
}

/// Reads optional proxy reduction counters.
pub fn read_opt_proxy_counts(d: &mut Decoder<'_>) -> StoreResult<Option<ProxyReductionCounts>> {
    if !d.bool()? {
        return Ok(None);
    }
    Ok(Some(ProxyReductionCounts {
        records_all: d.usizev()?,
        domains_all: d.usizev()?,
        domains_after_internal_filter: d.usizev()?,
        domains_after_server_filter: d.usizev()?,
    }))
}

/// Writes optional normalization counters.
pub fn write_opt_norm_counts(e: &mut Encoder, c: Option<&NormalizationCounts>) {
    match c {
        None => e.bool(false),
        Some(c) => {
            e.bool(true);
            e.usizev(c.input);
            e.usizev(c.output);
            e.usizev(c.dropped_unresolvable);
            e.usizev(c.dropped_ip_literal);
        }
    }
}

/// Reads optional normalization counters.
pub fn read_opt_norm_counts(d: &mut Decoder<'_>) -> StoreResult<Option<NormalizationCounts>> {
    if !d.bool()? {
        return Ok(None);
    }
    Ok(Some(NormalizationCounts {
        input: d.usizev()?,
        output: d.usizev()?,
        dropped_unresolvable: d.usizev()?,
        dropped_ip_literal: d.usizev()?,
    }))
}

// -- dataset metadata -------------------------------------------------------

/// Writes the dataset metadata the engine was built over.
pub fn write_dataset_meta(e: &mut Encoder, meta: &DatasetMeta) {
    e.u32v(meta.n_hosts);
    e.usizev(meta.host_kinds.len());
    for kind in &meta.host_kinds {
        e.u8(match kind {
            HostKind::Workstation => 0,
            HostKind::Server => 1,
        });
    }
    e.usizev(meta.internal_suffixes.len());
    for s in &meta.internal_suffixes {
        e.str(s);
    }
    e.u32v(meta.bootstrap_days);
    e.u32v(meta.total_days);
}

/// Reads the dataset metadata.
pub fn read_dataset_meta(d: &mut Decoder<'_>) -> StoreResult<DatasetMeta> {
    let n_hosts = d.u32v()?;
    let n = d.seq_len(1)?;
    let mut host_kinds = Vec::with_capacity(n.min(64 * 1024));
    for _ in 0..n {
        host_kinds.push(match d.u8()? {
            0 => HostKind::Workstation,
            1 => HostKind::Server,
            b => return Err(StoreError::corrupt(format!("unknown host kind {b}"))),
        });
    }
    let n = d.seq_len(1)?;
    let mut internal_suffixes = Vec::with_capacity(n.min(64 * 1024));
    for _ in 0..n {
        internal_suffixes.push(d.str()?);
    }
    Ok(DatasetMeta {
        n_hosts,
        host_kinds,
        internal_suffixes,
        bootstrap_days: d.u32v()?,
        total_days: d.u32v()?,
    })
}

// -- models -----------------------------------------------------------------

/// Writes the beacon-timing detector parameters.
pub fn write_automation(e: &mut Encoder, det: &AutomationDetector) {
    e.varint(det.bin_width());
    e.f64(det.jt_threshold());
    e.usizev(det.min_connections());
    e.u8(match det.metric() {
        DistanceMetric::Jeffrey => 0,
        DistanceMetric::L1 => 1,
    });
}

/// Reads and validates the beacon-timing detector parameters.
pub fn read_automation(d: &mut Decoder<'_>) -> StoreResult<AutomationDetector> {
    let bin_width = d.varint()?;
    let jt = d.f64()?;
    let min_connections = d.usizev()?;
    let metric = match d.u8()? {
        0 => DistanceMetric::Jeffrey,
        1 => DistanceMetric::L1,
        b => return Err(StoreError::corrupt(format!("unknown distance metric {b}"))),
    };
    if !jt.is_finite() || jt < 0.0 {
        return Err(StoreError::corrupt("automation threshold must be finite and non-negative"));
    }
    if min_connections < 2 {
        return Err(StoreError::corrupt("automation min_connections must be at least 2"));
    }
    Ok(AutomationDetector::new(bin_width, jt, min_connections).with_metric(metric))
}

/// Writes a fitted regression model (names, coefficients, threshold).
pub fn write_regression_model(e: &mut Encoder, model: &RegressionModel) {
    let names: Vec<&str> = model.feature_names().collect();
    e.usizev(names.len());
    for name in names {
        e.str(name);
    }
    let fit = model.fit();
    e.usizev(fit.n_features());
    for i in 0..=fit.n_features() {
        // Intercept first, matching the fit's own layout.
        let (beta, se) = if i == 0 {
            (fit.intercept(), fit.intercept_std_error())
        } else {
            (fit.coefficient(i - 1), fit.std_error(i - 1))
        };
        e.f64(beta);
        e.f64(se);
    }
    e.f64(fit.r_squared());
    e.usizev(fit.n_samples());
    e.f64(model.threshold());
}

/// Reads and validates a fitted regression model.
pub fn read_regression_model(d: &mut Decoder<'_>) -> StoreResult<RegressionModel> {
    let n_names = d.seq_len(1)?;
    let mut names = Vec::with_capacity(n_names.min(64 * 1024));
    for _ in 0..n_names {
        names.push(d.str()?);
    }
    let n_features = d.usizev()?;
    if n_features != names.len() {
        return Err(StoreError::corrupt(format!(
            "regression model has {n_names} names but {n_features} features"
        )));
    }
    let mut beta = Vec::with_capacity(n_features + 1);
    let mut std_errors = Vec::with_capacity(n_features + 1);
    for _ in 0..=n_features {
        beta.push(d.f64()?);
        std_errors.push(d.f64()?);
    }
    let r_squared = d.f64()?;
    let n = d.usizev()?;
    let threshold = d.f64()?;
    let fit = Fit::from_parts(beta, std_errors, r_squared, n)
        .ok_or_else(|| StoreError::corrupt("regression fit parts are inconsistent"))?;
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    Ok(RegressionModel::new(&name_refs, fit, threshold))
}

/// Writes a fitted min-max feature scaler.
pub fn write_scaler(e: &mut Encoder, scaler: &FeatureScaler) {
    e.usizev(scaler.n_features());
    for i in 0..scaler.n_features() {
        e.f64(scaler.mins()[i]);
        e.f64(scaler.maxs()[i]);
    }
}

/// Reads a fitted min-max feature scaler.
pub fn read_scaler(d: &mut Decoder<'_>) -> StoreResult<FeatureScaler> {
    let n = d.seq_len(16)?;
    let mut mins = Vec::with_capacity(n.min(64 * 1024));
    let mut maxs = Vec::with_capacity(n.min(64 * 1024));
    for _ in 0..n {
        mins.push(d.f64()?);
        maxs.push(d.f64()?);
    }
    FeatureScaler::from_bounds(mins, maxs)
        .ok_or_else(|| StoreError::corrupt("feature scaler bounds are inconsistent"))
}

/// Writes an additive (LANL) similarity scorer.
pub fn write_additive(e: &mut Encoder, scorer: &AdditiveScorer) {
    e.u32v(scorer.conn_cap());
}

/// Reads and validates an additive similarity scorer.
pub fn read_additive(d: &mut Decoder<'_>) -> StoreResult<AdditiveScorer> {
    let cap = d.u32v()?;
    if cap == 0 {
        return Err(StoreError::corrupt("additive scorer connectivity cap must be positive"));
    }
    Ok(AdditiveScorer::new(cap))
}

// -- WHOIS ------------------------------------------------------------------

/// Writes the WHOIS registry (sorted by domain name for deterministic
/// bytes).
pub fn write_whois(e: &mut Encoder, whois: &WhoisRegistry) {
    let entries = whois.snapshot();
    e.usizev(entries.len());
    for (name, reg) in entries {
        e.str(&name);
        match reg {
            None => e.u8(0),
            Some(reg) => {
                e.u8(1);
                e.u32v(reg.created.index());
                e.u32v(reg.expires.index());
                e.u32v(reg.prior_age_days);
            }
        }
    }
}

/// Reads the WHOIS registry.
pub fn read_whois(d: &mut Decoder<'_>) -> StoreResult<WhoisRegistry> {
    let n = d.seq_len(2)?;
    let mut entries = Vec::with_capacity(n.min(64 * 1024));
    for _ in 0..n {
        let name = d.str()?;
        let reg = match d.u8()? {
            0 => None,
            1 => Some(Registration {
                created: Day::new(d.u32v()?),
                expires: Day::new(d.u32v()?),
                prior_age_days: d.u32v()?,
            }),
            b => return Err(StoreError::corrupt(format!("unknown whois entry tag {b}"))),
        };
        entries.push((name, reg));
    }
    Ok(WhoisRegistry::from_snapshot(entries))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::SectionTag;

    #[test]
    fn interner_roundtrips_including_unicode_and_empty() {
        let i = TypedInterner::<earlybird_logmodel::DomainTag>::new();
        for s in ["", "nbc.com", "çà.example", "🦀.rs", "a"] {
            i.intern(s);
        }
        let mut e = Encoder::new();
        write_interner_slice(&mut e, &i, 0);
        let bytes = e.into_bytes();
        let restored = TypedInterner::<earlybird_logmodel::DomainTag>::new();
        let mut d = Decoder::new(&bytes, SectionTag::Interners.name());
        read_interner_into(&mut d, &restored, "raw").unwrap();
        d.finish().unwrap();
        assert_eq!(restored.len(), i.len());
        for (k, s) in i.snapshot().iter().enumerate() {
            assert_eq!(&restored.resolve(Symbol::from_raw(k as u32)), s);
        }
    }

    #[test]
    fn interner_delta_requires_matching_watermark() {
        let i = TypedInterner::<earlybird_logmodel::DomainTag>::new();
        i.intern("a");
        i.intern("b");
        let mut e = Encoder::new();
        write_interner_slice(&mut e, &i, 1);
        let bytes = e.into_bytes();
        // Applying a delta that starts at 1 onto an empty interner fails.
        let fresh = TypedInterner::<earlybird_logmodel::DomainTag>::new();
        let mut d = Decoder::new(&bytes, "interners");
        assert!(matches!(
            read_interner_into(&mut d, &fresh, "raw"),
            Err(StoreError::Corrupt { .. })
        ));
        // Onto one holding "a" it extends cleanly.
        let fresh = TypedInterner::<earlybird_logmodel::DomainTag>::new();
        fresh.intern("a");
        let mut d = Decoder::new(&bytes, "interners");
        read_interner_into(&mut d, &fresh, "raw").unwrap();
        assert_eq!(fresh.len(), 2);
        assert_eq!(&*fresh.resolve(Symbol::from_raw(1)), "b");
    }

    #[test]
    fn host_mapper_roundtrips_and_rejects_duplicates() {
        let mut hosts = HostMapper::new();
        for b in [9u8, 3, 7] {
            hosts.host_for(Ipv4::new(10, 0, 0, b));
        }
        let mut e = Encoder::new();
        write_host_mapper(&mut e, &hosts, 0);
        let bytes = e.into_bytes();
        let mut restored = HostMapper::new();
        let mut d = Decoder::new(&bytes, "hosts");
        read_host_mapper_into(&mut d, &mut restored).unwrap();
        assert_eq!(restored.snapshot_ips(), hosts.snapshot_ips());

        // A duplicated address breaks sequential numbering: typed error.
        let mut e = Encoder::new();
        e.usizev(0);
        e.usizev(2);
        e.u32v(Ipv4::new(1, 1, 1, 1).to_bits());
        e.u32v(Ipv4::new(1, 1, 1, 1).to_bits());
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "hosts");
        let mut fresh = HostMapper::new();
        assert!(matches!(
            read_host_mapper_into(&mut d, &mut fresh),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn whois_roundtrips() {
        let mut whois = WhoisRegistry::new();
        whois.register("young.biz", Day::new(30), Day::new(400));
        whois.register_aged("old.com", 5_000, Day::new(900));
        whois.register_unparseable("odd.net");
        let mut e = Encoder::new();
        write_whois(&mut e, &whois);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "config");
        let restored = read_whois(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(restored.snapshot(), whois.snapshot());
        assert_eq!(
            restored.lookup("young.biz", Day::new(35)),
            whois.lookup("young.biz", Day::new(35))
        );
    }

    #[test]
    fn automation_validation_rejects_bad_parameters() {
        let mut e = Encoder::new();
        e.varint(10);
        e.f64(f64::NAN);
        e.usizev(4);
        e.u8(0);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes, "config");
        assert!(matches!(read_automation(&mut d), Err(StoreError::Corrupt { .. })));
    }
}
