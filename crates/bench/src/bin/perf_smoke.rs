//! Machine-readable perf smoke pass for CI: measures ingest throughput,
//! checkpoint/restore bandwidth, store-compaction bandwidth, and raw
//! backend put bandwidth on the benchmark-scale LANL world, and writes a
//! small JSON report (`BENCH_5.json` by default) that CI uploads as a
//! workflow artifact. The checked-in `ci/BENCH_5.json` is the baseline
//! (`ci/BENCH_4.json` is the pre-backend PR-4 reading, kept for the
//! trajectory); comparing artifacts across PRs gives the perf trend.
//!
//! Numbers are medians of a few short runs — a smoke reading to catch
//! collapses (10x regressions), not a calibrated benchmark; use
//! `cargo bench` for real measurements.
//!
//! Usage: `perf_smoke [output.json]`

use earlybird_engine::{
    compact_store, DayBatch, Engine, EngineBuilder, LifecycleConfig, LocalFsBackend, ObjectStore,
    StoreDir,
};
use earlybird_synthgen::lanl::LanlChallenge;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Median seconds of `runs` executions of `f`.
fn median_secs<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn fresh_engine(challenge: &LanlChallenge) -> Engine {
    EngineBuilder::lanl()
        .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
        .expect("valid config")
}

fn ingest_all(challenge: &LanlChallenge) -> (Engine, u64) {
    let mut engine = fresh_engine(challenge);
    let mut records = 0u64;
    for day in &challenge.dataset.days {
        records += day.queries.len() as u64;
        engine.ingest_day(DayBatch::Dns(day));
    }
    (engine, records)
}

fn main() {
    let out_path =
        std::env::args().nth(1).map(PathBuf::from).unwrap_or_else(|| "BENCH_5.json".into());
    let challenge = earlybird_bench::lanl_world();
    let total_records: u64 = challenge.dataset.days.iter().map(|d| d.queries.len() as u64).sum();

    // Ingest throughput: the full daily cycle over every day of the world.
    let ingest_secs = median_secs(3, || {
        let (engine, _) = ingest_all(&challenge);
        drop(engine);
    });
    let ingest_records_per_sec = total_records as f64 / ingest_secs;

    // Checkpoint / restore bandwidth over the fully loaded engine.
    let (mut engine, _) = ingest_all(&challenge);
    let mut snapshot = Vec::new();
    engine.checkpoint(&mut snapshot).expect("checkpoint succeeds");
    let snapshot_bytes = snapshot.len() as u64;
    let checkpoint_secs = median_secs(5, || {
        let mut out = Vec::with_capacity(snapshot.len());
        engine.checkpoint(&mut out).expect("checkpoint succeeds");
    });
    let restore_secs = median_secs(5, || {
        EngineBuilder::lanl().restore(&mut snapshot.as_slice()).expect("snapshot restores");
    });
    let mib = 1024.0 * 1024.0;
    let checkpoint_mb_per_sec = snapshot_bytes as f64 / mib / checkpoint_secs;
    let restore_mb_per_sec = snapshot_bytes as f64 / mib / restore_secs;

    // Compaction bandwidth: fold a bootstrap full block + 6 day segments
    // back into one full block (chain bytes in) — the same fixture the
    // criterion compaction bench uses.
    let master = std::env::temp_dir().join(format!("earlybird-perf-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&master);
    let chain_bytes = earlybird_bench::build_lanl_chain(&challenge, &master);
    let scratch = master.with_extension("scratch");
    let compaction_secs = median_secs(3, || {
        earlybird_bench::copy_store_dir(&master, &scratch);
        let mut dir = StoreDir::open(&scratch, LifecycleConfig::default()).expect("open copy");
        compact_store(&mut dir).expect("compaction succeeds");
    });
    let compaction_mb_per_sec = chain_bytes as f64 / mib / compaction_secs;
    let _ = std::fs::remove_dir_all(&master);
    let _ = std::fs::remove_dir_all(&scratch);

    // Raw backend put bandwidth: stage + finalize the full snapshot as one
    // visible-or-absent object through the local-filesystem backend — the
    // floor under every StoreDir commit.
    let put_root =
        std::env::temp_dir().join(format!("earlybird-perf-smoke-put-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&put_root);
    let backend = LocalFsBackend::new(&put_root).expect("create backend root");
    let backend_put_secs = median_secs(5, || {
        let mut upload = backend.put_atomic("bench.ebstore").expect("begin upload");
        upload.write_all(&snapshot).expect("stage snapshot");
        upload.finalize().expect("finalize upload");
    });
    let backend_put_mb_s = snapshot_bytes as f64 / mib / backend_put_secs;
    let _ = std::fs::remove_dir_all(&put_root);

    let json = format!(
        "{{\n  \"schema\": \"earlybird-perf-smoke-v2\",\n  \"suite\": \"lanl_small\",\n  \
         \"ingest_records\": {total_records},\n  \
         \"ingest_records_per_sec\": {ingest_records_per_sec:.0},\n  \
         \"snapshot_bytes\": {snapshot_bytes},\n  \
         \"checkpoint_mb_per_sec\": {checkpoint_mb_per_sec:.1},\n  \
         \"restore_mb_per_sec\": {restore_mb_per_sec:.1},\n  \
         \"compaction_chain_bytes\": {chain_bytes},\n  \
         \"compaction_mb_per_sec\": {compaction_mb_per_sec:.1},\n  \
         \"backend_put_mb_s\": {backend_put_mb_s:.1}\n}}\n"
    );
    if let Some(parent) = out_path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).expect("create report directory");
    }
    std::fs::write(&out_path, &json).expect("write perf report");
    println!("{json}");
    println!("perf smoke written to {}", out_path.display());
}
