//! Benchmarks of Algorithm 1 through the Engine facade: belief propagation
//! in both modes, plus the threshold-sweep ablation (how `T_s` changes work
//! done per day).

use criterion::{criterion_group, criterion_main, Criterion};
use earlybird_engine::Investigation;
use earlybird_eval::lanl::LanlRun;
use earlybird_synthgen::lanl::ChallengeCase;

fn bench_bp_modes(c: &mut Criterion) {
    let challenge = earlybird_bench::lanl_world();
    let run = LanlRun::new(&challenge);
    let case3 = challenge
        .campaigns
        .iter()
        .find(|k| k.case == ChallengeCase::Three)
        .expect("schedule has case 3");
    let case4 = challenge
        .campaigns
        .iter()
        .find(|k| k.case == ChallengeCase::Four)
        .expect("schedule has case 4");
    let engine = run.engine();

    let mut group = c.benchmark_group("belief_propagation");
    group.bench_function("soc_hints_case3_day", |b| {
        b.iter(|| {
            engine
                .investigate(
                    case3.day,
                    Investigation::from_hint_hosts(case3.hint_hosts.iter().copied()),
                )
                .expect("retained day")
        })
    });
    group.bench_function("no_hint_case4_day_incl_cc_pass", |b| {
        b.iter(|| engine.investigate(case4.day, Investigation::no_hint()).expect("retained day"))
    });
    group.finish();
}

fn bench_bp_threshold_sweep(c: &mut Criterion) {
    // Ablation: lower T_s admits more expansion iterations per run.
    let challenge = earlybird_bench::lanl_world();
    let run = LanlRun::new(&challenge);
    let case3 = challenge
        .campaigns
        .iter()
        .find(|k| k.case == ChallengeCase::Three)
        .expect("schedule has case 3");
    let engine = run.engine();

    let mut group = c.benchmark_group("bp_threshold_sweep");
    for ts in [0.15f64, 0.25, 0.5] {
        group.bench_function(format!("ts_{ts}"), |b| {
            b.iter(|| {
                engine
                    .investigate(
                        case3.day,
                        Investigation::from_hint_hosts(case3.hint_hosts.iter().copied())
                            .sim_threshold(ts),
                    )
                    .expect("retained day")
            })
        });
    }
    group.finish();
}

fn bench_cc_daily_pass(c: &mut Criterion) {
    // The daily C&C sweep over all rare domains (step 3 of operation).
    let challenge = earlybird_bench::lanl_world();
    let run = LanlRun::new(&challenge);
    let case4 = challenge
        .campaigns
        .iter()
        .find(|k| k.case == ChallengeCase::Four)
        .expect("schedule has case 4");
    let engine = run.engine();
    c.bench_function("cc_score_all_rare_domains", |b| {
        b.iter(|| engine.cc_scores(case4.day).expect("retained day"))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bp_modes, bench_bp_threshold_sweep, bench_cc_daily_pass
}
criterion_main!(benches);
