//! The LANL challenge harness (§V): drives the unified [`Engine`] facade
//! over the two-month synthetic DNS dataset, solves all four challenge
//! cases, and regenerates Table II, Table III, Fig. 2, Fig. 3 and Fig. 4.

use crate::metrics::{DetectionTally, Rates};
use earlybird_core::BpOutcome;
use earlybird_engine::{DayBatch, Engine, EngineBuilder, Investigation};
use earlybird_logmodel::{Day, Timestamp};
use earlybird_synthgen::lanl::{ChallengeCase, LanlCampaign, LanlChallenge};
use earlybird_timing::AutomationDetector;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashSet};

/// One row of the Fig. 2 reproduction: distinct domains surviving each
/// reduction step on one day.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig2Row {
    /// March day-of-month.
    pub march_day: u32,
    /// Distinct folded domains before filtering ("All").
    pub all: usize,
    /// After dropping internal queries.
    pub filter_internal: usize,
    /// After additionally dropping internal-server sources.
    pub filter_servers: usize,
    /// New destinations (not in the history).
    pub new_destinations: usize,
    /// Rare destinations (new + unpopular).
    pub rare_destinations: usize,
}

/// One row of the Table II reproduction.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Table2Row {
    /// Histogram bin width `W` in seconds.
    pub bin_width: u64,
    /// Jeffrey divergence threshold `J_T`.
    pub jt: f64,
    /// Labeled-malicious (host, domain) pairs detected automated, training
    /// campaigns.
    pub malicious_pairs_training: usize,
    /// Same, testing campaigns.
    pub malicious_pairs_testing: usize,
    /// All automated pairs over the testing days.
    pub all_pairs_testing: usize,
}

/// The Fig. 3 data: sorted first-visit gaps for the two populations.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Fig3Data {
    /// Gaps (seconds) between first visits to two malicious domains by the
    /// same compromised host.
    pub malicious_malicious: Vec<f64>,
    /// Gaps between a malicious and a rare legitimate domain.
    pub malicious_legitimate: Vec<f64>,
}

impl Fig3Data {
    /// Fraction of gaps at or below `threshold` seconds in a population.
    pub fn fraction_below(pop: &[f64], threshold: f64) -> f64 {
        if pop.is_empty() {
            return 0.0;
        }
        pop.iter().filter(|&&x| x <= threshold).count() as f64 / pop.len() as f64
    }
}

/// Per-campaign detection outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CampaignResult {
    /// The campaign's March day.
    pub march_day: u32,
    /// Hint case.
    pub case: ChallengeCase,
    /// Whether the campaign is in the paper's training split.
    pub training: bool,
    /// Correctly detected malicious domains.
    pub true_positives: usize,
    /// Detected domains outside the answer key.
    pub false_positives: usize,
    /// Answer-key domains missed.
    pub false_negatives: usize,
    /// Detected domain names.
    pub detected: Vec<String>,
    /// The raw belief-propagation outcome (iteration traces included).
    pub outcome: BpOutcome,
}

/// Table III: per-case tallies split into training/testing.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Table3 {
    /// `(case number, training tally, testing tally)` rows.
    pub rows: Vec<(u32, DetectionTally, DetectionTally)>,
    /// Overall training tally.
    pub training_total: DetectionTally,
    /// Overall testing tally.
    pub testing_total: DetectionTally,
}

impl Table3 {
    /// Overall tally across both splits.
    pub fn total(&self) -> DetectionTally {
        let mut t = self.training_total;
        t.add(self.testing_total);
        t
    }

    /// Overall rates (the paper's headline TDR/FDR/FNR).
    pub fn overall_rates(&self) -> Rates {
        self.total().rates()
    }
}

/// A completed engine run over the challenge dataset: February bootstraps
/// the profiles, every March day is retained for investigation.
pub struct LanlRun<'a> {
    challenge: &'a LanlChallenge,
    engine: Engine,
}

impl<'a> LanlRun<'a> {
    /// Streams the whole challenge through one [`Engine`].
    pub fn new(challenge: &'a LanlChallenge) -> Self {
        let mut engine = EngineBuilder::lanl()
            .build(
                std::sync::Arc::clone(&challenge.dataset.domains),
                challenge.dataset.meta.clone(),
            )
            .expect("LANL engine config is valid");
        for day_log in &challenge.dataset.days {
            engine.ingest_day(DayBatch::Dns(day_log));
        }
        LanlRun { challenge, engine }
    }

    /// The engine holding the processed days.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// The underlying challenge.
    pub fn challenge(&self) -> &LanlChallenge {
        self.challenge
    }

    /// Fig. 2: reduction series for March days `from..=to`.
    pub fn figure2(&self, from: u32, to: u32) -> Vec<Fig2Row> {
        let mut rows = Vec::new();
        for m in from..=to {
            let day = self.challenge.config.march_day(m);
            let Some(report) = self.engine.report(day) else { continue };
            rows.push(Fig2Row {
                march_day: m,
                all: report.stages.domains_all,
                filter_internal: report.stages.domains_after_internal_filter,
                filter_servers: report.stages.domains_after_server_filter,
                new_destinations: report.stages.new_destinations,
                rare_destinations: report.stages.rare_destinations,
            });
        }
        rows
    }

    /// Table II: the `(W, J_T)` sweep. `configs` lists the pairs to
    /// evaluate (the paper's grid is
    /// `{5} x {0, .034, .06, .35}` ∪ `{10, 20} x {0, .034, .06}`).
    pub fn table2(&self, configs: &[(u64, f64)]) -> Vec<Table2Row> {
        // Ground-truth beacon pairs: (victim, C&C domain) per campaign.
        let mut truth_train: HashSet<(u32, String)> = HashSet::new();
        let mut truth_test: HashSet<(u32, String)> = HashSet::new();
        for c in &self.challenge.campaigns {
            let set = if c.is_training() { &mut truth_train } else { &mut truth_test };
            for &v in &c.plan.victims {
                set.insert((v.index(), c.plan.cc_domain().to_owned()));
            }
        }
        let testing_days: BTreeSet<Day> = self.challenge.testing().map(|c| c.day).collect();

        configs
            .iter()
            .map(|&(w, jt)| {
                let automation = AutomationDetector::new(w, jt, 4);
                let mut row = Table2Row {
                    bin_width: w,
                    jt,
                    malicious_pairs_training: 0,
                    malicious_pairs_testing: 0,
                    all_pairs_testing: 0,
                };
                for day in self.engine.days() {
                    let pairs =
                        self.engine.automated_pairs_sweep(day, &automation).expect("retained day");
                    let in_testing = testing_days.contains(&day);
                    for (h, d, _) in pairs {
                        let name = self.engine.resolve(d).to_string();
                        let key = (h.index(), name);
                        if truth_train.contains(&key) {
                            row.malicious_pairs_training += 1;
                        } else if truth_test.contains(&key) {
                            row.malicious_pairs_testing += 1;
                        }
                        if in_testing {
                            row.all_pairs_testing += 1;
                        }
                    }
                }
                row
            })
            .collect()
    }

    /// Fig. 3: first-visit gap populations over the training campaigns.
    pub fn figure3(&self) -> Fig3Data {
        let mut data = Fig3Data::default();
        for c in self.challenge.training() {
            let Some(index) = self.engine.day_index(c.day) else { continue };
            let folded = self.engine.folded();
            let mal_syms: Vec<_> =
                c.answer_domains().iter().filter_map(|n| folded.get(n)).collect();
            for &victim in &c.plan.victims {
                // First-contact times to malicious domains.
                let mal_firsts: Vec<Timestamp> =
                    mal_syms.iter().filter_map(|&m| index.first_contact(victim, m)).collect();
                for (i, &a) in mal_firsts.iter().enumerate() {
                    for &b in &mal_firsts[i + 1..] {
                        data.malicious_malicious.push(a.abs_diff(b) as f64);
                    }
                }
                // Gaps to the victim's rare legitimate domains.
                if let Some(rdoms) = index.rare_domains_of(victim) {
                    for &r in rdoms {
                        if mal_syms.contains(&r) {
                            continue;
                        }
                        let Some(t_leg) = index.first_contact(victim, r) else { continue };
                        for &a in &mal_firsts {
                            data.malicious_legitimate.push(a.abs_diff(t_leg) as f64);
                        }
                    }
                }
            }
        }
        data.malicious_malicious.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        data.malicious_legitimate.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        data
    }

    /// Solves one campaign with the paper's per-case protocol and scores
    /// the result against the answer key.
    pub fn evaluate_campaign(&self, campaign: &LanlCampaign) -> CampaignResult {
        let investigation = match campaign.case {
            // No hints: the daily C&C pass seeds belief propagation, and
            // the C&C domains count as detections.
            ChallengeCase::Four => Investigation::no_hint(),
            _ => Investigation::from_hint_hosts(campaign.hint_hosts.iter().copied()),
        };
        let report =
            self.engine.investigate(campaign.day, investigation).expect("campaign day processed");

        let detected: Vec<String> = report.reported_names();
        let answer: BTreeSet<&str> = campaign.answer_domains().into_iter().collect();
        let detected_set: BTreeSet<&str> = detected.iter().map(String::as_str).collect();
        let true_positives = detected_set.iter().filter(|d| answer.contains(*d)).count();
        let false_positives = detected_set.len() - true_positives;
        let false_negatives = answer.iter().filter(|d| !detected_set.contains(*d)).count();

        CampaignResult {
            march_day: campaign.march_day,
            case: campaign.case,
            training: campaign.is_training(),
            true_positives,
            false_positives,
            false_negatives,
            detected,
            outcome: report.outcome,
        }
    }

    /// Solves every campaign and aggregates Table III.
    pub fn table3(&self) -> (Table3, Vec<CampaignResult>) {
        let results: Vec<CampaignResult> =
            self.challenge.campaigns.iter().map(|c| self.evaluate_campaign(c)).collect();
        let mut table = Table3::default();
        for case_no in 1..=4u32 {
            let mut train = DetectionTally::default();
            let mut test = DetectionTally::default();
            for r in results.iter().filter(|r| r.case.number() == case_no) {
                let tally = DetectionTally {
                    true_positives: r.true_positives,
                    false_positives: r.false_positives,
                    false_negatives: r.false_negatives,
                    new_discoveries: 0,
                };
                if r.training {
                    train.add(tally);
                } else {
                    test.add(tally);
                }
            }
            table.training_total.add(train);
            table.testing_total.add(test);
            table.rows.push((case_no, train, test));
        }
        (table, results)
    }

    /// Fig. 4: the belief-propagation trace for the case-3 campaign on the
    /// given March day (3/19 in the paper).
    pub fn figure4(&self, march_day: u32) -> Option<CampaignResult> {
        let campaign = self
            .challenge
            .campaigns
            .iter()
            .find(|c| c.march_day == march_day && c.case == ChallengeCase::Three)?;
        Some(self.evaluate_campaign(campaign))
    }
}

/// The paper's Table II parameter grid.
pub fn table2_grid() -> Vec<(u64, f64)> {
    vec![
        (5, 0.0),
        (5, 0.034),
        (5, 0.06),
        (5, 0.35),
        (10, 0.0),
        (10, 0.034),
        (10, 0.06),
        (20, 0.0),
        (20, 0.034),
        (20, 0.06),
    ]
}
