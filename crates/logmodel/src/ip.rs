//! IPv4 addresses and the /16 and /24 subnet views used by the paper's
//! IP-space-proximity features (§IV-D).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An IPv4 address.
///
/// # Example
///
/// ```
/// use earlybird_logmodel::Ipv4;
/// let ip: Ipv4 = "191.146.166.145".parse()?;
/// assert_eq!(ip.octets(), [191, 146, 166, 145]);
/// assert_eq!(ip.subnet24().to_string(), "191.146.166.0/24");
/// # Ok::<(), earlybird_logmodel::ParseIpv4Error>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Ipv4(u32);

impl Ipv4 {
    /// Creates an address from its four octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4(u32::from_be_bytes([a, b, c, d]))
    }

    /// Creates an address from a big-endian `u32`.
    pub const fn from_bits(bits: u32) -> Self {
        Ipv4(bits)
    }

    /// The address as a big-endian `u32`.
    pub const fn to_bits(self) -> u32 {
        self.0
    }

    /// The four octets, most significant first.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// The enclosing /24 subnet.
    pub const fn subnet24(self) -> Subnet24 {
        Subnet24(self.0 >> 8)
    }

    /// The enclosing /16 subnet.
    pub const fn subnet16(self) -> Subnet16 {
        Subnet16(self.0 >> 16)
    }

    /// Whether the address lies in RFC 1918 private space (the simulators use
    /// 10/8 for internal hosts).
    pub fn is_private(self) -> bool {
        let [a, b, ..] = self.octets();
        a == 10 || (a == 172 && (16..=31).contains(&b)) || (a == 192 && b == 168)
    }
}

impl fmt::Debug for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Ipv4({})", self)
    }
}

impl fmt::Display for Ipv4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

/// Error returned when parsing an [`Ipv4`] from text fails.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseIpv4Error {
    text: String,
}

impl fmt::Display for ParseIpv4Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid IPv4 address syntax: {:?}", self.text)
    }
}

impl std::error::Error for ParseIpv4Error {}

impl FromStr for Ipv4 {
    type Err = ParseIpv4Error;

    /// Bytewise dotted-quad parse: a single left-to-right pass with no
    /// `split` iterator and no `str::parse` round trip (this runs twice per
    /// DNS line on the ingest hot path). Accepts exactly the grammar the
    /// interchange format always accepted: four dot-separated runs of one
    /// to three ASCII digits, each ≤ 255 (leading zeros allowed).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let err = || ParseIpv4Error { text: s.to_owned() };
        let mut octets = [0u8; 4];
        let mut slot = 0usize;
        let mut value = 0u32;
        let mut digits = 0u8;
        for &b in s.as_bytes() {
            if b == b'.' {
                if digits == 0 || slot == 3 {
                    return Err(err());
                }
                octets[slot] = value as u8;
                slot += 1;
                value = 0;
                digits = 0;
            } else {
                let d = b.wrapping_sub(b'0');
                if d > 9 || digits == 3 {
                    return Err(err());
                }
                value = value * 10 + u32::from(d);
                if value > 255 {
                    return Err(err());
                }
                digits += 1;
            }
        }
        if digits == 0 || slot != 3 {
            return Err(err());
        }
        octets[3] = value as u8;
        let [a, b, c, d] = octets;
        Ok(Ipv4::new(a, b, c, d))
    }
}

/// A /24 subnet (first three octets).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Subnet24(u32);

impl fmt::Display for Subnet24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bits = self.0 << 8;
        write!(f, "{}/24", Ipv4::from_bits(bits))
    }
}

/// A /16 subnet (first two octets).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct Subnet16(u32);

impl fmt::Display for Subnet16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let bits = self.0 << 16;
        write!(f, "{}/16", Ipv4::from_bits(bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octet_roundtrip() {
        let ip = Ipv4::new(74, 92, 144, 170);
        assert_eq!(ip.octets(), [74, 92, 144, 170]);
        assert_eq!(ip.to_string(), "74.92.144.170");
    }

    #[test]
    fn parse_valid() {
        let ip: Ipv4 = "8.8.4.4".parse().unwrap();
        assert_eq!(ip, Ipv4::new(8, 8, 4, 4));
    }

    #[test]
    fn parse_rejects_garbage() {
        for bad in [
            "",
            "1.2.3",
            "1.2.3.4.5",
            "1.2.3.256",
            "a.b.c.d",
            "1..2.3",
            "01x.2.3.4",
            ".1.2.3.4",
            "1.2.3.4.",
            "1.2.3.0009",
            "+1.2.3.4",
            " 1.2.3.4",
            "1.2.3.4 ",
            "1.2.3.-4",
        ] {
            assert!(bad.parse::<Ipv4>().is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn parse_accepts_leading_zeros() {
        // The interchange format has always accepted zero-padded octets.
        assert_eq!("007.010.000.255".parse::<Ipv4>().unwrap(), Ipv4::new(7, 10, 0, 255));
    }

    #[test]
    fn subnets_share_prefix() {
        let a = Ipv4::new(191, 146, 166, 145);
        let b = Ipv4::new(191, 146, 166, 31);
        let c = Ipv4::new(191, 146, 224, 111);
        assert_eq!(a.subnet24(), b.subnet24());
        assert_ne!(a.subnet24(), c.subnet24());
        assert_eq!(a.subnet16(), c.subnet16());
        assert_eq!(a.subnet24().to_string(), "191.146.166.0/24");
        assert_eq!(a.subnet16().to_string(), "191.146.0.0/16");
    }

    #[test]
    fn private_space_detection() {
        assert!(Ipv4::new(10, 1, 2, 3).is_private());
        assert!(Ipv4::new(172, 20, 0, 1).is_private());
        assert!(Ipv4::new(192, 168, 1, 1).is_private());
        assert!(!Ipv4::new(8, 8, 8, 8).is_private());
        assert!(!Ipv4::new(172, 15, 0, 1).is_private());
    }

    #[test]
    fn parse_display_roundtrip_property() {
        // Light-weight deterministic sweep; the proptest suite in the
        // workspace integration tests covers the full space.
        for bits in [0u32, 1, 0xFFFF_FFFF, 0x0A00_0001, 0xC0A8_0101] {
            let ip = Ipv4::from_bits(bits);
            let back: Ipv4 = ip.to_string().parse().unwrap();
            assert_eq!(back, ip);
        }
    }
}
