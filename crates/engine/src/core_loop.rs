//! The engine itself: state, the daily ingest cycle, and investigations.

use crate::alert::{Alert, AlertSink, Verdict};
use crate::batch::DayBatch;
use crate::builder::{EngineConfig, EngineError};
use crate::ingest::IngestSource;
use crate::metrics::EngineMetrics;
use crate::report::{CcCandidate, DayReport, InvestigationReport};
use earlybird_core::{
    belief_propagation, CcDetector, DailyPipeline, DayContext, DayProduct, Seeds,
};
use earlybird_logmodel::{
    fold_domain, DatasetMeta, Day, DomainInterner, DomainSym, HostId, HostMapper, PathInterner,
    UaInterner,
};
use earlybird_obs::MetricsRegistry;
use earlybird_pipeline::{DayIndex, DomainHistory, UaHistory};
use earlybird_timing::{AutomationDetector, AutomationEvidence};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Seed selection for an [`Investigation`].
#[derive(Clone, Debug)]
pub enum SeedSpec {
    /// SOC hint hosts (LANL cases 1–3).
    Hosts(Vec<HostId>),
    /// Seed domains, already folded.
    Domains(Vec<DomainSym>),
    /// Seed domain names (folded by the engine; names absent from the day
    /// are harmless).
    Names(Vec<String>),
    /// The day's C&C detections under the engine's current model (no-hint
    /// mode).
    TodaysDetections,
}

/// A belief-propagation request against one retained day.
#[derive(Clone, Debug)]
pub struct Investigation {
    seeds: SeedSpec,
    sim_threshold: Option<f64>,
    count_seeds: bool,
}

impl Investigation {
    /// SOC-hints mode from known compromised hosts; hints are not
    /// re-counted as detections.
    pub fn from_hint_hosts(hosts: impl IntoIterator<Item = HostId>) -> Self {
        Investigation {
            seeds: SeedSpec::Hosts(hosts.into_iter().collect()),
            sim_threshold: None,
            count_seeds: false,
        }
    }

    /// SOC-hints mode from seed domains (IOC symbols); seeds are not
    /// re-counted as detections.
    pub fn from_seed_domains(domains: impl IntoIterator<Item = DomainSym>) -> Self {
        Investigation {
            seeds: SeedSpec::Domains(domains.into_iter().collect()),
            sim_threshold: None,
            count_seeds: false,
        }
    }

    /// SOC-hints mode from seed domain names.
    pub fn from_seed_names<I: IntoIterator<Item = S>, S: Into<String>>(names: I) -> Self {
        Investigation {
            seeds: SeedSpec::Names(names.into_iter().map(Into::into).collect()),
            sim_threshold: None,
            count_seeds: false,
        }
    }

    /// No-hint mode: today's C&C detections seed the expansion and count
    /// as detections themselves.
    pub fn no_hint() -> Self {
        Investigation { seeds: SeedSpec::TodaysDetections, sim_threshold: None, count_seeds: true }
    }

    /// Overrides the similarity threshold `T_s` for this run only (the SOC
    /// capacity knob of §VI).
    pub fn sim_threshold(mut self, threshold: f64) -> Self {
        self.sim_threshold = Some(threshold);
        self
    }

    /// Overrides whether seeds count as detections.
    pub fn count_seeds(mut self, count: bool) -> Self {
        self.count_seeds = count;
        self
    }
}

/// The unified streaming engine: feed daily [`DayBatch`]es (or stream a day
/// chunk by chunk through [`Engine::begin_day`]), receive typed
/// [`DayReport`]s and [`Alert`]s; see the crate docs for the full tour.
pub struct Engine {
    pub(crate) cfg: EngineConfig,
    pub(crate) meta: DatasetMeta,
    pub(crate) pipeline: DailyPipeline,
    /// Retained operation-day products. `Arc`-shared so a frozen
    /// `EngineSnapshot` can carry the same immutable products a background
    /// checkpoint serializes while ingestion keeps inserting new days.
    pub(crate) products: BTreeMap<Day, Arc<DayProduct>>,
    pub(crate) reports: BTreeMap<Day, DayReport>,
    /// Attached sinks, each tagged with its stable attachment-order id so
    /// failures are attributed correctly even after earlier detachments.
    pub(crate) sinks: Mutex<Vec<(usize, Box<dyn AlertSink + Send>)>>,
    pub(crate) sequence: AtomicU64,
    /// Typed errors from sinks that panicked mid-emit and were detached;
    /// drained by [`Engine::take_sink_errors`].
    pub(crate) sink_errors: Mutex<Vec<EngineError>>,
    /// Watermarks of the state already persisted by `checkpoint` /
    /// `checkpoint_day` (see the `persist` module). Behind its own lock so
    /// checkpoints run on `&self`: a snapshot in flight never blocks the
    /// read paths (reports / alerts / investigate) of a shared engine.
    pub(crate) persist_cursor: Mutex<crate::persist::PersistCursor>,
    pub(crate) soc_seed_syms: Vec<DomainSym>,
    /// Interner for user agents parsed from raw proxy log lines.
    pub(crate) uas: Arc<UaInterner>,
    /// Interner for URL paths parsed from raw proxy log lines.
    pub(crate) paths: Arc<PathInterner>,
    /// Stable host-id assignment for raw DNS log lines, shared across days.
    pub(crate) line_hosts: HostMapper,
    /// Pooled parse buffers for the raw-line ingest path (transient).
    pub(crate) scratch: crate::ingest::ScratchPool,
    /// Memoized store encodings of sealed day products, keyed by day. A
    /// product is immutable once inserted, so its bytes are computed on
    /// first checkpoint and spliced verbatim into every later block;
    /// entries are dropped when a day's product is replaced or evicted.
    /// Behind a lock because checkpoints run on `&self`, and `Arc`-shared
    /// so frozen snapshots populate the same cache from their background
    /// write (insert-only for immutable products, so the race is benign).
    pub(crate) product_encodings:
        Arc<Mutex<std::collections::BTreeMap<Day, std::sync::Arc<Vec<u8>>>>>,
    /// Cached handles into the attached metrics registry (see
    /// [`crate::EngineBuilder::metrics`]); pure side-band observability,
    /// never persisted, never consulted by detection.
    pub(crate) metrics: EngineMetrics,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("days_retained", &self.products.len())
            .field("parallelism", &self.cfg.parallelism)
            .finish()
    }
}

impl Engine {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        cfg: EngineConfig,
        sinks: Vec<Box<dyn AlertSink + Send>>,
        raw: Arc<DomainInterner>,
        meta: DatasetMeta,
        uas: Option<Arc<UaInterner>>,
        paths: Option<Arc<PathInterner>>,
        metrics: EngineMetrics,
    ) -> Self {
        let pipeline = DailyPipeline::new(raw, cfg.pipeline);
        let soc_seed_syms = cfg.soc_seed_domains.iter().map(|n| pipeline.intern_seed(n)).collect();
        let sinks = sinks.into_iter().enumerate().collect();
        Engine {
            cfg,
            meta,
            pipeline,
            products: BTreeMap::new(),
            reports: BTreeMap::new(),
            sinks: Mutex::new(sinks),
            sequence: AtomicU64::new(0),
            sink_errors: Mutex::new(Vec::new()),
            persist_cursor: Mutex::new(crate::persist::PersistCursor::default()),
            soc_seed_syms,
            uas: uas.unwrap_or_default(),
            paths: paths.unwrap_or_default(),
            line_hosts: HostMapper::new(),
            scratch: crate::ingest::ScratchPool::default(),
            product_encodings: Arc::new(Mutex::new(std::collections::BTreeMap::new())),
            metrics,
        }
    }

    /// Rebuilds an engine from restored state — the snapshot-restore
    /// constructor used by `EngineBuilder::restore_stream`.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_restored(
        cfg: EngineConfig,
        sinks: Vec<Box<dyn AlertSink + Send>>,
        meta: DatasetMeta,
        pipeline: DailyPipeline,
        uas: Arc<UaInterner>,
        paths: Arc<PathInterner>,
        line_hosts: HostMapper,
        metrics: EngineMetrics,
    ) -> Self {
        // SOC seed symbols are re-interned *after* the snapshot contents
        // are applied (`Engine::reintern_soc_seeds`): interning into the
        // still-empty folded namespace here would shift restored numbering.
        let sinks = sinks.into_iter().enumerate().collect();
        Engine {
            cfg,
            meta,
            pipeline,
            products: BTreeMap::new(),
            reports: BTreeMap::new(),
            sinks: Mutex::new(sinks),
            sequence: AtomicU64::new(0),
            sink_errors: Mutex::new(Vec::new()),
            persist_cursor: Mutex::new(crate::persist::PersistCursor::default()),
            soc_seed_syms: Vec::new(),
            uas,
            paths,
            line_hosts,
            scratch: crate::ingest::ScratchPool::default(),
            product_encodings: Arc::new(Mutex::new(std::collections::BTreeMap::new())),
            metrics,
        }
    }

    // -- accessors ---------------------------------------------------------

    /// The validated configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// The dataset metadata the engine was built over.
    pub fn meta(&self) -> &DatasetMeta {
        &self.meta
    }

    /// The metrics registry this engine records into — the one attached
    /// via [`crate::EngineBuilder::metrics`], or a private enabled
    /// registry otherwise. Snapshot it (or render it) at any time without
    /// stopping ingestion.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        self.metrics.registry()
    }

    /// First day treated as an operation (detection) day.
    pub fn bootstrap_days(&self) -> u32 {
        self.cfg.bootstrap_days.unwrap_or(self.meta.bootstrap_days)
    }

    /// Retained operation days.
    ///
    /// **Ordering guarantee:** days are yielded strictly ascending by day
    /// index, regardless of ingestion order. Callers may rely on this (it
    /// is part of the API, not an accident of the underlying map).
    pub fn days(&self) -> impl Iterator<Item = Day> + '_ {
        self.products.keys().copied()
    }

    /// The stored report for an ingested day (bootstrap days included).
    ///
    /// Stored reports carry the per-stage counters only; the heavy
    /// payloads (scored candidates, alerts, BP traces) live in the
    /// [`DayReport`] returned by [`Engine::ingest_day`] and are not
    /// retained. Use [`Engine::cc_scores`] to recompute candidates for a
    /// retained day.
    pub fn report(&self, day: Day) -> Option<&DayReport> {
        self.reports.get(&day)
    }

    /// All stored (counters-only) reports.
    ///
    /// **Ordering guarantee:** reports are yielded strictly ascending by
    /// day index, regardless of ingestion order — the same documented
    /// guarantee as [`Engine::days`].
    pub fn reports(&self) -> impl Iterator<Item = &DayReport> {
        self.reports.values()
    }

    /// The sequence number the next emitted alert will carry. Survives
    /// checkpoint/restore, so alert cursors handed to consumers stay
    /// monotone across restarts even though sinks start over empty.
    pub fn next_alert_sequence(&self) -> u64 {
        self.sequence.load(std::sync::atomic::Ordering::SeqCst)
    }

    /// Drains the typed errors from alert sinks that panicked mid-emit.
    ///
    /// A panicking sink is detached (so one faulty sink cannot poison the
    /// registry or abort a daily cycle) and its panic is recorded as
    /// [`EngineError::SinkPanicked`]; the day's report counts the failures
    /// in `stages.sink_failures`.
    pub fn take_sink_errors(&self) -> Vec<EngineError> {
        std::mem::take(
            &mut *self.sink_errors.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
        )
    }

    /// The contact index of a retained operation day.
    pub fn day_index(&self, day: Day) -> Option<&DayIndex> {
        self.products.get(&day).map(|p| &p.index)
    }

    /// The detector-facing context of a retained operation day.
    pub fn context(&self, day: Day) -> Option<DayContext<'_>> {
        self.products.get(&day).map(|p| p.context(self.cfg.whois.as_ref(), self.cfg.whois_defaults))
    }

    /// The folded-name interner shared with every retained day.
    pub fn folded(&self) -> &Arc<DomainInterner> {
        self.pipeline.folded_interner()
    }

    /// Resolves a folded domain symbol to its name.
    pub fn resolve(&self, domain: DomainSym) -> Arc<str> {
        self.pipeline.folded_interner().resolve(domain)
    }

    /// Interns a domain name into the folded namespace (for seeds).
    pub fn intern_domain(&self, name: &str) -> DomainSym {
        self.pipeline.intern_seed(name)
    }

    /// The cross-day destination history (profiles).
    pub fn history(&self) -> &DomainHistory {
        self.pipeline.history()
    }

    /// The cross-day user-agent history.
    pub fn ua_history(&self) -> &UaHistory {
        self.pipeline.ua_history()
    }

    /// The `(DomAge, DomValidity)` defaults currently in force.
    pub fn whois_defaults(&self) -> (f64, f64) {
        self.cfg.whois_defaults
    }

    /// The user-agent interner used when parsing raw proxy log lines
    /// (dataset-driven callers can install their own via
    /// [`crate::EngineBuilder::proxy_interners`]).
    pub fn ua_interner(&self) -> &Arc<UaInterner> {
        &self.uas
    }

    /// The URL-path interner used when parsing raw proxy log lines.
    pub fn path_interner(&self) -> &Arc<PathInterner> {
        &self.paths
    }

    pub(crate) fn set_whois_defaults(&mut self, defaults: (f64, f64)) {
        self.cfg.whois_defaults = defaults;
    }

    pub(crate) fn set_models(
        &mut self,
        cc_model: earlybird_core::CcModel,
        sim: earlybird_core::SimScorer,
    ) {
        self.cfg.cc_model = cc_model;
        self.cfg.sim = sim;
    }

    pub(crate) fn operation_products(&self) -> &BTreeMap<Day, Arc<DayProduct>> {
        &self.products
    }

    /// Drops the memoized store encoding for `day`, if any. Must be called
    /// whenever a day's product is (re)inserted so a later checkpoint never
    /// splices stale bytes.
    pub(crate) fn invalidate_product_encoding(&mut self, day: Day) {
        self.product_encodings.lock().expect("product encoding cache poisoned").remove(&day);
    }

    /// Evicts the oldest retained contact indexes until at most `keep`
    /// remain (their counters-only reports stay). Returns how many days
    /// were pruned — the retention-GC step of store compaction.
    pub(crate) fn prune_retained(&mut self, keep: usize) -> usize {
        let mut pruned = 0;
        while self.products.len() > keep {
            self.products.pop_first();
            pruned += 1;
        }
        pruned
    }

    fn detector(&self) -> CcDetector {
        CcDetector::new(self.cfg.automation, self.cfg.cc_model.clone())
    }

    // -- the daily cycle ---------------------------------------------------

    /// Ingests one day: bootstrap days update the profiles only; operation
    /// days run the full reduce → profile → rare-sieve → C&C →
    /// (optional) belief-propagation cycle, emit alerts, and are retained
    /// for later [`Engine::investigate`] calls.
    ///
    /// This is a thin wrapper over the streaming path: the whole batch is
    /// pushed through [`Engine::begin_day`] as one span (which the ingest
    /// handle parallelizes into parse+reduce chunks internally), so batch
    /// and chunked callers exercise identical machinery. Feeding a day in
    /// pieces via [`Engine::begin_day`] yields the same [`DayReport`].
    ///
    /// # Panics
    ///
    /// Panics if a C&C scoring worker dies; use
    /// [`Engine::try_ingest_day`] for the typed-error path.
    pub fn ingest_day(&mut self, batch: DayBatch<'_>) -> DayReport {
        self.try_ingest_day(batch).unwrap_or_else(|e| panic!("daily cycle failed: {e}"))
    }

    /// [`Engine::ingest_day`] with runtime faults surfaced as typed
    /// [`EngineError`]s instead of panics.
    ///
    /// # Errors
    ///
    /// [`EngineError::WorkerPanicked`] when a C&C scoring worker dies; the
    /// day is still registered (replay-guarded, index retained for
    /// post-mortem [`Engine::cc_scores`]) but no alerts were emitted — see
    /// [`crate::DayIngest::try_finish`]. Panicking alert *sinks* are not
    /// an error — they are detached, counted in `stages.sink_failures`,
    /// and reported through [`Engine::take_sink_errors`].
    pub fn try_ingest_day(&mut self, batch: DayBatch<'_>) -> Result<DayReport, EngineError> {
        match batch {
            DayBatch::Dns(d) => {
                let mut ingest = self.begin_day(d.day, IngestSource::Dns);
                ingest.push_dns_records(&d.queries);
                ingest.try_finish()
            }
            DayBatch::Proxy { day, dhcp } => {
                let mut ingest = self.begin_day(day.day, IngestSource::Proxy { dhcp });
                ingest.push_proxy_records(&day.records);
                ingest.try_finish()
            }
        }
    }

    /// The detection half of the daily cycle, shared by every ingest path:
    /// C&C scoring over the day's rare domains, alerting, optional
    /// belief-propagation expansion, and retention.
    pub(crate) fn run_detection_tail(
        &mut self,
        mut report: DayReport,
        product: DayProduct,
        started: Instant,
    ) -> Result<DayReport, EngineError> {
        let day = report.day;
        report.dns_counts = product.dns_counts;
        report.proxy_counts = product.proxy_counts;
        report.norm_counts = product.norm_counts;
        self.fill_reduction_counters(&mut report);
        report.stages.new_destinations = product.index.new_count();
        report.stages.rare_destinations = product.index.rare_count();

        // C&C stage: score every rare domain, sharded across workers.
        let detector = self.detector();
        let scored = {
            let _cc_span = self.metrics.cc.start();
            let ctx = product.context(self.cfg.whois.as_ref(), self.cfg.whois_defaults);
            self.score_rare_domains(&ctx, &detector)
        };
        let candidates = match scored {
            Ok(candidates) => candidates,
            Err(e) => {
                // The day's contributions are already folded into the
                // cross-day histories (finish_day runs before this tail),
                // so the engine must still register the day: the stored
                // report arms the duplicate-day replay guard (a re-push
                // cannot double-count the profiles) and the retained index
                // allows post-mortem rescoring via `Engine::cc_scores`
                // once the fault is addressed. No alerts were emitted.
                report.stages.wall_micros = started.elapsed().as_micros() as u64;
                self.reports.insert(day, Self::counters_only(&report));
                self.products.insert(day, Arc::new(product));
                self.invalidate_product_encoding(day);
                if let Some(limit) = self.cfg.retain_days {
                    while self.products.len() > limit {
                        self.products.pop_first();
                    }
                }
                return Err(e);
            }
        };
        let ctx = product.context(self.cfg.whois.as_ref(), self.cfg.whois_defaults);
        report.stages.automated_domains = candidates.len();
        report.stages.cc_detections = candidates.iter().filter(|c| c.detected).count();

        let mut alerts = Vec::new();
        for c in candidates.iter().filter(|c| c.detected) {
            alerts.push(Alert {
                sequence: 0,
                day,
                domain: c.domain,
                name: c.name.clone(),
                score: c.score,
                verdict: Verdict::CommandAndControl,
                iteration: 0,
                period_secs: c.period_secs,
                hosts: ctx
                    .index
                    .hosts_of(c.domain)
                    .map(|hs| hs.iter().copied().collect())
                    .unwrap_or_default(),
            });
        }

        // Optional belief-propagation expansion from today's detections
        // plus any SOC seeds that appear today.
        if self.cfg.auto_investigate {
            let mut seed_domains: Vec<DomainSym> =
                candidates.iter().filter(|c| c.detected).map(|c| c.domain).collect();
            let soc_present: Vec<DomainSym> = self
                .soc_seed_syms
                .iter()
                .copied()
                .filter(|&d| {
                    ctx.index.connectivity(d) > 0 && !seed_domains.contains(&d) // not already alerted as C&C
                })
                .collect();
            // A live IOC hit is alert-worthy on its own, before any
            // expansion (the C&C detections were alerted above already).
            for &d in &soc_present {
                alerts.push(Alert {
                    sequence: 0,
                    day,
                    domain: d,
                    name: ctx.folded.resolve(d).to_string(),
                    score: 1.0,
                    verdict: Verdict::SeedConfirmed,
                    iteration: 0,
                    period_secs: None,
                    hosts: ctx
                        .index
                        .hosts_of(d)
                        .map(|hs| hs.iter().copied().collect())
                        .unwrap_or_default(),
                });
            }
            seed_domains.extend(soc_present);
            seed_domains.sort_unstable();
            seed_domains.dedup();
            if !seed_domains.is_empty() {
                let _bp_span = self.metrics.bp.start();
                let seeds = Seeds::from_domains_with_hosts(&ctx, seed_domains);
                let outcome =
                    belief_propagation(&ctx, Some(&detector), &self.cfg.sim, &seeds, &self.cfg.bp);
                report.stages.bp_iterations = outcome.iterations.len();
                report.stages.bp_labeled = outcome.labeled.len();
                // Every seed is already alerted above; alert on the
                // expansion only.
                for d in outcome.detected() {
                    alerts.push(self.bp_alert(&ctx, day, d));
                }
                report.outcome = Some(outcome);
            }
        }

        report.stages.sink_failures = self.assign_and_emit(&mut alerts);
        self.metrics.sink_failures.add(report.stages.sink_failures as u64);
        report.stages.alerts_emitted = alerts.len();
        report.cc_candidates = candidates;
        report.alerts = alerts;
        report.stages.wall_micros = started.elapsed().as_micros() as u64;

        self.reports.insert(day, Self::counters_only(&report));
        self.products.insert(day, Arc::new(product));
        self.invalidate_product_encoding(day);
        // Retention window: evict the oldest contact indexes (the dominant
        // memory cost) once past the configured bound; their counters-only
        // reports remain.
        if let Some(limit) = self.cfg.retain_days {
            while self.products.len() > limit {
                self.products.pop_first();
            }
        }
        Ok(report)
    }

    /// The slim copy retained per day: counters only, so a months-long
    /// stream does not accumulate per-domain names, alerts, and BP traces.
    pub(crate) fn counters_only(report: &DayReport) -> DayReport {
        DayReport {
            day: report.day,
            bootstrap: report.bootstrap,
            duplicate: report.duplicate,
            stages: report.stages,
            dns_counts: report.dns_counts,
            proxy_counts: report.proxy_counts,
            norm_counts: report.norm_counts,
            cc_candidates: Vec::new(),
            alerts: Vec::new(),
            outcome: None,
        }
    }

    /// Runs belief propagation for any hint mode on a retained day,
    /// emitting alerts for the reported domains.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownDay`] when the day was never processed as an
    /// operation day.
    pub fn investigate(
        &self,
        day: Day,
        investigation: Investigation,
    ) -> Result<InvestigationReport, EngineError> {
        let product = self.products.get(&day).ok_or(EngineError::UnknownDay(day))?;
        let ctx = product.context(self.cfg.whois.as_ref(), self.cfg.whois_defaults);
        let detector = self.detector();

        // In no-hint mode the seeds are the day's own C&C detections;
        // remember their real scores/evidence so their alerts keep the
        // CommandAndControl shape instead of degrading to generic seeds.
        let mut detection_evidence: BTreeMap<DomainSym, (f64, Option<u64>)> = BTreeMap::new();
        let seeds = match &investigation.seeds {
            SeedSpec::Hosts(hosts) => Seeds::from_hosts(hosts.iter().copied()),
            SeedSpec::Domains(domains) => {
                Seeds::from_domains_with_hosts(&ctx, domains.iter().copied())
            }
            SeedSpec::Names(names) => {
                // Fold raw names the same way the reduction pipeline folds
                // traffic, so e.g. "x.cc.alpha.c3" resolves to the folded
                // "cc.alpha.c3" entity — without interning probes into the
                // shared namespace.
                let syms: Vec<DomainSym> = names
                    .iter()
                    .filter_map(|n| ctx.folded.get(fold_domain(n, self.cfg.pipeline.fold_level)))
                    .collect();
                Seeds::from_domains_with_hosts(&ctx, syms)
            }
            SeedSpec::TodaysDetections => {
                let detections: Vec<DomainSym> = self
                    .score_rare_domains(&ctx, &detector)?
                    .into_iter()
                    .filter(|c| c.detected)
                    .map(|c| {
                        detection_evidence.insert(c.domain, (c.score, c.period_secs));
                        c.domain
                    })
                    .collect();
                Seeds::from_domains_with_hosts(&ctx, detections)
            }
        };

        let sim = match investigation.sim_threshold {
            Some(t) => {
                let mut sim = self.cfg.sim.clone();
                sim.set_threshold(t);
                sim
            }
            None => self.cfg.sim.clone(),
        };

        let outcome = belief_propagation(&ctx, Some(&detector), &sim, &seeds, &self.cfg.bp);
        let mut alerts: Vec<Alert> = outcome
            .labeled
            .iter()
            .filter(|d| investigation.count_seeds || d.reason != earlybird_core::LabelReason::Seed)
            .map(|d| {
                let mut alert = self.bp_alert(&ctx, day, d);
                if let Some(&(score, period_secs)) = detection_evidence.get(&d.domain) {
                    alert.verdict = Verdict::CommandAndControl;
                    alert.score = score;
                    alert.period_secs = period_secs;
                }
                alert
            })
            .collect();
        self.assign_and_emit(&mut alerts);

        Ok(InvestigationReport { day, outcome, count_seeds: investigation.count_seeds, alerts })
    }

    /// Scores every automated rare domain of a retained day with the
    /// engine's *current* model (parallelized like the ingest pass).
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownDay`] when the day is not retained.
    pub fn cc_scores(&self, day: Day) -> Result<Vec<CcCandidate>, EngineError> {
        let product = self.products.get(&day).ok_or(EngineError::UnknownDay(day))?;
        let ctx = product.context(self.cfg.whois.as_ref(), self.cfg.whois_defaults);
        self.score_rare_domains(&ctx, &self.detector())
    }

    /// All automated `(host, domain, evidence)` pairs among a retained
    /// day's rare domains under an arbitrary beacon detector — the Table II
    /// parameter-sweep primitive.
    ///
    /// # Errors
    ///
    /// [`EngineError::UnknownDay`] when the day is not retained.
    pub fn automated_pairs_sweep(
        &self,
        day: Day,
        automation: &AutomationDetector,
    ) -> Result<Vec<(HostId, DomainSym, AutomationEvidence)>, EngineError> {
        let product = self.products.get(&day).ok_or(EngineError::UnknownDay(day))?;
        Ok(earlybird_core::automated_pairs_with(&product.index, automation))
    }

    // -- internals ---------------------------------------------------------

    pub(crate) fn fill_reduction_counters(&self, report: &mut DayReport) {
        if let Some(c) = report.dns_counts {
            report.stages.domains_all = c.domains_all;
            report.stages.domains_after_internal_filter = c.domains_after_internal_filter;
            report.stages.domains_after_server_filter = c.domains_after_server_filter;
        }
        if let Some(c) = report.proxy_counts {
            report.stages.domains_all = c.domains_all;
            report.stages.domains_after_internal_filter = c.domains_after_internal_filter;
            report.stages.domains_after_server_filter = c.domains_after_server_filter;
        }
    }

    fn bp_alert(&self, ctx: &DayContext<'_>, day: Day, d: &earlybird_core::ScoredDomain) -> Alert {
        Alert {
            sequence: 0,
            day,
            domain: d.domain,
            name: ctx.folded.resolve(d.domain).to_string(),
            score: d.score,
            verdict: Verdict::from_reason(d.reason),
            iteration: d.iteration,
            period_secs: None,
            hosts: ctx
                .index
                .hosts_of(d.domain)
                .map(|hs| hs.iter().copied().collect())
                .unwrap_or_default(),
        }
    }

    /// Assigns engine-wide sequence numbers and fans the alerts out to
    /// every sink, preserving order. Sequence allocation happens under the
    /// sink lock so concurrent `investigate` calls cannot interleave a
    /// later-numbered batch ahead of an earlier one.
    ///
    /// A sink that panics is caught, detached, and recorded as a typed
    /// [`EngineError::SinkPanicked`] (drain via
    /// [`Engine::take_sink_errors`]); the remaining sinks keep receiving
    /// every alert and the daily cycle is never aborted. Returns the number
    /// of sinks that failed during this emission.
    fn assign_and_emit(&self, alerts: &mut [Alert]) -> usize {
        if alerts.is_empty() {
            return 0;
        }
        // A previous panic under this lock is already handled (the sink was
        // detached), so a poisoned registry is safe to re-enter.
        let mut sinks = self.sinks.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let start = self.sequence.fetch_add(alerts.len() as u64, Ordering::SeqCst);
        // Failed sinks keyed by their stable attachment-order id, so the
        // reported index stays correct even after earlier detachments
        // shifted live positions.
        let mut failed: Vec<(usize, String)> = Vec::new();
        for (i, alert) in alerts.iter_mut().enumerate() {
            alert.sequence = start + i as u64;
            for (id, sink) in sinks.iter_mut() {
                if failed.iter().any(|&(f, _)| f == *id) {
                    continue;
                }
                let outcome =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| sink.emit(alert)));
                if let Err(payload) = outcome {
                    failed.push((*id, panic_message(payload.as_ref())));
                }
            }
        }
        let failures = failed.len();
        if failures > 0 {
            sinks.retain(|(id, _)| !failed.iter().any(|&(f, _)| f == *id));
            drop(sinks);
            let mut errors =
                self.sink_errors.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            errors.extend(
                failed
                    .into_iter()
                    .map(|(sink, message)| EngineError::SinkPanicked { sink, message }),
            );
        }
        failures
    }

    /// Evaluates every rare domain of the day — automation evidence plus
    /// model score — sharding the work across the configured thread pool.
    /// Results are deterministic: sorted by descending score, then domain.
    ///
    /// # Errors
    ///
    /// [`EngineError::WorkerPanicked`] when a scoring worker dies instead
    /// of aborting the whole daily cycle with the join panic.
    fn score_rare_domains(
        &self,
        ctx: &DayContext<'_>,
        detector: &CcDetector,
    ) -> Result<Vec<CcCandidate>, EngineError> {
        let mut domains: Vec<DomainSym> = ctx.index.rare_domains().collect();
        domains.sort_unstable();

        let evaluate = |domain: DomainSym| -> Option<CcCandidate> {
            let auto_hosts = detector.automated_hosts(ctx, domain);
            if auto_hosts.is_empty() {
                return None;
            }
            let score = detector.score_with(ctx, domain, &auto_hosts);
            Some(CcCandidate {
                domain,
                name: ctx.folded.resolve(domain).to_string(),
                score,
                auto_hosts: auto_hosts.len(),
                period_secs: auto_hosts.first().map(|(_, ev)| ev.period),
                detected: detector.is_detection(score, &auto_hosts),
            })
        };

        // Shard only when each worker gets enough domains to amortize the
        // spawn cost; small days run sequentially.
        let workers = self.cfg.parallelism.min(domains.len() / self.cfg.parallel_threshold).max(1);
        let mut candidates: Vec<CcCandidate> = if workers <= 1 {
            domains.iter().copied().filter_map(evaluate).collect()
        } else {
            let chunk = domains.len().div_ceil(workers);
            std::thread::scope(|scope| {
                let handles: Vec<_> = domains
                    .chunks(chunk)
                    .map(|shard| {
                        scope.spawn(move || {
                            shard.iter().copied().filter_map(&evaluate).collect::<Vec<_>>()
                        })
                    })
                    .collect();
                // Join *every* handle even after a failure: leaving a
                // panicked scoped thread unjoined would make the scope
                // itself re-panic on exit, bypassing the typed error path.
                let mut all = Vec::new();
                let mut first_panic = None;
                for h in handles {
                    match h.join() {
                        Ok(shard) => all.extend(shard),
                        Err(payload) => {
                            first_panic.get_or_insert_with(|| panic_message(payload.as_ref()));
                        }
                    }
                }
                match first_panic {
                    Some(message) => Err(EngineError::WorkerPanicked(message)),
                    None => Ok(all),
                }
            })?
        };
        // total_cmp keeps the ordering total even if a hostile model emits
        // NaN scores — no panic path in the sort.
        candidates.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.domain.cmp(&b.domain)));
        Ok(candidates)
    }
}

/// Best-effort stringification of a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alert::CollectingSink;
    use crate::builder::EngineBuilder;
    use earlybird_synthgen::lanl::{LanlConfig, LanlGenerator};

    fn engine_over_tiny(
        parallelism: usize,
    ) -> (Engine, Vec<DayReport>, crate::alert::CollectedAlerts) {
        let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
        let sink = CollectingSink::new();
        let handle = sink.handle();
        let mut engine = EngineBuilder::lanl()
            .parallelism(parallelism)
            .parallel_threshold(1) // force sharding even on tiny days
            .auto_investigate(true)
            .sink(sink)
            .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
            .unwrap();
        let reports: Vec<DayReport> = challenge
            .dataset
            .days
            .iter()
            .map(|day| engine.ingest_day(DayBatch::Dns(day)))
            .collect();
        (engine, reports, handle)
    }

    #[test]
    fn parallel_and_sequential_scoring_agree() {
        let (par, reports_par, alerts_par) = engine_over_tiny(4);
        let (seq, reports_seq, alerts_seq) = engine_over_tiny(1);
        assert_eq!(par.days().collect::<Vec<_>>(), seq.days().collect::<Vec<_>>());
        assert!(reports_par.iter().any(|r| !r.cc_candidates.is_empty()), "candidates observed");
        for (a, b) in reports_par.iter().zip(&reports_seq) {
            assert_eq!(a.cc_candidates, b.cc_candidates, "{:?}", a.day);
            assert!(a.stages.deterministic_eq(&b.stages), "{:?}", a.day);
        }
        assert_eq!(alerts_par.snapshot(), alerts_seq.snapshot());
    }

    #[test]
    fn stored_reports_are_counters_only() {
        let (engine, reports, _) = engine_over_tiny(2);
        let heavy = reports.iter().find(|r| !r.alerts.is_empty()).expect("some day alerts");
        let stored = engine.report(heavy.day).expect("stored");
        assert!(stored.alerts.is_empty() && stored.cc_candidates.is_empty());
        assert_eq!(stored.stages, heavy.stages, "counters retained verbatim");
    }

    #[test]
    fn bootstrap_days_are_not_retained() {
        let (engine, _, _) = engine_over_tiny(2);
        let bootstrap = Day::new(0);
        assert!(engine.report(bootstrap).is_some(), "bootstrap report stored");
        assert!(engine.report(bootstrap).unwrap().bootstrap);
        assert!(engine.day_index(bootstrap).is_none(), "no product for bootstrap days");
        assert!(engine.investigate(bootstrap, Investigation::no_hint()).is_err());
    }

    #[test]
    fn alerts_are_sequenced_monotonically() {
        let (_, _, alerts) = engine_over_tiny(2);
        let snapshot = alerts.snapshot();
        assert!(!snapshot.is_empty(), "campaigns must raise alerts");
        assert!(snapshot.windows(2).all(|w| w[0].sequence < w[1].sequence));
    }

    /// The facade must reproduce exactly what the pre-redesign call
    /// sequence (CcDetector::detect_all → Seeds → belief_propagation)
    /// produced, for both hint modes, on every campaign day.
    #[test]
    fn investigate_matches_raw_call_sequence() {
        use earlybird_core::{belief_propagation, CcDetector, SimScorer};
        use earlybird_synthgen::lanl::ChallengeCase;

        let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
        let mut engine = EngineBuilder::lanl()
            .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
            .unwrap();
        for day in &challenge.dataset.days {
            engine.ingest_day(DayBatch::Dns(day));
        }

        let cc = CcDetector::lanl_default();
        let sim = SimScorer::lanl_default();
        let bp_cfg = earlybird_core::BpConfig::lanl_default();
        for campaign in &challenge.campaigns {
            let ctx = engine.context(campaign.day).expect("campaign day retained");
            let (raw, investigation) = match campaign.case {
                ChallengeCase::Four => {
                    let detections = cc.detect_all(&ctx);
                    let seeds =
                        Seeds::from_domains_with_hosts(&ctx, detections.iter().map(|d| d.domain));
                    (
                        belief_propagation(&ctx, Some(&cc), &sim, &seeds, &bp_cfg),
                        Investigation::no_hint(),
                    )
                }
                _ => {
                    let seeds = Seeds::from_hosts(campaign.hint_hosts.iter().copied());
                    (
                        belief_propagation(&ctx, Some(&cc), &sim, &seeds, &bp_cfg),
                        Investigation::from_hint_hosts(campaign.hint_hosts.iter().copied()),
                    )
                }
            };
            let facade = engine.investigate(campaign.day, investigation).unwrap().outcome;
            assert_eq!(facade, raw, "campaign on 3/{} must agree", campaign.march_day);
        }
    }

    #[test]
    fn replayed_day_is_a_noop_with_duplicate_flag() {
        let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
        let mut engine = EngineBuilder::lanl()
            .bootstrap_days(0)
            .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
            .unwrap();
        let first = engine.ingest_day(DayBatch::Dns(&challenge.dataset.days[0]));
        let history_len = engine.history().len();
        let replay = engine.ingest_day(DayBatch::Dns(&challenge.dataset.days[0]));
        assert!(!first.duplicate);
        assert!(replay.duplicate, "re-fed day must be flagged");
        assert_eq!(engine.history().len(), history_len, "profiles not double-counted");
        assert_eq!(replay.stages.rare_destinations, first.stages.rare_destinations);
    }

    #[test]
    fn retention_window_evicts_oldest_days() {
        let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
        let mut engine = EngineBuilder::lanl()
            .retain_days(3)
            .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
            .unwrap();
        for day in &challenge.dataset.days {
            engine.ingest_day(DayBatch::Dns(day));
        }
        let retained: Vec<Day> = engine.days().collect();
        assert_eq!(retained.len(), 3, "only the newest window is investigable");
        let newest = *retained.last().unwrap();
        assert_eq!(newest.index(), challenge.dataset.meta.total_days - 1);
        let evicted = retained[0].index() - 1;
        assert!(engine.investigate(Day::new(evicted), Investigation::no_hint()).is_err());
        assert!(engine.report(Day::new(evicted)).is_some(), "counters survive eviction");
    }

    #[test]
    fn seed_names_are_folded_before_lookup() {
        // A deep subdomain of a folded entity must seed the same
        // investigation as the folded symbol itself. Build one day whose
        // C&C domain already has three labels (the LANL fold level), so
        // "deep.cc.alpha.c3" folds back onto it.
        use earlybird_logmodel::{DnsDayLog, DnsQuery, DnsRecordType, HostKind, Ipv4, Timestamp};

        let domains = Arc::new(DomainInterner::new());
        let mut queries = Vec::new();
        for host in [1u32, 2] {
            for beat in 0..20 {
                queries.push(DnsQuery {
                    ts: Timestamp::from_secs(30_000 + host as u64 * 7 + beat * 600),
                    src: HostId::new(host),
                    src_ip: Ipv4::new(10, 0, 0, host as u8),
                    qname: domains.intern("cc.alpha.c3"),
                    qtype: DnsRecordType::A,
                    answer: Some(Ipv4::new(198, 51, 100, 99)),
                });
            }
        }
        queries.sort_by_key(|q| q.ts);
        let meta = DatasetMeta {
            n_hosts: 4,
            host_kinds: vec![HostKind::Workstation; 4],
            internal_suffixes: vec![],
            bootstrap_days: 0,
            total_days: 1,
        };
        let mut engine = EngineBuilder::lanl().build(Arc::clone(&domains), meta).unwrap();
        engine.ingest_day(DayBatch::Dns(&DnsDayLog { day: Day::new(0), queries }));

        let by_name = engine
            .investigate(
                Day::new(0),
                Investigation::from_seed_names(["deep.cc.alpha.c3"]).count_seeds(true),
            )
            .unwrap();
        let by_sym = engine
            .investigate(
                Day::new(0),
                Investigation::from_seed_domains([engine.intern_domain("cc.alpha.c3")])
                    .count_seeds(true),
            )
            .unwrap();
        assert_eq!(by_name.outcome, by_sym.outcome, "unfolded seed names must fold");
        assert!(!by_name.outcome.labeled.is_empty());
    }

    #[test]
    fn live_soc_seed_raises_seed_confirmed_alert() {
        use earlybird_logmodel::{DnsDayLog, DnsQuery, DnsRecordType, HostKind, Ipv4, Timestamp};

        let domains = Arc::new(DomainInterner::new());
        let queries: Vec<DnsQuery> = [10_000u64, 55_000]
            .iter()
            .map(|&ts| DnsQuery {
                ts: Timestamp::from_secs(ts),
                src: HostId::new(1),
                src_ip: Ipv4::new(10, 0, 0, 1),
                qname: domains.intern("ioc.evil.c3"),
                qtype: DnsRecordType::A,
                answer: Some(Ipv4::new(203, 0, 113, 9)),
            })
            .collect();
        let meta = DatasetMeta {
            n_hosts: 4,
            host_kinds: vec![HostKind::Workstation; 4],
            internal_suffixes: vec![],
            bootstrap_days: 0,
            total_days: 1,
        };
        let sink = CollectingSink::new();
        let alerts = sink.handle();
        let mut engine = EngineBuilder::lanl()
            .soc_seed("ioc.evil.c3")
            .auto_investigate(true)
            .sink(sink)
            .build(Arc::clone(&domains), meta)
            .unwrap();
        let report = engine.ingest_day(DayBatch::Dns(&DnsDayLog { day: Day::new(0), queries }));

        // Not automated, so no C&C detection -- but the live IOC hit itself
        // must reach the alert stream.
        assert_eq!(report.stages.cc_detections, 0);
        let stream = alerts.snapshot();
        assert!(
            stream
                .iter()
                .any(|a| a.name == "ioc.evil.c3" && a.verdict == crate::Verdict::SeedConfirmed),
            "live IOC hit must alert: {stream:?}"
        );
    }

    #[test]
    fn builder_rejects_invalid_config() {
        let raw = Arc::new(DomainInterner::new());
        let bad = EngineBuilder::lanl()
            .pipeline(earlybird_core::PipelineConfig {
                fold_level: 0,
                unpopular_threshold: 10,
                rare_ua_threshold: 10,
            })
            .build(raw, DatasetMeta::default());
        assert!(bad.is_err());
    }
}
