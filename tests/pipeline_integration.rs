//! Cross-crate pipeline integration: generator → normalization → reduction
//! → histories → rare sieve → index, checked for internal consistency on
//! both dataset flavours.

use earlybird::core::{DailyPipeline, PipelineConfig};
use earlybird::logmodel::{Day, HostKind};
use earlybird::synthgen::ac::{AcConfig, AcGenerator};
use earlybird::synthgen::lanl::{LanlConfig, LanlGenerator};
use std::sync::Arc;

#[test]
fn dns_pipeline_invariants_hold_over_a_month() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let meta = &challenge.dataset.meta;
    let mut pipeline =
        DailyPipeline::new(Arc::clone(&challenge.dataset.domains), PipelineConfig::lanl());

    let mut prev_history = 0usize;
    for day_log in &challenge.dataset.days {
        if day_log.day.index() < meta.bootstrap_days {
            let counts = pipeline.bootstrap_dns_day(day_log, meta);
            assert!(counts.records_a_only <= counts.records_all);
        } else {
            let product = pipeline.process_dns_day(day_log, meta);
            let counts = product.dns_counts.unwrap();
            // Rare domains are a subset of post-reduction domains.
            assert!(product.index.rare_count() <= counts.domains_after_server_filter);
            assert!(product.index.new_count() >= product.index.rare_count());
            // Every rare domain has at least one host and fewer than the
            // unpopularity threshold.
            for dom in product.index.rare_domains() {
                let conn = product.index.connectivity(dom);
                assert!(conn >= 1 && conn < 10, "connectivity {conn} out of rare bounds");
            }
            // host_rdom and dom_host agree.
            for dom in product.index.rare_domains() {
                for host in product.index.hosts_of(dom).unwrap() {
                    assert!(
                        product.index.rare_domains_of(*host).unwrap().contains(&dom),
                        "bipartite maps inconsistent"
                    );
                }
            }
        }
        // The history only grows.
        assert!(pipeline.history().len() >= prev_history);
        prev_history = pipeline.history().len();
    }
}

#[test]
fn proxy_pipeline_resolves_hosts_and_tracks_uas() {
    let world = AcGenerator::new(AcConfig::tiny()).generate();
    let meta = &world.dataset.meta;
    let mut pipeline =
        DailyPipeline::new(Arc::clone(&world.dataset.domains), PipelineConfig::enterprise());

    for day_log in &world.dataset.days[..(meta.bootstrap_days as usize)] {
        pipeline.bootstrap_proxy_day(day_log, &world.dataset.dhcp, meta);
    }
    assert!(!pipeline.ua_history().is_empty(), "UA profiles built during bootstrap");

    let feb1 = world.dataset.day(Day::new(meta.bootstrap_days)).unwrap();
    let product = pipeline.process_proxy_day(feb1, &world.dataset.dhcp, meta);
    let norm = product.norm_counts.unwrap();
    assert!(norm.output > 0);
    assert_eq!(norm.input, norm.output + norm.dropped_unresolvable + norm.dropped_ip_literal);
    assert!(product.index.has_http());

    // HTTP fractions are defined and bounded for rare domains.
    for dom in product.index.rare_domains() {
        let no_ref = product.index.no_ref_fraction(dom).unwrap();
        let rare_ua = product.index.rare_ua_fraction(dom).unwrap();
        assert!((0.0..=1.0).contains(&no_ref));
        assert!((0.0..=1.0).contains(&rare_ua));
    }
}

#[test]
fn server_traffic_never_reaches_the_index() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let meta = &challenge.dataset.meta;
    let servers: Vec<u32> = (0..meta.n_hosts)
        .filter(|&h| meta.host_kinds[h as usize] == HostKind::Server)
        .collect();
    assert!(!servers.is_empty());

    let mut pipeline =
        DailyPipeline::new(Arc::clone(&challenge.dataset.domains), PipelineConfig::lanl());
    let product = pipeline.process_dns_day(&challenge.dataset.days[0], meta);
    for &server in &servers {
        assert!(
            product.index.rare_domains_of(earlybird::logmodel::HostId::new(server)).is_none(),
            "server {server} must be filtered"
        );
    }
}

#[test]
fn rare_domains_stop_being_rare_once_seen() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let meta = &challenge.dataset.meta;
    let mut pipeline =
        DailyPipeline::new(Arc::clone(&challenge.dataset.domains), PipelineConfig::lanl());

    let day0 = pipeline.process_dns_day(&challenge.dataset.days[0], meta);
    let rare_day0: Vec<_> = day0.index.rare_domains().collect();
    assert!(!rare_day0.is_empty());

    // Re-processing the same batch the "next day": every domain is now in
    // the history, so nothing is new.
    let mut replay = challenge.dataset.days[0].clone();
    replay.day = Day::new(1);
    for q in &mut replay.queries {
        q.ts = Day::new(1).start() + q.ts.secs_of_day();
    }
    let day1 = pipeline.process_dns_day(&replay, meta);
    assert_eq!(day1.index.new_count(), 0, "no domain is new on replay");
    assert_eq!(day1.index.rare_count(), 0);
}
