//! Proxy-record normalization: UTC conversion, DHCP/VPN lease resolution,
//! and IP-literal destination filtering (§IV-A).
//!
//! "we converted all timestamps into UTC and DHCP and VPN IP addresses to
//! hostnames (by parsing the DHCP and VPN logs collected by the
//! organization) ... We do not consider destinations that are IP addresses."

use earlybird_logmodel::{DhcpLog, ProxyDayLog, ProxyRecord};
use serde::{Deserialize, Serialize};

/// Per-day normalization statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NormalizationCounts {
    /// Records in the raw day batch.
    pub input: usize,
    /// Records surviving normalization.
    pub output: usize,
    /// Records whose source IP had no covering DHCP/VPN lease.
    pub dropped_unresolvable: usize,
    /// Records whose destination "domain" was an IP literal.
    pub dropped_ip_literal: usize,
}

impl NormalizationCounts {
    /// Merges another (chunk's) counters into this one.
    pub fn merge(&mut self, other: &NormalizationCounts) {
        self.input += other.input;
        self.output += other.output;
        self.dropped_unresolvable += other.dropped_unresolvable;
        self.dropped_ip_literal += other.dropped_ip_literal;
    }
}

/// Normalizes one chunk of proxy records: converts timestamps to UTC,
/// resolves `src_ip` to a stable [`earlybird_logmodel::HostId`] through the
/// lease log, and drops records with IP-literal destinations or unresolvable
/// sources.
///
/// Records that already carry a resolved `host` are passed through without a
/// lease lookup. The output preserves the chunk's record order (streaming
/// consumers never need a sorted day; [`normalize_proxy_day`] sorts).
pub fn normalize_proxy_chunk(
    records: &[ProxyRecord],
    dhcp: &DhcpLog,
    is_ip_literal: impl Fn(&ProxyRecord) -> bool,
) -> (Vec<ProxyRecord>, NormalizationCounts) {
    let mut counts = NormalizationCounts { input: records.len(), ..Default::default() };
    let mut out = Vec::with_capacity(records.len());
    for rec in records {
        if is_ip_literal(rec) {
            counts.dropped_ip_literal += 1;
            continue;
        }
        let ts_utc = rec.ts_utc();
        let host = match rec.host {
            Some(h) => Some(h),
            None => dhcp.resolve(rec.src_ip, ts_utc),
        };
        let Some(host) = host else {
            counts.dropped_unresolvable += 1;
            continue;
        };
        let mut normalized = *rec;
        normalized.host = Some(host);
        // Store UTC in ts_local with a zero offset so downstream consumers
        // can use ts_local uniformly.
        normalized.ts_local = ts_utc;
        normalized.tz = earlybird_logmodel::TzOffset::UTC;
        out.push(normalized);
    }
    counts.output = out.len();
    (out, counts)
}

/// Normalizes one whole day of proxy records (a single-chunk wrapper over
/// [`normalize_proxy_chunk`]); the output is sorted by UTC timestamp.
pub fn normalize_proxy_day(
    day: &ProxyDayLog,
    dhcp: &DhcpLog,
    is_ip_literal: impl Fn(&ProxyRecord) -> bool,
) -> (Vec<ProxyRecord>, NormalizationCounts) {
    let (mut out, counts) = normalize_proxy_chunk(&day.records, dhcp, is_ip_literal);
    out.sort_by_key(|r| r.ts_local);
    (out, counts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlybird_logmodel::{
        Day, DhcpLease, DomainInterner, HostId, HttpMethod, HttpStatus, Ipv4, PathInterner,
        Timestamp, TzOffset,
    };

    fn record(
        domains: &DomainInterner,
        paths: &PathInterner,
        ts_local: u64,
        tz_minutes: i32,
        src_ip: Ipv4,
        domain: &str,
    ) -> ProxyRecord {
        ProxyRecord {
            ts_local: Timestamp::from_secs(ts_local),
            tz: TzOffset::from_minutes(tz_minutes),
            src_ip,
            host: None,
            domain: domains.intern(domain),
            dest_ip: Ipv4::new(93, 184, 216, 34),
            method: HttpMethod::Get,
            status: HttpStatus::OK,
            url_path: paths.intern("/"),
            user_agent: None,
            referer: None,
        }
    }

    fn lease(ip: Ipv4, host: u32, start: u64, end: u64) -> DhcpLease {
        DhcpLease {
            ip,
            host: HostId::new(host),
            start: Timestamp::from_secs(start),
            end: Timestamp::from_secs(end),
        }
    }

    #[test]
    fn resolves_leases_and_converts_to_utc() {
        let domains = DomainInterner::new();
        let paths = PathInterner::new();
        let ip = Ipv4::new(10, 0, 0, 9);
        let mut dhcp = DhcpLog::new();
        dhcp.add(lease(ip, 7, 0, 100_000));
        let day = ProxyDayLog {
            day: Day::new(0),
            records: vec![record(&domains, &paths, 7_200, 60, ip, "nbc.com")],
        };
        let (out, counts) = normalize_proxy_day(&day, &dhcp, |_| false);
        assert_eq!(counts.output, 1);
        assert_eq!(out[0].host, Some(HostId::new(7)));
        // UTC-1h applied, offset reset.
        assert_eq!(out[0].ts_local, Timestamp::from_secs(3_600));
        assert_eq!(out[0].tz, TzOffset::UTC);
    }

    #[test]
    fn drops_unresolvable_sources() {
        let domains = DomainInterner::new();
        let paths = PathInterner::new();
        let dhcp = DhcpLog::new();
        let day = ProxyDayLog {
            day: Day::new(0),
            records: vec![record(&domains, &paths, 100, 0, Ipv4::new(10, 0, 0, 1), "nbc.com")],
        };
        let (out, counts) = normalize_proxy_day(&day, &dhcp, |_| false);
        assert!(out.is_empty());
        assert_eq!(counts.dropped_unresolvable, 1);
    }

    #[test]
    fn drops_ip_literal_destinations() {
        let domains = DomainInterner::new();
        let paths = PathInterner::new();
        let ip = Ipv4::new(10, 0, 0, 9);
        let mut dhcp = DhcpLog::new();
        dhcp.add(lease(ip, 7, 0, 1_000));
        let day = ProxyDayLog {
            day: Day::new(0),
            records: vec![record(&domains, &paths, 10, 0, ip, "8.8.8.8")],
        };
        let domains_ref = day.records[0].domain;
        let (out, counts) = normalize_proxy_day(&day, &dhcp, |r| {
            r.domain == domains_ref // pretend the resolver flagged it
        });
        assert!(out.is_empty());
        assert_eq!(counts.dropped_ip_literal, 1);
    }

    #[test]
    fn preexisting_host_is_passed_through() {
        let domains = DomainInterner::new();
        let paths = PathInterner::new();
        let dhcp = DhcpLog::new(); // empty — would fail lease resolution
        let mut rec = record(&domains, &paths, 10, 0, Ipv4::new(10, 0, 0, 2), "nbc.com");
        rec.host = Some(HostId::new(3));
        let day = ProxyDayLog { day: Day::new(0), records: vec![rec] };
        let (out, counts) = normalize_proxy_day(&day, &dhcp, |_| false);
        assert_eq!(counts.output, 1);
        assert_eq!(out[0].host, Some(HostId::new(3)));
    }

    #[test]
    fn output_is_sorted_by_utc() {
        let domains = DomainInterner::new();
        let paths = PathInterner::new();
        let ip = Ipv4::new(10, 0, 0, 9);
        let mut dhcp = DhcpLog::new();
        dhcp.add(lease(ip, 7, 0, 1_000_000));
        // Two records whose local order differs from UTC order because of
        // different collector timezones.
        let r1 = record(&domains, &paths, 10_000, 300, ip, "a.com"); // UTC 10_000-18_000 -> early
        let r2 = record(&domains, &paths, 9_000, -60, ip, "b.com"); // UTC 9_000+3_600 = 12_600
        let day = ProxyDayLog { day: Day::new(0), records: vec![r2, r1] };
        let (out, _) = normalize_proxy_day(&day, &dhcp, |_| false);
        assert!(out[0].ts_local <= out[1].ts_local);
    }
}
