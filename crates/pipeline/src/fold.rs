//! Domain folding with a dedicated interner for folded names.
//!
//! "We first 'fold' the domain names to second-level (e.g., news.nbc.com is
//! folded to nbc.com) ... Since domain names are anonymized in the LANL
//! dataset, we conservatively fold to third-level domains" (§IV-A).

use earlybird_logmodel::{fold_domain, DomainInterner, DomainSym};
use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Memoized folding from raw domain symbols to folded domain symbols.
///
/// The folded names live in their own [`DomainInterner`] so the rest of the
/// pipeline never mixes raw and folded symbols by accident. The memo table
/// is internally synchronized, so one `FoldTable` can be shared by parallel
/// reduction workers; note that concurrent *first* folds of distinct names
/// make folded-symbol numbering racy — streaming callers that need
/// deterministic numbering warm the cache sequentially first (see
/// `earlybird-core`'s `DailyPipeline`).
#[derive(Debug)]
pub struct FoldTable {
    raw: Arc<DomainInterner>,
    folded: Arc<DomainInterner>,
    level: usize,
    cache: RwLock<HashMap<DomainSym, DomainSym>>,
}

impl FoldTable {
    /// Creates a fold table over `raw` names, folding to `level` labels.
    ///
    /// # Panics
    ///
    /// Panics if `level` is zero.
    pub fn new(raw: Arc<DomainInterner>, level: usize) -> Self {
        assert!(level > 0, "fold level must be positive");
        FoldTable {
            raw,
            folded: Arc::new(DomainInterner::new()),
            level,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// Reassembles a fold table from restored interners (the persistence
    /// hook used by `earlybird-store`). The memo cache starts empty and is
    /// rebuilt lazily; because `folded` already holds every folded name in
    /// its original numbering, re-folding reproduces identical symbols.
    ///
    /// # Panics
    ///
    /// Panics if `level` is zero.
    pub fn from_interners(
        raw: Arc<DomainInterner>,
        folded: Arc<DomainInterner>,
        level: usize,
    ) -> Self {
        assert!(level > 0, "fold level must be positive");
        FoldTable { raw, folded, level, cache: RwLock::new(HashMap::new()) }
    }

    /// The fold level (2 for enterprise data, 3 for anonymized LANL names).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Folds a raw symbol, memoizing the mapping.
    pub fn fold(&self, raw_sym: DomainSym) -> DomainSym {
        if let Some(&f) = self.cache.read().expect("fold cache poisoned").get(&raw_sym) {
            return f;
        }
        let name = self.raw.resolve(raw_sym);
        let folded_sym = self.folded.intern(fold_domain(&name, self.level));
        self.cache.write().expect("fold cache poisoned").insert(raw_sym, folded_sym);
        folded_sym
    }

    /// Interns an already-folded name directly (used when seeding from IOC
    /// lists, which carry folded names).
    pub fn intern_folded(&self, name: &str) -> DomainSym {
        self.folded.intern(fold_domain(name, self.level))
    }

    /// The interner holding folded names.
    pub fn folded_interner(&self) -> &Arc<DomainInterner> {
        &self.folded
    }

    /// The interner holding raw names.
    pub fn raw_interner(&self) -> &Arc<DomainInterner> {
        &self.raw
    }

    /// Resolves a *folded* symbol to its name.
    pub fn folded_name(&self, sym: DomainSym) -> Arc<str> {
        self.folded.resolve(sym)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_and_memoizes() {
        let raw = Arc::new(DomainInterner::new());
        let a = raw.intern("news.nbc.com");
        let b = raw.intern("video.nbc.com");
        let c = raw.intern("evil.ru");
        let t = FoldTable::new(Arc::clone(&raw), 2);
        let fa = t.fold(a);
        let fb = t.fold(b);
        let fc = t.fold(c);
        assert_eq!(fa, fb, "same second-level entity");
        assert_ne!(fa, fc);
        assert_eq!(&*t.folded_name(fa), "nbc.com");
        assert_eq!(t.fold(a), fa, "memoized");
    }

    #[test]
    fn third_level_for_anonymized_names() {
        let raw = Arc::new(DomainInterner::new());
        let a = raw.intern("x.sub.rainbow.c3");
        let t = FoldTable::new(Arc::clone(&raw), 3);
        let fa = t.fold(a);
        assert_eq!(&*t.folded_name(fa), "sub.rainbow.c3");
    }

    #[test]
    fn intern_folded_matches_fold_of_same_entity() {
        let raw = Arc::new(DomainInterner::new());
        let a = raw.intern("www.ramdo.org");
        let t = FoldTable::new(Arc::clone(&raw), 2);
        let via_fold = t.fold(a);
        let via_seed = t.intern_folded("ramdo.org");
        assert_eq!(via_fold, via_seed);
        // Seeding with a deeper name folds it first.
        assert_eq!(t.intern_folded("cdn.ramdo.org"), via_seed);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_level_rejected() {
        let raw = Arc::new(DomainInterner::new());
        let _ = FoldTable::new(raw, 0);
    }
}
