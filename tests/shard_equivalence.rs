//! The sharded engine's bit-identity contract (ISSUE 10): for *any*
//! shard count N ≥ 1 — including N = 1 and N far larger than the number
//! of distinct hosts — and any chunking of the pushed spans, a
//! [`ShardedEngine`] must be indistinguishable from a plain [`Engine`]
//! fed the same records: identical [`DayReport`]s, identical alert
//! streams, and byte-identical checkpoint snapshots. A sharded engine
//! must also cold-restart through the [`Persistence`] facade and keep
//! producing the same bytes.

// Each integration-test crate uses a subset of the harness; the unused
// remainder is not a defect.
#[path = "support/backends.rs"]
#[allow(dead_code)]
mod support;

use earlybird::engine::{
    CompactionTrigger, DayBatch, DayReport, Engine, EngineBuilder, IngestSource, LifecycleConfig,
    Persistence, RetentionPolicy, ShardedEngine, SnapshotPolicy,
};
use earlybird::logmodel::{
    format_dns_line, DatasetMeta, Day, DnsDayLog, DnsQuery, DnsRecordType, HostId, HostKind, Ipv4,
    Timestamp,
};
use earlybird::synthgen::ac::{AcConfig, AcGenerator};
use earlybird::synthgen::lanl::{LanlConfig, LanlGenerator};
use earlybird_engine::CollectingSink;
use proptest::prelude::*;
use std::sync::Arc;
use support::Backend;

/// Full-report equality modulo wall-clock time.
fn assert_reports_equal(sharded: &DayReport, batch: &DayReport, context: &str) {
    assert_eq!(sharded.day, batch.day, "{context}: day");
    assert_eq!(sharded.bootstrap, batch.bootstrap, "{context}: bootstrap flag");
    assert_eq!(sharded.duplicate, batch.duplicate, "{context}: duplicate flag");
    assert!(
        sharded.stages.deterministic_eq(&batch.stages),
        "{context}: counters\n  sharded: {:?}\n  batch:   {:?}",
        sharded.stages,
        batch.stages
    );
    assert_eq!(sharded.dns_counts, batch.dns_counts, "{context}: dns counts");
    assert_eq!(sharded.proxy_counts, batch.proxy_counts, "{context}: proxy counts");
    assert_eq!(sharded.norm_counts, batch.norm_counts, "{context}: norm counts");
    assert_eq!(sharded.cc_candidates, batch.cc_candidates, "{context}: candidates");
    assert_eq!(sharded.alerts, batch.alerts, "{context}: alerts");
    assert_eq!(sharded.outcome, batch.outcome, "{context}: BP outcome");
}

/// The strongest state-equality probe available: every interner, profile,
/// retained index, report and cursor lands in the full-snapshot bytes.
fn checkpoint_bytes(engine: &Engine) -> Vec<u8> {
    let mut bytes = Vec::new();
    engine.freeze().write_to(&mut bytes).expect("frozen view serializes");
    bytes
}

/// A random traffic day with a guaranteed beaconing campaign blended in, so
/// the C&C / alert / BP stages always have real work to compare.
fn build_queries(
    raw: &[(u64, u32, u8)],
    domains: &Arc<earlybird::logmodel::DomainInterner>,
) -> Vec<DnsQuery> {
    let mut queries: Vec<DnsQuery> = raw
        .iter()
        .map(|&(ts, host, dom)| DnsQuery {
            ts: Timestamp::from_secs(ts),
            src: HostId::new(host),
            src_ip: Ipv4::new(10, 0, 0, host as u8),
            qname: domains.intern(&format!("d{dom}.example.c3")),
            qtype: DnsRecordType::A,
            answer: Some(Ipv4::new(50, dom, dom, 1)),
        })
        .collect();
    for host in [1u32, 2] {
        for beat in 0..20 {
            queries.push(DnsQuery {
                ts: Timestamp::from_secs(30_000 + host as u64 * 7 + beat * 600),
                src: HostId::new(host),
                src_ip: Ipv4::new(10, 0, 0, host as u8),
                qname: domains.intern("cc.alpha.c3"),
                qtype: DnsRecordType::A,
                answer: Some(Ipv4::new(198, 51, 100, 99)),
            });
        }
    }
    queries.sort_by_key(|q| q.ts);
    queries
}

fn meta_for(n_hosts: u32) -> DatasetMeta {
    DatasetMeta {
        n_hosts,
        host_kinds: vec![HostKind::Workstation; n_hosts as usize],
        internal_suffixes: vec![],
        bootstrap_days: 0,
        total_days: 1,
    }
}

fn engine_for(
    domains: &Arc<earlybird::logmodel::DomainInterner>,
    meta: &DatasetMeta,
    parallelism: usize,
    chunk_records: usize,
) -> (Engine, earlybird::engine::CollectedAlerts) {
    let sink = CollectingSink::new();
    let handle = sink.handle();
    let engine = EngineBuilder::lanl()
        .parallelism(parallelism)
        .parallel_threshold(1)
        .ingest_chunk_records(chunk_records)
        .auto_investigate(true)
        .sink(sink)
        .build(Arc::clone(domains), meta.clone())
        .expect("valid config");
    (engine, handle)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// For arbitrary chunk splits and shard counts — one shard, a few, a
    /// prime, and far more shards than the 12 distinct hosts (so some
    /// shards are guaranteed empty) — the sharded path reproduces batch
    /// ingestion exactly: counters, candidates, alerts, BP outcome, and
    /// the full checkpoint byte stream.
    #[test]
    fn any_shard_count_is_bit_identical(
        raw in proptest::collection::vec((0u64..86_400, 0u32..12, 0u8..16), 1..200),
        splits in proptest::collection::vec(1usize..40, 0..8),
        shards_ix in 0usize..5,
        parallelism in 1usize..5,
        chunk_records in 1usize..64,
    ) {
        let shards = [1usize, 2, 3, 7, 33][shards_ix];
        let domains = Arc::new(earlybird::logmodel::DomainInterner::new());
        let queries = build_queries(&raw, &domains);
        let meta = meta_for(12);

        // Identical configs on both sides: the engine configuration is
        // itself serialized, so differing knobs would trivially (and
        // uninterestingly) perturb the checkpoint bytes.
        let (mut batch_engine, batch_alerts) = engine_for(&domains, &meta, parallelism, chunk_records);
        let day_log = DnsDayLog { day: Day::new(0), queries: queries.clone() };
        let batch_report = batch_engine.ingest_day(DayBatch::Dns(&day_log));

        let (engine, shard_alerts) = engine_for(&domains, &meta, parallelism, chunk_records);
        let mut sharded = ShardedEngine::new(engine, shards);
        let mut ingest = sharded.begin_day(Day::new(0), IngestSource::Dns);
        // Carve the day along the random split points; the tail goes last.
        let mut rest: &[DnsQuery] = &queries;
        for &len in &splits {
            let take = len.min(rest.len());
            let (span, remaining) = rest.split_at(take);
            ingest.push_dns_records(span);
            rest = remaining;
        }
        ingest.push_dns_records(rest);
        prop_assert_eq!(ingest.records_pushed(), queries.len());
        let shard_report = ingest.finish();

        assert_reports_equal(&shard_report, &batch_report, "proptest day");
        prop_assert_eq!(shard_alerts.snapshot(), batch_alerts.snapshot());
        prop_assert_eq!(
            checkpoint_bytes(sharded.engine()),
            checkpoint_bytes(&batch_engine),
            "checkpoint bytes must not depend on the shard count"
        );
    }
}

/// Degenerate skew: every record comes from one host, so all but one
/// shard stays empty the whole day — and a shard count far above the
/// host count leaves most lanes idle. Both must still be bit-identical.
#[test]
fn skewed_and_empty_shards_are_bit_identical() {
    let domains = Arc::new(earlybird::logmodel::DomainInterner::new());
    // One busy host only (plus the blended-in campaign hosts 1 and 2).
    let raw: Vec<(u64, u32, u8)> =
        (0..150u64).map(|i| (i * 37 % 86_400, 5, (i % 11) as u8)).collect();
    let queries = build_queries(&raw, &domains);
    let meta = meta_for(12);

    let (mut batch_engine, batch_alerts) = engine_for(&domains, &meta, 2, 16);
    let day_log = DnsDayLog { day: Day::new(0), queries: queries.clone() };
    let batch_report = batch_engine.ingest_day(DayBatch::Dns(&day_log));

    for shards in [5usize, 64] {
        let (engine, shard_alerts) = engine_for(&domains, &meta, 2, 16);
        let mut sharded = ShardedEngine::new(engine, shards);
        let report = sharded.ingest_day(DayBatch::Dns(&day_log));
        assert_reports_equal(&report, &batch_report, &format!("{shards} shards, 3 hosts"));
        assert_eq!(shard_alerts.snapshot(), batch_alerts.snapshot());
        assert_eq!(checkpoint_bytes(sharded.engine()), checkpoint_bytes(&batch_engine));
    }
}

/// The whole LANL challenge through a sharded engine: every day report,
/// the full alert sequence, the retained-day set, and the final
/// checkpoint bytes all match batch ingestion.
#[test]
fn lanl_challenge_shards_identically() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let meta = &challenge.dataset.meta;

    let (mut batch_engine, batch_alerts) = engine_for(&challenge.dataset.domains, meta, 4, 64);
    let (engine, shard_alerts) = engine_for(&challenge.dataset.domains, meta, 4, 64);
    let mut sharded = ShardedEngine::new(engine, 3);

    for day in &challenge.dataset.days {
        let batch_report = batch_engine.ingest_day(DayBatch::Dns(day));
        let mut ingest = sharded.begin_day(day.day, IngestSource::Dns);
        for span in day.queries.chunks(777) {
            ingest.push_dns_records(span);
        }
        let shard_report = ingest.finish();
        assert_reports_equal(&shard_report, &batch_report, &format!("day {:?}", day.day));
    }
    assert_eq!(shard_alerts.snapshot(), batch_alerts.snapshot());
    assert!(!shard_alerts.snapshot().is_empty(), "campaigns must alert");
    assert_eq!(
        sharded.engine().days().collect::<Vec<_>>(),
        batch_engine.days().collect::<Vec<_>>()
    );
    assert_eq!(checkpoint_bytes(sharded.engine()), checkpoint_bytes(&batch_engine));
}

/// Interleaved proxy and DNS days on one sharded enterprise engine —
/// normalization, DHCP lease resolution, HTTP context, UA history and the
/// shared fold/filter state must all survive partitioning.
#[test]
fn interleaved_proxy_and_dns_days_shard_identically() {
    let world = AcGenerator::new(AcConfig::tiny()).generate();
    let meta = &world.dataset.meta;
    let domains = &world.dataset.domains;

    let build = |parallelism: usize, chunk: usize| {
        let sink = CollectingSink::new();
        let handle = sink.handle();
        let engine = EngineBuilder::enterprise()
            .parallelism(parallelism)
            .parallel_threshold(1)
            .ingest_chunk_records(chunk)
            .auto_investigate(true)
            .sink(sink)
            .build(Arc::clone(domains), meta.clone())
            .expect("valid config");
        (engine, handle)
    };
    let (mut batch_engine, batch_alerts) = build(4, 50);
    let (engine, shard_alerts) = build(4, 50);
    let mut sharded = ShardedEngine::new(engine, 5);

    // Cover the bootstrap/operation boundary plus several operation days.
    let last = (meta.bootstrap_days + 5).min(meta.total_days) as usize;
    for (i, day) in world.dataset.days[..last].iter().enumerate() {
        if i % 2 == 0 {
            let batch_report =
                batch_engine.ingest_day(DayBatch::Proxy { day, dhcp: &world.dataset.dhcp });
            let mut ingest =
                sharded.begin_day(day.day, IngestSource::Proxy { dhcp: &world.dataset.dhcp });
            for span in day.records.chunks(311) {
                ingest.push_proxy_records(span);
            }
            let shard_report = ingest.finish();
            assert_reports_equal(&shard_report, &batch_report, &format!("proxy day {i}"));
        } else {
            // A synthetic DNS day over the same interner and host space.
            let mut queries: Vec<DnsQuery> = (0..200u64)
                .map(|j| {
                    let host = (j % u64::from(meta.n_hosts.min(8))) as u32;
                    DnsQuery {
                        ts: Timestamp::from_day_secs(day.day, (j * 431) % 86_400),
                        src: HostId::new(host),
                        src_ip: Ipv4::new(10, 1, 0, host as u8),
                        qname: domains.intern(&format!("d{}.interleaved.example", j % 23)),
                        qtype: DnsRecordType::A,
                        answer: Some(Ipv4::new(60, (j % 23) as u8, 1, 1)),
                    }
                })
                .collect();
            queries.sort_by_key(|q| q.ts);
            let dns_day = DnsDayLog { day: day.day, queries };
            let batch_report = batch_engine.ingest_day(DayBatch::Dns(&dns_day));
            let shard_report = sharded.ingest_day(DayBatch::Dns(&dns_day));
            assert_reports_equal(&shard_report, &batch_report, &format!("dns day {i}"));
        }
    }
    assert_eq!(shard_alerts.snapshot(), batch_alerts.snapshot());
    assert_eq!(
        sharded.engine().ua_history().len(),
        batch_engine.ua_history().len(),
        "UA history must merge identically"
    );
    assert_eq!(checkpoint_bytes(sharded.engine()), checkpoint_bytes(&batch_engine));
}

/// Raw-line ingestion through the sharded handle: parsing, sequential
/// host-id assignment and error tallying all match the record path.
#[test]
fn sharded_line_pushes_match_record_pushes() {
    let domains = Arc::new(earlybird::logmodel::DomainInterner::new());
    let raw: Vec<(u64, u32, u8)> =
        (0..150u64).map(|i| (i * 37 % 86_400, (i % 9) as u32, (i % 11) as u8)).collect();
    let queries = build_queries(&raw, &domains);
    let meta = meta_for(12);

    // Reference: records pushed straight into a sharded day.
    let (engine, rec_alerts) = engine_for(&domains, &meta, 2, 16);
    let mut rec_sharded = ShardedEngine::new(engine, 3);
    let mut ingest = rec_sharded.begin_day(Day::new(0), IngestSource::Dns);
    ingest.push_dns_records(&queries);
    let rec_report = ingest.finish();

    // Lines: serialize with the interchange codec, then stream the text in
    // three blocks with a corrupt line and comments sprinkled in.
    let lines: Vec<String> = queries.iter().map(|q| format_dns_line(q, &domains)).collect();
    let (engine, line_alerts) = engine_for(&domains, &meta, 3, 16);
    let mut line_sharded = ShardedEngine::new(engine, 3);
    let mut ingest = line_sharded.begin_day(Day::new(0), IngestSource::Dns);
    let third = lines.len() / 3;
    let block1 = format!("# header comment\n{}\n", lines[..third].join("\n"));
    let block2 = format!("{}\nthis line is corrupt\n", lines[third..2 * third].join("\n"));
    let block3 = format!("{}\n\n", lines[2 * third..].join("\n"));
    assert!(ingest.push_lines(&block1).is_empty());
    let errors = ingest.push_lines(&block2);
    assert_eq!(errors.len(), 1, "exactly the corrupt line fails");
    assert!(ingest.push_lines(&block3).is_empty());
    assert_eq!(ingest.records_pushed(), queries.len());
    assert_eq!(ingest.parse_errors(), 1);
    let line_report = ingest.finish();

    assert_eq!(line_report.stages.parse_errors, 1);
    let mut expected = rec_report.stages;
    expected.parse_errors = 1; // the only permitted difference
    assert!(line_report.stages.deterministic_eq(&expected), "{:?}", line_report.stages);
    assert_eq!(line_report.cc_candidates, rec_report.cc_candidates);
    assert_eq!(line_report.alerts, rec_report.alerts);
    assert_eq!(line_alerts.snapshot(), rec_alerts.snapshot());
}

/// Replays through the sharded handle are no-ops flagged as duplicates,
/// exactly like the plain engine's replay guard.
#[test]
fn sharded_replay_is_a_flagged_noop() {
    let domains = Arc::new(earlybird::logmodel::DomainInterner::new());
    let queries = build_queries(&[(100, 3, 1), (200, 4, 2)], &domains);
    let meta = meta_for(12);
    let (engine, _alerts) = engine_for(&domains, &meta, 2, 8);
    let mut sharded = ShardedEngine::new(engine, 4);

    let mut first = sharded.begin_day(Day::new(0), IngestSource::Dns);
    first.push_dns_records(&queries);
    let first_report = first.finish();
    assert!(!first_report.duplicate);
    let history_len = sharded.engine().history().len();

    let mut replay = sharded.begin_day(Day::new(0), IngestSource::Dns);
    assert!(replay.is_duplicate());
    replay.push_dns_records(&queries); // must be a no-op
    let replay_report = replay.finish();
    assert!(replay_report.duplicate);
    assert_eq!(sharded.engine().history().len(), history_len, "profiles not double-counted");
    assert_eq!(replay_report.stages.rare_destinations, first_report.stages.rare_destinations);
}

/// Cold restart through the [`Persistence`] facade: commit a sharded
/// engine day by day, reopen the store, restore, wrap the restored engine
/// in a new [`ShardedEngine`] (with a *different* shard count), ingest
/// the remaining days — and end bit-identical to an uninterrupted
/// single-engine run.
#[test]
fn sharded_engine_cold_restarts_through_persistence() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let meta = &challenge.dataset.meta;
    let days = &challenge.dataset.days;
    let cut = (meta.bootstrap_days as usize + 1).min(days.len() - 1);
    let cfg = LifecycleConfig {
        compaction: CompactionTrigger::disabled(),
        retention: RetentionPolicy::default(),
    };

    // Reference: one plain engine, never restarted.
    let mut reference = EngineBuilder::lanl()
        .build(Arc::clone(&challenge.dataset.domains), meta.clone())
        .expect("valid config");
    for day in days {
        reference.ingest_day(DayBatch::Dns(day));
    }
    let reference_bytes = checkpoint_bytes(&reference);

    let backend = &Backend::matrix("shard-restart")[0];
    {
        let store =
            Persistence::new(backend.create(cfg).expect("create store"), SnapshotPolicy::default());
        let engine = EngineBuilder::lanl()
            .build(Arc::clone(&challenge.dataset.domains), meta.clone())
            .expect("valid config");
        let mut sharded = ShardedEngine::new(engine, 3);
        for day in &days[..=cut] {
            sharded.ingest_day(DayBatch::Dns(day));
            store.commit(sharded.engine()).expect("freeze").wait().expect("sync commit");
        }
    } // store drops: worker joins, chain is on the backend

    let store =
        Persistence::new(backend.open(cfg).expect("reopen store"), SnapshotPolicy::default());
    let restored = store
        .restore_with_domains(Arc::clone(&challenge.dataset.domains), EngineBuilder::lanl())
        .expect("chain restores");
    let mut sharded = ShardedEngine::new(restored, 7); // different lane count on purpose
    for day in &days[cut + 1..] {
        let report = sharded.ingest_day(DayBatch::Dns(day));
        assert!(!report.duplicate, "restored replay guard must only cover committed days");
    }
    assert_eq!(
        checkpoint_bytes(sharded.engine()),
        reference_bytes,
        "cold restart + resharding must not change a single checkpoint byte"
    );
    backend.cleanup();
}
