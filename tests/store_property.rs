//! Property tests for the snapshot layer: round-trips over arbitrary
//! interner contents (unicode, empty strings, 100k+ symbols) and the
//! guarantee that truncated or corrupted snapshots fail with a typed
//! [`StoreError`] — never a panic, never a silent misload.

use earlybird::engine::{DayBatch, Engine, EngineBuilder, StoreError};
use earlybird::logmodel::{
    DatasetMeta, Day, DnsDayLog, DnsQuery, DnsRecordType, DomainInterner, HostId, HostKind, Ipv4,
    Symbol, Timestamp,
};
use earlybird::store::{sections, Decoder, Encoder};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

/// Maps raw code points to a string, keeping only valid `char`s — exercises
/// empty strings, ASCII, and astral-plane unicode alike.
fn string_from(points: &[u32]) -> String {
    points.iter().filter_map(|&p| char::from_u32(p % 0x11_0000)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary interner contents survive the wire bit-for-bit, with
    /// identical symbol numbering.
    #[test]
    fn interner_contents_roundtrip(
        raw in proptest::collection::vec(
            proptest::collection::vec(0u32..0x11_0000, 0..12),
            0..40,
        )
    ) {
        let original = DomainInterner::new();
        for points in &raw {
            original.intern(&string_from(points));
        }
        let mut e = Encoder::new();
        sections::write_interner_slice(&mut e, &original, 0);
        let bytes = e.into_bytes();

        let restored = DomainInterner::new();
        let mut d = Decoder::new(&bytes, "interners");
        sections::read_interner_into(&mut d, &restored, "raw").unwrap();
        d.finish().unwrap();

        prop_assert_eq!(restored.len(), original.len());
        for (k, s) in original.snapshot().iter().enumerate() {
            prop_assert_eq!(&restored.resolve(Symbol::from_raw(k as u32)), s);
        }
    }
}

/// 100k+ symbols — including empty and unicode names — survive a full
/// engine checkpoint/restore with identical numbering.
#[test]
fn interner_roundtrip_at_scale() {
    let domains = Arc::new(DomainInterner::new());
    domains.intern("");
    domains.intern("🦀.unicode.example");
    for i in 0..110_000u32 {
        domains.intern(&format!("host-{i}.shard-{}.example.com", i % 97));
    }
    let meta = DatasetMeta {
        n_hosts: 4,
        host_kinds: vec![HostKind::Workstation; 4],
        internal_suffixes: vec![],
        bootstrap_days: 0,
        total_days: 2,
    };
    let mut engine = EngineBuilder::lanl().build(Arc::clone(&domains), meta).expect("valid config");
    engine.ingest_day(DayBatch::Dns(&tiny_day(&domains)));

    let mut snapshot = Vec::new();
    engine.freeze().write_to(&mut snapshot).expect("checkpoint succeeds");
    let restored = try_restore(&snapshot).expect("restores");

    assert!(!restored.folded().is_empty(), "folded namespace restored");
    assert_eq!(engine.history().len(), restored.history().len());
    // The raw interner is private to the pipeline, but a second checkpoint
    // proves the full state (110k+ raw symbols included) round-tripped
    // bit-identically.
    let mut again = Vec::new();
    restored.freeze().write_to(&mut again).expect("re-checkpoint succeeds");
    assert_eq!(snapshot, again, "restored engine re-encodes the identical snapshot");
}

fn tiny_day(domains: &DomainInterner) -> DnsDayLog {
    let mut queries = Vec::new();
    for host in [1u32, 2] {
        for beat in 0..12 {
            queries.push(DnsQuery {
                ts: Timestamp::from_secs(20_000 + host as u64 * 5 + beat * 600),
                src: HostId::new(host),
                src_ip: Ipv4::new(10, 0, 0, host as u8),
                qname: domains.intern("cc.evil.example"),
                qtype: DnsRecordType::A,
                answer: Some(Ipv4::new(203, 0, 113, 5)),
            });
        }
    }
    queries.sort_by_key(|q| q.ts);
    DnsDayLog { day: Day::new(0), queries }
}

/// A small but fully populated snapshot (bootstrap + operation day, alerts,
/// host map, both histories), built once and shared by the fault-injection
/// properties below.
fn fixture_snapshot() -> &'static [u8] {
    static SNAP: OnceLock<Vec<u8>> = OnceLock::new();
    SNAP.get_or_init(|| {
        let domains = Arc::new(DomainInterner::new());
        let meta = DatasetMeta {
            n_hosts: 4,
            host_kinds: vec![HostKind::Workstation; 4],
            internal_suffixes: vec!["corp.internal".into()],
            bootstrap_days: 0,
            total_days: 2,
        };
        let mut engine = EngineBuilder::lanl()
            .soc_seed("ioc.evil.example")
            .auto_investigate(true)
            .build(Arc::clone(&domains), meta)
            .expect("valid config");
        engine.ingest_day(DayBatch::Dns(&tiny_day(&domains)));
        let mut out = Vec::new();
        engine.freeze().write_to(&mut out).expect("checkpoint succeeds");
        // One appended day segment so fault injection covers the segment
        // path too.
        let mut day1 = tiny_day(&domains);
        day1.day = Day::new(1);
        for q in &mut day1.queries {
            q.ts = Timestamp::from_secs(q.ts.as_secs() + 86_400);
        }
        engine.ingest_day(DayBatch::Dns(&day1));
        engine.freeze_day().expect("segment freezes").write_to(&mut out).expect("segment succeeds");
        out
    })
}

// Raw single-byte-stream restore is exactly what these properties probe, so
// they read through the one-release deprecated shim on purpose (the facade
// path reads the same bytes via `Persistence::restore`).
fn try_restore(bytes: &[u8]) -> Result<Engine, StoreError> {
    EngineBuilder::lanl().restore_stream(&mut &bytes[..])
}

#[test]
fn fixture_snapshot_restores_cleanly() {
    let engine = try_restore(fixture_snapshot()).expect("pristine fixture restores");
    assert_eq!(engine.days().count(), 2, "both days retained");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Flipping any byte anywhere in the stream yields a typed error —
    /// caught structurally or, at the latest, by the block CRC. Never a
    /// panic, never a silently wrong engine.
    #[test]
    fn corrupted_snapshots_fail_with_typed_errors(
        pos in 0.0f64..1.0,
        xor in 1u32..256,
    ) {
        let pristine = fixture_snapshot();
        let mut bytes = pristine.to_vec();
        let idx = ((pos * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[idx] ^= xor as u8;
        match try_restore(&bytes) {
            Err(_) => {} // every StoreError variant is acceptable; panics are not
            Ok(_) => prop_assert!(false, "byte {} xor {:#04x} restored successfully", idx, xor),
        }
    }

    /// Truncating the stream anywhere strictly inside a block yields a
    /// typed error (a cut exactly between blocks legitimately restores the
    /// shorter prefix — that is how append streams work).
    #[test]
    fn truncated_snapshots_fail_with_typed_errors(pos in 0.0f64..1.0) {
        let pristine = fixture_snapshot();
        let cut = ((pos * pristine.len() as f64) as usize).min(pristine.len() - 1);
        let restored = try_restore(&pristine[..cut]);
        // Find the only legitimate boundary: the end of the full block.
        let full_len = full_block_len(pristine);
        if cut == full_len {
            prop_assert!(restored.is_ok(), "cut at the block boundary is a valid shorter stream");
        } else {
            prop_assert!(restored.is_err(), "cut at {} must not restore", cut);
        }
    }
}

/// Locates the boundary after the first block by scanning for the second
/// occurrence of the magic (the fixture's payload bytes are CRC-guarded, so
/// a false positive would still fail the equality below).
fn full_block_len(stream: &[u8]) -> usize {
    let magic = b"EBSTORE1";
    stream
        .windows(magic.len())
        .enumerate()
        .skip(1)
        .find(|(_, w)| w == magic)
        .map(|(i, _)| i)
        .expect("fixture has two blocks")
}
