//! Streaming ingestion: feed a day of raw tab-separated log lines into the
//! engine chunk by chunk through [`Engine::begin_day`], without ever
//! materializing the day as parsed records.
//!
//! This is the shape of a production tailer: read a block of lines from the
//! collector, `push_lines` it (parsing + reduction fan out across the
//! engine's worker pool; bad lines are tallied, not fatal), and call
//! `finish` at day rollover to run detection and drain alerts. The same
//! handle also accepts pre-parsed records (`push_dns_records`), and
//! `ingest_day` is just this path with a single push.
//!
//! Run with: `cargo run --release --example streaming_ingest`

use earlybird::engine::{CollectingSink, EngineBuilder, IngestSource};
use earlybird::logmodel::{
    format_dns_line, DatasetMeta, Day, DnsQuery, DnsRecordType, DomainInterner, HostId, HostKind,
    Ipv4, Timestamp,
};
use std::sync::Arc;

fn main() {
    // Simulate the raw feed: a day of interchange-format DNS lines in which
    // two workstations beacon to a C&C domain every 10 minutes. In a real
    // deployment these blocks would come off a file or socket tail.
    let feed = Arc::new(DomainInterner::new());
    let mut queries = Vec::new();
    let mut push = |ts: u64, host: u32, name: &str, ip: [u8; 4]| {
        queries.push(DnsQuery {
            ts: Timestamp::from_secs(ts),
            src: HostId::new(host),
            src_ip: Ipv4::new(10, 0, 0, host as u8),
            qname: feed.intern(name),
            qtype: DnsRecordType::A,
            answer: Some(Ipv4::new(ip[0], ip[1], ip[2], ip[3])),
        });
    };
    for victim in [1u32, 2] {
        let infected_at = 36_000 + victim as u64 * 45;
        push(infected_at, victim, "dropper.example-bad.com", [191, 146, 166, 40]);
        for beat in 0..30 {
            push(infected_at + 90 + beat * 600, victim, "cc.example-bad.com", [191, 146, 166, 145]);
        }
    }
    for t in 0..40 {
        push(30_000 + t * 977, 7, "totally-fine.net", [8, 8, 8, 8]);
    }
    queries.sort_by_key(|q| q.ts);
    let lines: Vec<String> = queries.iter().map(|q| format_dns_line(q, &feed)).collect();

    // The engine parses into its own namespace — it never sees `feed`.
    let meta = DatasetMeta {
        n_hosts: 8,
        host_kinds: vec![HostKind::Workstation; 8],
        internal_suffixes: vec![],
        bootstrap_days: 0,
        total_days: 1,
    };
    let sink = CollectingSink::new();
    let alerts = sink.handle();
    let mut engine = EngineBuilder::lanl()
        .auto_investigate(true)
        .ingest_chunk_records(64) // small chunks so even this demo fans out
        .sink(sink)
        .build(Arc::new(DomainInterner::new()), meta)
        .expect("valid config");

    // Stream the day in bounded blocks, as a tailer would.
    let mut ingest = engine.begin_day(Day::new(0), IngestSource::Dns);
    for (i, block) in lines.chunks(25).enumerate() {
        let mut text = block.join("\n");
        if i == 1 {
            text.push_str("\ngarbage line from a flaky collector\n");
        }
        let errors = ingest.push_lines(&text);
        for (lineno, e) in errors {
            eprintln!("  block {i}, line {lineno}: {e}");
        }
    }
    println!(
        "streamed {} records ({} bad lines) — finishing day...",
        ingest.records_pushed(),
        ingest.parse_errors()
    );
    let report = ingest.finish();

    println!(
        "\nday {:?}: {} rare destinations, {} C&C detections, {} alerts",
        report.day,
        report.stages.rare_destinations,
        report.stages.cc_detections,
        report.stages.alerts_emitted
    );
    for c in report.detections() {
        println!(
            "  C&C: {} (score {:.1}, period ~{}s, {} automated hosts)",
            c.name,
            c.score,
            c.period_secs.unwrap_or(0),
            c.auto_hosts
        );
    }
    println!("\nAlert stream:");
    for a in alerts.snapshot() {
        println!("  #{} {:<28} {:?} score {:.2}", a.sequence, a.name, a.verdict, a.score);
    }
}
