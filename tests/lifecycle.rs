//! Snapshot lifecycle manager: the manifest-driven [`StoreDir`], segment
//! compaction, and retention GC — run as a backend matrix.
//!
//! The acceptance bar (ISSUE 4, extended by ISSUE 5 to every
//! [`ObjectStore`] backend): for the LANL DNS and enterprise proxy
//! suites, an engine restored from a **compacted** store produces
//! bit-identical reports/alerts to one restored from the uncompacted
//! `full + N segments` chain — on `{localfs, mem, s3lite}` alike;
//! `StoreDir::open` quarantines crash residue; stale (backwards) day
//! segments are refused with a typed error; a read-only local store is a
//! typed, actionable error; and the local backend stays byte-compatible
//! with directories written before the backend split.

// Each integration-test crate uses a subset of the harness; the unused
// remainder is not a defect.
#[path = "support/backends.rs"]
#[allow(dead_code)]
mod support;

use earlybird::engine::{
    Alert, CompactionTrigger, DayBatch, DayReport, Engine, EngineBuilder, LifecycleConfig,
    Persistence, RetentionPolicy, SnapshotPolicy, StoreDir, StoreError,
};
use earlybird::logmodel::{
    DatasetMeta, Day, DnsDayLog, DnsQuery, DnsRecordType, DomainInterner, HostId, HostKind, Ipv4,
    Timestamp,
};
use earlybird::store::BlockKind;
use earlybird::synthgen::ac::{AcConfig, AcGenerator, AcWorld};
use earlybird::synthgen::lanl::{LanlChallenge, LanlConfig, LanlGenerator};
use earlybird_engine::{CollectedAlerts, CollectingSink};
use std::path::PathBuf;
use std::sync::Arc;
use support::Backend;

fn temp_store(tag: &str) -> PathBuf {
    let root =
        std::env::temp_dir().join(format!("earlybird-lifecycle-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn assert_reports_equal(restored: &DayReport, reference: &DayReport, context: &str) {
    assert_eq!(restored.day, reference.day, "{context}: day");
    assert!(restored.stages.deterministic_eq(&reference.stages), "{context}: stage counters");
    assert_eq!(restored.cc_candidates, reference.cc_candidates, "{context}: candidates");
    assert_eq!(restored.alerts, reference.alerts, "{context}: alerts");
    assert_eq!(restored.outcome, reference.outcome, "{context}: BP outcome");
}

fn lanl_engine(challenge: &LanlChallenge) -> (Engine, CollectedAlerts) {
    let sink = CollectingSink::new();
    let handle = sink.handle();
    let engine = EngineBuilder::lanl()
        .soc_seed("ioc.planted.c3")
        .auto_investigate(true)
        .sink(sink)
        .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
        .expect("valid config");
    (engine, handle)
}

/// Builds a `full + N segments` chain in a fresh store by running the
/// daily cycle for `days[..split]` (compaction disabled so the chain
/// stays long), then drops the engine — the "crash". The chain lives on
/// inside the returned [`Persistence`] handle.
fn build_lanl_chain(challenge: &LanlChallenge, backend: &Backend, split: usize) -> Persistence {
    let cfg = LifecycleConfig {
        compaction: CompactionTrigger::disabled(),
        retention: RetentionPolicy::default(),
    };
    let dir = backend.create(cfg).expect("create store");
    let store = Persistence::new(dir, SnapshotPolicy::default());
    let (mut engine, _alerts) = lanl_engine(challenge);
    for (i, day) in challenge.dataset.days[..split].iter().enumerate() {
        engine.ingest_day(DayBatch::Dns(day));
        let outcome = store.commit(&engine).expect("freeze").wait().expect("daily persist commits");
        let expected = if i == 0 { BlockKind::Full } else { BlockKind::DaySegment };
        assert_eq!(outcome.block.kind, expected, "day {i} block kind");
        assert!(outcome.compaction.is_none(), "trigger is disabled");
    }
    assert_eq!(store.store().segment_count(), split - 1, "one segment per day after the full");
    store
}

/// Restores from `store`, ingests `days[split..]`, and returns the final
/// engine plus its continued reports and post-restore alert stream.
fn continue_lanl(
    store: &Persistence,
    challenge: &LanlChallenge,
    split: usize,
) -> (Engine, Vec<DayReport>, Vec<Alert>) {
    let sink = CollectingSink::new();
    let alerts = sink.handle();
    let mut engine = store.restore(EngineBuilder::lanl().sink(sink)).expect("chain restores");
    let reports = challenge.dataset.days[split..]
        .iter()
        .map(|day| engine.ingest_day(DayBatch::Dns(day)))
        .collect();
    (engine, reports, alerts.snapshot())
}

/// The acceptance criterion on the LANL DNS suite, across the backend
/// matrix: a compacted store and the uncompacted chain it replaced restore
/// to engines whose continued reports, alerts, and re-scored candidates
/// are bit-identical — to each other and to an engine that never
/// restarted.
#[test]
fn lanl_compacted_store_restores_bit_identically() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let split = (challenge.dataset.meta.bootstrap_days + 4) as usize;

    let (mut reference, ref_alerts) = lanl_engine(&challenge);
    let mut ref_reports = Vec::new();
    for day in &challenge.dataset.days {
        ref_reports.push(reference.ingest_day(DayBatch::Dns(day)));
    }

    for backend in Backend::matrix("lanl-equiv") {
        let ctx = backend.name();
        let store = build_lanl_chain(&challenge, &backend, split);
        let chain_entries = store.store().entries().to_vec();
        let (chain_engine, chain_reports, chain_alerts) = continue_lanl(&store, &challenge, split);

        // Compact: the whole chain folds into one full block, atomically.
        let report = store.compact().expect("compaction succeeds");
        assert_eq!(report.segments_folded, chain_entries.len() - 1, "{ctx}");
        assert_eq!(report.gc_failures, 0, "{ctx}: clean pass deletes everything it should");
        assert!(report.gc_failed_objects.is_empty(), "{ctx}: no leaked object names");
        assert_eq!(store.store().entries().len(), 1, "{ctx}: single full block after compaction");
        assert_eq!(store.store().entries()[0].kind, BlockKind::Full, "{ctx}");
        assert!(
            report.bytes_after <= report.bytes_before,
            "{ctx}: compaction never grows the store"
        );
        let (compacted_engine, compacted_reports, compacted_alerts) =
            continue_lanl(&store, &challenge, split);

        // Chain-restored and compacted-restored continuations are
        // identical to each other and to the uninterrupted reference.
        for (i, (chain, compacted)) in chain_reports.iter().zip(&compacted_reports).enumerate() {
            assert_reports_equal(compacted, chain, &format!("{ctx}: compacted vs chain day {i}"));
            assert_reports_equal(
                chain,
                &ref_reports[split + i],
                &format!("{ctx}: chain vs reference {i}"),
            );
        }
        assert_eq!(chain_alerts, compacted_alerts, "{ctx}: alert streams bit-identical");
        let split_day = Day::new(split as u32);
        let expected_suffix: Vec<Alert> =
            ref_alerts.snapshot().into_iter().filter(|a| a.day >= split_day).collect();
        assert!(!expected_suffix.is_empty(), "suite must alert after the split");
        assert_eq!(compacted_alerts, expected_suffix, "{ctx}: reference alert suffix");

        // Retained state agrees everywhere the detection layer reads.
        assert_eq!(
            chain_engine.days().collect::<Vec<_>>(),
            compacted_engine.days().collect::<Vec<_>>(),
            "{ctx}"
        );
        for day in chain_engine.days() {
            assert_eq!(
                chain_engine.cc_scores(day).unwrap(),
                compacted_engine.cc_scores(day).unwrap(),
                "{ctx}: re-scored candidates for {day:?}"
            );
        }
        backend.cleanup();
    }
}

/// The same acceptance criterion on the enterprise proxy suite, sharing
/// the dataset's interners across the restart — matrixed over backends.
#[test]
fn enterprise_proxy_compacted_store_restores_bit_identically() {
    let world: AcWorld = AcGenerator::new(AcConfig::tiny()).generate();
    let meta = &world.dataset.meta;
    let last = (meta.bootstrap_days + 8).min(meta.total_days) as usize;
    let split = (meta.bootstrap_days + 4) as usize;

    let ac_engine = |world: &AcWorld| -> (Engine, CollectedAlerts) {
        let sink = CollectingSink::new();
        let handle = sink.handle();
        let engine = EngineBuilder::enterprise()
            .whois(world.intel.whois.clone())
            .proxy_interners(Arc::clone(&world.dataset.uas), Arc::clone(&world.dataset.paths))
            .auto_investigate(true)
            .sink(sink)
            .build(Arc::clone(&world.dataset.domains), world.dataset.meta.clone())
            .expect("valid config");
        (engine, handle)
    };

    let (mut reference, ref_alerts) = ac_engine(&world);
    let mut ref_reports = Vec::new();
    for day in &world.dataset.days[..last] {
        ref_reports.push(reference.ingest_day(DayBatch::Proxy { day, dhcp: &world.dataset.dhcp }));
    }

    for backend in Backend::matrix("proxy-equiv") {
        let ctx = backend.name();
        let cfg = LifecycleConfig {
            compaction: CompactionTrigger::disabled(),
            retention: RetentionPolicy::default(),
        };
        let dir = backend.create(cfg).expect("create store");
        let store = Persistence::new(dir, SnapshotPolicy::default());
        {
            let (mut engine, _alerts) = ac_engine(&world);
            for day in &world.dataset.days[..split] {
                engine.ingest_day(DayBatch::Proxy { day, dhcp: &world.dataset.dhcp });
                store.commit(&engine).expect("freeze").wait().expect("daily persist");
            }
        }

        let continue_proxy = |store: &Persistence| -> (Vec<DayReport>, Vec<Alert>) {
            let sink = CollectingSink::new();
            let alerts = sink.handle();
            let builder = EngineBuilder::enterprise()
                .proxy_interners(Arc::clone(&world.dataset.uas), Arc::clone(&world.dataset.paths))
                .sink(sink);
            let mut engine = store
                .restore_with_domains(Arc::clone(&world.dataset.domains), builder)
                .expect("chain restores");
            assert!(engine.config().whois.is_some(), "WHOIS registry restored");
            let reports = world.dataset.days[split..last]
                .iter()
                .map(|day| engine.ingest_day(DayBatch::Proxy { day, dhcp: &world.dataset.dhcp }))
                .collect();
            (reports, alerts.snapshot())
        };

        let (chain_reports, chain_alerts) = continue_proxy(&store);
        store.compact().expect("compaction succeeds");
        assert_eq!(store.store().entries().len(), 1, "{ctx}");
        let (compacted_reports, compacted_alerts) = continue_proxy(&store);

        for (i, (chain, compacted)) in chain_reports.iter().zip(&compacted_reports).enumerate() {
            assert_reports_equal(
                compacted,
                chain,
                &format!("{ctx}: proxy compacted vs chain day {i}"),
            );
            assert_reports_equal(
                chain,
                &ref_reports[split + i],
                &format!("{ctx}: proxy vs reference {i}"),
            );
        }
        let split_day = Day::new(split as u32);
        let expected_suffix: Vec<Alert> =
            ref_alerts.snapshot().into_iter().filter(|a| a.day >= split_day).collect();
        assert_eq!(chain_alerts, expected_suffix, "{ctx}: proxy chain alert suffix");
        assert_eq!(compacted_alerts, expected_suffix, "{ctx}: proxy compacted alert suffix");
        backend.cleanup();
    }
}

/// The compaction trigger runs inside the daily cycle: with
/// `max_segments = 3` the chain never grows past 4 visible segments, and
/// the continued run still matches an uninterrupted reference — on every
/// backend.
#[test]
fn daily_cycle_compacts_on_trigger_and_stays_equivalent() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let cfg = LifecycleConfig {
        compaction: CompactionTrigger {
            max_segments: Some(3),
            max_segment_bytes: None,
            fold_segments: None,
        },
        retention: RetentionPolicy::default(),
    };

    let (mut reference, ref_alerts) = lanl_engine(&challenge);
    for day in &challenge.dataset.days {
        reference.ingest_day(DayBatch::Dns(day));
    }

    for backend in Backend::matrix("trigger") {
        let ctx = backend.name();
        let mut compactions = 0usize;
        {
            let dir = backend.create(cfg).expect("create store");
            let store = Persistence::new(dir, SnapshotPolicy::default());
            let (mut engine, live_alerts) = lanl_engine(&challenge);
            for day in &challenge.dataset.days {
                engine.ingest_day(DayBatch::Dns(day));
                let outcome = store.commit(&engine).expect("freeze").wait().expect("daily persist");
                if outcome.compaction.is_some() {
                    compactions += 1;
                }
                assert!(
                    store.store().segment_count() <= 3,
                    "{ctx}: trigger keeps the chain bounded"
                );
            }
            assert!(
                compactions >= 2,
                "{ctx}: a long run must compact repeatedly, saw {compactions}"
            );
            // The live run itself is untouched by compaction passes.
            assert_eq!(
                live_alerts.snapshot(),
                ref_alerts.snapshot(),
                "{ctx}: live alerts unaffected"
            );
        }

        // O(current state) restore: the reopened chain holds at most
        // `1 + max_segments` objects however many days were ingested.
        let dir = backend.open(cfg).expect("reopen");
        assert!(dir.entries().len() <= 4, "{ctx}: chain stays bounded: {:?}", dir.entries().len());
        assert!(dir.quarantined().is_empty(), "{ctx}: clean shutdown leaves no orphans");
        let store = Persistence::new(dir, SnapshotPolicy::default());
        let restored = store.restore(EngineBuilder::lanl()).expect("restores");
        assert_eq!(
            restored.days().collect::<Vec<_>>(),
            reference.days().collect::<Vec<_>>(),
            "{ctx}: retained days survive compaction cycles"
        );
        for (a, b) in restored.reports().zip(reference.reports()) {
            assert_eq!(a.day, b.day, "{ctx}");
            assert!(a.stages.deterministic_eq(&b.stages), "{ctx}: stored counters for {:?}", a.day);
        }
        backend.cleanup();
    }
}

/// Retention GC: compaction prunes contact indexes past `retain_days`, the
/// pruned days' counter reports stay in the full block, and the continued
/// run is still bit-identical to an uninterrupted engine.
#[test]
fn retention_gc_prunes_indexes_but_keeps_counters() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let boot = challenge.dataset.meta.bootstrap_days as usize;
    let split = boot + 5;

    let (mut reference, ref_alerts) = lanl_engine(&challenge);
    let mut ref_reports = Vec::new();
    for day in &challenge.dataset.days {
        ref_reports.push(reference.ingest_day(DayBatch::Dns(day)));
    }

    for backend in Backend::matrix("retention") {
        let ctx = backend.name();
        let cfg = LifecycleConfig {
            compaction: CompactionTrigger::disabled(),
            retention: RetentionPolicy { retain_days: Some(2) },
        };
        let dir = backend.create(cfg).expect("create store");
        let store = Persistence::new(dir, SnapshotPolicy::default());
        {
            let (mut engine, _alerts) = lanl_engine(&challenge);
            for day in &challenge.dataset.days[..split] {
                engine.ingest_day(DayBatch::Dns(day));
                store.commit(&engine).expect("freeze").wait().expect("daily persist");
            }
        }

        let report = store.compact().expect("compaction succeeds");
        assert_eq!(
            report.days_pruned,
            split - boot - 2,
            "{ctx}: all but the newest 2 indexes pruned"
        );

        let sink = CollectingSink::new();
        let alerts = sink.handle();
        let mut restored = store.restore(EngineBuilder::lanl().sink(sink)).expect("restores");
        assert_eq!(restored.days().count(), 2, "{ctx}: only the retention window investigable");
        assert_eq!(restored.reports().count(), split, "{ctx}: every acked day's counters survive");
        for report in restored.reports() {
            let reference = &ref_reports[report.day.index() as usize];
            assert!(report.stages.deterministic_eq(&reference.stages), "{ctx}: {:?}", report.day);
        }
        let pruned = Day::new(boot as u32);
        assert!(restored.day_index(pruned).is_none(), "{ctx}: pruned day not investigable");
        assert!(restored.report(pruned).is_some(), "{ctx}: but its counters are still the record");

        // Continued ingestion is unaffected by the pruned indexes.
        for (i, day) in challenge.dataset.days[split..].iter().enumerate() {
            let report = restored.ingest_day(DayBatch::Dns(day));
            assert_reports_equal(&report, &ref_reports[split + i], &format!("{ctx}: post-GC {i}"));
        }
        let split_day = Day::new(split as u32);
        let expected_suffix: Vec<Alert> =
            ref_alerts.snapshot().into_iter().filter(|a| a.day >= split_day).collect();
        assert_eq!(alerts.snapshot(), expected_suffix, "{ctx}: post-GC alert stream");
        backend.cleanup();
    }
}

/// A restored engine keeps appending segments to the same store — the
/// multi-incarnation daily cycle — and the chain stays replayable.
#[test]
fn restored_engine_continues_the_same_directory() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let boot = challenge.dataset.meta.bootstrap_days as usize;
    let first_crash = boot + 2;
    let second_crash = boot + 5;
    let cfg = LifecycleConfig::default();

    let (mut reference, ref_alerts) = lanl_engine(&challenge);
    for day in &challenge.dataset.days {
        reference.ingest_day(DayBatch::Dns(day));
    }

    for backend in Backend::matrix("incarnations") {
        // Incarnation 1.
        {
            let dir = backend.create(cfg).expect("create store");
            let store = Persistence::new(dir, SnapshotPolicy::default());
            let (mut engine, _alerts) = lanl_engine(&challenge);
            for day in &challenge.dataset.days[..first_crash] {
                engine.ingest_day(DayBatch::Dns(day));
                store.commit(&engine).expect("freeze").wait().expect("daily persist");
            }
        }
        // Incarnation 2: restore, continue appending to the same store.
        {
            let dir = backend.open(cfg).expect("reopen");
            let store = Persistence::new(dir, SnapshotPolicy::default());
            let mut engine =
                store.restore(EngineBuilder::lanl().sink(CollectingSink::new())).expect("restores");
            for day in &challenge.dataset.days[first_crash..second_crash] {
                engine.ingest_day(DayBatch::Dns(day));
                store.commit(&engine).expect("freeze").wait().expect("daily persist");
            }
        }
        // Incarnation 3: the final restore holds every acked day and
        // finishes the stream identically to the uninterrupted reference.
        let dir = backend.open(cfg).expect("reopen");
        let store = Persistence::new(dir, SnapshotPolicy::default());
        let sink = CollectingSink::new();
        let alerts = sink.handle();
        let mut engine = store.restore(EngineBuilder::lanl().sink(sink)).expect("restores");
        assert_eq!(engine.reports().count(), second_crash, "all acked days restored");
        for day in &challenge.dataset.days[second_crash..] {
            engine.ingest_day(DayBatch::Dns(day));
        }
        let crash_day = Day::new(second_crash as u32);
        let expected_suffix: Vec<Alert> =
            ref_alerts.snapshot().into_iter().filter(|a| a.day >= crash_day).collect();
        assert_eq!(
            alerts.snapshot(),
            expected_suffix,
            "{}: third-incarnation alert stream",
            backend.name()
        );
        backend.cleanup();
    }
}

// -- stale segments ---------------------------------------------------------

fn synthetic_day(domains: &DomainInterner, day: u32) -> DnsDayLog {
    let mut queries = Vec::new();
    for host in [1u32, 2] {
        for beat in 0..12 {
            queries.push(DnsQuery {
                ts: Timestamp::from_secs(u64::from(day) * 86_400 + host as u64 * 5 + beat * 600),
                src: HostId::new(host),
                src_ip: Ipv4::new(10, 0, 0, host as u8),
                qname: domains.intern("cc.evil.example"),
                qtype: DnsRecordType::A,
                answer: Some(Ipv4::new(203, 0, 113, 5)),
            });
        }
    }
    queries.sort_by_key(|q| q.ts);
    DnsDayLog { day: Day::new(day), queries }
}

fn synthetic_engine(domains: &Arc<DomainInterner>, total_days: u32) -> Engine {
    let meta = DatasetMeta {
        n_hosts: 4,
        host_kinds: vec![HostKind::Workstation; 4],
        internal_suffixes: vec![],
        bootstrap_days: 0,
        total_days,
    };
    EngineBuilder::lanl().build(Arc::clone(domains), meta).expect("valid config")
}

/// The PR-4 fix: freezing a segment for a day *behind* the chain's newest
/// persisted day is refused with [`StoreError::StaleSegment`] instead of
/// writing a chain the restore path rejects — on every backend.
// Raw-stream restore has no facade equivalent (streams are not
// manifest-managed); it stays on the deprecated shim for one release.
#[test]
fn stale_day_segment_is_a_typed_error() {
    let domains = Arc::new(DomainInterner::new());
    let mut engine = synthetic_engine(&domains, 4);
    engine.ingest_day(DayBatch::Dns(&synthetic_day(&domains, 0)));
    engine.ingest_day(DayBatch::Dns(&synthetic_day(&domains, 2)));

    let mut stream = Vec::new();
    engine.freeze().write_to(&mut stream).expect("full checkpoint");

    // Back-fill an older day, then try to freeze it incrementally.
    engine.ingest_day(DayBatch::Dns(&synthetic_day(&domains, 1)));
    let err = engine.freeze_day().expect_err("stale segment must be refused");
    assert!(
        matches!(err, StoreError::StaleSegment { day: 1, last_persisted: 2 }),
        "typed stale-segment error, got {err}"
    );
    // The refusal happens at freeze time: the stream was never touched
    // and still restores to the checkpointed state.
    let restored = EngineBuilder::lanl().restore_stream(&mut stream.as_slice()).expect("restores");
    assert_eq!(restored.reports().count(), 2);

    // A fresh full snapshot is the sanctioned way to persist back-fill.
    let mut full = Vec::new();
    engine.freeze().write_to(&mut full).expect("full checkpoint covers the back-filled day");
    let restored = EngineBuilder::lanl().restore_stream(&mut full.as_slice()).expect("restores");
    assert_eq!(restored.reports().count(), 3, "back-filled day persisted by the full path");

    // The managed-store path refuses the same way, whatever the backend.
    for backend in Backend::matrix("stale") {
        let dir = backend.create(LifecycleConfig::default()).expect("create");
        let store = Persistence::new(dir, SnapshotPolicy::default());
        let mut engine = synthetic_engine(&domains, 4);
        engine.ingest_day(DayBatch::Dns(&synthetic_day(&domains, 0)));
        engine.ingest_day(DayBatch::Dns(&synthetic_day(&domains, 2)));
        store.commit(&engine).expect("freeze").wait().expect("first persist writes the full block");
        engine.ingest_day(DayBatch::Dns(&synthetic_day(&domains, 1)));
        let err = store.commit(&engine).expect_err("stale segment refused");
        assert!(
            matches!(err, StoreError::StaleSegment { day: 1, last_persisted: 2 }),
            "{}: {err}",
            backend.name()
        );
        let restored = store.restore(EngineBuilder::lanl()).expect("chain still replayable");
        assert_eq!(restored.reports().count(), 2, "{}", backend.name());
        backend.cleanup();
    }
}

/// A pending block begun before an intervening commit carries a
/// generation-stale name; committing it is refused typed (it would
/// duplicate a chain entry and brick the manifest) and the store stays
/// healthy — on every backend.
#[test]
fn stale_pending_block_from_an_earlier_generation_is_refused() {
    use earlybird::store::{CheckpointMeta, FORMAT_VERSION};
    use std::io::Write as _;

    let meta_for = |bytes: u64| CheckpointMeta {
        kind: BlockKind::Full,
        format_version: FORMAT_VERSION,
        bytes,
        checksum: 0,
        days: 0,
        retained_days: 0,
    };

    for backend in Backend::matrix("stale-pending") {
        let mut dir = backend.create(LifecycleConfig::default()).expect("create");
        // Two outstanding pendings from the same handle (begin is &self).
        let mut first = dir.begin(BlockKind::Full).expect("begin first");
        let mut second = dir.begin(BlockKind::Full).expect("begin second");
        first.write_all(b"AAAA").unwrap();
        second.write_all(b"BBBBBB").unwrap();

        dir.commit_full(first, &meta_for(4)).expect("first commit wins");
        let err = dir.commit_full(second, &meta_for(6)).expect_err("stale pending refused");
        assert!(matches!(err, StoreError::Corrupt { .. }), "{}: {err}", backend.name());

        // The store is untouched by the refused commit and reopens clean.
        assert_eq!(dir.entries().len(), 1, "{}", backend.name());
        assert_eq!(dir.entries()[0].bytes, 4, "{}: first commit's bytes", backend.name());
        drop(dir);
        let reopened = backend.open(LifecycleConfig::default()).expect("reopens");
        assert_eq!(reopened.entries().len(), 1, "{}", backend.name());
        backend.cleanup();
    }
}

/// The restore path independently rejects a hand-built chain whose segment
/// moves backwards (defense in depth for streams written by other tools).
// Raw-stream restore stays on the deprecated shim for one release.
#[test]
fn restore_rejects_backwards_segment_chains() {
    let domains = Arc::new(DomainInterner::new());

    // Segment stream written by two engines so the write-side guard never
    // sees the regression: engine A persists days 0 and 2; engine B, with
    // the same prefix, persists day 1 as its segment. Splicing B's segment
    // after A's full block yields a backwards chain.
    let mut a = synthetic_engine(&domains, 4);
    a.ingest_day(DayBatch::Dns(&synthetic_day(&domains, 0)));
    a.ingest_day(DayBatch::Dns(&synthetic_day(&domains, 2)));
    let mut spliced = Vec::new();
    a.freeze().write_to(&mut spliced).expect("full checkpoint");

    let mut b = synthetic_engine(&domains, 4);
    b.ingest_day(DayBatch::Dns(&synthetic_day(&domains, 0)));
    let mut b_stream = Vec::new();
    b.freeze().write_to(&mut b_stream).expect("baseline");
    b.ingest_day(DayBatch::Dns(&synthetic_day(&domains, 1)));
    let baseline = b_stream.len();
    b.freeze_day().expect("fresh day freezes").write_to(&mut b_stream).expect("segment for day 1");
    spliced.extend_from_slice(&b_stream[baseline..]);

    let err =
        EngineBuilder::lanl().restore_stream(&mut spliced.as_slice()).expect_err("must reject");
    assert!(matches!(err, StoreError::Corrupt { .. }), "typed corrupt error, got {err}");
}

// -- quarantine and damage --------------------------------------------------

/// `StoreDir::open` sweeps crash residue — temp files and unreferenced
/// blocks — into `quarantine/` and the chain restores untouched (local
/// filesystem layout, byte-compatible with pre-backend stores).
#[test]
fn open_quarantines_orphans_and_restores() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let split = (challenge.dataset.meta.bootstrap_days + 2) as usize;
    let root = temp_store("quarantine");
    build_lanl_chain(&challenge, &Backend::LocalFs(root.clone()), split);

    // Crash residue: an abandoned pending block, a superseded chain file
    // that was never deleted, and an unrelated file that must be ignored.
    std::fs::write(root.join("full-000004.ebstore.tmp"), b"torn half-written block").unwrap();
    std::fs::write(root.join("full-000099.ebstore"), b"EBSTORE1 leftover").unwrap();
    std::fs::write(root.join("notes.txt"), b"operator scribbles").unwrap();

    let cfg = LifecycleConfig::default();
    let dir = StoreDir::open(&root, cfg).expect("open sweeps orphans");
    assert_eq!(dir.quarantined().len(), 2, "both orphans quarantined: {:?}", dir.quarantined());
    assert!(root.join("notes.txt").exists(), "foreign files are left alone");
    assert!(!root.join("full-000004.ebstore.tmp").exists());
    assert!(!root.join("full-000099.ebstore").exists());
    for path in dir.quarantined() {
        let path = PathBuf::from(path);
        assert!(path.exists(), "quarantined file preserved at {path:?}");
        assert!(path.starts_with(root.join("quarantine")));
    }
    let store = Persistence::new(dir, SnapshotPolicy::default());
    let restored = store.restore(EngineBuilder::lanl()).expect("chain unaffected");
    assert_eq!(restored.reports().count(), split);
    drop(store);

    // Idempotent: a second open finds nothing left to sweep.
    let again = StoreDir::open(&root, cfg).expect("reopen");
    assert!(again.quarantined().is_empty());
    std::fs::remove_dir_all(&root).unwrap();
}

/// The backend-generic version: an orphan planted through the backend's
/// own upload path is quarantined at open on every backend, and never
/// reappears in the live namespace.
#[test]
fn orphaned_objects_are_quarantined_on_every_backend() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let split = (challenge.dataset.meta.bootstrap_days + 2) as usize;

    for backend in Backend::matrix("orphans") {
        build_lanl_chain(&challenge, &backend, split);
        backend.plant_orphan("seg-000099.ebstore", b"EBSTORE1 leftover block");

        let dir = backend.open(LifecycleConfig::default()).expect("open sweeps orphans");
        assert_eq!(
            dir.quarantined().len(),
            1,
            "{}: the orphan is quarantined: {:?}",
            backend.name(),
            dir.quarantined()
        );
        let store = Persistence::new(dir, SnapshotPolicy::default());
        let restored = store.restore(EngineBuilder::lanl()).expect("chain unaffected");
        assert_eq!(restored.reports().count(), split, "{}", backend.name());
        drop(store);

        // Idempotent: a second open finds nothing left to sweep.
        let again = backend.open(LifecycleConfig::default()).expect("reopen");
        assert!(again.quarantined().is_empty(), "{}", backend.name());
        backend.cleanup();
    }
}

/// Damage to the manifest or to manifest-referenced objects is surfaced as
/// a typed error — never silently repaired, never a panic. A missing chain
/// object is checked on every backend; byte-level damage is exercised on
/// the local filesystem where we can reach the raw files.
#[test]
fn damaged_stores_fail_with_typed_errors() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let split = (challenge.dataset.meta.bootstrap_days + 2) as usize;
    let cfg = LifecycleConfig::default();

    // A missing chain object, on every backend.
    for backend in Backend::matrix("damage-missing") {
        let store = build_lanl_chain(&challenge, &backend, split);
        let victim = store.store().entries()[1].name.clone();
        drop(store);
        backend.delete_object(&victim);
        let err = backend.open(cfg).expect_err("missing chain object");
        assert!(matches!(err, StoreError::Corrupt { .. }), "{}: {err}", backend.name());
        backend.cleanup();
    }

    // A truncated chain file (length disagrees with the manifest).
    let root = temp_store("damage-truncated");
    let store = build_lanl_chain(&challenge, &Backend::LocalFs(root.clone()), split);
    let victim = root.join(&store.store().entries()[1].name);
    drop(store);
    let bytes = std::fs::read(&victim).unwrap();
    std::fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();
    let err = StoreDir::open(&root, cfg).expect_err("truncated chain file");
    assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
    std::fs::remove_dir_all(&root).unwrap();

    // A flipped bit in the manifest itself.
    let root = temp_store("damage-manifest");
    build_lanl_chain(&challenge, &Backend::LocalFs(root.clone()), split);
    let manifest = root.join("MANIFEST");
    let mut bytes = std::fs::read(&manifest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x5A;
    std::fs::write(&manifest, &bytes).unwrap();
    let err = StoreDir::open(&root, cfg).expect_err("corrupt manifest");
    assert!(
        matches!(err, StoreError::ChecksumMismatch { .. } | StoreError::Corrupt { .. }),
        "{err}"
    );
    std::fs::remove_dir_all(&root).unwrap();

    // A flipped bit inside a chain file's payload passes open (lengths
    // match) but is caught by the block CRC during restore.
    let root = temp_store("damage-payload");
    let store = build_lanl_chain(&challenge, &Backend::LocalFs(root.clone()), split);
    let victim = root.join(&store.store().entries()[0].name);
    drop(store);
    let mut bytes = std::fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x5A;
    std::fs::write(&victim, &bytes).unwrap();
    let dir = StoreDir::open(&root, cfg).expect("lengths still match");
    let store = Persistence::new(dir, SnapshotPolicy::default());
    let err = store.restore(EngineBuilder::lanl()).expect_err("bit rot caught on restore");
    assert!(
        matches!(
            err,
            StoreError::ChecksumMismatch { .. } | StoreError::Corrupt { .. } | StoreError::BadMagic
        ),
        "{err}"
    );
    std::fs::remove_dir_all(&root).unwrap();
}

/// The read-only satellite: opening a store whose directory refuses
/// writes, when crash residue needs quarantining, fails *up front* with
/// the typed, actionable [`StoreError::ReadOnlyStore`] — not a raw I/O
/// error halfway through the sweep. A clean read-only store still opens
/// and restores (cold standbys read from read-only mounts).
#[cfg(unix)]
#[test]
fn read_only_store_is_a_typed_actionable_error() {
    use std::os::unix::fs::PermissionsExt;

    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let split = (challenge.dataset.meta.bootstrap_days + 2) as usize;
    let cfg = LifecycleConfig::default();
    let root = temp_store("read-only");
    build_lanl_chain(&challenge, &Backend::LocalFs(root.clone()), split);
    // Crash residue that will need quarantining.
    std::fs::write(root.join("seg-000099.ebstore"), b"EBSTORE1 leftover").unwrap();

    let make_read_only = |on: bool| {
        let mode = if on { 0o555 } else { 0o755 };
        std::fs::set_permissions(&root, std::fs::Permissions::from_mode(mode)).unwrap();
    };

    make_read_only(true);
    let err = StoreDir::open(&root, cfg).expect_err("read-only store with residue must refuse");
    assert!(matches!(err, StoreError::ReadOnlyStore { .. }), "typed error, got {err}");
    let shown = err.to_string();
    assert!(
        shown.contains("read-only") && shown.contains("permissions"),
        "actionable message: {shown}"
    );
    // Nothing was half-swept: the residue is still in place.
    assert!(root.join("seg-000099.ebstore").exists(), "no partial sweep");

    // Writable again: the sweep completes and the store opens.
    make_read_only(false);
    let dir = StoreDir::open(&root, cfg).expect("writable store opens");
    assert_eq!(dir.quarantined().len(), 1);
    drop(dir);

    // A *clean* store on a read-only mount still opens and restores.
    make_read_only(true);
    let dir = StoreDir::open(&root, cfg).expect("clean read-only store opens");
    let store = Persistence::new(dir, SnapshotPolicy::default());
    let restored = store.restore(EngineBuilder::lanl()).expect("read-only restore works");
    assert_eq!(restored.reports().count(), split);
    drop(store);
    make_read_only(false);
    std::fs::remove_dir_all(&root).unwrap();
}

/// Byte-compatibility acceptance: a store laid out exactly as the
/// pre-backend (PR 4) filesystem code wrote it — raw chain files plus a
/// hand-encoded `MANIFEST` — opens through [`LocalFsBackend`], restores,
/// and keeps accepting the daily cycle.
#[test]
fn local_fs_opens_a_pre_backend_layout_store() {
    use earlybird::store::{crc32, Encoder};

    let domains = Arc::new(DomainInterner::new());
    let mut engine = synthetic_engine(&domains, 4);

    // Write the chain the way PR 4 did: one full block and one segment,
    // as raw files named by generation.
    engine.ingest_day(DayBatch::Dns(&synthetic_day(&domains, 0)));
    let mut full = Vec::new();
    let full_meta = engine.freeze().write_to(&mut full).expect("full block");
    engine.ingest_day(DayBatch::Dns(&synthetic_day(&domains, 1)));
    let mut seg = Vec::new();
    let seg_meta = engine.freeze_day().expect("fresh day").write_to(&mut seg).expect("segment");

    let root = temp_store("pre-backend");
    std::fs::create_dir_all(&root).unwrap();
    std::fs::write(root.join("full-000001.ebstore"), &full).unwrap();
    std::fs::write(root.join("seg-000002.ebstore"), &seg).unwrap();

    // Hand-encode the MANIFEST with the pinned PR-4 layout: EBMANIF1,
    // version, generation, entry count, then (kind, name, bytes, crc) per
    // entry, sealed by a trailing CRC-32.
    let mut body = Vec::from(*b"EBMANIF1");
    let mut e = Encoder::new();
    e.varint(1); // MANIFEST_VERSION
    e.varint(2); // generation
    e.usizev(2); // entries
    for (kind, name, bytes, crc) in [
        (1u8, "full-000001.ebstore", full.len() as u64, full_meta.checksum),
        (2u8, "seg-000002.ebstore", seg.len() as u64, seg_meta.checksum),
    ] {
        e.u8(kind);
        e.str(name);
        e.varint(bytes);
        e.varint(crc as u64);
    }
    body.extend_from_slice(&e.into_bytes());
    let crc = crc32(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    std::fs::write(root.join("MANIFEST"), &body).unwrap();

    // The new backend opens the old layout bit-for-bit.
    let dir = StoreDir::open(&root, LifecycleConfig::default()).expect("pre-backend opens");
    assert_eq!(dir.generation(), 2);
    assert_eq!(dir.entries().len(), 2);
    assert!(dir.quarantined().is_empty());
    let store = Persistence::new(dir, SnapshotPolicy::default());
    let mut restored = store.restore(EngineBuilder::lanl()).expect("restores");
    assert_eq!(restored.reports().count(), 2);

    // And the daily cycle keeps appending to it with the same names.
    restored.ingest_day(DayBatch::Dns(&synthetic_day(&domains, 2)));
    store.commit(&restored).expect("freeze").wait().expect("cycle continues on the old store");
    assert_eq!(store.store().generation(), 3);
    assert_eq!(store.store().entries()[2].name, "seg-000003.ebstore");
    assert!(root.join("seg-000003.ebstore").exists());
    std::fs::remove_dir_all(&root).unwrap();
}
