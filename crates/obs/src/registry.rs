//! The registry: interned metric identities over lock-free cells.

use crate::render::{HistogramSnapshot, MetricsSnapshot, Sample, SampleValue};
use crate::span::{SlowOp, SlowOps, Span, StageTimer};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError, RwLock};

/// Default wall-time bucket upper bounds in microseconds, spanning 50µs to
/// 10s — wide enough for a parse span and a full-chain compaction alike.
pub const LATENCY_BOUNDS_MICROS: [u64; 16] = [
    50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 500_000,
    1_000_000, 2_500_000, 10_000_000,
];

/// Events kept in the slow-op ring buffer before the oldest is dropped.
const SLOW_OP_CAP: usize = 256;

/// A monotone counter handle; cache it and call [`Counter::add`] on the
/// hot path (one relaxed `fetch_add`).
#[derive(Clone, Debug)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A signed gauge handle (current level, not a total).
#[derive(Clone, Debug)]
pub struct Gauge {
    cell: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the level.
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Decrements by 1.
    pub fn dec(&self) {
        self.add(-1);
    }

    /// The current level.
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Shared storage of one histogram: fixed ascending bucket upper bounds,
/// per-bucket counts (`bounds.len() + 1` for the overflow bucket), and the
/// running sum/count. All plain atomics — an observation is three relaxed
/// `fetch_add`s.
#[derive(Debug)]
pub(crate) struct HistogramCell {
    pub(crate) bounds: Arc<[u64]>,
    pub(crate) buckets: Vec<AtomicU64>,
    pub(crate) sum: AtomicU64,
    pub(crate) count: AtomicU64,
}

impl HistogramCell {
    fn new(bounds: Arc<[u64]>) -> Self {
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        HistogramCell { bounds, buckets, sum: AtomicU64::new(0), count: AtomicU64::new(0) }
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// A fixed-bucket histogram handle.
#[derive(Clone, Debug)]
pub struct Histogram {
    cell: Arc<HistogramCell>,
}

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: u64) {
        // First bound >= v: `le` semantics (bucket b counts v <= b).
        let idx = self.cell.bounds.partition_point(|&b| v > b);
        self.cell.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.cell.sum.fetch_add(v, Ordering::Relaxed);
        self.cell.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Observations recorded so far.
    pub fn count(&self) -> u64 {
        self.cell.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> u64 {
        self.cell.sum.load(Ordering::Relaxed)
    }
}

/// What kind of cell an entry holds.
#[derive(Debug)]
pub(crate) enum Cell {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCell>),
}

impl Cell {
    fn kind(&self) -> &'static str {
        match self {
            Cell::Counter(_) => "counter",
            Cell::Gauge(_) => "gauge",
            Cell::Histogram(_) => "histogram",
        }
    }
}

/// One registered metric: interned name, sorted labels, help text, cell.
#[derive(Debug)]
pub(crate) struct Entry {
    pub(crate) name: Arc<str>,
    pub(crate) labels: Vec<(String, String)>,
    pub(crate) help: &'static str,
    pub(crate) cell: Cell,
}

/// A metric's identity: interned name plus the sorted label set.
type Identity = (Arc<str>, Vec<(String, String)>);

/// Registration state: the identity index plus the interned-name pool.
/// Locked only while registering; hot paths never touch it.
#[derive(Debug, Default)]
struct Index {
    by_identity: BTreeMap<Identity, usize>,
    names: BTreeMap<String, Arc<str>>,
}

/// The process-wide (or per-subsystem) metric registry. See the crate docs
/// for the concurrency model; construction points are
/// [`MetricsRegistry::new`] (instrumented) and
/// [`MetricsRegistry::disabled`] (spans skip the clock).
#[derive(Debug)]
pub struct MetricsRegistry {
    enabled: bool,
    index: Mutex<Index>,
    /// The published entry list: readers clone the `Arc` and walk an
    /// immutable vector while registrations swap in extended copies.
    published: RwLock<Arc<Vec<Arc<Entry>>>>,
    slow: Arc<SlowOps>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// An enabled registry (the default everywhere instrumentation is
    /// wired).
    pub fn new() -> Self {
        Self::with_enabled(true)
    }

    /// A registry whose [`Span`]s never read the clock — counters and
    /// gauges still work (their cost is negligible), but stage timings
    /// record nothing. This is the honest "uninstrumented" baseline for
    /// overhead measurements.
    pub fn disabled() -> Self {
        Self::with_enabled(false)
    }

    fn with_enabled(enabled: bool) -> Self {
        MetricsRegistry {
            enabled,
            index: Mutex::new(Index::default()),
            published: RwLock::new(Arc::new(Vec::new())),
            slow: Arc::new(SlowOps::new(SLOW_OP_CAP)),
        }
    }

    /// Whether spans time themselves (see [`MetricsRegistry::disabled`]).
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Registers (or finds) a counter under `(name, labels)`.
    ///
    /// # Panics
    ///
    /// Panics if the identity is already registered as a different kind —
    /// a programming error, caught loudly.
    pub fn counter(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Counter {
        match self.register(name, help, labels, |_| Cell::Counter(Arc::new(AtomicU64::new(0)))) {
            Cell::Counter(cell) => Counter { cell },
            other => panic!("metric {name:?} is a {}, not a counter", other.kind()),
        }
    }

    /// Registers (or finds) a gauge under `(name, labels)`.
    ///
    /// # Panics
    ///
    /// As for [`MetricsRegistry::counter`].
    pub fn gauge(&self, name: &'static str, help: &'static str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, labels, |_| Cell::Gauge(Arc::new(AtomicI64::new(0)))) {
            Cell::Gauge(cell) => Gauge { cell },
            other => panic!("metric {name:?} is a {}, not a gauge", other.kind()),
        }
    }

    /// Registers (or finds) a fixed-bucket histogram under `(name,
    /// labels)`. When the identity already exists its original bounds are
    /// kept (bounds are part of the first registration, not the identity).
    ///
    /// # Panics
    ///
    /// As for [`MetricsRegistry::counter`].
    pub fn histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        bounds: &[u64],
    ) -> Histogram {
        let make = |bounds: Arc<[u64]>| Cell::Histogram(Arc::new(HistogramCell::new(bounds)));
        match self.register(name, help, labels, move |_| make(bounds.into())) {
            Cell::Histogram(cell) => Histogram { cell },
            other => panic!("metric {name:?} is a {}, not a histogram", other.kind()),
        }
    }

    /// A wall-time histogram in microseconds over
    /// [`LATENCY_BOUNDS_MICROS`].
    pub fn latency_histogram(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> Histogram {
        self.histogram(name, help, labels, &LATENCY_BOUNDS_MICROS)
    }

    /// A reusable stage timer over a latency histogram: cache it, then
    /// [`StageTimer::start`] a [`Span`] per operation. Observations past
    /// the slow-op threshold are also recorded as [`SlowOp`] events.
    pub fn timer(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
    ) -> StageTimer {
        let hist = self.latency_histogram(name, help, labels);
        let op = render_op(name, labels);
        StageTimer::new(self.enabled, hist, op.into(), Arc::clone(&self.slow))
    }

    /// A stage timer on the shared `stage_micros{stage=...}` series — the
    /// per-pipeline-stage wall-time histogram family.
    pub fn stage_timer(&self, stage: &str, extra: &[(&str, &str)]) -> StageTimer {
        let mut labels: Vec<(&str, &str)> = Vec::with_capacity(extra.len() + 1);
        labels.push(("stage", stage));
        labels.extend(extra.iter().copied());
        self.timer("stage_micros", "Wall time per pipeline stage in microseconds", &labels)
    }

    /// One-shot convenience: registers `stage_micros{stage=...}` and starts
    /// a span — for cold paths (restore, compaction) where caching a
    /// [`StageTimer`] buys nothing.
    pub fn span(&self, stage: &str) -> Span {
        self.stage_timer(stage, &[]).start()
    }

    /// Sets the slow-op threshold (default 1s); spans at or above it emit
    /// a [`SlowOp`] event.
    pub fn set_slow_op_threshold_micros(&self, micros: u64) {
        self.slow.set_threshold(micros);
    }

    /// Drains the recorded slow-op events (oldest first).
    pub fn take_slow_ops(&self) -> Vec<SlowOp> {
        self.slow.take()
    }

    /// A point-in-time read of every registered metric. Runs concurrently
    /// with writers: values are loaded per-atomic, so totals are monotone
    /// between snapshots but one snapshot is not a cross-metric
    /// transaction.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let entries = self.load_published();
        let mut samples: Vec<Sample> = entries
            .iter()
            .map(|e| Sample {
                name: e.name.to_string(),
                labels: e.labels.clone(),
                help: e.help,
                value: match &e.cell {
                    Cell::Counter(c) => SampleValue::Counter(c.load(Ordering::Relaxed)),
                    Cell::Gauge(g) => SampleValue::Gauge(g.load(Ordering::Relaxed)),
                    Cell::Histogram(h) => SampleValue::Histogram(h.snapshot()),
                },
            })
            .collect();
        samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        MetricsSnapshot { samples }
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (deterministic ordering: by name, then labels).
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }

    fn load_published(&self) -> Arc<Vec<Arc<Entry>>> {
        Arc::clone(&self.published.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// The registration slow path: intern the name, look up the identity,
    /// and (for a new identity) publish an extended entry list.
    fn register(
        &self,
        name: &'static str,
        help: &'static str,
        labels: &[(&str, &str)],
        make: impl FnOnce(&str) -> Cell,
    ) -> Cell {
        let mut labels: Vec<(String, String)> =
            labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        labels.sort();
        let mut index = self.index.lock().unwrap_or_else(PoisonError::into_inner);
        let interned = Arc::clone(
            index.names.entry(name.to_string()).or_insert_with(|| Arc::<str>::from(name)),
        );
        let entries = self.load_published();
        if let Some(&pos) = index.by_identity.get(&(Arc::clone(&interned), labels.clone())) {
            return clone_cell(&entries[pos].cell);
        }
        let cell = make(name);
        let entry =
            Arc::new(Entry { name: Arc::clone(&interned), labels: labels.clone(), help, cell });
        let out = clone_cell(&entry.cell);
        let mut next = Vec::with_capacity(entries.len() + 1);
        next.extend(entries.iter().cloned());
        next.push(entry);
        index.by_identity.insert((interned, labels), next.len() - 1);
        *self.published.write().unwrap_or_else(PoisonError::into_inner) = Arc::new(next);
        out
    }
}

fn clone_cell(cell: &Cell) -> Cell {
    match cell {
        Cell::Counter(c) => Cell::Counter(Arc::clone(c)),
        Cell::Gauge(g) => Cell::Gauge(Arc::clone(g)),
        Cell::Histogram(h) => Cell::Histogram(Arc::clone(h)),
    }
}

/// The human-readable operation tag slow-op events carry:
/// `name{k=v,...}` (or the bare name without labels).
fn render_op(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{name}{{{}}}", body.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_name_plus_sorted_labels() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hits", "h", &[("x", "1"), ("y", "2")]);
        let b = reg.counter("hits", "h", &[("y", "2"), ("x", "1")]);
        let c = reg.counter("hits", "h", &[("x", "other")]);
        a.add(3);
        b.add(4);
        c.inc();
        assert_eq!(a.get(), 7, "label order does not split the identity");
        assert_eq!(c.get(), 1);
        assert_eq!(reg.snapshot().counter_sum("hits", &[]), 8);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("m", "h", &[]);
        let _ = reg.gauge("m", "h", &[]);
    }

    #[test]
    fn histogram_buckets_follow_le_semantics() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", "h", &[], &[10, 100]);
        for v in [5, 10, 11, 100, 101, 5_000] {
            h.observe(v);
        }
        let snap = reg.snapshot();
        let hist = snap.histogram("lat", &[]).expect("registered");
        assert_eq!(hist.buckets, vec![2, 2, 2], "le=10 counts v<=10; overflow counts v>100");
        assert_eq!(hist.count, 6);
        assert_eq!(hist.sum, 5 + 10 + 11 + 100 + 101 + 5_000);
        assert_eq!(hist.cumulative(), vec![2, 4, 6]);
    }

    #[test]
    fn gauges_track_levels() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth", "h", &[("pool", "conn")]);
        g.inc();
        g.inc();
        g.dec();
        g.add(10);
        assert_eq!(g.get(), 11);
        assert_eq!(reg.snapshot().gauge_sum("depth", &[("pool", "conn")]), 11);
    }

    #[test]
    fn spans_record_into_stage_histograms_and_slow_ops() {
        let reg = MetricsRegistry::new();
        reg.set_slow_op_threshold_micros(0); // everything is "slow"
        {
            let _span = reg.span("unit_test_stage");
        }
        let timer = reg.stage_timer("unit_test_stage", &[("tenant", "t0")]);
        timer.observe_micros(42);
        let snap = reg.snapshot();
        let total = snap.histogram_totals("stage_micros", &[("stage", "unit_test_stage")]);
        assert_eq!(total.count, 2);
        let slow = reg.take_slow_ops();
        assert_eq!(slow.len(), 2);
        assert!(slow.iter().any(|s| s.op.contains("unit_test_stage")));
        assert!(reg.take_slow_ops().is_empty(), "take drains");
    }

    #[test]
    fn disabled_registry_spans_are_inert_but_counters_work() {
        let reg = MetricsRegistry::disabled();
        assert!(!reg.is_enabled());
        reg.set_slow_op_threshold_micros(0);
        {
            let _span = reg.span("cold");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.histogram_totals("stage_micros", &[]).count, 0);
        assert!(reg.take_slow_ops().is_empty());
        let c = reg.counter("still_counts", "h", &[]);
        c.inc();
        assert_eq!(snap.counter_sum("still_counts", &[]), 0, "snapshot predates the inc");
        assert_eq!(reg.snapshot().counter_sum("still_counts", &[]), 1);
    }
}
