//! Service-level observability: a full ingest → finish → query cycle
//! against a live daemon must move every advertised counter family —
//! per-tenant ingest totals, parse errors, admission rejections, the
//! finish-commit histogram, engine stage timings, and store commit
//! series — and `GET /metrics` must expose them in Prometheus text with
//! values that match the work actually performed. Runs as the
//! `{localfs, mem, s3lite}` backend matrix, and cross-checks that the
//! instrumented service produces reports bit-identical to an
//! uninstrumented library engine.

// Each integration-test crate uses a subset of the harness; the unused
// remainder is not a defect.
#[path = "support/backends.rs"]
#[allow(dead_code)]
mod support;

use earlybird::engine::{IngestSource, MemBackend, MetricsRegistry};
use earlybird::logmodel::{
    format_dns_line, Day, DnsQuery, DnsRecordType, DomainInterner, HostId, Ipv4, Timestamp,
};
use earlybird::serve::{ServeClient, Server, ServerConfig, TenantLimits, TenantSpec};
use std::sync::Arc;
use support::Backend;

const N_HOSTS: u32 = 6;
const N_DAYS: u32 = 3;

fn spec() -> TenantSpec {
    let mut spec = TenantSpec::lanl(N_HOSTS, 1, N_DAYS);
    spec.auto_investigate = true;
    spec
}

/// A small deterministic day: background chatter plus a beaconing host.
fn day_text(day: u32, domains: &Arc<DomainInterner>) -> String {
    let mut queries = Vec::new();
    for i in 0..90u32 {
        queries.push(DnsQuery {
            ts: Timestamp::from_secs(u64::from(i) * 613 % 86_400),
            src: HostId::new(i % N_HOSTS),
            src_ip: Ipv4::new(10, 0, 0, (i % N_HOSTS) as u8),
            qname: domains.intern(&format!("d{}.example.c3", (i * 7 + day) % 17)),
            qtype: DnsRecordType::A,
            answer: Some(Ipv4::new(50, (i % 17) as u8, 1, 1)),
        });
    }
    for beat in 0..16u64 {
        queries.push(DnsQuery {
            ts: Timestamp::from_secs(1_000 + beat * 600),
            src: HostId::new(1),
            src_ip: Ipv4::new(10, 0, 0, 1),
            qname: domains.intern("cc.alpha.c3"),
            qtype: DnsRecordType::A,
            answer: Some(Ipv4::new(198, 51, 100, 9)),
        });
    }
    queries.sort_by_key(|q| q.ts);
    let mut text = String::new();
    for q in &queries {
        text.push_str(&format_dns_line(q, domains));
        text.push('\n');
    }
    text
}

/// The value of one fully-labeled series in a Prometheus text exposition.
fn series(text: &str, name_and_labels: &str) -> Option<f64> {
    text.lines()
        .find(|l| l.strip_prefix(name_and_labels).is_some_and(|rest| rest.starts_with(' ')))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[test]
fn service_cycle_moves_every_counter_family() {
    let domains = Arc::new(DomainInterner::new());
    // One corrupt line per day moves the parse-error counters on both
    // the serve and engine layers — in the reference run too, so the
    // reports stay comparable.
    let days: Vec<(u32, String)> = (0..N_DAYS)
        .map(|d| (d, format!("{}this line is corrupt\n", day_text(d, &domains))))
        .collect();

    // Uninstrumented library reference: a disabled registry records no
    // wall time at all, so agreement here proves instrumentation is pure
    // side-band.
    let mut reference = spec()
        .builder()
        .metrics(Arc::new(MetricsRegistry::disabled()))
        .build(Arc::new(DomainInterner::new()), spec().dataset_meta().unwrap())
        .expect("valid spec");
    let mut ref_reports = Vec::new();
    for (day, text) in &days {
        let mut ingest = reference.begin_day(Day::new(*day), IngestSource::Dns);
        ingest.push_lines(text);
        ref_reports.push(ingest.finish());
    }

    for backend in Backend::matrix("serve-obs") {
        let context = backend.name();
        let cfg = ServerConfig {
            // A ceiling small enough to refuse one deliberately oversized
            // span, large enough for the real days.
            limits: TenantLimits { max_inflight_spans: 8, max_open_bytes: 256 << 10 },
            ..ServerConfig::default()
        };
        let registry = Arc::clone(&cfg.metrics);
        let server =
            Server::bind(backend.boxed_store(), cfg).unwrap_or_else(|e| panic!("{context}: {e}"));
        let addr = server.addr();
        let handle = server.spawn();
        let mut client = ServeClient::new(addr);
        client.create_tenant("acme", &spec()).expect("create tenant");

        let mut records_pushed = 0u64;
        let mut commits_before = 0.0;
        for (day, text) in &days {
            let scrape = client.metrics().expect("scrape");
            let commits = series(
                &scrape,
                &format!("store_commit_micros_count{{backend=\"{context}\",tenant=\"acme\"}}"),
            )
            .unwrap_or_else(|| panic!("{context}: store commit series missing:\n{scrape}"));
            assert!(commits >= commits_before, "{context}: commit count is monotone");
            commits_before = commits;

            let ack = client.push_span("acme", *day, text).expect("push span");
            assert_eq!(ack.span_parse_errors, 1, "{context}: the corrupt line fails");
            records_pushed += ack.records_pushed;
            let report = client.finish_day("acme", *day).expect("finish day").report;
            assert!(
                report.stages.deterministic_eq(&ref_reports[*day as usize].stages),
                "{context}: day {day} differs from the uninstrumented library run"
            );
        }

        // An oversized span is refused by admission control (429) and
        // counted, not absorbed.
        let oversized = "x".repeat((256 << 10) + 1);
        let err = client.push_span("acme", N_DAYS - 1, &oversized).unwrap_err();
        assert_eq!(err.as_api().map(|e| e.code.as_str()), Some("over_capacity"), "{context}");

        let text = client.metrics().expect("scrape after cycle");
        let get = |s: &str| {
            series(&text, s).unwrap_or_else(|| panic!("{context}: series {s} missing:\n{text}"))
        };
        assert_eq!(get("serve_ingest_records_total{tenant=\"acme\"}"), records_pushed as f64);
        assert!(get("serve_ingest_bytes_total{tenant=\"acme\"}") > 0.0, "{context}");
        assert_eq!(get("serve_span_parse_errors_total{tenant=\"acme\"}"), f64::from(N_DAYS));
        assert_eq!(get("serve_admission_rejections_total{tenant=\"acme\"}"), 1.0);
        assert_eq!(get("serve_finish_commit_micros_count{tenant=\"acme\"}"), f64::from(N_DAYS));
        assert_eq!(get("serve_inflight_spans{tenant=\"acme\"}"), 0.0);
        assert_eq!(get("serve_open_bytes{tenant=\"acme\"}"), 0.0);
        // The scrape request itself is the one in flight.
        assert_eq!(get("serve_requests_inflight"), 1.0);
        assert_eq!(get("serve_connections_active"), 1.0);
        // Engine stages ran under the tenant's label...
        for stage in ["parse", "reduce", "profile", "checkpoint"] {
            let count =
                get(&format!("engine_stage_micros_count{{stage=\"{stage}\",tenant=\"acme\"}}"));
            assert!(count >= f64::from(N_DAYS), "{context}: stage {stage} ran each day: {count}");
        }
        assert_eq!(get("engine_records_total{tenant=\"acme\"}"), records_pushed as f64);
        assert_eq!(get("engine_parse_errors_total{tenant=\"acme\"}"), f64::from(N_DAYS));
        // ...and the store series carry the backend label. Tenant
        // creation commits the registration snapshot, then one commit
        // per finished day.
        let commits =
            get(&format!("store_commit_micros_count{{backend=\"{context}\",tenant=\"acme\"}}"));
        assert!(
            commits >= f64::from(N_DAYS) + 1.0,
            "{context}: at least the registration snapshot plus one commit per day: {commits}"
        );
        assert!(
            get(&format!("store_commit_bytes_total{{backend=\"{context}\",tenant=\"acme\"}}"))
                > 0.0,
            "{context}"
        );
        assert_eq!(
            get(&format!("store_gc_failures_total{{backend=\"{context}\",tenant=\"acme\"}}")),
            0.0
        );

        // The exposition is well-formed: one TYPE line per metric name.
        let mut type_names: Vec<&str> =
            text.lines().filter_map(|l| l.strip_prefix("# TYPE ")).collect();
        let before = type_names.len();
        type_names.dedup_by(|a, b| a.split(' ').next() == b.split(' ').next());
        assert_eq!(type_names.len(), before, "{context}: duplicate TYPE lines");

        // The enriched tenant listing carries the same health counters
        // without a scrape.
        let tenants = client.tenants().expect("list tenants").tenants;
        assert_eq!(tenants.len(), 1, "{context}");
        assert_eq!(tenants[0].span_parse_errors, u64::from(N_DAYS), "{context}");
        assert_eq!(tenants[0].gc_failures, 0, "{context}");

        // The registry handle sees the same cells the daemon writes.
        let snap = registry.snapshot();
        let records = snap
            .samples
            .iter()
            .find(|s| s.name == "serve_ingest_records_total")
            .expect("sample present");
        assert_eq!(records.labels, vec![("tenant".to_string(), "acme".to_string())]);

        client.shutdown().expect("graceful shutdown");
        drop(client);
        handle.join();
        backend.cleanup();
    }
}

/// `GET /v1/admin/slow-ops` drains the slow-operation ring with
/// exactly-once delivery: flooring the threshold makes every instrumented
/// span a slow op, one poll returns them all (well-formed: named op,
/// recorded threshold), and the next poll returns an empty page. The ring
/// lives on the registry, not a backend, so one in-memory store suffices.
#[test]
fn slow_ops_endpoint_drains_exactly_once() {
    let domains = Arc::new(DomainInterner::new());
    let cfg = ServerConfig::default();
    cfg.metrics.set_slow_op_threshold_micros(0);
    let server = Server::bind(Box::new(MemBackend::new()), cfg).expect("bind");
    let addr = server.addr();
    let handle = server.spawn();
    let mut client = ServeClient::new(addr);
    client.create_tenant("acme", &spec()).expect("create tenant");
    let text = day_text(0, &domains);
    client.push_span("acme", 0, &text).expect("push span");
    client.finish_day("acme", 0).expect("finish day");

    let page = client.slow_ops().expect("slow-ops page");
    assert!(!page.slow_ops.is_empty(), "a zero threshold makes every span a slow op");
    for op in &page.slow_ops {
        assert!(!op.op.is_empty(), "op is named: {op:?}");
        assert_eq!(op.threshold_micros, 0, "the floored threshold travels with the record");
    }
    assert!(
        page.slow_ops.iter().any(|op| op.op.contains("tenant=acme")),
        "tenant-labeled engine/store spans appear in the ring: {:?}",
        page.slow_ops
    );

    let drained = client.slow_ops().expect("second poll");
    assert!(drained.slow_ops.is_empty(), "each record is delivered exactly once");

    client.shutdown().expect("graceful shutdown");
    drop(client);
    handle.join();
}
