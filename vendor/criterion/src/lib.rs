//! Vendored, offline-buildable stand-in for the `criterion` crate.
//!
//! Implements the API surface this workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — with simple
//! wall-clock timing instead of statistical sampling.
//!
//! Bench binaries run with `harness = false`, so `cargo test` executes them
//! too; to keep the tier-1 suite fast each benchmark is capped at a small
//! iteration budget while still reporting real per-iteration times and
//! throughput.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration measurement driver handed to bench closures.
pub struct Bencher {
    iters: u64,
    total: Duration,
}

/// How batched inputs are grouped (accepted for API compatibility; the shim
/// times each batch of one).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

impl Bencher {
    /// Times `routine` over the iteration budget.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..self.iters {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
        }
    }

    /// Times `routine` over fresh inputs built by `setup` (setup excluded
    /// from the measurement).
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
        }
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements (records, items) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The benchmark context.
pub struct Criterion {
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 3, throughput: None }
    }
}

impl Criterion {
    /// Sets the requested sample count (the shim caps it to keep `cargo
    /// test` runs of `harness = false` benches fast).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = (n as u64).clamp(1, 5);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { iters: self.sample_size, total: Duration::ZERO };
        f(&mut b);
        report(&id, &b, self.throughput);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), throughput: None }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput denominator.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = (n as u64).clamp(1, 5);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let mut b = Bencher { iters: self.criterion.sample_size, total: Duration::ZERO };
        f(&mut b);
        report(&id, &b, self.throughput);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

fn report(id: &str, b: &Bencher, throughput: Option<Throughput>) {
    if b.iters == 0 {
        return;
    }
    let per_iter = b.total / u32::try_from(b.iters).unwrap_or(1);
    let mut line = format!("bench {id:<50} {per_iter:>12.3?}/iter ({} iters)", b.iters);
    if let Some(tp) = throughput {
        let secs = per_iter.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  {:.0} elem/s", n as f64 / secs));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  {:.0} B/s", n as f64 / secs));
                }
            }
        }
    }
    println!("{line}");
}

/// Declares a benchmark group, mirroring criterion's two macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs harness=false bench binaries with test
            // flags; honor `--list` so tooling sees an empty suite quickly.
            let args: Vec<String> = std::env::args().collect();
            if args.iter().any(|a| a == "--list") {
                println!("0 tests, 0 benchmarks");
                return;
            }
            $( $group(); )+
        }
    };
}
