//! # earlybird-store
//!
//! Durable checkpoint/restore for the DSN'15 detection engine: a
//! versioned, self-checking, hand-rolled binary snapshot format.
//!
//! The paper's detector is only as good as the months of history behind it
//! — new-domain profiles, rare-UA host counts, per-day contact indexes,
//! trained regression weights (§III-E, §IV). This crate makes that state
//! survive a process restart:
//!
//! * [`codec`] — the primitive wire codec: LEB128 varints, length-prefixed
//!   UTF-8 strings, bit-exact `f64`s; bounds-checked decoding that never
//!   panics on untrusted bytes.
//! * [`frame`] — the block layer: `EBSTORE1` magic, format version, a
//!   fixed sequence of length-prefixed section frames, and a CRC-32 seal
//!   per block. A store stream is one [`frame::BlockKind::Full`] snapshot
//!   followed by any number of [`frame::BlockKind::DaySegment`] increments.
//! * [`sections`] — component codecs for every piece of engine state
//!   (interners, host map, histories, day indexes, models, WHOIS), written
//!   against public snapshot hooks so the format survives internal
//!   refactors.
//! * [`backend`] — the storage service boundary: every durable operation
//!   flows through the [`ObjectStore`] trait (staged visible-or-absent
//!   uploads, conditional manifest swap, quarantine), with three shipped
//!   backends — [`LocalFsBackend`] (tmp+fsync+rename, byte-compatible
//!   with pre-trait stores), [`MemBackend`] (fast tests), and
//!   [`S3LiteBackend`] (S3-style multipart staging + conditional put, the
//!   adapter shape a real S3/GCS client drops into) — plus the
//!   backend-level [`FaultedStore`] crash harness.
//! * [`lifecycle`] — the snapshot *store* layer: a [`StoreDir`] owning
//!   a CRC-protected, atomically-swapped `MANIFEST` over the
//!   `full + N segments` chain, with crash-safe commits, orphan
//!   quarantine, a compaction trigger, and a retention policy, so restore
//!   stays O(current state) instead of O(uptime).
//! * [`StoreError`] — the typed failure surface: bad magic, future
//!   version, checksum mismatch, truncation, semantic corruption, stale
//!   (backwards) day segments, read-only stores, and lost manifest races
//!   are all distinct, and none of them panic.
//!
//! The user-facing API lives on the engine: a `Persistence` handle
//! (driven by a `SnapshotPolicy`) freezes the engine's state into an
//! `EngineSnapshot`, commits it — synchronously or on a background worker
//! — through a [`StoreDir`], and restores a chain back into a cold engine
//! whose continued operation is bit-identical to one that never
//! restarted.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod codec;
mod error;
pub mod frame;
pub mod lifecycle;
pub mod sections;

pub use backend::{
    validate_scope_name, FaultInjector, FaultedStore, LocalFsBackend, MemBackend, ObjectInfo,
    ObjectStore, ObjectUpload, S3LiteBackend,
};
pub use codec::{crc32, Decoder, Encoder};
pub use error::{StoreError, StoreResult};
pub use frame::{BlockKind, BlockReader, BlockWriter, CheckpointMeta, SectionTag, FORMAT_VERSION};
pub use lifecycle::{
    ChainReader, CompactionReport, CompactionTrigger, LifecycleConfig, ManifestEntry, PendingBlock,
    RetentionPolicy, StoreDir,
};
