//! Threat-intelligence substrates for the DSN'15 reproduction.
//!
//! The paper depends on three external sources that cannot be called from a
//! reproduction: WHOIS (domain age / registration validity, §IV-C),
//! VirusTotal (training labels and validation, §VI), and the enterprise
//! SOC's IOC feed (seeds for the SOC-hints mode, §III-B). This crate
//! implements deterministic simulators with the same observable behaviour:
//!
//! * [`WhoisRegistry`] — registrations with creation/expiry days, a
//!   configurable unparseable fraction, and *future* registrations (the DGA
//!   domains of §VI-D that were registered only after detection);
//! * [`VirusTotalOracle`] — per-domain first-report days, so a domain can be
//!   unknown at detection time and "caught up" months later, exactly like
//!   the paper's three-month re-validation;
//! * [`IocFeed`] — the SOC's confirmed-indicator list;
//! * [`GroundTruth`] — per-domain true classes for computing TDR/FDR/FNR/NDR.
//!
//! # Example
//!
//! ```
//! use earlybird_intel::{WhoisRegistry, WhoisAnswer};
//! use earlybird_logmodel::Day;
//!
//! let mut whois = WhoisRegistry::new();
//! whois.register("badcdn.info", Day::new(25), Day::new(60));
//! match whois.lookup("badcdn.info", Day::new(31)) {
//!     WhoisAnswer::Known { age_days, validity_days } => {
//!         assert_eq!(age_days, 6.0);
//!         assert_eq!(validity_days, 29.0);
//!     }
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ioc;
pub mod labels;
pub mod virustotal;
pub mod whois;

pub use ioc::IocFeed;
pub use labels::{CampaignId, DetectionCategory, GroundTruth, TrueClass};
pub use virustotal::VirusTotalOracle;
pub use whois::{Registration, WhoisAnswer, WhoisRegistry};
