//! DNS log records (LANL-style dataset).

use crate::intern::DomainSym;
use crate::ip::Ipv4;
use crate::time::Timestamp;
use crate::HostId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// DNS resource-record types seen in enterprise resolver logs.
///
/// The paper restricts analysis to `A` records: "information in other records
/// (e.g., TXT) is redacted and thus not useful" (§IV-A). The other variants
/// exist so the reduction step has something real to filter.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum DnsRecordType {
    /// IPv4 address record — the only type the analysis keeps.
    A,
    /// IPv6 address record.
    Aaaa,
    /// Canonical-name alias record.
    Cname,
    /// Mail-exchanger record.
    Mx,
    /// Free-form text record (redacted in the LANL release).
    Txt,
    /// Reverse-lookup pointer record.
    Ptr,
    /// Service-locator record.
    Srv,
}

impl DnsRecordType {
    /// All record types, for generators and tests.
    pub const ALL: [DnsRecordType; 7] = [
        DnsRecordType::A,
        DnsRecordType::Aaaa,
        DnsRecordType::Cname,
        DnsRecordType::Mx,
        DnsRecordType::Txt,
        DnsRecordType::Ptr,
        DnsRecordType::Srv,
    ];
}

impl fmt::Display for DnsRecordType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DnsRecordType::A => "A",
            DnsRecordType::Aaaa => "AAAA",
            DnsRecordType::Cname => "CNAME",
            DnsRecordType::Mx => "MX",
            DnsRecordType::Txt => "TXT",
            DnsRecordType::Ptr => "PTR",
            DnsRecordType::Srv => "SRV",
        };
        f.write_str(s)
    }
}

/// One DNS query plus its response, as recorded by the enterprise resolver.
///
/// Matches the fields of the anonymized LANL release: timestamp, source host,
/// queried name, record type, and the answer address (for `A` queries that
/// resolved).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct DnsQuery {
    /// When the query was issued (already UTC in the LANL data).
    pub ts: Timestamp,
    /// The internal host that issued the query.
    pub src: HostId,
    /// Source address of the query.
    pub src_ip: Ipv4,
    /// Queried domain name (interned in the owning dataset).
    pub qname: DomainSym,
    /// Record type requested.
    pub qtype: DnsRecordType,
    /// Resolved address, when the response carried one.
    pub answer: Option<Ipv4>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Day, DomainInterner};

    #[test]
    fn record_type_display() {
        assert_eq!(DnsRecordType::A.to_string(), "A");
        assert_eq!(DnsRecordType::Aaaa.to_string(), "AAAA");
        assert_eq!(DnsRecordType::ALL.len(), 7);
    }

    #[test]
    fn query_construction() {
        let domains = DomainInterner::new();
        let q = DnsQuery {
            ts: Timestamp::from_day_secs(Day::new(1), 10),
            src: HostId::new(3),
            src_ip: Ipv4::new(10, 0, 0, 3),
            qname: domains.intern("rainbow.c3"),
            qtype: DnsRecordType::A,
            answer: Some(Ipv4::new(191, 146, 166, 145)),
        };
        assert_eq!(q.qtype, DnsRecordType::A);
        assert_eq!(&*domains.resolve(q.qname), "rainbow.c3");
    }
}
