//! Ordinary-least-squares linear regression with per-coefficient
//! significance, standing in for R's `lm` (§IV-C: "we train a linear
//! regression model, implemented using the function lm in the R package. The
//! regression model outputs a weight for each feature, as well as the
//! significance of that feature.").

use crate::linalg::{gram, gram_rhs, invert};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Error returned when a regression cannot be fit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FitError {
    /// Fewer samples than coefficients (including the intercept).
    NotEnoughSamples,
    /// The normal-equation matrix is singular (collinear features).
    Singular,
    /// Rows of the design matrix have inconsistent lengths, or `y` does not
    /// match.
    DimensionMismatch,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::NotEnoughSamples => f.write_str("not enough samples to fit the model"),
            FitError::Singular => f.write_str("design matrix is singular (collinear features)"),
            FitError::DimensionMismatch => f.write_str("design matrix dimensions are inconsistent"),
        }
    }
}

impl std::error::Error for FitError {}

/// A fitted OLS model: `y ≈ β₀ + Σᵢ βᵢ·xᵢ`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Fit {
    /// `[β₀, β₁, .., β_p]` — intercept first.
    beta: Vec<f64>,
    /// Standard error of each coefficient (same layout as `beta`).
    std_errors: Vec<f64>,
    /// Coefficient of determination.
    r_squared: f64,
    /// Number of training samples.
    n: usize,
}

impl Fit {
    /// The intercept `β₀`.
    pub fn intercept(&self) -> f64 {
        self.beta[0]
    }

    /// The weight of feature `i` (zero-based, excluding the intercept).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn coefficient(&self, i: usize) -> f64 {
        self.beta[i + 1]
    }

    /// All feature weights (excluding the intercept).
    pub fn coefficients(&self) -> &[f64] {
        &self.beta[1..]
    }

    /// t-statistic of feature `i` (`βᵢ / se(βᵢ)`); infinite for a zero
    /// standard error, zero when both are zero.
    pub fn t_stat(&self, i: usize) -> f64 {
        let b = self.beta[i + 1];
        let se = self.std_errors[i + 1];
        if se == 0.0 {
            if b == 0.0 {
                0.0
            } else {
                f64::INFINITY * b.signum()
            }
        } else {
            b / se
        }
    }

    /// Whether feature `i` is significant at the conventional `|t| >= 2`
    /// rule of thumb (≈ p < 0.05 for the sample sizes involved). The paper
    /// drops low-significance features (AutoHosts; IP16).
    pub fn is_significant(&self, i: usize) -> bool {
        self.t_stat(i).abs() >= 2.0
    }

    /// Standard error of feature `i`'s coefficient (zero-based, excluding
    /// the intercept).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn std_error(&self, i: usize) -> f64 {
        self.std_errors[i + 1]
    }

    /// Standard error of the intercept.
    pub fn intercept_std_error(&self) -> f64 {
        self.std_errors[0]
    }

    /// Reassembles a fit from its raw parts (`beta` and `std_errors` laid
    /// out intercept-first) — the persistence hook used by
    /// `earlybird-store`. Returns `None` when the parts are inconsistent
    /// (mismatched lengths or no intercept), so corrupt snapshots surface
    /// as errors instead of panics.
    pub fn from_parts(
        beta: Vec<f64>,
        std_errors: Vec<f64>,
        r_squared: f64,
        n: usize,
    ) -> Option<Self> {
        if beta.is_empty() || beta.len() != std_errors.len() {
            return None;
        }
        Some(Fit { beta, std_errors, r_squared, n })
    }

    /// Coefficient of determination R².
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Number of training samples.
    pub fn n_samples(&self) -> usize {
        self.n
    }

    /// Number of features (excluding the intercept).
    pub fn n_features(&self) -> usize {
        self.beta.len() - 1
    }

    /// Predicted value for a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.n_features()`.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_features(), "feature count mismatch");
        self.beta[0] + x.iter().zip(&self.beta[1..]).map(|(a, b)| a * b).sum::<f64>()
    }
}

/// OLS fitting entry point.
#[derive(Clone, Copy, Debug, Default)]
pub struct LinearRegression;

impl LinearRegression {
    /// Fits `y ≈ β₀ + Σ βᵢ xᵢ` by ordinary least squares.
    ///
    /// `xs` holds one feature row per sample (without the intercept column,
    /// which is added internally).
    ///
    /// # Errors
    ///
    /// * [`FitError::DimensionMismatch`] for ragged rows or `xs.len() != y.len()`,
    /// * [`FitError::NotEnoughSamples`] when `n <= p`,
    /// * [`FitError::Singular`] for collinear features.
    pub fn fit(xs: &[Vec<f64>], y: &[f64]) -> Result<Fit, FitError> {
        Self::fit_ridge(xs, y, 0.0)
    }

    /// Fits with an L2 (ridge) penalty `lambda` on the non-intercept
    /// coefficients — used as a fallback when perfectly collinear features
    /// (e.g. `AutoHosts` ≡ `NoHosts`) make plain OLS singular.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::fit`]; [`FitError::Singular`] only when
    /// even the penalized system is degenerate.
    pub fn fit_ridge(xs: &[Vec<f64>], y: &[f64], lambda: f64) -> Result<Fit, FitError> {
        let n = xs.len();
        if n != y.len() || n == 0 {
            return Err(FitError::DimensionMismatch);
        }
        let p = xs[0].len();
        if xs.iter().any(|r| r.len() != p) {
            return Err(FitError::DimensionMismatch);
        }
        if n <= p + 1 {
            return Err(FitError::NotEnoughSamples);
        }
        // Design matrix with intercept column.
        let rows: Vec<Vec<f64>> = xs
            .iter()
            .map(|r| {
                let mut row = Vec::with_capacity(p + 1);
                row.push(1.0);
                row.extend_from_slice(r);
                row
            })
            .collect();
        let mut xtx = gram(&rows);
        for (i, row) in xtx.iter_mut().enumerate().skip(1) {
            row[i] += lambda;
        }
        let xty = gram_rhs(&rows, y);
        let xtx_inv = invert(&xtx).ok_or(FitError::Singular)?;
        let beta: Vec<f64> =
            xtx_inv.iter().map(|row| row.iter().zip(&xty).map(|(a, b)| a * b).sum()).collect();

        // Residual variance and standard errors.
        let mut rss = 0.0;
        let mut tss = 0.0;
        let y_mean = y.iter().sum::<f64>() / n as f64;
        for (row, &yi) in rows.iter().zip(y) {
            let pred: f64 = row.iter().zip(&beta).map(|(a, b)| a * b).sum();
            rss += (yi - pred).powi(2);
            tss += (yi - y_mean).powi(2);
        }
        let dof = (n - p - 1) as f64;
        let sigma2 = rss / dof;
        let std_errors: Vec<f64> =
            (0..=p).map(|i| (sigma2 * xtx_inv[i][i]).max(0.0).sqrt()).collect();
        let r_squared = if tss > 0.0 { 1.0 - rss / tss } else { 1.0 };

        Ok(Fit { beta, std_errors, r_squared, n })
    }
}

/// A fitted model bound to named features — what the training phase stores
/// and the operation phase applies (§III-E "feature weights").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RegressionModel {
    feature_names: Vec<String>,
    fit: Fit,
    threshold: f64,
}

impl RegressionModel {
    /// Binds a [`Fit`] to feature names and a decision threshold.
    ///
    /// # Panics
    ///
    /// Panics if the name count differs from the fit's feature count.
    pub fn new(feature_names: &[&str], fit: Fit, threshold: f64) -> Self {
        assert_eq!(feature_names.len(), fit.n_features(), "one name per feature");
        RegressionModel {
            feature_names: feature_names.iter().map(|s| s.to_string()).collect(),
            fit,
            threshold,
        }
    }

    /// The decision threshold (`T_c` or `T_s`).
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Replaces the decision threshold (SOCs tune this to their capacity,
    /// §VI).
    pub fn set_threshold(&mut self, threshold: f64) {
        self.threshold = threshold;
    }

    /// The underlying fit.
    pub fn fit(&self) -> &Fit {
        &self.fit
    }

    /// Feature names in design-matrix order.
    pub fn feature_names(&self) -> impl Iterator<Item = &str> {
        self.feature_names.iter().map(String::as_str)
    }

    /// Scores a feature vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the model's feature count.
    pub fn score(&self, x: &[f64]) -> f64 {
        self.fit.predict(x)
    }

    /// Whether a feature vector scores at or above the threshold.
    pub fn is_positive(&self, x: &[f64]) -> bool {
        self.score(x) >= self.threshold
    }

    /// `(name, weight, t-stat, significant)` per feature — the paper's
    /// regression summary (§VI-A).
    pub fn summary(&self) -> Vec<(String, f64, f64, bool)> {
        self.feature_names
            .iter()
            .enumerate()
            .map(|(i, name)| {
                (
                    name.clone(),
                    self.fit.coefficient(i),
                    self.fit.t_stat(i),
                    self.fit.is_significant(i),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_linear_relationship() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let y: Vec<f64> = xs.iter().map(|r| 3.0 + 2.0 * r[0] - 0.5 * r[1]).collect();
        let fit = LinearRegression::fit(&xs, &y).unwrap();
        assert!((fit.intercept() - 3.0).abs() < 1e-8);
        assert!((fit.coefficient(0) - 2.0).abs() < 1e-8);
        assert!((fit.coefficient(1) + 0.5).abs() < 1e-8);
        assert!((fit.r_squared() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn predict_matches_training_data_on_exact_fit() {
        let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = xs.iter().map(|r| 1.0 + 4.0 * r[0]).collect();
        let fit = LinearRegression::fit(&xs, &y).unwrap();
        for (x, yi) in xs.iter().zip(&y) {
            assert!((fit.predict(x) - yi).abs() < 1e-8);
        }
    }

    #[test]
    fn irrelevant_noise_feature_is_insignificant() {
        // y depends on x0 strongly; x1 is a fixed pseudo-random sequence
        // uncorrelated with y.
        let noise = [
            0.3, -0.7, 0.1, 0.9, -0.2, 0.5, -0.9, 0.05, -0.4, 0.7, 0.2, -0.6, 0.8, -0.1, 0.45,
            -0.35,
        ];
        let xs: Vec<Vec<f64>> = (0..16).map(|i| vec![i as f64, noise[i]]).collect();
        let y: Vec<f64> =
            (0..16).map(|i| 5.0 * i as f64 + if i % 2 == 0 { 0.1 } else { -0.1 }).collect();
        let fit = LinearRegression::fit(&xs, &y).unwrap();
        assert!(fit.is_significant(0), "true driver must be significant");
        assert!(!fit.is_significant(1), "noise must be insignificant, t = {}", fit.t_stat(1));
    }

    #[test]
    fn collinear_features_are_singular() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(LinearRegression::fit(&xs, &y), Err(FitError::Singular));
    }

    #[test]
    fn too_few_samples_rejected() {
        let xs = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let y = vec![1.0, 2.0];
        assert_eq!(LinearRegression::fit(&xs, &y), Err(FitError::NotEnoughSamples));
    }

    #[test]
    fn ragged_input_rejected() {
        let xs = vec![vec![1.0], vec![1.0, 2.0]];
        let y = vec![1.0, 2.0];
        assert_eq!(LinearRegression::fit(&xs, &y), Err(FitError::DimensionMismatch));
        assert_eq!(LinearRegression::fit(&xs[..1], &y), Err(FitError::DimensionMismatch));
    }

    #[test]
    fn model_threshold_decision() {
        let xs: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = xs.iter().map(|r| r[0]).collect();
        let fit = LinearRegression::fit(&xs, &y).unwrap();
        let model = RegressionModel::new(&["NoHosts"], fit, 0.4);
        assert!(model.is_positive(&[0.9]));
        assert!(!model.is_positive(&[0.1]));
        assert_eq!(model.threshold(), 0.4);
        let summary = model.summary();
        assert_eq!(summary.len(), 1);
        assert_eq!(summary[0].0, "NoHosts");
    }

    #[test]
    fn zero_variance_target_has_unit_r2() {
        let xs: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        let y = vec![2.0; 6];
        let fit = LinearRegression::fit(&xs, &y).unwrap();
        assert!((fit.predict(&[3.0]) - 2.0).abs() < 1e-9);
        assert_eq!(fit.r_squared(), 1.0);
    }

    #[test]
    #[should_panic(expected = "feature count mismatch")]
    fn predict_validates_arity() {
        let xs: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let fit = LinearRegression::fit(&xs, &y).unwrap();
        let _ = fit.predict(&[1.0, 2.0]);
    }
}
