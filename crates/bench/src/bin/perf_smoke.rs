//! Machine-readable perf smoke pass for CI: measures ingest throughput,
//! the sharded-ingest A/B ([`ShardedEngine`] over `SHARD_COUNT` parallel
//! shards vs the single-engine path), the metrics-instrumentation
//! overhead on that hot path, parse-only and interning microbenches,
//! checkpoint/restore bandwidth, the always-on cycle (ingest rate while
//! background checkpoints commit underneath, plus the freeze-stall
//! ceiling), store-compaction bandwidth, raw backend put bandwidth, and
//! the service loopback (multi-tenant HTTP ingest rec/s + query latency)
//! on the benchmark-scale LANL world, and writes a small JSON report
//! (`BENCH_10.json` by default) that CI uploads as a workflow artifact.
//! The checked-in `ci/BENCH_10.json` is the baseline the perf gate
//! (`ci/perf_gate.py`) compares against (`ci/BENCH_4.json` through
//! `ci/BENCH_9.json` are earlier PRs' readings, kept for the
//! trajectory). The report records `cpu_cores` so the gate can tell a
//! multi-core smoke (where the sharded speedup contract applies) from a
//! constrained single-core runner (where parallel shards cannot beat one
//! engine and the ratio is informational).
//!
//! Record counts are read back from the attached [`MetricsRegistry`]
//! (`engine_records_total`, `serve_ingest_records_total`) and
//! cross-checked against the dataset, so the smoke pass also proves the
//! observability layer counts what actually ran. `obs_overhead_pct` is
//! the ingest wall-time cost of an enabled registry versus a disabled
//! one (alternating runs, per-arm minimum), gated `< 3%` absolutely.
//! `ingest_while_checkpoint_rec_s`, `checkpoint_ingest_ratio`, and
//! `checkpoint_stall_ms` are the always-on contract: the ratio is a
//! paired same-loop A/B against an idle ingest arm gated at >= 70%, and
//! the longest `Persistence::commit` critical section is gated by an
//! absolute ceiling.
//!
//! Numbers are medians (or per-arm minima) of a few short runs — a smoke
//! reading to catch collapses, not a calibrated benchmark; use `cargo
//! bench` for real measurements.
//!
//! Usage: `perf_smoke [output.json]`

use earlybird_engine::{
    compact_store, DayBatch, Engine, EngineBuilder, LifecycleConfig, LocalFsBackend, MemBackend,
    MetricsRegistry, ObjectStore, Persistence, ShardedEngine, SnapshotPolicy, StoreDir,
};
use earlybird_logmodel::{parse_dns_span, DomainInterner, ParsedChunk};
use earlybird_serve::{ServeClient, Server, ServerConfig, TenantSpec};
use earlybird_synthgen::lanl::LanlChallenge;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Median seconds of `runs` executions of `f`.
fn median_secs<F: FnMut()>(runs: usize, mut f: F) -> f64 {
    let mut times: Vec<f64> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

fn fresh_engine(challenge: &LanlChallenge, registry: Arc<MetricsRegistry>) -> Engine {
    EngineBuilder::lanl()
        .metrics(registry)
        .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
        .expect("valid config")
}

fn ingest_all(challenge: &LanlChallenge, registry: Arc<MetricsRegistry>) -> Engine {
    let mut engine = fresh_engine(challenge, registry);
    for day in &challenge.dataset.days {
        engine.ingest_day(DayBatch::Dns(day));
    }
    engine
}

/// Tenants pushing concurrently in the service loopback measurement.
const SERVE_TENANTS: usize = 4;
/// Records in each tenant's bootstrap-day span.
const SERVE_DAY0_RECORDS: u32 = 100_000;
/// Records in each tenant's operation-day span.
const SERVE_DAY1_RECORDS: u32 = 50_000;
/// Internal hosts per service tenant.
const SERVE_HOSTS: u32 = 64;

/// Pre-rendered interchange text for one tenant's day: deterministic
/// background chatter over `SERVE_HOSTS` hosts and a few hundred domains.
fn serve_span_text(tenant: usize, day: u32, records: u32) -> String {
    let mut text = String::with_capacity(records as usize * 40);
    for i in 0..records {
        let host = i % SERVE_HOSTS;
        let ts = (u64::from(i) * 131) % 86_400;
        let domain = (i * 7 + day) % 509;
        text.push_str(&format!(
            "{ts}\t10.0.0.{host}\td{domain}.t{tenant}.example.c3\tA\t50.{}.{}.1\n",
            domain % 200,
            host
        ));
    }
    text
}

/// The service loopback measurement: a daemon on an in-memory root store
/// (so the wire + parse + engine path dominates, not the medium), with
/// `SERVE_TENANTS` clients each pushing pre-rendered spans into their own
/// tenant concurrently. Returns total records pushed, the aggregate
/// span-push rate, and the p50 of 100 warm query round trips.
fn serve_loopback() -> (u64, f64, f64) {
    let cfg = ServerConfig::default();
    let registry = Arc::clone(&cfg.metrics);
    let server = Server::bind(Box::new(MemBackend::new()), cfg).expect("bind loopback daemon");
    let addr = server.addr();
    let handle = server.spawn();

    let spans: Vec<(String, String, String)> = (0..SERVE_TENANTS)
        .map(|t| {
            (
                format!("bench{t}"),
                serve_span_text(t, 0, SERVE_DAY0_RECORDS),
                serve_span_text(t, 1, SERVE_DAY1_RECORDS),
            )
        })
        .collect();
    for (name, _, _) in &spans {
        let mut client = ServeClient::new(addr);
        client.create_tenant(name, &TenantSpec::lanl(SERVE_HOSTS, 1, 2)).expect("create tenant");
    }

    // Timed region: only the span pushes — the ingest hot path the
    // service promises stays within a small constant of the library's.
    let started = Instant::now();
    std::thread::scope(|scope| {
        for (name, day0, day1) in &spans {
            scope.spawn(move || {
                let mut client = ServeClient::new(addr);
                let ack = client.push_span(name, 0, day0).expect("push day 0");
                assert_eq!(ack.records_pushed, u64::from(SERVE_DAY0_RECORDS));
                let ack = client.push_span(name, 1, day1).expect("push day 1");
                assert_eq!(ack.records_pushed, u64::from(SERVE_DAY1_RECORDS));
            });
        }
    });
    let push_secs = started.elapsed().as_secs_f64();
    // The record count comes from the daemon's own registry; it must
    // agree with what the clients pushed.
    let serve_records = registry.snapshot().counter_sum("serve_ingest_records_total", &[]);
    assert_eq!(
        serve_records,
        SERVE_TENANTS as u64 * u64::from(SERVE_DAY0_RECORDS + SERVE_DAY1_RECORDS),
        "daemon registry counts every pushed record"
    );
    let serve_ingest_rec_s = serve_records as f64 / push_secs;

    // Seal both days so the query phase reads real stored state.
    let mut client = ServeClient::new(addr);
    for (name, _, _) in &spans {
        client.finish_day(name, 0).expect("finish day 0");
        client.finish_day(name, 1).expect("finish day 1");
    }

    // Query latency: 100 warm round trips alternating the two read
    // routes across tenants, over one keep-alive connection.
    let mut samples: Vec<f64> = (0..100)
        .map(|i| {
            let (name, _, _) = &spans[i % SERVE_TENANTS];
            let started = Instant::now();
            if i % 2 == 0 {
                client.reports(name).expect("reports query");
            } else {
                client.alerts(name, 0).expect("alerts query");
            }
            started.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    let serve_query_p50_ms = samples[samples.len() / 2];

    client.shutdown().expect("graceful shutdown");
    drop(client);
    handle.join();
    (serve_records, serve_ingest_rec_s, serve_query_p50_ms)
}

/// Lines in the parse-only microbench span.
const PARSE_LINES: u32 = 200_000;
/// Distinct names in the interner microbench working set.
const INTERN_NAMES: usize = 4096;
/// Hit-path passes over the interner working set per timed run.
const INTERN_PASSES: usize = 32;

/// Parse-only microbench: span-parses pre-rendered interchange text into a
/// reused chunk — the SWAR splitter, bytewise number parsers, and batched
/// interning with nothing downstream. Returns `(lines/s, MB/s)`.
fn parse_only() -> (f64, f64) {
    let text = serve_span_text(0, 0, PARSE_LINES);
    let domains = DomainInterner::new();
    let mut chunk = ParsedChunk::default();
    let secs = median_secs(5, || {
        chunk.clear();
        parse_dns_span(text.lines().enumerate().map(|(i, l)| (i + 1, l)), &domains, &mut chunk);
        assert_eq!(chunk.records.len(), PARSE_LINES as usize);
        assert!(chunk.errors.is_empty());
    });
    (f64::from(PARSE_LINES) / secs, text.len() as f64 / (1024.0 * 1024.0) / secs)
}

/// Interning microbench: hit-path lookups of an established working set —
/// the read-mostly snapshot fast path every parsed record's symbols take
/// once a name has been seen. Returns lookups per second.
fn intern_hits() -> f64 {
    let interner = DomainInterner::new();
    let names: Vec<String> =
        (0..INTERN_NAMES).map(|i| format!("host{i}.dept{}.example.c3", i % 57)).collect();
    for name in &names {
        interner.intern(name);
    }
    let secs = median_secs(5, || {
        let mut acc = 0u32;
        for _ in 0..INTERN_PASSES {
            for name in &names {
                acc = acc.wrapping_add(interner.intern(name).raw());
            }
        }
        std::hint::black_box(acc);
    });
    (INTERN_PASSES * INTERN_NAMES) as f64 / secs
}

/// Alternating enabled/disabled ingest passes for the overhead reading.
const OVERHEAD_RUNS: usize = 4;

/// Shards in the sharded ingest arm — the "4-thread smoke" the perf
/// gate's speedup contract is written against.
const SHARD_COUNT: usize = 4;

/// Timed runs of the sharded ingest arm.
const SHARD_RUNS: usize = 4;

fn fresh_sharded(challenge: &LanlChallenge, registry: Arc<MetricsRegistry>) -> ShardedEngine {
    EngineBuilder::lanl()
        .metrics(registry)
        .build_sharded(
            Arc::clone(&challenge.dataset.domains),
            challenge.dataset.meta.clone(),
            SHARD_COUNT,
        )
        .expect("valid sharded config")
}

/// The sharded A/B arm: the same full-world ingest as the throughput
/// measurement, but through a [`ShardedEngine`] partitioning each day by
/// internal host across [`SHARD_COUNT`] parallel shards (deterministic
/// merge included — the report is byte-identical to the single-engine
/// one, which `tests/shard_equivalence.rs` proves). Timing runs use a
/// disabled registry so the reading is comparable with
/// `ingest_records_per_sec`; one extra instrumented run reads the mean
/// per-day merge wall time off the sharded engine's own
/// `engine_stage_micros{stage="shard_merge"}` series. Returns
/// `(sharded records/s, mean merge ms per day)`.
fn sharded_ingest(challenge: &LanlChallenge, total_records: u64) -> (f64, f64) {
    let mut sharded_secs = f64::INFINITY;
    for _ in 0..SHARD_RUNS {
        let mut engine = fresh_sharded(challenge, Arc::new(MetricsRegistry::disabled()));
        let started = Instant::now();
        for day in &challenge.dataset.days {
            engine.ingest_day(DayBatch::Dns(day));
        }
        sharded_secs = sharded_secs.min(started.elapsed().as_secs_f64());
    }

    let registry = Arc::new(MetricsRegistry::new());
    let mut engine = fresh_sharded(challenge, Arc::clone(&registry));
    for day in &challenge.dataset.days {
        engine.ingest_day(DayBatch::Dns(day));
    }
    let merge =
        registry.snapshot().histogram_totals("engine_stage_micros", &[("stage", "shard_merge")]);
    assert_eq!(
        merge.count,
        challenge.dataset.days.len() as u64,
        "one shard merge per ingested day"
    );
    let shard_merge_ms = merge.sum as f64 / 1e3 / merge.count.max(1) as f64;
    (total_records as f64 / sharded_secs, shard_merge_ms)
}

/// Runs of the always-on ingest-under-checkpoint measurement.
const CHECKPOINT_RUNS: usize = 4;

/// The always-on cycle: the same full-world ingest, but with a background
/// [`Persistence`] worker committing after every day and never awaited
/// inside the loop — freezing is the only work on the ingest thread, and
/// serialization plus the store commit overlap the next day's ingest.
///
/// An idle arm (same loop, no persistence) alternates with the
/// checkpointing arm so the gated ratio compares two minima taken under
/// the same machine conditions; the phase-one ingest number is measured
/// seconds earlier and drifts enough on a busy box to make a cross-phase
/// ratio flaky. Returns `(records/s while checkpointing, max freeze
/// stall in ms, checkpointing/idle throughput ratio)`, per-arm
/// best-of-`CHECKPOINT_RUNS`.
fn ingest_under_checkpoint(challenge: &LanlChallenge, total_records: u64) -> (f64, f64, f64) {
    let mut idle_secs = f64::INFINITY;
    let mut under_secs = f64::INFINITY;
    let mut best_stall_ms = f64::INFINITY;
    for _ in 0..CHECKPOINT_RUNS {
        let mut engine = fresh_engine(challenge, Arc::new(MetricsRegistry::disabled()));
        let started = Instant::now();
        for day in &challenge.dataset.days {
            engine.ingest_day(DayBatch::Dns(day));
        }
        idle_secs = idle_secs.min(started.elapsed().as_secs_f64());

        let dir = StoreDir::create_with(MemBackend::new(), LifecycleConfig::default())
            .expect("create mem store");
        let store = Persistence::new(dir, SnapshotPolicy::default().background());
        let mut engine = fresh_engine(challenge, Arc::new(MetricsRegistry::disabled()));
        let mut max_stall = 0.0f64;
        let started = Instant::now();
        for day in &challenge.dataset.days {
            engine.ingest_day(DayBatch::Dns(day));
            let freeze = Instant::now();
            let handle = store.commit(&engine).expect("freeze");
            max_stall = max_stall.max(freeze.elapsed().as_secs_f64() * 1e3);
            drop(handle); // durability is awaited once, outside the timed loop
        }
        let secs = started.elapsed().as_secs_f64();
        store.drain().expect("every queued commit lands");
        under_secs = under_secs.min(secs);
        best_stall_ms = best_stall_ms.min(max_stall);
    }
    (total_records as f64 / under_secs, best_stall_ms, idle_secs / under_secs)
}

fn main() {
    let out_path =
        std::env::args().nth(1).map(PathBuf::from).unwrap_or_else(|| "BENCH_10.json".into());
    let cpu_cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let challenge = earlybird_bench::lanl_world();
    let total_records: u64 = challenge.dataset.days.iter().map(|d| d.queries.len() as u64).sum();

    // Ingest throughput + instrumentation overhead: the full daily cycle
    // over every day of the world, run with a disabled and an enabled
    // registry in alternation. The per-arm minimum damps scheduler noise
    // (both arms see the same machine), the gated throughput metric stays
    // the uninstrumented reading (comparable with the BENCH_4..7
    // trajectory), and the enabled arm's record count is read back from
    // the registry itself.
    let mut disabled_secs = f64::INFINITY;
    let mut enabled_secs = f64::INFINITY;
    let mut registry_records = 0u64;
    for _ in 0..OVERHEAD_RUNS {
        let start = Instant::now();
        drop(ingest_all(&challenge, Arc::new(MetricsRegistry::disabled())));
        disabled_secs = disabled_secs.min(start.elapsed().as_secs_f64());

        let registry = Arc::new(MetricsRegistry::new());
        let start = Instant::now();
        drop(ingest_all(&challenge, Arc::clone(&registry)));
        enabled_secs = enabled_secs.min(start.elapsed().as_secs_f64());
        registry_records = registry.snapshot().counter_sum("engine_records_total", &[]);
    }
    assert_eq!(registry_records, total_records, "engine registry counts every ingested record");
    let ingest_records_per_sec = total_records as f64 / disabled_secs;
    let obs_overhead_pct = (enabled_secs - disabled_secs) / disabled_secs * 100.0;

    // Sharded A/B: the same world through a 4-shard ShardedEngine.
    let (sharded_ingest_rec_s, shard_merge_ms) = sharded_ingest(&challenge, total_records);

    // Hot-path microbenches: parse-only span throughput and interner
    // hit-path lookups (new in schema v4).
    let (parse_lines_per_sec, parse_mb_per_sec) = parse_only();
    let intern_hits_per_sec = intern_hits();

    // Checkpoint / restore bandwidth over the fully loaded engine.
    let engine = ingest_all(&challenge, Arc::new(MetricsRegistry::disabled()));
    let mut snapshot = Vec::new();
    engine.freeze().write_to(&mut snapshot).expect("checkpoint succeeds");
    let snapshot_bytes = snapshot.len() as u64;
    let checkpoint_secs = median_secs(5, || {
        let mut out = Vec::with_capacity(snapshot.len());
        engine.freeze().write_to(&mut out).expect("checkpoint succeeds");
    });
    let restore_secs = median_secs(5, || {
        // Bare deserialization, without store-dir plumbing.
        EngineBuilder::lanl().restore_stream(&mut snapshot.as_slice()).expect("snapshot restores");
    });
    let mib = 1024.0 * 1024.0;
    let checkpoint_mb_per_sec = snapshot_bytes as f64 / mib / checkpoint_secs;
    let restore_mb_per_sec = snapshot_bytes as f64 / mib / restore_secs;

    // Compaction bandwidth: fold a bootstrap full block + 6 day segments
    // back into one full block (chain bytes in) — the same fixture the
    // criterion compaction bench uses.
    let master = std::env::temp_dir().join(format!("earlybird-perf-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&master);
    let chain_bytes = earlybird_bench::build_lanl_chain(&challenge, &master);
    let scratch = master.with_extension("scratch");
    let compaction_secs = median_secs(3, || {
        earlybird_bench::copy_store_dir(&master, &scratch);
        let mut dir = StoreDir::open(&scratch, LifecycleConfig::default()).expect("open copy");
        compact_store(&mut dir).expect("compaction succeeds");
    });
    let compaction_mb_per_sec = chain_bytes as f64 / mib / compaction_secs;
    let _ = std::fs::remove_dir_all(&master);
    let _ = std::fs::remove_dir_all(&scratch);

    // Raw backend put bandwidth: stage + finalize the full snapshot as one
    // visible-or-absent object through the local-filesystem backend — the
    // floor under every StoreDir commit.
    let put_root =
        std::env::temp_dir().join(format!("earlybird-perf-smoke-put-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&put_root);
    let backend = LocalFsBackend::new(&put_root).expect("create backend root");
    let backend_put_secs = median_secs(5, || {
        let mut upload = backend.put_atomic("bench.ebstore").expect("begin upload");
        upload.write_all(&snapshot).expect("stage snapshot");
        upload.finalize().expect("finalize upload");
    });
    let backend_put_mb_s = snapshot_bytes as f64 / mib / backend_put_secs;
    let _ = std::fs::remove_dir_all(&put_root);

    // The always-on cycle: ingest rate with background checkpoints
    // committing underneath, the worst freeze stall the ingest thread
    // saw, and the paired checkpointing/idle throughput ratio.
    let (ingest_while_checkpoint_rec_s, checkpoint_stall_ms, checkpoint_ingest_ratio) =
        ingest_under_checkpoint(&challenge, total_records);

    // Service loopback: concurrent multi-tenant HTTP ingest + queries.
    let (serve_records, serve_ingest_rec_s, serve_query_p50_ms) = serve_loopback();

    let json = format!(
        "{{\n  \"schema\": \"earlybird-perf-smoke-v7\",\n  \"suite\": \"lanl_small\",\n  \
         \"cpu_cores\": {cpu_cores},\n  \
         \"ingest_records\": {registry_records},\n  \
         \"ingest_records_per_sec\": {ingest_records_per_sec:.0},\n  \
         \"sharded_ingest_rec_s\": {sharded_ingest_rec_s:.0},\n  \
         \"shard_merge_ms\": {shard_merge_ms:.3},\n  \
         \"obs_overhead_pct\": {obs_overhead_pct:.2},\n  \
         \"parse_lines_per_sec\": {parse_lines_per_sec:.0},\n  \
         \"parse_mb_per_sec\": {parse_mb_per_sec:.1},\n  \
         \"intern_hits_per_sec\": {intern_hits_per_sec:.0},\n  \
         \"snapshot_bytes\": {snapshot_bytes},\n  \
         \"checkpoint_mb_per_sec\": {checkpoint_mb_per_sec:.1},\n  \
         \"restore_mb_per_sec\": {restore_mb_per_sec:.1},\n  \
         \"ingest_while_checkpoint_rec_s\": {ingest_while_checkpoint_rec_s:.0},\n  \
         \"checkpoint_ingest_ratio\": {checkpoint_ingest_ratio:.3},\n  \
         \"checkpoint_stall_ms\": {checkpoint_stall_ms:.3},\n  \
         \"compaction_chain_bytes\": {chain_bytes},\n  \
         \"compaction_mb_per_sec\": {compaction_mb_per_sec:.1},\n  \
         \"backend_put_mb_s\": {backend_put_mb_s:.1},\n  \
         \"serve_ingest_records\": {serve_records},\n  \
         \"serve_ingest_rec_s\": {serve_ingest_rec_s:.0},\n  \
         \"serve_query_p50_ms\": {serve_query_p50_ms:.3}\n}}\n"
    );
    if let Some(parent) = out_path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent).expect("create report directory");
    }
    std::fs::write(&out_path, &json).expect("write perf report");
    println!("{json}");
    println!("perf smoke written to {}", out_path.display());
}
