//! Domain folding with a dedicated interner for folded names.
//!
//! "We first 'fold' the domain names to second-level (e.g., news.nbc.com is
//! folded to nbc.com) ... Since domain names are anonymized in the LANL
//! dataset, we conservatively fold to third-level domains" (§IV-A).

use earlybird_logmodel::{fold_domain, DomainInterner, DomainSym, Published};
use std::sync::{Arc, RwLock};

/// Sentinel marking a raw symbol whose fold has not been computed yet.
const UNFOLDED: u32 = u32::MAX;

/// The mutable half of the fold memo: a dense array indexed by raw symbol.
#[derive(Debug, Default)]
struct FoldCache {
    /// `vec[raw.raw()]` is the folded symbol's raw id, or [`UNFOLDED`].
    vec: Vec<u32>,
    /// Entries filled so far (drives the republish threshold).
    filled: usize,
    /// `filled` at the last snapshot publication.
    published: usize,
}

/// Memoized folding from raw domain symbols to folded domain symbols.
///
/// The folded names live in their own [`DomainInterner`] so the rest of the
/// pipeline never mixes raw and folded symbols by accident. The memo is a
/// dense `Vec<u32>` indexed by the raw symbol id; a read-mostly snapshot of
/// it is republished geometrically through a [`Published`] cell, so chunk
/// workers that grab a [`DomainFolder`] handle resolve repeat domains with a
/// plain array load — no lock, no hash. Misses fall back to the internally
/// synchronized live cache, so one `FoldTable` can still be shared by
/// parallel reduction workers; note that concurrent *first* folds of
/// distinct names make folded-symbol numbering racy — streaming callers that
/// need deterministic numbering warm the cache sequentially first (see
/// `earlybird-core`'s `DailyPipeline`).
#[derive(Debug)]
pub struct FoldTable {
    raw: Arc<DomainInterner>,
    folded: Arc<DomainInterner>,
    level: usize,
    live: RwLock<FoldCache>,
    snap: Published<Vec<u32>>,
}

impl FoldTable {
    /// Creates a fold table over `raw` names, folding to `level` labels.
    ///
    /// # Panics
    ///
    /// Panics if `level` is zero.
    pub fn new(raw: Arc<DomainInterner>, level: usize) -> Self {
        assert!(level > 0, "fold level must be positive");
        FoldTable {
            raw,
            folded: Arc::new(DomainInterner::new()),
            level,
            live: RwLock::new(FoldCache::default()),
            snap: Published::new(Vec::new()),
        }
    }

    /// Reassembles a fold table from restored interners (the persistence
    /// hook used by `earlybird-store`). The memo cache starts empty and is
    /// rebuilt lazily; because `folded` already holds every folded name in
    /// its original numbering, re-folding reproduces identical symbols.
    ///
    /// # Panics
    ///
    /// Panics if `level` is zero.
    pub fn from_interners(
        raw: Arc<DomainInterner>,
        folded: Arc<DomainInterner>,
        level: usize,
    ) -> Self {
        assert!(level > 0, "fold level must be positive");
        FoldTable {
            raw,
            folded,
            level,
            live: RwLock::new(FoldCache::default()),
            snap: Published::new(Vec::new()),
        }
    }

    /// The fold level (2 for enterprise data, 3 for anonymized LANL names).
    pub fn level(&self) -> usize {
        self.level
    }

    /// A per-chunk folding handle over the current memo snapshot.
    ///
    /// Acquire one per chunk of work: repeat folds hit the snapshot with a
    /// lock-free array load, and only first-time folds touch the shared
    /// table.
    pub fn folder(&self) -> DomainFolder<'_> {
        DomainFolder { table: self, snap: self.snap.load() }
    }

    /// Folds a raw symbol, memoizing the mapping.
    pub fn fold(&self, raw_sym: DomainSym) -> DomainSym {
        let idx = raw_sym.raw() as usize;
        {
            let live = self.live.read().expect("fold cache poisoned");
            if let Some(&f) = live.vec.get(idx) {
                if f != UNFOLDED {
                    return DomainSym::from_raw(f);
                }
            }
        }
        self.fold_miss(raw_sym, idx)
    }

    /// Slow path: resolve + intern under the write lock, then maybe
    /// republish the snapshot.
    fn fold_miss(&self, raw_sym: DomainSym, idx: usize) -> DomainSym {
        let name = self.raw.resolve(raw_sym);
        let folded_sym = self.folded.intern(fold_domain(&name, self.level));
        let mut live = self.live.write().expect("fold cache poisoned");
        if live.vec.len() <= idx {
            live.vec.resize(idx + 1, UNFOLDED);
        }
        if live.vec[idx] == UNFOLDED {
            live.vec[idx] = folded_sym.raw();
            live.filled += 1;
        }
        // Geometric republish: amortizes the O(n) snapshot clone to O(1)
        // per newly folded name.
        if live.filled >= live.published + (live.published / 8).max(64) {
            live.published = live.filled;
            self.snap.publish(Arc::new(live.vec.clone()));
        }
        folded_sym
    }

    /// Interns an already-folded name directly (used when seeding from IOC
    /// lists, which carry folded names).
    pub fn intern_folded(&self, name: &str) -> DomainSym {
        self.folded.intern(fold_domain(name, self.level))
    }

    /// The interner holding folded names.
    pub fn folded_interner(&self) -> &Arc<DomainInterner> {
        &self.folded
    }

    /// The interner holding raw names.
    pub fn raw_interner(&self) -> &Arc<DomainInterner> {
        &self.raw
    }

    /// Resolves a *folded* symbol to its name.
    pub fn folded_name(&self, sym: DomainSym) -> Arc<str> {
        self.folded.resolve(sym)
    }
}

/// A per-chunk handle over a [`FoldTable`] memo snapshot.
///
/// Folds of already-seen raw symbols are a lock-free array load; unseen
/// symbols fall back to the shared table (and land in a future snapshot).
/// The snapshot is pinned at construction — drop the handle and take a new
/// one per chunk.
#[derive(Debug)]
pub struct DomainFolder<'t> {
    table: &'t FoldTable,
    snap: Arc<Vec<u32>>,
}

impl DomainFolder<'_> {
    /// Folds a raw symbol, consulting the pinned snapshot first.
    pub fn fold(&self, raw_sym: DomainSym) -> DomainSym {
        match self.snap.get(raw_sym.raw() as usize) {
            Some(&f) if f != UNFOLDED => DomainSym::from_raw(f),
            _ => self.table.fold(raw_sym),
        }
    }

    /// The underlying fold table.
    pub fn table(&self) -> &FoldTable {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_and_memoizes() {
        let raw = Arc::new(DomainInterner::new());
        let a = raw.intern("news.nbc.com");
        let b = raw.intern("video.nbc.com");
        let c = raw.intern("evil.ru");
        let t = FoldTable::new(Arc::clone(&raw), 2);
        let fa = t.fold(a);
        let fb = t.fold(b);
        let fc = t.fold(c);
        assert_eq!(fa, fb, "same second-level entity");
        assert_ne!(fa, fc);
        assert_eq!(&*t.folded_name(fa), "nbc.com");
        assert_eq!(t.fold(a), fa, "memoized");
    }

    #[test]
    fn third_level_for_anonymized_names() {
        let raw = Arc::new(DomainInterner::new());
        let a = raw.intern("x.sub.rainbow.c3");
        let t = FoldTable::new(Arc::clone(&raw), 3);
        let fa = t.fold(a);
        assert_eq!(&*t.folded_name(fa), "sub.rainbow.c3");
    }

    #[test]
    fn intern_folded_matches_fold_of_same_entity() {
        let raw = Arc::new(DomainInterner::new());
        let a = raw.intern("www.ramdo.org");
        let t = FoldTable::new(Arc::clone(&raw), 2);
        let via_fold = t.fold(a);
        let via_seed = t.intern_folded("ramdo.org");
        assert_eq!(via_fold, via_seed);
        // Seeding with a deeper name folds it first.
        assert_eq!(t.intern_folded("cdn.ramdo.org"), via_seed);
    }

    #[test]
    fn folder_handle_agrees_with_table() {
        let raw = Arc::new(DomainInterner::new());
        let t = FoldTable::new(Arc::clone(&raw), 2);
        // Enough distinct names to cross the republish threshold.
        let syms: Vec<_> =
            (0..200).map(|i| raw.intern(&format!("h{i}.site{}.com", i % 50))).collect();
        let direct: Vec<_> = syms.iter().map(|&s| t.fold(s)).collect();
        // A fresh handle sees a published snapshot covering most entries;
        // every fold must agree with the table regardless of snapshot hits.
        let folder = t.folder();
        for (i, &s) in syms.iter().enumerate() {
            assert_eq!(folder.fold(s), direct[i]);
        }
        // A stale handle taken before new names appeared still folds them
        // correctly via the fallback path.
        let stale = t.folder();
        let late = raw.intern("late.arrival.net");
        assert_eq!(stale.fold(late), t.fold(late));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_level_rejected() {
        let raw = Arc::new(DomainInterner::new());
        let _ = FoldTable::new(raw, 0);
    }
}
