//! Registry concurrency: N writer threads hammer counters and histograms
//! while a reader snapshots mid-flight; totals are conserved.

use earlybird_obs::{MetricsRegistry, SampleValue};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Writers increment disjoint per-thread counters plus one shared
    /// counter and histogram; concurrent snapshots are monotone and the
    /// final snapshot conserves every increment.
    #[test]
    fn totals_conserved_under_concurrent_writers(
        threads in 2usize..6,
        per_thread in 1u64..400,
    ) {
        let reg = Arc::new(MetricsRegistry::new());
        let stop = Arc::new(AtomicBool::new(false));

        // A reader snapshotting in a loop while writers run: the shared
        // total must never decrease between snapshots.
        let reader = {
            let reg = Arc::clone(&reg);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut last = 0u64;
                let mut monotone = true;
                while !stop.load(Ordering::Relaxed) {
                    let now = reg.snapshot().counter_sum("shared_total", &[]);
                    monotone &= now >= last;
                    last = now;
                }
                monotone
            })
        };

        let writers: Vec<_> = (0..threads)
            .map(|t| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let tag = t.to_string();
                    // Registration races with other threads' registrations
                    // and with the reader's snapshots on purpose.
                    let own = reg.counter("per_thread_total", "", &[("writer", &tag)]);
                    let shared = reg.counter("shared_total", "", &[]);
                    let hist = reg.latency_histogram("work_micros", "", &[]);
                    for i in 0..per_thread {
                        own.inc();
                        shared.inc();
                        hist.observe(i);
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let monotone = reader.join().unwrap();
        prop_assert!(monotone, "shared_total went backwards between snapshots");

        let snap = reg.snapshot();
        let expected = threads as u64 * per_thread;
        prop_assert_eq!(snap.counter_sum("shared_total", &[]), expected);
        prop_assert_eq!(snap.counter_sum("per_thread_total", &[]), expected);
        for t in 0..threads {
            let tag = t.to_string();
            prop_assert_eq!(
                snap.counter_sum("per_thread_total", &[("writer", &tag)]),
                per_thread
            );
        }
        let hist = snap.histogram("work_micros", &[]).expect("histogram registered");
        prop_assert_eq!(hist.count, expected);
        prop_assert_eq!(hist.sum, threads as u64 * (per_thread * per_thread.saturating_sub(1) / 2));
        prop_assert_eq!(*hist.cumulative().last().unwrap(), hist.count);
        // Bucket counts individually sum to the observation count.
        prop_assert_eq!(hist.buckets.iter().sum::<u64>(), hist.count);

        // Every sample in a snapshot renders; the exposition never panics
        // and mentions each metric family exactly once in a TYPE line.
        let text = snap.render_prometheus();
        for name in ["shared_total", "per_thread_total", "work_micros"] {
            let type_lines =
                text.lines().filter(|l| l.starts_with(&format!("# TYPE {name} "))).count();
            prop_assert_eq!(type_lines, 1, "one TYPE header for {}", name);
        }
        let n_samples = snap.samples.len();
        let n_counters = snap
            .samples
            .iter()
            .filter(|s| matches!(s.value, SampleValue::Counter(_)))
            .count();
        prop_assert_eq!(n_samples, threads + 2, "one per-writer + shared + histogram");
        prop_assert_eq!(n_counters, threads + 1);
    }
}
