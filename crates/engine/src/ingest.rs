//! Streaming day ingestion: the [`Engine::begin_day`] push handle.
//!
//! The paper's histories are "updated incrementally daily" over billions of
//! log lines (§III-E, §IV-A) — no enterprise deployment can afford to
//! materialize a whole day of parsed records before work starts.
//! [`DayIngest`] is the constant-memory alternative to
//! [`crate::DayBatch`]-based ingestion: open a day with
//! [`Engine::begin_day`], feed it any mix of [`DayIngest::push_lines`] /
//! [`DayIngest::push_dns_records`] / [`DayIngest::push_proxy_records`]
//! spans in any chunking, and seal it with [`DayIngest::finish`] to run the
//! unchanged detection tail (C&C scoring, alerting, belief propagation).
//!
//! Each pushed span is split across the engine's worker pool: parsing and
//! chunk reduction run in parallel, while the two order-sensitive steps —
//! host-id assignment for raw DNS lines and first-fold interning of domain
//! names — run sequentially in arrival order, which makes every result
//! (alerts, counters, candidate ordering, sink sequence) independent of how
//! the day was chunked. `Engine::ingest_day` is itself a wrapper that
//! pushes the whole batch as one span.

use crate::builder::EngineError;
use crate::core_loop::Engine;
use crate::report::{DayReport, StageCounters};
use earlybird_core::{DayAccum, DayOutcome};
use earlybird_logmodel::{
    parse_dns_span, parse_proxy_span, payload_line, Day, DhcpLog, DnsQuery, ParseLogError,
    ParsedChunk, ProxyRecord,
};
use earlybird_pipeline::NormalizationCounts;
use std::sync::Mutex;
use std::time::Instant;

/// Upper bound on pooled scratch buffers (spare capacity beyond this is
/// dropped rather than hoarded).
const SCRATCH_POOL_CAP: usize = 64;

/// Reusable per-worker parse buffers for the raw-line ingest path.
///
/// Line pushes arrive span after span for a whole day; parsing each span
/// into freshly allocated `Vec`s made the allocator a per-span cost. The
/// pool hands out cleared [`ParsedChunk`]s that keep their record/error
/// capacity between spans. Purely transient state — never checkpointed.
#[derive(Debug, Default)]
pub(crate) struct ScratchPool {
    dns: Mutex<Vec<ParsedChunk<DnsQuery>>>,
    proxy: Mutex<Vec<ParsedChunk<ProxyRecord>>>,
}

impl ScratchPool {
    fn take<T>(pool: &Mutex<Vec<ParsedChunk<T>>>, n: usize) -> Vec<ParsedChunk<T>> {
        let mut pool = pool.lock().expect("scratch pool poisoned");
        let keep = pool.len().saturating_sub(n);
        let mut out: Vec<ParsedChunk<T>> = pool.drain(keep..).collect();
        out.resize_with(n, ParsedChunk::default);
        out
    }

    fn give<T>(pool: &Mutex<Vec<ParsedChunk<T>>>, bufs: Vec<ParsedChunk<T>>) {
        let mut pool = pool.lock().expect("scratch pool poisoned");
        for mut buf in bufs {
            if pool.len() >= SCRATCH_POOL_CAP {
                break;
            }
            buf.clear();
            pool.push(buf);
        }
    }

    pub(crate) fn take_dns(&self, n: usize) -> Vec<ParsedChunk<DnsQuery>> {
        Self::take(&self.dns, n)
    }

    pub(crate) fn give_dns(&self, bufs: Vec<ParsedChunk<DnsQuery>>) {
        Self::give(&self.dns, bufs)
    }

    pub(crate) fn take_proxy(&self, n: usize) -> Vec<ParsedChunk<ProxyRecord>> {
        Self::take(&self.proxy, n)
    }

    pub(crate) fn give_proxy(&self, bufs: Vec<ParsedChunk<ProxyRecord>>) {
        Self::give(&self.proxy, bufs)
    }
}

/// Which log source a streamed day reads from.
#[derive(Clone, Copy, Debug)]
pub enum IngestSource<'a> {
    /// DNS query lines/records (the LANL-style source, §V).
    Dns,
    /// Web-proxy lines/records plus the DHCP lease log needed to attribute
    /// dynamic IPs to hosts (the enterprise source, §VI).
    Proxy {
        /// The lease log covering the day.
        dhcp: &'a DhcpLog,
    },
}

impl IngestSource<'_> {
    pub(crate) fn is_dns(&self) -> bool {
        matches!(self, IngestSource::Dns)
    }
}

/// Push handle for one streaming day; created by [`Engine::begin_day`].
///
/// Records may be pushed in chunks of any size and (across parallel
/// producers upstream) any arrival order within a chunk; the final
/// [`DayReport`] is identical to ingesting the whole day at once. Replayed
/// days (already ingested) accept pushes as no-ops and return the stored
/// counters with the `duplicate` flag, preserving at-least-once delivery
/// safety.
#[derive(Debug)]
pub struct DayIngest<'e, 'a> {
    engine: &'e mut Engine,
    source: IngestSource<'a>,
    state: DayState,
}

/// An open streaming day detached from the engine borrow: the owned
/// accumulator state of a [`DayIngest`] between pushes.
///
/// [`DayIngest::suspend`] releases the `&mut Engine` borrow without sealing
/// the day; [`Engine::resume_day`] re-attaches the state to push more spans
/// or finish. A service holding many tenants can keep each tenant's open
/// days in a plain map and borrow the engine only for the duration of one
/// request.
#[derive(Debug)]
pub struct DayState {
    day: Day,
    dns: bool,
    /// `None` when the day is a replay (nothing accumulates).
    accum: Option<DayAccum>,
    parse_errors: usize,
    started: Instant,
}

impl DayState {
    /// The day being ingested.
    pub fn day(&self) -> Day {
        self.day
    }

    /// Whether this day was already ingested (pushes are no-ops).
    pub fn is_duplicate(&self) -> bool {
        self.accum.is_none()
    }

    /// Raw records pushed so far.
    pub fn records_pushed(&self) -> usize {
        self.accum.as_ref().map_or(0, DayAccum::records_in)
    }

    /// Parse errors accumulated by [`DayIngest::push_lines`] so far.
    pub fn parse_errors(&self) -> usize {
        self.parse_errors
    }
}

impl Engine {
    /// Opens a streaming ingest for `day`. Push records or raw log lines in
    /// chunks, then call [`DayIngest::finish`] to run detection and obtain
    /// the day's report. See [`DayIngest`] for the execution model.
    pub fn begin_day<'a>(&mut self, day: Day, source: IngestSource<'a>) -> DayIngest<'_, 'a> {
        let started = Instant::now();
        // At-least-once delivery safety: re-feeding an already-ingested day
        // must not double-count the cross-day popularity profiles (which
        // would silently push rare destinations over the unpopularity
        // threshold). Replays accumulate nothing.
        let accum = if self.reports.contains_key(&day) {
            None
        } else {
            let bootstrap = day.index() < self.bootstrap_days();
            Some(match source {
                IngestSource::Dns => self.pipeline.begin_dns_day(day, &self.meta, bootstrap),
                IngestSource::Proxy { .. } => {
                    self.pipeline.begin_proxy_day(day, &self.meta, bootstrap)
                }
            })
        };
        let state = DayState { day, dns: source.is_dns(), accum, parse_errors: 0, started };
        DayIngest { engine: self, source, state }
    }

    /// Re-attaches a [`DayState`] produced by [`DayIngest::suspend`] to
    /// continue pushing spans or seal the day.
    ///
    /// # Panics
    ///
    /// Panics if `source` is a different kind (DNS vs proxy) than the one
    /// the day was opened with — mixing sources mid-day would corrupt the
    /// accumulator, same contract as the push methods.
    pub fn resume_day<'a>(
        &mut self,
        state: DayState,
        source: IngestSource<'a>,
    ) -> DayIngest<'_, 'a> {
        assert_eq!(
            state.dns,
            source.is_dns(),
            "day {} resumed with a different source kind than it was opened with",
            state.day
        );
        DayIngest { engine: self, source, state }
    }
}

impl DayIngest<'_, '_> {
    /// The day being ingested.
    pub fn day(&self) -> Day {
        self.state.day
    }

    /// Whether this day was already ingested (pushes are no-ops).
    pub fn is_duplicate(&self) -> bool {
        self.state.is_duplicate()
    }

    /// Whether the day falls in the bootstrap (profiling-only) period.
    pub fn bootstrap(&self) -> bool {
        self.state.day.index() < self.engine.bootstrap_days()
    }

    /// Raw records pushed so far (parsed records for line pushes;
    /// pre-normalization records for proxy pushes).
    pub fn records_pushed(&self) -> usize {
        self.state.records_pushed()
    }

    /// Parse errors accumulated by [`DayIngest::push_lines`] so far.
    pub fn parse_errors(&self) -> usize {
        self.state.parse_errors
    }

    /// Detaches the open day from the engine borrow without sealing it;
    /// re-attach with [`Engine::resume_day`].
    pub fn suspend(self) -> DayState {
        self.state
    }

    /// Pushes a span of DNS queries, splitting it across the engine's
    /// parallel reduce workers.
    ///
    /// # Panics
    ///
    /// Panics if the ingest was opened with a proxy source.
    pub fn push_dns_records(&mut self, records: &[DnsQuery]) {
        assert!(self.source.is_dns(), "DNS records pushed into a proxy-source day");
        let Some(accum) = &mut self.state.accum else { return };
        accum.count_raw_records(records.len());
        let engine = &*self.engine;
        engine.metrics.records.add(records.len() as u64);
        let _reduce_span = engine.metrics.reduce.start();
        let shards = shard_spans(records, engine.cfg.parallelism, engine.cfg.ingest_chunk_records);
        reduce_dns_spans(engine, accum, &shards);
    }

    /// Pushes a span of raw proxy records (normalization — UTC conversion,
    /// lease resolution, IP-literal filtering — happens inside, in
    /// parallel).
    ///
    /// # Panics
    ///
    /// Panics if the ingest was opened with the DNS source.
    pub fn push_proxy_records(&mut self, records: &[ProxyRecord]) {
        let IngestSource::Proxy { dhcp } = self.source else {
            panic!("proxy records pushed into a DNS-source day");
        };
        let Some(accum) = &mut self.state.accum else { return };
        accum.count_raw_records(records.len());
        let engine = &*self.engine;
        engine.metrics.records.add(records.len() as u64);
        let _reduce_span = engine.metrics.reduce.start();
        let shards = shard_spans(records, engine.cfg.parallelism, engine.cfg.ingest_chunk_records);
        reduce_proxy_spans(engine, accum, &shards, dhcp);
    }

    /// Pushes a block of raw log lines in the tab-separated interchange
    /// format of `earlybird_logmodel::codec` (empty lines and `#` comments
    /// are skipped). Lines are parsed on the worker pool with parse-time
    /// interning — no per-line `String` allocation — and the parsed records
    /// flow through the same chunked reduce path as record pushes.
    ///
    /// Returns this block's parse failures as `(1-based line number within
    /// the block, error)`; they are also tallied in the day report's
    /// `parse_errors` counter.
    pub fn push_lines(&mut self, text: &str) -> Vec<(usize, ParseLogError)> {
        if self.state.accum.is_none() {
            return Vec::new();
        }
        let lines: Vec<(usize, &str)> = text
            .lines()
            .enumerate()
            .filter_map(|(i, line)| payload_line(line).map(|l| (i + 1, l)))
            .collect();

        let mut errors: Vec<(usize, ParseLogError)> = Vec::new();
        match self.source {
            IngestSource::Dns => {
                let engine = &*self.engine;
                let shards =
                    shard_spans(&lines, engine.cfg.parallelism, engine.cfg.ingest_chunk_records);
                // Each shard is parsed as one span into a pooled scratch
                // buffer: interner misses batch-resolve once per span, and
                // the record vectors keep their capacity across pushes.
                let mut chunks = engine.scratch.take_dns(shards.len());
                let parse_span = engine.metrics.parse.start();
                {
                    let domains = engine.pipeline.raw_interner();
                    parse_shards(&shards, &mut chunks, |shard, chunk| {
                        parse_dns_span(shard.iter().copied(), domains, chunk);
                    });
                }
                // Host ids depend on first-seen order: assign sequentially,
                // span by span in shard order.
                for chunk in &mut chunks {
                    self.engine.line_hosts.assign(&mut chunk.records);
                    errors.append(&mut chunk.errors);
                }
                parse_span.finish();
                let total: usize = chunks.iter().map(|c| c.records.len()).sum();
                let spans: Vec<&[DnsQuery]> = chunks.iter().map(|c| c.records.as_slice()).collect();
                let engine = &*self.engine;
                if let Some(accum) = &mut self.state.accum {
                    accum.count_raw_records(total);
                    engine.metrics.records.add(total as u64);
                    let _reduce_span = engine.metrics.reduce.start();
                    reduce_dns_spans(engine, accum, &spans);
                }
                drop(spans);
                engine.scratch.give_dns(chunks);
            }
            IngestSource::Proxy { dhcp } => {
                let engine = &*self.engine;
                let shards =
                    shard_spans(&lines, engine.cfg.parallelism, engine.cfg.ingest_chunk_records);
                let mut chunks = engine.scratch.take_proxy(shards.len());
                let parse_span = engine.metrics.parse.start();
                {
                    let domains = engine.pipeline.raw_interner();
                    let (uas, paths) = (&engine.uas, &engine.paths);
                    parse_shards(&shards, &mut chunks, |shard, chunk| {
                        parse_proxy_span(shard.iter().copied(), domains, uas, paths, chunk);
                    });
                }
                for chunk in &mut chunks {
                    errors.append(&mut chunk.errors);
                }
                parse_span.finish();
                let total: usize = chunks.iter().map(|c| c.records.len()).sum();
                let spans: Vec<&[ProxyRecord]> =
                    chunks.iter().map(|c| c.records.as_slice()).collect();
                if let Some(accum) = &mut self.state.accum {
                    accum.count_raw_records(total);
                    engine.metrics.records.add(total as u64);
                    let _reduce_span = engine.metrics.reduce.start();
                    reduce_proxy_spans(engine, accum, &spans, dhcp);
                }
                drop(spans);
                engine.scratch.give_proxy(chunks);
            }
        }
        errors.sort_by_key(|(lineno, _)| *lineno);
        self.state.parse_errors += errors.len();
        self.engine.metrics.parse_errors.add(errors.len() as u64);
        errors
    }

    /// Seals the day: finalizes the incremental index, folds the day into
    /// the cross-day histories, and (for operation days) runs the unchanged
    /// detection tail — C&C scoring, alerting, optional belief-propagation
    /// expansion — emitting alerts to every sink.
    ///
    /// # Panics
    ///
    /// Panics if a C&C scoring worker dies; use [`DayIngest::try_finish`]
    /// for the typed-error path.
    pub fn finish(self) -> DayReport {
        self.try_finish().unwrap_or_else(|e| panic!("daily cycle failed: {e}"))
    }

    /// [`DayIngest::finish`] with runtime faults surfaced as typed
    /// [`EngineError`]s instead of panics.
    ///
    /// # Errors
    ///
    /// [`EngineError::WorkerPanicked`] when a C&C scoring worker dies. The
    /// day's profile updates had already been applied by then, so the day
    /// *is* registered (a re-push is absorbed by the duplicate-day replay
    /// guard rather than double-counting the histories) and its contact
    /// index stays retained for post-mortem rescoring via
    /// [`Engine::cc_scores`]; only the detection tail — candidates,
    /// alerts, belief propagation — was skipped.
    pub fn try_finish(self) -> Result<DayReport, EngineError> {
        let DayIngest { engine, state, .. } = self;
        let DayState { day, accum, parse_errors, started, .. } = state;
        let Some(accum) = accum else {
            let mut replay =
                engine.reports.get(&day).cloned().expect("duplicate day must have a stored report");
            replay.duplicate = true;
            return Ok(replay);
        };
        engine.seal_streamed_day(day, accum, parse_errors, started)
    }
}

impl Engine {
    /// Seals a fully accumulated streamed day: `finish_day` under the
    /// profile timer, then either the bootstrap bookkeeping or the
    /// detection tail. The shared back half of [`DayIngest::try_finish`]
    /// and the sharded merge path in [`crate::shard`].
    pub(crate) fn seal_streamed_day(
        &mut self,
        day: Day,
        accum: DayAccum,
        parse_errors: usize,
        started: Instant,
    ) -> Result<DayReport, EngineError> {
        let mut report = DayReport {
            day,
            bootstrap: accum.bootstrap(),
            stages: StageCounters {
                records_in: accum.records_in(),
                parse_errors,
                ..StageCounters::default()
            },
            ..DayReport::default()
        };
        let outcome = {
            let _profile_span = self.metrics.profile.start();
            self.pipeline.finish_day(accum)
        };
        match outcome {
            DayOutcome::Bootstrap { dns_counts, proxy_counts, norm_counts } => {
                report.dns_counts = dns_counts;
                report.proxy_counts = proxy_counts;
                report.norm_counts = norm_counts;
                self.fill_reduction_counters(&mut report);
                report.stages.wall_micros = started.elapsed().as_micros() as u64;
                self.reports.insert(day, Engine::counters_only(&report));
                Ok(report)
            }
            DayOutcome::Operation(product) => self.run_detection_tail(report, *product, started),
        }
    }
}

/// Reduces pre-sharded DNS spans: sequential fold warm-up in span order
/// (folded-symbol numbering must never race), parallel chunk reduction, and
/// in-order absorption.
fn reduce_dns_spans(engine: &Engine, accum: &mut DayAccum, spans: &[&[DnsQuery]]) {
    let reductions = if spans.len() > 1 {
        // First folds must happen in record order, not in a worker race, so
        // folded-symbol numbering (and thus every tie-break downstream) is
        // chunk-split invariant.
        for span in spans {
            engine.pipeline.warm_dns_folds(span);
        }
        let accum = &*accum;
        map_shards(spans, |shard| engine.pipeline.reduce_dns_records(accum, shard, &engine.meta))
    } else {
        spans
            .iter()
            .map(|shard| engine.pipeline.reduce_dns_records(accum, shard, &engine.meta))
            .collect()
    };
    for chunk in reductions {
        engine.pipeline.absorb_chunk(accum, chunk);
    }
}

/// Reduces pre-sharded raw proxy spans: parallel normalization, in-order
/// counter merge and fold warm-up, parallel reduction, in-order absorption.
fn reduce_proxy_spans(
    engine: &Engine,
    accum: &mut DayAccum,
    spans: &[&[ProxyRecord]],
    dhcp: &DhcpLog,
) {
    let normalized: Vec<(Vec<ProxyRecord>, NormalizationCounts)> =
        map_shards(spans, |shard| engine.pipeline.normalize_proxy_records(shard, dhcp));
    for (_, counts) in &normalized {
        accum.merge_norm(counts);
    }
    if normalized.len() > 1 {
        for (recs, _) in &normalized {
            engine.pipeline.warm_proxy_folds(recs);
        }
    }
    let norm_spans: Vec<&[ProxyRecord]> = normalized.iter().map(|(r, _)| r.as_slice()).collect();
    let reductions = if norm_spans.len() > 1 {
        let accum = &*accum;
        map_shards(&norm_spans, |span| {
            engine.pipeline.reduce_proxy_records(accum, span, &engine.meta)
        })
    } else {
        norm_spans
            .iter()
            .map(|span| engine.pipeline.reduce_proxy_records(accum, span, &engine.meta))
            .collect()
    };
    for chunk in reductions {
        engine.pipeline.absorb_chunk(accum, chunk);
    }
}

/// Splits a span into at most `workers` contiguous shards of at least
/// `chunk_records` items each (short spans stay whole — thread spawn would
/// dominate).
pub(crate) fn shard_spans<T>(items: &[T], workers: usize, chunk_records: usize) -> Vec<&[T]> {
    if items.is_empty() {
        return Vec::new();
    }
    let shards = workers.clamp(1, items.len().div_ceil(chunk_records.max(1)));
    items.chunks(items.len().div_ceil(shards)).collect()
}

/// Maps `f` over the shards on scoped threads, preserving shard order; a
/// single shard runs inline.
pub(crate) fn map_shards<T: Sync, R: Send>(
    shards: &[&[T]],
    f: impl Fn(&[T]) -> R + Sync,
) -> Vec<R> {
    if shards.len() <= 1 {
        return shards.iter().map(|shard| f(shard)).collect();
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = shards.iter().map(|&shard| scope.spawn(move || f(shard))).collect();
        handles.into_iter().map(|h| h.join().expect("ingest worker panicked")).collect()
    })
}

/// Runs `f` over `(shard, scratch-buffer)` pairs on scoped threads (one
/// buffer per shard, mutated in place); a single pair runs inline.
pub(crate) fn parse_shards<T: Sync, B: Send>(
    shards: &[&[T]],
    bufs: &mut [B],
    f: impl Fn(&[T], &mut B) + Sync,
) {
    debug_assert_eq!(shards.len(), bufs.len());
    if shards.len() <= 1 {
        if let (Some(&shard), Some(buf)) = (shards.first(), bufs.first_mut()) {
            f(shard, buf);
        }
        return;
    }
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = shards
            .iter()
            .zip(bufs.iter_mut())
            .map(|(&shard, buf)| scope.spawn(move || f(shard, buf)))
            .collect();
        for h in handles {
            h.join().expect("ingest parse worker panicked");
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_spans_respects_worker_and_chunk_bounds() {
        let items: Vec<u32> = (0..100).collect();
        assert_eq!(shard_spans(&items, 4, 10).len(), 4, "enough records for every worker");
        assert_eq!(shard_spans(&items, 4, 60).len(), 2, "chunk floor limits shard count");
        assert_eq!(shard_spans(&items, 1, 10).len(), 1);
        assert_eq!(shard_spans(&items, 4, 1000).len(), 1, "short spans stay whole");
        assert!(shard_spans::<u32>(&[], 4, 10).is_empty());
        // Shards are a partition in order.
        let shards = shard_spans(&items, 3, 5);
        let rejoined: Vec<u32> = shards.iter().flat_map(|s| s.iter().copied()).collect();
        assert_eq!(rejoined, items);
    }

    #[test]
    fn map_shards_preserves_order() {
        let items: Vec<u32> = (0..64).collect();
        let shards = shard_spans(&items, 4, 4);
        let sums = map_shards(&shards, |s| s.iter().sum::<u32>());
        let expected: Vec<u32> = shards.iter().map(|s| s.iter().sum()).collect();
        assert_eq!(sums, expected);
    }
}
