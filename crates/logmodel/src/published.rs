//! A read-mostly publication cell: an immutable snapshot swapped atomically
//! under a writer, consulted without locks on the per-record path.
//!
//! The hot structures of the pipeline (interner tables, fold memos, filter
//! verdict caches) are read millions of times per chunk and written a
//! handful of times. [`Published`] holds the current immutable snapshot
//! behind an `Arc`; workers [`load`](Published::load) it **once per chunk**
//! and then do every per-record lookup through the owned `Arc` — no lock,
//! no atomic, no contention on the chunk's inner loop. Writers build a new
//! snapshot and [`publish`](Published::publish) it; readers holding the old
//! `Arc` simply keep the old (still-correct, append-only) view until they
//! reacquire.
//!
//! Acquisition itself takes a brief uncontended read lock (`std` has no
//! lock-free `Arc` swap without `unsafe`, which this crate forbids); that
//! cost is amortized over the tens of thousands of records in a chunk.

use std::fmt;
use std::sync::{Arc, RwLock};

/// An atomically swappable immutable snapshot. See the module docs.
pub struct Published<T> {
    cell: RwLock<Arc<T>>,
}

impl<T> Published<T> {
    /// Creates a cell publishing `value` as the initial snapshot.
    pub fn new(value: T) -> Self {
        Published { cell: RwLock::new(Arc::new(value)) }
    }

    /// The current snapshot. Hold the returned `Arc` for the duration of a
    /// chunk and look up through it; reacquire per chunk, not per record.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.cell.read().expect("published cell poisoned"))
    }

    /// Replaces the snapshot. Readers that already loaded the previous
    /// snapshot keep reading it unharmed.
    pub fn publish(&self, value: Arc<T>) {
        *self.cell.write().expect("published cell poisoned") = value;
    }
}

impl<T: fmt::Debug> fmt::Debug for Published<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("Published").field(&self.load()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_returns_latest_publication() {
        let cell = Published::new(vec![1u32]);
        let old = cell.load();
        cell.publish(Arc::new(vec![1, 2, 3]));
        assert_eq!(*old, vec![1], "held snapshots are undisturbed");
        assert_eq!(*cell.load(), vec![1, 2, 3]);
    }

    #[test]
    fn concurrent_readers_and_publisher() {
        let cell = Arc::new(Published::new(0usize));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cell = Arc::clone(&cell);
                scope.spawn(move || {
                    let mut last = 0;
                    for _ in 0..10_000 {
                        let v = *cell.load();
                        assert!(v >= last, "snapshots move forward");
                        last = v;
                    }
                });
            }
            for i in 1..=100 {
                cell.publish(Arc::new(i));
            }
        });
        assert_eq!(*cell.load(), 100);
    }
}
