//! Typed failures of the snapshot layer.
//!
//! Every way a snapshot can be unusable — wrong file, future format,
//! truncated write, flipped bit, or a payload that decodes but violates an
//! engine invariant — surfaces as a distinct [`StoreError`] variant. The
//! decoder never panics on untrusted bytes and never silently misloads.

use std::fmt;

/// Shorthand for results of checkpoint/restore operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// A failure while writing or reading a snapshot stream.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying reader/writer failed.
    Io(std::io::Error),
    /// The stream does not start with the `EBSTORE1` magic — not a
    /// snapshot, or one written by an incompatible future layout.
    BadMagic,
    /// The block was written by a newer format revision than this build
    /// understands.
    UnsupportedVersion {
        /// Version found in the block header.
        found: u16,
        /// Newest version this build can read.
        supported: u16,
    },
    /// The block's trailing CRC-32 does not match its contents: the bytes
    /// were corrupted in storage or transit.
    ChecksumMismatch {
        /// Checksum recorded in the stream.
        expected: u32,
        /// Checksum recomputed over the bytes actually read.
        found: u32,
    },
    /// The stream ended in the middle of a block — a torn or truncated
    /// write.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// The bytes decoded but violate the format or an engine invariant
    /// (wrong section order, out-of-range enum tag, non-contiguous ids,
    /// invalid configuration, ...).
    Corrupt {
        /// What failed validation.
        context: String,
    },
    /// A day segment would persist a day older than the chain's newest
    /// already-persisted day. Appending it would produce a stream the
    /// restore path rejects (segments must move forward), so the write is
    /// refused up front and the chain stays replayable.
    StaleSegment {
        /// Index of the out-of-order day the caller tried to persist.
        day: u32,
        /// Index of the newest day already persisted to the stream.
        last_persisted: u32,
    },
}

impl StoreError {
    /// Builds a [`StoreError::Corrupt`] with a formatted context.
    pub fn corrupt(context: impl Into<String>) -> Self {
        StoreError::Corrupt { context: context.into() }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            StoreError::BadMagic => f.write_str("not an earlybird snapshot (bad magic)"),
            StoreError::UnsupportedVersion { found, supported } => {
                write!(f, "snapshot format v{found} is newer than supported v{supported}")
            }
            StoreError::ChecksumMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot checksum mismatch: stored {expected:#010x}, computed {found:#010x}"
                )
            }
            StoreError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            StoreError::Corrupt { context } => write!(f, "snapshot corrupt: {context}"),
            StoreError::StaleSegment { day, last_persisted } => {
                write!(
                    f,
                    "refusing to persist day {day} behind already-persisted day \
                     {last_persisted}: the segment chain must move forward"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}
