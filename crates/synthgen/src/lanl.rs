//! The LANL-style DNS dataset generator and challenge schedule (§V).
//!
//! Reproduces the *structure* of the LANL "APT Infection Discovery using DNS
//! Data" challenge: two months of anonymized DNS logs (February for
//! bootstrap, March for operation) with 20 independent simulated infection
//! campaigns in the four hint cases of Table I.

use crate::campaign::{CampaignPlan, CampaignShape};
use crate::names::{lanl_domain, pronounceable};
use crate::rng::derive_rng;
use earlybird_intel::{CampaignId, GroundTruth, TrueClass};
use earlybird_logmodel::{
    DatasetMeta, Day, DnsDataset, DnsDayLog, DnsQuery, DnsRecordType, DomainInterner, HostId,
    HostKind, Ipv4, Timestamp, SECONDS_PER_DAY,
};
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// The four hint cases of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ChallengeCase {
    /// One hint host per day; detect the contacted malicious domains.
    One,
    /// Three or four hint hosts per day.
    Two,
    /// One hint host; detect domains *and* other compromised hosts.
    Three,
    /// No hints at all.
    Four,
}

impl ChallengeCase {
    /// Table I's case number.
    pub fn number(self) -> u32 {
        match self {
            ChallengeCase::One => 1,
            ChallengeCase::Two => 2,
            ChallengeCase::Three => 3,
            ChallengeCase::Four => 4,
        }
    }
}

/// The challenge schedule of Table I: `(March day, case)`.
pub const CHALLENGE_SCHEDULE: [(u32, ChallengeCase); 20] = [
    (2, ChallengeCase::One),
    (3, ChallengeCase::One),
    (4, ChallengeCase::One),
    (5, ChallengeCase::Two),
    (6, ChallengeCase::Two),
    (7, ChallengeCase::Two),
    (8, ChallengeCase::Two),
    (9, ChallengeCase::One),
    (10, ChallengeCase::One),
    (11, ChallengeCase::Two),
    (12, ChallengeCase::Two),
    (13, ChallengeCase::Two),
    (14, ChallengeCase::Three),
    (15, ChallengeCase::Three),
    (17, ChallengeCase::Three),
    (18, ChallengeCase::Three),
    (19, ChallengeCase::Three),
    (20, ChallengeCase::Three),
    (21, ChallengeCase::Three),
    (22, ChallengeCase::Four),
];

/// The paper's training split (§V-B): campaigns on these March days tune
/// parameters; the rest are the testing set.
pub const TRAIN_MARCH_DAYS: [u32; 10] = [2, 3, 4, 5, 7, 12, 14, 15, 17, 18];

/// Configuration of the LANL-style generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LanlConfig {
    /// Base seed; every derived stream is deterministic in it.
    pub seed: u64,
    /// Total internal hosts (workstations + servers).
    pub n_hosts: u32,
    /// Internal servers (host ids `0..n_servers`); their queries are
    /// filtered during reduction.
    pub n_servers: u32,
    /// Size of the popular benign domain pool.
    pub popular_domains: usize,
    /// Per-host benign queries per day, sampled uniformly in this range.
    pub queries_per_host_day: (u32, u32),
    /// Fresh benign domains appearing each day (the rare-destination noise
    /// floor).
    pub new_benign_per_day: usize,
    /// Fresh benign domains with *automated* (periodic) queries each day.
    pub benign_auto_per_day: usize,
    /// Popular domains that receive automated queries from many hosts
    /// (site refreshes — the non-rare automated bulk of §V-B).
    pub popular_auto_domains: usize,
    /// Fraction of benign queries aimed at internal resources.
    pub internal_query_frac: f64,
    /// Fraction of benign queries using non-A record types.
    pub non_a_frac: f64,
    /// Bootstrap (profiling) days — February.
    pub bootstrap_days: u32,
    /// Total days — February + March.
    pub total_days: u32,
}

impl LanlConfig {
    /// Full default scale (≈1.2 M queries over the two months).
    pub fn new(seed: u64) -> Self {
        LanlConfig {
            seed,
            n_hosts: 800,
            n_servers: 30,
            popular_domains: 2_500,
            queries_per_host_day: (8, 30),
            new_benign_per_day: 250,
            benign_auto_per_day: 20,
            popular_auto_domains: 10,
            internal_query_frac: 0.08,
            non_a_frac: 0.05,
            bootstrap_days: 28,
            total_days: 59,
        }
    }

    /// Reduced scale for integration tests.
    pub fn small() -> Self {
        LanlConfig {
            n_hosts: 250,
            n_servers: 10,
            popular_domains: 800,
            queries_per_host_day: (5, 15),
            new_benign_per_day: 60,
            benign_auto_per_day: 8,
            popular_auto_domains: 5,
            ..LanlConfig::new(7)
        }
    }

    /// Minimal scale for unit tests (still the full 59-day window, which
    /// the challenge schedule requires).
    pub fn tiny() -> Self {
        LanlConfig {
            n_hosts: 60,
            n_servers: 4,
            popular_domains: 200,
            queries_per_host_day: (3, 8),
            new_benign_per_day: 15,
            benign_auto_per_day: 4,
            popular_auto_domains: 2,
            ..LanlConfig::new(7)
        }
    }

    /// Maps a March day-of-month to a window day index.
    ///
    /// # Panics
    ///
    /// Panics for March days outside `1..=31`.
    pub fn march_day(&self, day_of_month: u32) -> Day {
        assert!((1..=31).contains(&day_of_month), "invalid March day");
        Day::new(self.bootstrap_days + day_of_month - 1)
    }
}

impl Default for LanlConfig {
    fn default() -> Self {
        LanlConfig::new(7)
    }
}

/// One simulated challenge campaign with its hints and answer key.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LanlCampaign {
    /// Campaign identifier (index into the schedule, day-ordered).
    pub id: CampaignId,
    /// Hint case.
    pub case: ChallengeCase,
    /// March day-of-month the infection runs.
    pub march_day: u32,
    /// Window day index.
    pub day: Day,
    /// Hosts revealed as hints (empty in case 4).
    pub hint_hosts: Vec<HostId>,
    /// The full plan (domains, victims, contacts).
    pub plan: CampaignPlan,
}

impl LanlCampaign {
    /// Whether the campaign belongs to the paper's training split.
    pub fn is_training(&self) -> bool {
        TRAIN_MARCH_DAYS.contains(&self.march_day)
    }

    /// The campaign's malicious domains (the challenge "answer").
    pub fn answer_domains(&self) -> Vec<&str> {
        self.plan.domain_names().collect()
    }
}

/// The generated challenge: dataset + campaigns + ground truth.
#[derive(Debug)]
pub struct LanlChallenge {
    /// The DNS dataset (both months).
    pub dataset: DnsDataset,
    /// All 20 campaigns, ordered by day.
    pub campaigns: Vec<LanlCampaign>,
    /// Ground-truth labels for every campaign domain.
    pub truth: GroundTruth,
    /// The generating configuration.
    pub config: LanlConfig,
}

impl LanlChallenge {
    /// Campaigns running on `day`.
    pub fn campaigns_on(&self, day: Day) -> impl Iterator<Item = &LanlCampaign> {
        self.campaigns.iter().filter(move |c| c.day == day)
    }

    /// Campaigns in the training split.
    pub fn training(&self) -> impl Iterator<Item = &LanlCampaign> {
        self.campaigns.iter().filter(|c| c.is_training())
    }

    /// Campaigns in the testing split.
    pub fn testing(&self) -> impl Iterator<Item = &LanlCampaign> {
        self.campaigns.iter().filter(|c| !c.is_training())
    }
}

/// The LANL-style dataset generator.
#[derive(Debug)]
pub struct LanlGenerator {
    cfg: LanlConfig,
    popular: Vec<String>,
    internal: Vec<String>,
    campaigns: Vec<LanlCampaign>,
}

impl LanlGenerator {
    /// Prepares a generator: builds the benign pools and plans all 20
    /// campaigns deterministically from the seed.
    pub fn new(cfg: LanlConfig) -> Self {
        let mut pool_rng = derive_rng(cfg.seed, &[10]);
        let popular: Vec<String> =
            (0..cfg.popular_domains).map(|i| lanl_domain(&mut pool_rng, i as u64)).collect();
        let internal: Vec<String> = (0..40).map(|i| format!("svc{i}.internal.c3")).collect();

        let mut campaigns = Vec::with_capacity(CHALLENGE_SCHEDULE.len());
        let mut schedule = CHALLENGE_SCHEDULE;
        schedule.sort_by_key(|(d, _)| *d);
        for (idx, (march_day, case)) in schedule.into_iter().enumerate() {
            let mut rng = derive_rng(cfg.seed, &[20, idx as u64]);
            let (n_victims, extras) = match case {
                ChallengeCase::One => (2, rng.gen_range(1..=2)),
                ChallengeCase::Two => (rng.gen_range(3..=4), 2),
                ChallengeCase::Three => (rng.gen_range(2..=4), 3),
                ChallengeCase::Four => (3, 4),
            };
            let workstations: Vec<HostId> = (cfg.n_servers..cfg.n_hosts).map(HostId::new).collect();
            let victims: Vec<HostId> =
                workstations.choose_multiple(&mut rng, n_victims).copied().collect();
            let names: Vec<String> = (0..=extras)
                .map(|k| format!("{}x{}{}.c3", pronounceable(&mut rng, 3), idx, k))
                .collect();
            let shape = CampaignShape {
                extra_domains: extras,
                beacon_period: *[300u64, 600, 900, 1200].choose(&mut rng).expect("non-empty"),
                beacon_jitter: 3,
                ..CampaignShape::default()
            };
            let day = cfg.march_day(march_day);
            let plan = CampaignPlan::plan(
                &mut rng,
                CampaignId(idx as u32),
                day,
                victims.clone(),
                names,
                shape,
            );
            let hint_hosts = match case {
                ChallengeCase::One | ChallengeCase::Three => vec![victims[0]],
                ChallengeCase::Two => victims.clone(),
                ChallengeCase::Four => vec![],
            };
            campaigns.push(LanlCampaign {
                id: CampaignId(idx as u32),
                case,
                march_day,
                day,
                hint_hosts,
                plan,
            });
        }

        LanlGenerator { cfg, popular, internal, campaigns }
    }

    /// The configuration.
    pub fn config(&self) -> &LanlConfig {
        &self.cfg
    }

    /// The planned campaigns (available before generating any traffic).
    pub fn campaigns(&self) -> &[LanlCampaign] {
        &self.campaigns
    }

    /// Dataset metadata.
    pub fn meta(&self) -> DatasetMeta {
        let mut kinds = vec![HostKind::Workstation; self.cfg.n_hosts as usize];
        for k in kinds.iter_mut().take(self.cfg.n_servers as usize) {
            *k = HostKind::Server;
        }
        DatasetMeta {
            n_hosts: self.cfg.n_hosts,
            host_kinds: kinds,
            internal_suffixes: vec!["internal.c3".into()],
            bootstrap_days: self.cfg.bootstrap_days,
            total_days: self.cfg.total_days,
        }
    }

    /// Generates the whole two-month dataset plus ground truth.
    pub fn generate(&self) -> LanlChallenge {
        let domains = Arc::new(DomainInterner::new());
        let days: Vec<DnsDayLog> =
            (0..self.cfg.total_days).map(|d| self.generate_day(&domains, Day::new(d))).collect();
        let mut truth = GroundTruth::new();
        for c in &self.campaigns {
            for name in c.plan.domain_names() {
                truth.set(name, TrueClass::Malicious(c.id));
            }
        }
        LanlChallenge {
            dataset: DnsDataset { domains, days, meta: self.meta() },
            campaigns: self.campaigns.clone(),
            truth,
            config: self.cfg.clone(),
        }
    }

    /// Generates a single day's query batch (streaming entry point; the
    /// batch is identical to the one [`Self::generate`] would produce for
    /// that day).
    pub fn generate_day(&self, domains: &DomainInterner, day: Day) -> DnsDayLog {
        let cfg = &self.cfg;
        let mut rng = derive_rng(cfg.seed, &[1, day.index() as u64]);
        let mut queries = Vec::new();

        // Benign browsing, internal queries, and non-A noise.
        for host in 0..cfg.n_hosts {
            let is_server = host < cfg.n_servers;
            let n = rng.gen_range(cfg.queries_per_host_day.0..=cfg.queries_per_host_day.1);
            for _ in 0..n {
                let ts = Timestamp::from_day_secs(day, browse_second(&mut rng));
                let roll: f64 = rng.gen();
                let (name, qtype): (&str, DnsRecordType) = if roll < cfg.internal_query_frac {
                    (&self.internal[rng.gen_range(0..self.internal.len())], DnsRecordType::A)
                } else if roll < cfg.internal_query_frac + cfg.non_a_frac {
                    (self.zipf_popular(&mut rng), non_a_type(&mut rng))
                } else {
                    (self.zipf_popular(&mut rng), DnsRecordType::A)
                };
                queries.push(self.query(domains, ts, host, name, qtype));
            }
            if is_server {
                // Servers additionally hammer popular destinations.
                for _ in 0..rng.gen_range(20..60) {
                    let ts = Timestamp::from_day_secs(day, rng.gen_range(0..SECONDS_PER_DAY));
                    let name = self.zipf_popular(&mut rng).to_owned();
                    queries.push(self.query(domains, ts, host, &name, DnsRecordType::A));
                }
            }
        }

        // Popular automated destinations: many hosts refresh periodically.
        for d in 0..cfg.popular_auto_domains.min(self.popular.len()) {
            let name = self.popular[d].clone();
            let n_subscribers = rng.gen_range(15..25u32);
            for _ in 0..n_subscribers {
                let host = rng.gen_range(cfg.n_servers..cfg.n_hosts);
                let period = *[1_800u64, 3_600].choose(&mut rng).expect("non-empty");
                self.emit_beacon(domains, &mut queries, &mut rng, day, host, &name, period, 2);
            }
        }

        // Fresh benign domains (the rare-destination noise floor).
        for i in 0..cfg.new_benign_per_day {
            let name = lanl_domain(&mut rng, 1_000_000 + day.index() as u64 * 10_000 + i as u64);
            for _ in 0..rng.gen_range(1..=2u32) {
                let host = rng.gen_range(cfg.n_servers..cfg.n_hosts);
                for _ in 0..rng.gen_range(1..=3u32) {
                    let ts = Timestamp::from_day_secs(day, browse_second(&mut rng));
                    queries.push(self.query(domains, ts, host, &name, DnsRecordType::A));
                }
            }
        }

        // Fresh benign *automated* domains (niche updaters).
        for i in 0..cfg.benign_auto_per_day {
            let name = lanl_domain(&mut rng, 5_000_000 + day.index() as u64 * 10_000 + i as u64);
            let period = *[300u64, 600, 1_800, 3_600].choose(&mut rng).expect("non-empty");
            let host = rng.gen_range(cfg.n_servers..cfg.n_hosts);
            self.emit_beacon(domains, &mut queries, &mut rng, day, host, &name, period, 2);
            // Occasionally a second host runs the same updater, usually at a
            // different cadence (same-period pairs are the realistic
            // false-positive pressure on the LANL C&C heuristic).
            if rng.gen_bool(0.15) {
                let other = rng.gen_range(cfg.n_servers..cfg.n_hosts);
                let other_period =
                    if rng.gen_bool(0.25) { period } else { period.saturating_mul(2).max(600) };
                self.emit_beacon(
                    domains,
                    &mut queries,
                    &mut rng,
                    day,
                    other,
                    &name,
                    other_period,
                    2,
                );
            }
        }

        // Campaign traffic.
        for campaign in self.campaigns.iter().filter(|c| c.day == day) {
            for contact in &campaign.plan.contacts {
                let dom = &campaign.plan.domains[contact.domain_idx];
                let qname = domains.intern(&dom.name);
                queries.push(DnsQuery {
                    ts: contact.ts,
                    src: contact.host,
                    src_ip: host_ip(contact.host),
                    qname,
                    qtype: DnsRecordType::A,
                    answer: Some(dom.ips[0]),
                });
            }
        }

        queries.sort_by_key(|q| q.ts);
        DnsDayLog { day, queries }
    }

    fn query(
        &self,
        domains: &DomainInterner,
        ts: Timestamp,
        host: u32,
        name: &str,
        qtype: DnsRecordType,
    ) -> DnsQuery {
        DnsQuery {
            ts,
            src: HostId::new(host),
            src_ip: host_ip(HostId::new(host)),
            qname: domains.intern(name),
            qtype,
            answer: (qtype == DnsRecordType::A).then(|| stable_ip(name)),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn emit_beacon(
        &self,
        domains: &DomainInterner,
        queries: &mut Vec<DnsQuery>,
        rng: &mut impl Rng,
        day: Day,
        host: u32,
        name: &str,
        period: u64,
        jitter: u64,
    ) {
        let start = rng.gen_range(0..4 * 3_600u64);
        let duration = rng.gen_range(4..=14) * 3_600;
        let mut t = start;
        while t < (start + duration).min(SECONDS_PER_DAY) {
            let ts = Timestamp::from_day_secs(day, t);
            queries.push(self.query(domains, ts, host, name, DnsRecordType::A));
            let j =
                if jitter == 0 { 0 } else { rng.gen_range(0..=2 * jitter) as i64 - jitter as i64 };
            t = (t as i64 + period as i64 + j).max(t as i64 + 1) as u64;
        }
    }

    fn zipf_popular(&self, rng: &mut impl Rng) -> &str {
        // Approximate Zipf: u^3 concentrates mass on low indices.
        let u: f64 = rng.gen();
        let idx = ((u * u * u) * self.popular.len() as f64) as usize;
        &self.popular[idx.min(self.popular.len() - 1)]
    }
}

fn browse_second(rng: &mut impl Rng) -> u64 {
    // Working-hours bias: 80% of browsing in 8:00-18:00.
    if rng.gen_bool(0.8) {
        rng.gen_range(8 * 3_600..18 * 3_600)
    } else {
        rng.gen_range(0..SECONDS_PER_DAY)
    }
}

fn non_a_type(rng: &mut impl Rng) -> DnsRecordType {
    *[
        DnsRecordType::Aaaa,
        DnsRecordType::Txt,
        DnsRecordType::Mx,
        DnsRecordType::Ptr,
        DnsRecordType::Srv,
    ]
    .choose(rng)
    .expect("non-empty")
}

fn host_ip(host: HostId) -> Ipv4 {
    let i = host.index();
    Ipv4::new(10, ((i >> 16) & 0xFF) as u8, ((i >> 8) & 0xFF) as u8, (i & 0xFF) as u8)
}

/// Stable pseudo-random public IP for a benign domain name.
fn stable_ip(name: &str) -> Ipv4 {
    let mut h = DefaultHasher::new();
    name.hash(&mut h);
    let v = h.finish();
    // Avoid the 10/8 internal space.
    Ipv4::new(20 + ((v >> 24) % 200) as u8, (v >> 16) as u8, (v >> 8) as u8, v as u8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_has_twenty_campaigns_in_four_cases() {
        assert_eq!(CHALLENGE_SCHEDULE.len(), 20);
        let count = |c: ChallengeCase| CHALLENGE_SCHEDULE.iter().filter(|(_, k)| *k == c).count();
        assert_eq!(count(ChallengeCase::One), 5);
        assert_eq!(count(ChallengeCase::Two), 7);
        assert_eq!(count(ChallengeCase::Three), 7);
        assert_eq!(count(ChallengeCase::Four), 1);
    }

    #[test]
    fn march_day_mapping() {
        let cfg = LanlConfig::tiny();
        assert_eq!(cfg.march_day(1), Day::new(28));
        assert_eq!(cfg.march_day(22), Day::new(49));
    }

    #[test]
    fn hints_follow_case_semantics() {
        let gen = LanlGenerator::new(LanlConfig::tiny());
        for c in gen.campaigns() {
            match c.case {
                ChallengeCase::One | ChallengeCase::Three => assert_eq!(c.hint_hosts.len(), 1),
                ChallengeCase::Two => assert!((3..=4).contains(&c.hint_hosts.len())),
                ChallengeCase::Four => assert!(c.hint_hosts.is_empty()),
            }
            assert!(c.plan.victims.len() >= 2, "all LANL campaigns have multiple victims");
            for h in &c.hint_hosts {
                assert!(c.plan.victims.contains(h), "hints are real victims");
            }
        }
    }

    #[test]
    fn campaign_days_match_schedule() {
        let gen = LanlGenerator::new(LanlConfig::tiny());
        let days: Vec<u32> = gen.campaigns().iter().map(|c| c.march_day).collect();
        let mut expected: Vec<u32> = CHALLENGE_SCHEDULE.iter().map(|(d, _)| *d).collect();
        expected.sort_unstable();
        assert_eq!(days, expected);
    }

    #[test]
    fn campaign_traffic_present_on_campaign_day_only() {
        let gen = LanlGenerator::new(LanlConfig::tiny());
        let domains = DomainInterner::new();
        let c = &gen.campaigns()[0];
        let cc_name = c.plan.cc_domain().to_owned();

        let on_day = gen.generate_day(&domains, c.day);
        let cc_sym = domains.get(&cc_name).expect("C&C domain queried on its day");
        let n_on = on_day.queries.iter().filter(|q| q.qname == cc_sym).count();
        assert!(n_on > 10, "beacon train expected, saw {n_on}");

        let other = gen.generate_day(&domains, Day::new(5));
        assert!(
            other.queries.iter().all(|q| q.qname != cc_sym),
            "campaign domain must not appear on other days"
        );
    }

    #[test]
    fn day_generation_is_deterministic() {
        let gen = LanlGenerator::new(LanlConfig::tiny());
        let d1 = gen.generate_day(&DomainInterner::new(), Day::new(30));
        let d2 = gen.generate_day(&DomainInterner::new(), Day::new(30));
        assert_eq!(d1.queries.len(), d2.queries.len());
        for (a, b) in d1.queries.iter().zip(&d2.queries) {
            assert_eq!(a.ts, b.ts);
            assert_eq!(a.src, b.src);
            assert_eq!(a.qtype, b.qtype);
        }
    }

    #[test]
    fn generate_labels_all_campaign_domains() {
        let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
        assert_eq!(challenge.campaigns.len(), 20);
        for c in &challenge.campaigns {
            for name in c.answer_domains() {
                assert!(
                    matches!(challenge.truth.class_of(name), TrueClass::Malicious(id) if id == c.id),
                    "{name} must be labeled for {:?}",
                    c.id
                );
            }
        }
        let train = challenge.training().count();
        let test = challenge.testing().count();
        assert_eq!(train, 10);
        assert_eq!(test, 10);
    }

    #[test]
    fn queries_are_sorted_and_within_day() {
        let gen = LanlGenerator::new(LanlConfig::tiny());
        let day = gen.generate_day(&DomainInterner::new(), Day::new(29));
        assert!(day.queries.windows(2).all(|w| w[0].ts <= w[1].ts));
        assert!(day.queries.iter().all(|q| q.ts.day() == Day::new(29)));
    }

    #[test]
    fn servers_are_first_host_ids() {
        let gen = LanlGenerator::new(LanlConfig::tiny());
        let meta = gen.meta();
        assert_eq!(meta.kind(HostId::new(0)), HostKind::Server);
        assert_eq!(meta.kind(HostId::new(gen.config().n_servers)), HostKind::Workstation);
    }
}
