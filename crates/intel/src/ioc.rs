//! The SOC's Indicator-of-Compromise feed.
//!
//! "SOC security analysts manually investigate incidents starting from IOCs"
//! (§I); the SOC-hints mode seeds belief propagation with "domains from the
//! IOC list provided by SOC" (§VI-B, 28 seed domains in the paper's run).

use earlybird_logmodel::Day;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A feed of SOC-confirmed malicious domains, each with the day it entered
/// the feed, keyed by folded domain name.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct IocFeed {
    domains: BTreeMap<String, Day>,
}

impl IocFeed {
    /// Creates an empty feed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `domain` to the feed as of `day` (keeps the earliest day on
    /// duplicates).
    pub fn add(&mut self, domain: &str, day: Day) {
        self.domains
            .entry(domain.to_owned())
            .and_modify(|d| {
                if day < *d {
                    *d = day;
                }
            })
            .or_insert(day);
    }

    /// Whether `domain` is a known IOC as of `as_of`.
    pub fn contains(&self, domain: &str, as_of: Day) -> bool {
        self.domains.get(domain).is_some_and(|&d| d <= as_of)
    }

    /// Whether `domain` ever appears in the feed.
    pub fn contains_ever(&self, domain: &str) -> bool {
        self.domains.contains_key(domain)
    }

    /// Domains visible in the feed as of `as_of`, in lexicographic order.
    pub fn visible(&self, as_of: Day) -> impl Iterator<Item = &str> {
        self.domains.iter().filter(move |(_, &d)| d <= as_of).map(|(name, _)| name.as_str())
    }

    /// Number of indicators in the feed (any day).
    pub fn len(&self) -> usize {
        self.domains.len()
    }

    /// Whether the feed is empty.
    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visibility_by_day() {
        let mut feed = IocFeed::new();
        feed.add("zeus-cc.ru", Day::new(10));
        feed.add("ramdo.org", Day::new(20));
        assert!(feed.contains("zeus-cc.ru", Day::new(10)));
        assert!(!feed.contains("ramdo.org", Day::new(15)));
        let visible: Vec<&str> = feed.visible(Day::new(15)).collect();
        assert_eq!(visible, vec!["zeus-cc.ru"]);
        assert_eq!(feed.visible(Day::new(30)).count(), 2);
    }

    #[test]
    fn duplicates_keep_earliest_day() {
        let mut feed = IocFeed::new();
        feed.add("x.org", Day::new(20));
        feed.add("x.org", Day::new(5));
        assert!(feed.contains("x.org", Day::new(6)));
        assert_eq!(feed.len(), 1);
    }

    #[test]
    fn empty_feed_contains_nothing() {
        let feed = IocFeed::new();
        assert!(!feed.contains_ever("a.b"));
        assert!(feed.is_empty());
    }
}
