//! Synthetic enterprise traffic generators.
//!
//! The paper evaluates on two proprietary datasets that cannot be
//! redistributed: two months of anonymized LANL DNS logs with 20 simulated
//! APT campaigns, and two months (38 TB) of web-proxy logs from a large
//! enterprise ("AC"). This crate generates scaled synthetic equivalents that
//! exercise the same code paths (see DESIGN.md §2 for the substitution
//! argument):
//!
//! * [`lanl::LanlGenerator`] — DNS-only, anonymized names, internal
//!   servers/resources, benign Zipf browsing, benign periodic services, and
//!   the 20-campaign challenge schedule of Table I with hint hosts and
//!   ground-truth answers.
//! * [`ac::AcGenerator`] — full web-proxy records (URL, user-agent, referer,
//!   status), DHCP/VPN churn, multi-timezone collectors, benign automated
//!   services (the false-positive sources of Fig. 6), and malicious
//!   campaigns including beaconing C&C, delivery stages, DGA clusters and a
//!   Sality-style URL-pattern cluster, together with the simulated WHOIS /
//!   VirusTotal / IOC intelligence.
//!
//! All generation is deterministic in the configured seed, and day batches
//! can be generated independently (streaming) or collected into a dataset.
//!
//! # Example
//!
//! ```
//! use earlybird_synthgen::lanl::{LanlConfig, LanlGenerator};
//!
//! let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
//! assert_eq!(challenge.campaigns.len(), 20);
//! assert!(challenge.dataset.total_queries() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ac;
pub mod campaign;
pub mod lanl;
pub mod names;
pub mod rng;

pub use ac::{AcConfig, AcGenerator, AcIntel, AcWorld};
pub use campaign::{CampaignDomainRole, CampaignPlan, PlannedContact};
pub use lanl::{ChallengeCase, LanlCampaign, LanlChallenge, LanlConfig, LanlGenerator};
