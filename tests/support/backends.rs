//! Shared backend harness for the lifecycle and crash-injection suites:
//! one fixture type that can create, reopen, and deep-copy a snapshot
//! store on every shipped [`ObjectStore`] backend, so the same invariants
//! run as a `{localfs, mem, s3lite}` matrix.
//!
//! CI sets `EARLYBIRD_BACKEND` to pin one backend per matrix job; unset
//! (or `all`) runs every backend in-process.

use earlybird::engine::{
    LifecycleConfig, LocalFsBackend, MemBackend, ObjectStore, S3LiteBackend, StoreDir,
};
use earlybird::store::StoreResult;
use std::io::Write as _;
use std::path::PathBuf;

/// One concrete store location a test can create, crash, and reopen.
/// For the shared-state backends the harness keeps the service handle, so
/// a reopened store sees exactly what the "crashed" one committed — the
/// in-memory equivalent of a directory surviving a dead process.
pub enum Backend {
    /// A directory under the system temp dir.
    LocalFs(PathBuf),
    /// A shared in-memory service.
    Mem(MemBackend),
    /// The simulated S3 service (multipart staging + conditional swap).
    S3Lite(S3LiteBackend),
}

impl Backend {
    /// The backends selected for this run: all three, or the single one
    /// named by `EARLYBIRD_BACKEND` (CI matrix).
    pub fn matrix(tag: &str) -> Vec<Backend> {
        let selected = std::env::var("EARLYBIRD_BACKEND").unwrap_or_else(|_| "all".into());
        let mut out = Vec::new();
        if matches!(selected.as_str(), "all" | "localfs") {
            out.push(Backend::LocalFs(Self::temp_root(tag)));
        }
        if matches!(selected.as_str(), "all" | "mem") {
            out.push(Backend::Mem(MemBackend::new()));
        }
        if matches!(selected.as_str(), "all" | "s3lite") {
            out.push(Backend::S3Lite(S3LiteBackend::new()));
        }
        assert!(
            !out.is_empty(),
            "EARLYBIRD_BACKEND={selected:?} selects no backend (use localfs|mem|s3lite|all)"
        );
        out
    }

    fn temp_root(tag: &str) -> PathBuf {
        let root =
            std::env::temp_dir().join(format!("earlybird-{tag}-localfs-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    /// Matrix key (matches the `EARLYBIRD_BACKEND` values).
    pub fn name(&self) -> &'static str {
        match self {
            Backend::LocalFs(_) => "localfs",
            Backend::Mem(_) => "mem",
            Backend::S3Lite(_) => "s3lite",
        }
    }

    /// An empty store of the same kind (for sweep iterations that each
    /// need a pristine store).
    pub fn fresh(&self) -> Backend {
        match self {
            Backend::LocalFs(root) => {
                let _ = std::fs::remove_dir_all(root);
                Backend::LocalFs(root.clone())
            }
            Backend::Mem(_) => Backend::Mem(MemBackend::new()),
            Backend::S3Lite(_) => Backend::S3Lite(S3LiteBackend::new()),
        }
    }

    /// A deep, independent copy of this store's current contents (for
    /// sweeps that replay many crashes against one master fixture).
    /// Recursive on the filesystem, so tenant scopes (`tenants/<name>/`)
    /// travel with the root store.
    pub fn fork_copy(&self, tag: &str) -> Backend {
        match self {
            Backend::LocalFs(root) => {
                let copy = Self::temp_root(tag);
                copy_tree(root, &copy);
                Backend::LocalFs(copy)
            }
            Backend::Mem(handle) => Backend::Mem(handle.fork()),
            Backend::S3Lite(handle) => Backend::S3Lite(handle.fork()),
        }
    }

    /// The backend as a boxed root [`ObjectStore`] — what the service
    /// daemon mounts its tenant scopes under. For the shared-state
    /// backends the box is another handle on the same service, so a
    /// "restarted" daemon opened from the same [`Backend`] sees exactly
    /// what the previous one committed.
    pub fn boxed_store(&self) -> Box<dyn ObjectStore> {
        match self {
            Backend::LocalFs(root) => {
                std::fs::create_dir_all(root).expect("create localfs root");
                Box::new(LocalFsBackend::new(root).expect("open localfs root"))
            }
            Backend::Mem(handle) => Box::new(handle.clone()),
            Backend::S3Lite(handle) => Box::new(handle.clone()),
        }
    }

    /// Creates a fresh store here.
    pub fn create(&self, cfg: LifecycleConfig) -> StoreResult<StoreDir> {
        match self {
            Backend::LocalFs(root) => StoreDir::create(root, cfg),
            Backend::Mem(handle) => StoreDir::create_with(handle.clone(), cfg),
            Backend::S3Lite(handle) => StoreDir::create_with(handle.clone(), cfg),
        }
    }

    /// Reopens the store (what a restarted process would do).
    pub fn open(&self, cfg: LifecycleConfig) -> StoreResult<StoreDir> {
        match self {
            Backend::LocalFs(root) => StoreDir::open(root, cfg),
            Backend::Mem(handle) => StoreDir::open_with(handle.clone(), cfg),
            Backend::S3Lite(handle) => StoreDir::open_with(handle.clone(), cfg),
        }
    }

    /// Plants an unreferenced object through the backend's own upload
    /// path — crash residue for quarantine tests.
    pub fn plant_orphan(&self, name: &str, bytes: &[u8]) {
        match self {
            Backend::LocalFs(root) => std::fs::write(root.join(name), bytes).expect("plant file"),
            Backend::Mem(handle) => Self::finalize_orphan(handle, name, bytes),
            Backend::S3Lite(handle) => Self::finalize_orphan(handle, name, bytes),
        }
    }

    fn finalize_orphan(store: &dyn ObjectStore, name: &str, bytes: &[u8]) {
        let mut upload = store.put_atomic(name).expect("begin orphan upload");
        upload.write_all(bytes).expect("stage orphan");
        upload.finalize().expect("finalize orphan");
    }

    /// Deletes an object out from under the manifest — simulated damage
    /// for missing-chain-object tests.
    pub fn delete_object(&self, name: &str) {
        match self {
            Backend::LocalFs(root) => std::fs::remove_file(root.join(name)).expect("remove file"),
            Backend::Mem(handle) => handle.delete(name).expect("delete object"),
            Backend::S3Lite(handle) => handle.delete(name).expect("delete object"),
        }
    }

    /// Removes any on-disk residue (no-op for the in-memory services).
    pub fn cleanup(&self) {
        if let Backend::LocalFs(root) = self {
            let _ = std::fs::remove_dir_all(root);
        }
    }
}

/// Copies a directory tree (files + subdirectories) for LocalFs forks.
fn copy_tree(from: &std::path::Path, to: &std::path::Path) {
    std::fs::create_dir_all(to).expect("create copy dir");
    for entry in std::fs::read_dir(from).expect("read master dir") {
        let entry = entry.expect("dir entry");
        let target = to.join(entry.file_name());
        let kind = entry.file_type().expect("file type");
        if kind.is_dir() {
            copy_tree(&entry.path(), &target);
        } else if kind.is_file() {
            std::fs::copy(entry.path(), &target).expect("copy chain file");
        }
    }
}
