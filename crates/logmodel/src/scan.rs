//! SWAR (SIMD-within-a-register) byte scanning and bytewise ASCII number
//! parsing for the ingest hot path.
//!
//! The interchange parsers in [`crate::codec`] split millions of lines per
//! second; iterating `char`s or round-tripping through `str::parse` costs
//! more than the surrounding pipeline. This module provides the three
//! primitives they need, each processing eight bytes per step with plain
//! `u64` arithmetic (no platform intrinsics, no `unsafe`):
//!
//! - [`find_byte`] / [`count_byte`] — memchr-style scanning using an exact
//!   zero-byte mask (Hacker's Delight §6-1; the formula has no false
//!   positives, unlike the cheaper `(v - 0x01…) & !v & 0x80…` trick, which
//!   matters because adversarial input is routine in log feeds),
//! - [`split_exact`] — fixed-arity field splitting into `[&str; N]`,
//! - [`parse_u64`] / [`parse_i32`] / [`parse_u16`] — bytewise integer
//!   parsers whose [`IntError`] reproduces `ParseIntError`'s `Display`
//!   strings exactly, so switching parsers never changes an error message.

use std::fmt;

const LO: u64 = 0x0101_0101_0101_0101;
const HI: u64 = 0x8080_8080_8080_8080;

/// A mask with `0x80` in every lane of `w` that holds `0x00` and `0x00` in
/// every other lane. Exact for all inputs: `(v & 0x7f…) + 0x7f…` cannot
/// carry across lanes, so one lane never corrupts its neighbor.
#[inline]
fn zero_byte_mask(w: u64) -> u64 {
    let m = !HI; // 0x7f7f…
    !(((w & m) + m) | w | m)
}

/// Broadcasts `b` to all eight lanes.
#[inline]
fn splat(b: u8) -> u64 {
    LO * u64::from(b)
}

/// Index of the first occurrence of `needle` in `hay` at or after `from`.
///
/// # Example
///
/// ```
/// use earlybird_logmodel::scan::find_byte;
/// assert_eq!(find_byte(b'\t', b"ab\tcd\tef", 0), Some(2));
/// assert_eq!(find_byte(b'\t', b"ab\tcd\tef", 3), Some(5));
/// assert_eq!(find_byte(b'\t', b"abcdef", 0), None);
/// ```
#[inline]
pub fn find_byte(needle: u8, hay: &[u8], from: usize) -> Option<usize> {
    let n = splat(needle);
    let mut i = from;
    while let Some(chunk) = hay.get(i..i + 8) {
        let w = u64::from_le_bytes(chunk.try_into().expect("slice of 8"));
        let mask = zero_byte_mask(w ^ n);
        if mask != 0 {
            return Some(i + (mask.trailing_zeros() >> 3) as usize);
        }
        i += 8;
    }
    while i < hay.len() {
        if hay[i] == needle {
            return Some(i);
        }
        i += 1;
    }
    None
}

/// Number of occurrences of `needle` in `hay`.
///
/// # Example
///
/// ```
/// use earlybird_logmodel::scan::count_byte;
/// assert_eq!(count_byte(b'.', b"news.nbc.com"), 2);
/// assert_eq!(count_byte(b'.', b""), 0);
/// ```
#[inline]
pub fn count_byte(needle: u8, hay: &[u8]) -> usize {
    let n = splat(needle);
    let mut count = 0usize;
    let mut chunks = hay.chunks_exact(8);
    for chunk in &mut chunks {
        let w = u64::from_le_bytes(chunk.try_into().expect("slice of 8"));
        count += zero_byte_mask(w ^ n).count_ones() as usize;
    }
    count + chunks.remainder().iter().filter(|&&b| b == needle).count()
}

/// Splits `line` on `sep` into exactly `N` fields.
///
/// On arity mismatch returns `Err(total_fields)` — the number of fields the
/// line actually has (`separators + 1`, matching `line.split(sep).count()`),
/// which parse errors report as the offending field index.
///
/// `sep` must be an ASCII byte so every split point is a `char` boundary.
///
/// # Example
///
/// ```
/// use earlybird_logmodel::scan::split_exact;
/// assert_eq!(split_exact::<3>("a\tb\tc", b'\t'), Ok(["a", "b", "c"]));
/// assert_eq!(split_exact::<3>("a\tb", b'\t'), Err(2));
/// assert_eq!(split_exact::<3>("a\tb\tc\td", b'\t'), Err(4));
/// ```
#[inline]
pub fn split_exact<const N: usize>(line: &str, sep: u8) -> Result<[&str; N], usize> {
    debug_assert!(sep.is_ascii(), "separator must be ASCII");
    let bytes = line.as_bytes();
    let mut out = [""; N];
    let mut start = 0usize;
    for (i, slot) in out.iter_mut().enumerate().take(N - 1) {
        match find_byte(sep, bytes, start) {
            Some(pos) => {
                *slot = &line[start..pos];
                start = pos + 1;
            }
            None => return Err(i + 1),
        }
    }
    if let Some(pos) = find_byte(sep, bytes, start) {
        return Err(N + 1 + count_byte(sep, &bytes[pos + 1..]));
    }
    out[N - 1] = &line[start..];
    Ok(out)
}

/// Why an ASCII integer failed to parse.
///
/// `Display` reproduces the exact strings of `std::num::ParseIntError`, so
/// the bytewise parsers below are drop-in replacements for `str::parse` in
/// error messages too.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IntError {
    /// The input was empty.
    Empty,
    /// A byte was not an ASCII digit (or a misplaced sign).
    InvalidDigit,
    /// The value exceeds the target type's maximum.
    PosOverflow,
    /// The value is below the target type's minimum.
    NegOverflow,
}

impl fmt::Display for IntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            IntError::Empty => "cannot parse integer from empty string",
            IntError::InvalidDigit => "invalid digit found in string",
            IntError::PosOverflow => "number too large to fit in target type",
            IntError::NegOverflow => "number too small to fit in target type",
        })
    }
}

impl std::error::Error for IntError {}

/// Parses a `u64` from decimal ASCII, accepting an optional leading `+`
/// (exactly the grammar `str::parse::<u64>` accepts).
///
/// # Errors
///
/// Returns an [`IntError`] mirroring `ParseIntError` case for case.
#[inline]
pub fn parse_u64(s: &str) -> Result<u64, IntError> {
    let mut digits = s.as_bytes();
    if digits.is_empty() {
        return Err(IntError::Empty);
    }
    if digits[0] == b'+' {
        digits = &digits[1..];
        if digits.is_empty() {
            return Err(IntError::InvalidDigit);
        }
    }
    let mut value: u64 = 0;
    for &b in digits {
        let d = b.wrapping_sub(b'0');
        if d > 9 {
            return Err(IntError::InvalidDigit);
        }
        value = value
            .checked_mul(10)
            .and_then(|v| v.checked_add(u64::from(d)))
            .ok_or(IntError::PosOverflow)?;
    }
    Ok(value)
}

/// Parses a `u16` from decimal ASCII with `str::parse::<u16>` semantics.
///
/// # Errors
///
/// Returns an [`IntError`] mirroring `ParseIntError` case for case.
#[inline]
pub fn parse_u16(s: &str) -> Result<u16, IntError> {
    u16::try_from(parse_u64(s)?).map_err(|_| IntError::PosOverflow)
}

/// Parses an `i32` from decimal ASCII, accepting an optional leading `+` or
/// `-` (exactly the grammar `str::parse::<i32>` accepts, including
/// `i32::MIN`).
///
/// # Errors
///
/// Returns an [`IntError`] mirroring `ParseIntError` case for case.
#[inline]
pub fn parse_i32(s: &str) -> Result<i32, IntError> {
    let bytes = s.as_bytes();
    if bytes.is_empty() {
        return Err(IntError::Empty);
    }
    let (negative, digits) = match bytes[0] {
        b'+' => (false, &bytes[1..]),
        b'-' => (true, &bytes[1..]),
        _ => (false, bytes),
    };
    if digits.is_empty() {
        return Err(IntError::InvalidDigit);
    }
    let overflow = if negative { IntError::NegOverflow } else { IntError::PosOverflow };
    // Accumulate negated so i32::MIN parses without a special case.
    let mut value: i32 = 0;
    for &b in digits {
        let d = b.wrapping_sub(b'0');
        if d > 9 {
            return Err(IntError::InvalidDigit);
        }
        value = value.checked_mul(10).and_then(|v| v.checked_sub(i32::from(d))).ok_or(overflow)?;
    }
    if negative {
        Ok(value)
    } else {
        value.checked_neg().ok_or(overflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_byte_matches_naive_scan() {
        let hay = b"0123\tab\x08cd\t\tx-longer-than-one-word\t tail";
        for from in 0..=hay.len() {
            let naive = hay.iter().skip(from).position(|&b| b == b'\t').map(|p| p + from);
            assert_eq!(find_byte(b'\t', hay, from), naive, "from={from}");
        }
        assert_eq!(find_byte(b'\t', b"", 0), None);
    }

    #[test]
    fn exact_mask_has_no_false_positives() {
        // 0x08 is 0x09 ^ 0x01 — the classic inexact zero-byte trick fires on
        // a 0x01 lane that receives a borrow from a real match below it.
        let hay = b"\t\x08\x08\x08\x08\x08\x08\x08";
        assert_eq!(find_byte(b'\t', hay, 0), Some(0));
        assert_eq!(find_byte(b'\t', hay, 1), None);
        assert_eq!(count_byte(b'\t', hay), 1);
    }

    #[test]
    fn count_byte_matches_split_count() {
        for s in ["", "a", "a.b", "..", "a.b.c.d.e.f.g.h.i", ".........", "no dots here at all!"] {
            assert_eq!(count_byte(b'.', s.as_bytes()), s.matches('.').count(), "{s:?}");
        }
    }

    #[test]
    fn split_exact_agrees_with_std_split() {
        let cases = ["a\tb\tc", "\t\t", "only-one", "a\tb", "a\tb\tc\td\te", "\ta\t"];
        for line in cases {
            let std_fields: Vec<&str> = line.split('\t').collect();
            match split_exact::<3>(line, b'\t') {
                Ok(fields) => assert_eq!(fields.to_vec(), std_fields, "{line:?}"),
                Err(n) => assert_eq!(n, std_fields.len(), "{line:?}"),
            }
        }
    }

    #[test]
    fn split_points_respect_utf8() {
        let line = "héllo\twörld";
        let fields = split_exact::<2>(line, b'\t').unwrap();
        assert_eq!(fields, ["héllo", "wörld"]);
    }

    #[test]
    fn u64_matches_std() {
        let cases = [
            "",
            "+",
            "-",
            "0",
            "007",
            "+42",
            "-42",
            "18446744073709551615",
            "18446744073709551616",
            "99999999999999999999999",
            "1x",
            " 1",
            "1 ",
            "٣",
        ];
        for s in cases {
            let std_result = s.parse::<u64>();
            let ours = parse_u64(s);
            match (std_result, ours) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "{s:?}"),
                (Err(e), Err(o)) => assert_eq!(e.to_string(), o.to_string(), "{s:?}"),
                (a, b) => panic!("mismatch for {s:?}: std={a:?} ours={b:?}"),
            }
        }
    }

    #[test]
    fn i32_matches_std() {
        let cases = [
            "",
            "+",
            "-",
            "0",
            "-0",
            "+0",
            "2147483647",
            "2147483648",
            "-2147483648",
            "-2147483649",
            "--1",
            "+-1",
            "1_000",
            "01",
        ];
        for s in cases {
            let std_result = s.parse::<i32>();
            let ours = parse_i32(s);
            match (std_result, ours) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "{s:?}"),
                (Err(e), Err(o)) => assert_eq!(e.to_string(), o.to_string(), "{s:?}"),
                (a, b) => panic!("mismatch for {s:?}: std={a:?} ours={b:?}"),
            }
        }
    }

    #[test]
    fn u16_matches_std() {
        for s in ["", "0", "65535", "65536", "200", "+200", "-1", "99999999999999999999"] {
            let std_result = s.parse::<u16>();
            let ours = parse_u16(s);
            match (std_result, ours) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "{s:?}"),
                (Err(e), Err(o)) => assert_eq!(e.to_string(), o.to_string(), "{s:?}"),
                (a, b) => panic!("mismatch for {s:?}: std={a:?} ours={b:?}"),
            }
        }
    }
}
