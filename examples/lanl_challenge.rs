//! Solve the (synthetic) LANL APT-discovery challenge end to end and print
//! the Table III summary — the paper's §V evaluation.
//!
//! Run with: `cargo run --release --example lanl_challenge`

use earlybird::eval::lanl::LanlRun;
use earlybird::eval::report::render_table;
use earlybird::eval::Rates;
use earlybird::synthgen::lanl::{LanlConfig, LanlGenerator};

fn main() {
    println!("generating two months of synthetic LANL DNS logs...");
    let challenge = LanlGenerator::new(LanlConfig::small()).generate();
    println!(
        "  {} queries over {} days, {} campaigns",
        challenge.dataset.total_queries(),
        challenge.dataset.days.len(),
        challenge.campaigns.len()
    );

    println!("bootstrapping profiles on February, solving March...");
    let run = LanlRun::new(&challenge);
    let (table3, results) = run.table3();

    let mut rows = Vec::new();
    for (case, train, test) in &table3.rows {
        rows.push(vec![
            format!("Case {case}"),
            train.true_positives.to_string(),
            test.true_positives.to_string(),
            train.false_positives.to_string(),
            test.false_positives.to_string(),
            train.false_negatives.to_string(),
            test.false_negatives.to_string(),
        ]);
    }
    let tt = table3.total();
    rows.push(vec![
        "Total".into(),
        table3.training_total.true_positives.to_string(),
        table3.testing_total.true_positives.to_string(),
        table3.training_total.false_positives.to_string(),
        table3.testing_total.false_positives.to_string(),
        table3.training_total.false_negatives.to_string(),
        table3.testing_total.false_negatives.to_string(),
    ]);
    println!(
        "\nTable III (paper: TDR 98.33%, FDR 1.67%, FNR 6.35%)\n{}",
        render_table(
            &["", "TP train", "TP test", "FP train", "FP test", "FN train", "FN test"],
            &rows,
        )
    );
    let r = table3.overall_rates();
    println!(
        "overall: {} detected | TDR {} FDR {} FNR {}",
        tt.detected(),
        Rates::pct(r.tdr),
        Rates::pct(r.fdr),
        Rates::pct(r.fnr)
    );

    // Show one reconstructed campaign in detail (the paper's Fig. 4 walk).
    if let Some(result) = results.iter().find(|r| r.march_day == 19) {
        println!("\ncampaign on 3/19 (case 3), iteration by iteration:");
        for trace in &result.outcome.iterations {
            for d in &trace.labeled {
                println!(
                    "  iteration {}: labeled domain #{} via {:?} (score {:.2}), {} new hosts",
                    trace.iteration,
                    d.domain.raw(),
                    d.reason,
                    d.score,
                    trace.new_hosts.len()
                );
            }
        }
    }
}
