//! A fast, deterministic hasher for the ingest hot path.
//!
//! The pipeline's per-record maps and sets (fold memos, distinct-domain
//! sets, contact-graph builders) are keyed by 4-byte symbols, host ids, and
//! IPv4 addresses. `std`'s default SipHash costs more than the surrounding
//! work for such keys; [`FastHasher`] is an FxHash-style multiply-rotate
//! hash that collapses a `u32` key to a single multiply.
//!
//! Two properties matter here beyond speed:
//!
//! - **Determinism.** No per-process random seed, so two runs (or two chunk
//!   splits) hash identically. Every structure whose contents reach a
//!   snapshot or report is sorted before encoding, so iteration order never
//!   leaks — but determinism still makes perf runs and debugging stable.
//! - **Not DoS-hardened.** Keys are interned symbols and addresses from
//!   already-admitted telemetry, not attacker-chosen strings aimed at a
//!   public hash table; the flooding-resistance SipHash buys is not needed
//!   on this path.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplier from FxHash (the golden-ratio-derived odd constant used by
/// rustc's interners).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// An FxHash-style multiply-rotate hasher. See the module docs for when
/// this is (and is not) an appropriate choice.
#[derive(Clone, Copy, Debug, Default)]
pub struct FastHasher {
    hash: u64,
}

impl FastHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("slice of 8")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(buf));
        }
        self.add(bytes.len() as u64);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` state for [`FastHasher`] (zero-sized, deterministic).
pub type FastState = BuildHasherDefault<FastHasher>;

/// A `HashMap` keyed with [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, FastState>;

/// A `HashSet` keyed with [`FastHasher`].
pub type FastSet<T> = HashSet<T, FastState>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: T) -> u64 {
        FastState::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_states() {
        assert_eq!(hash_of(42u32), hash_of(42u32));
        assert_eq!(hash_of("nbc.com"), hash_of("nbc.com"));
    }

    #[test]
    fn small_keys_spread() {
        // Sequential symbol numbers must not collide in low or high bits
        // (hashbrown uses the top 7 bits for control tags).
        let mut tops = FastSet::default();
        let mut lows = FastSet::default();
        for k in 0u32..10_000 {
            let h = hash_of(k);
            tops.insert(h >> 57);
            lows.insert(h & 0x7F);
        }
        assert!(tops.len() > 100, "top bits collapse: {}", tops.len());
        assert!(lows.len() > 100, "low bits collapse: {}", lows.len());
    }

    #[test]
    fn string_prefixes_differ() {
        assert_ne!(hash_of("a"), hash_of("aa"));
        assert_ne!(hash_of(""), hash_of("\0"));
    }

    #[test]
    fn maps_behave_normally() {
        let mut m: FastMap<String, u32> = FastMap::default();
        for i in 0..1000u32 {
            m.insert(format!("d{i}.example.com"), i);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get("d512.example.com"), Some(&512));
    }
}
