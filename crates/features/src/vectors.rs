//! The paper's two feature vectors.
//!
//! * [`CcFeatures`] — six features of a rare *automated* domain (§IV-C),
//!   consumed by the C&C regression model.
//! * [`SimFeatures`] — eight features of a rare domain relative to the set
//!   of already-labeled malicious domains (§IV-D), consumed by the
//!   domain-similarity regression model during belief propagation.

use serde::{Deserialize, Serialize};

/// Feature names of the C&C model, in design-matrix order.
pub const CC_FEATURE_NAMES: [&str; 6] =
    ["NoHosts", "AutoHosts", "NoRef", "RareUA", "DomAge", "DomValidity"];

/// Feature names of the domain-similarity model, in design-matrix order.
pub const SIM_FEATURE_NAMES: [&str; 8] =
    ["NoHosts", "DomInterval", "IP24", "IP16", "NoRef", "RareUA", "DomAge", "DomValidity"];

/// Decay constant (seconds) for turning the minimum inter-domain visit gap
/// into a bounded closeness value: Fig. 3 shows 56% of malicious-to-malicious
/// first visits within 160 s, so an hour-scale exponential keeps the feature
/// informative over the relevant range.
const INTERVAL_DECAY_SECS: f64 = 3_600.0;

/// The six C&C-detection features of a rare automated domain.
#[derive(Clone, Copy, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct CcFeatures {
    /// Domain connectivity: number of internal hosts contacting the domain.
    pub no_hosts: f64,
    /// Number of hosts with *automated* connections to the domain.
    pub auto_hosts: f64,
    /// Fraction of contacting hosts that send no Referer header.
    pub no_ref: f64,
    /// Fraction of contacting hosts using no or a rare user-agent string.
    pub rare_ua: f64,
    /// Days since the domain was registered (WHOIS); average-filled when
    /// WHOIS is unparseable (§VI-C).
    pub dom_age: f64,
    /// Days until the registration expires (WHOIS); average-filled likewise.
    pub dom_validity: f64,
}

impl CcFeatures {
    /// The feature row in [`CC_FEATURE_NAMES`] order.
    pub fn to_row(&self) -> Vec<f64> {
        vec![
            self.no_hosts,
            self.auto_hosts,
            self.no_ref,
            self.rare_ua,
            self.dom_age,
            self.dom_validity,
        ]
    }
}

/// The eight domain-similarity features of a rare domain `D` relative to the
/// malicious set `S` of the current belief-propagation state.
#[derive(Clone, Copy, Debug, PartialEq, Default, Serialize, Deserialize)]
pub struct SimFeatures {
    /// Domain connectivity: number of internal hosts contacting `D`.
    pub no_hosts: f64,
    /// Minimum gap (seconds) between a host's visit to `D` and its visit to
    /// any domain in `S`; `None` when no host visited both.
    pub min_interval_secs: Option<f64>,
    /// `D` shares a /24 subnet with some domain in `S`.
    pub ip24: bool,
    /// `D` shares a /16 subnet with some domain in `S`.
    pub ip16: bool,
    /// Fraction of contacting hosts that send no Referer header.
    pub no_ref: f64,
    /// Fraction of contacting hosts using no or a rare user-agent string.
    pub rare_ua: f64,
    /// Days since registration (WHOIS), average-filled when missing.
    pub dom_age: f64,
    /// Days until registration expiry (WHOIS), average-filled when missing.
    pub dom_validity: f64,
}

impl SimFeatures {
    /// Bounded closeness transform of the minimum visit gap: `1` when `D` is
    /// visited simultaneously with a malicious domain, decaying toward `0`
    /// over hours, `0` when no co-visiting host exists ("the shorter this
    /// interval, the more suspicious D is", §IV-D).
    pub fn interval_closeness(&self) -> f64 {
        match self.min_interval_secs {
            Some(dt) => (-dt / INTERVAL_DECAY_SECS).exp(),
            None => 0.0,
        }
    }

    /// The feature row in [`SIM_FEATURE_NAMES`] order.
    pub fn to_row(&self) -> Vec<f64> {
        vec![
            self.no_hosts,
            self.interval_closeness(),
            self.ip24 as u8 as f64,
            self.ip16 as u8 as f64,
            self.no_ref,
            self.rare_ua,
            self.dom_age,
            self.dom_validity,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cc_row_matches_name_order() {
        let f = CcFeatures {
            no_hosts: 3.0,
            auto_hosts: 2.0,
            no_ref: 0.5,
            rare_ua: 0.25,
            dom_age: 12.0,
            dom_validity: 180.0,
        };
        let row = f.to_row();
        assert_eq!(row.len(), CC_FEATURE_NAMES.len());
        assert_eq!(row, vec![3.0, 2.0, 0.5, 0.25, 12.0, 180.0]);
    }

    #[test]
    fn sim_row_matches_name_order() {
        let f = SimFeatures {
            no_hosts: 2.0,
            min_interval_secs: Some(0.0),
            ip24: true,
            ip16: false,
            no_ref: 1.0,
            rare_ua: 0.0,
            dom_age: 5.0,
            dom_validity: 30.0,
        };
        let row = f.to_row();
        assert_eq!(row.len(), SIM_FEATURE_NAMES.len());
        assert_eq!(row[1], 1.0, "zero gap is maximal closeness");
        assert_eq!(row[2], 1.0);
        assert_eq!(row[3], 0.0);
    }

    #[test]
    fn interval_closeness_decays_monotonically() {
        let mk = |dt| SimFeatures { min_interval_secs: Some(dt), ..SimFeatures::default() };
        let c0 = mk(0.0).interval_closeness();
        let c160 = mk(160.0).interval_closeness();
        let c3600 = mk(3_600.0).interval_closeness();
        assert_eq!(c0, 1.0);
        assert!(c0 > c160 && c160 > c3600);
        assert!(c160 > 0.9, "160 s (the Fig. 3 knee) stays close to 1");
        let none = SimFeatures::default().interval_closeness();
        assert_eq!(none, 0.0);
    }
}
