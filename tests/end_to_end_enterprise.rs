//! End-to-end integration on the enterprise (AC) dataset: training the
//! regression models, the Fig. 5/6 sweeps, and the case-study communities.

use earlybird::eval::AcHarness;
use earlybird::intel::DetectionCategory;
use earlybird::synthgen::ac::{AcCampaignKind, AcConfig, AcGenerator};
use std::sync::OnceLock;

/// The harness is expensive to build (full two-month pipeline + training),
/// so all tests share one instance.
fn harness() -> &'static AcHarness<'static> {
    static HARNESS: OnceLock<AcHarness<'static>> = OnceLock::new();
    HARNESS.get_or_init(|| {
        let world = Box::leak(Box::new(AcGenerator::new(AcConfig::small()).generate()));
        AcHarness::build(world).expect("training population suffices")
    })
}

#[test]
fn enterprise_harness_trains_and_scores() {
    let harness = harness();

    // Fig. 5: the score distributions must separate — reported automated
    // domains score higher than legitimate ones on average.
    let fig5 = harness.figure5();
    assert!(fig5.reported.len() >= 10, "reported population: {}", fig5.reported.len());
    assert!(fig5.legitimate.len() >= 10);
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(
        mean(&fig5.reported) > mean(&fig5.legitimate) + 0.1,
        "reported {:.3} vs legitimate {:.3}",
        mean(&fig5.reported),
        mean(&fig5.legitimate)
    );
}

#[test]
fn figure6a_tradeoff_shape() {
    let harness = harness();
    let rows = harness.figure6a(&[0.4, 0.42, 0.44, 0.45, 0.46, 0.48]);
    assert_eq!(rows.len(), 6);
    // Raising the threshold shrinks the detection set...
    for pair in rows.windows(2) {
        assert!(pair[0].total() >= pair[1].total());
    }
    // ...and the paper's headline shape: at 0.4 the TDR is already well
    // above chance and detections exist.
    assert!(rows[0].total() > 10, "C&C detections at 0.4: {}", rows[0].total());
    assert!(rows[0].tdr() > 0.6, "TDR at 0.4: {:.3}", rows[0].tdr());
    // New discoveries exist (the DGA clusters are VT-invisible).
    assert!(rows[0].new_malicious > 0);
}

#[test]
fn figure6b_no_hint_mode_expands_cc_seeds() {
    let harness = harness();
    let rows = harness.figure6b(0.4, &[0.33, 0.5, 0.65, 0.75, 0.85]);
    for pair in rows.windows(2) {
        assert!(pair[0].total() >= pair[1].total(), "larger T_s cannot detect more: {pair:?}");
    }
    let cc_only = harness.figure6a(&[0.4]);
    assert!(
        rows[0].total() > cc_only[0].total(),
        "BP at T_s=0.33 ({}) must expand beyond the C&C seeds ({})",
        rows[0].total(),
        cc_only[0].total()
    );
    assert!(rows[0].tdr() > 0.6, "no-hint TDR at 0.33: {:.3}", rows[0].tdr());
    assert!(rows[0].ndr() > 0.0, "new discoveries expected");
}

#[test]
fn figure6c_soc_hints_mode_finds_related_domains() {
    let harness = harness();
    let rows = harness.figure6c(&[0.33, 0.37, 0.4, 0.41, 0.45]);
    for pair in rows.windows(2) {
        assert!(pair[0].total() >= pair[1].total());
    }
    assert!(rows[0].total() > 0, "IOC seeds must lead to detections");
    assert!(rows[0].tdr() > 0.6, "SOC-hints TDR at 0.33: {:.3}", rows[0].tdr());
}

#[test]
fn fig8_case_study_discovers_org_cluster() {
    let harness = harness();
    let soc = harness
        .world()
        .campaigns
        .iter()
        .find(|c| c.kind == AcCampaignKind::SocCluster)
        .expect("pinned on 2/10");
    let study = harness.case_study_hints(soc.feb_day, 0.33).expect("day processed");
    // The seeded C&C must pull in at least part of the .org second stage.
    let org_hits = study.domains.iter().filter(|(name, _, _, _)| name.ends_with(".org")).count();
    assert!(org_hits >= 2, "expected .org cluster members, got {:?}", study.domains);
    assert!(study.host_count >= 1);
    assert!(study.dot.contains("digraph"));
}

#[test]
fn fig7_case_study_no_hint_community() {
    let harness = harness();
    let pair = harness
        .world()
        .campaigns
        .iter()
        .find(|c| c.kind == AcCampaignKind::BeaconPair)
        .expect("pinned on 2/13");
    let study = harness.case_study_nohint(pair.feb_day, 0.4, 0.33).expect("day processed");
    let campaign_hits = study
        .domains
        .iter()
        .filter(|(name, _, _, _)| pair.plan.domain_names().any(|d| d == name.as_str()))
        .count();
    assert!(
        campaign_hits >= 2,
        "no-hint community must contain the beacon pair campaign: {:?}",
        study.domains
    );
}

#[test]
fn dga_clusters_are_new_discoveries() {
    let harness = harness();
    // Every DGA domain the harness would ever report must categorize as a
    // new discovery (VT never reports them).
    for c in harness
        .world()
        .campaigns
        .iter()
        .filter(|c| matches!(c.kind, AcCampaignKind::DgaShort | AcCampaignKind::DgaHex))
    {
        for name in c.plan.domain_names() {
            assert_eq!(
                harness.categorize(name),
                DetectionCategory::NewMalicious,
                "{name} must be a new discovery"
            );
        }
    }
}
