//! JSON artifact export: every experiment result serializes to a
//! machine-readable file so downstream tooling (dashboards, notebooks) can
//! consume the reproduction without parsing text tables.

use serde::Serialize;
use std::fs;
use std::io;
use std::path::Path;

/// Writes any serializable experiment artifact as pretty-printed JSON.
///
/// # Errors
///
/// Returns the underlying I/O error if the file cannot be written, or a
/// serialization error mapped into [`io::ErrorKind::InvalidData`].
///
/// # Example
///
/// ```
/// use earlybird_eval::export::write_json;
/// let dir = std::env::temp_dir().join("earlybird-doc");
/// std::fs::create_dir_all(&dir)?;
/// write_json(dir.join("rows.json"), &vec![1, 2, 3])?;
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write_json<T: Serialize>(path: impl AsRef<Path>, value: &T) -> io::Result<()> {
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
    fs::write(path, json)
}

/// Serializes an artifact to a JSON string (for embedding in reports).
///
/// # Panics
///
/// Panics if the value cannot be serialized (experiment artifacts always
/// can).
pub fn to_json_string<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("experiment artifacts serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::DetectionTally;

    #[test]
    fn tally_roundtrips_through_json() {
        let tally = DetectionTally {
            true_positives: 59,
            false_positives: 1,
            false_negatives: 4,
            new_discoveries: 7,
        };
        let json = to_json_string(&tally);
        let back: DetectionTally = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tally);
    }

    #[test]
    fn write_json_creates_readable_file() {
        let dir = std::env::temp_dir().join(format!("earlybird-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig6.json");
        let rows = vec![crate::ac::Fig6Row {
            threshold: 0.4,
            known: 10,
            new_malicious: 2,
            suspicious: 1,
            legitimate: 1,
        }];
        write_json(&path, &rows).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"threshold\": 0.4"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn evasion_rows_serialize() {
        let rows = crate::evasion::evasion_study(3, 8);
        let json = to_json_string(&rows);
        assert!(json.contains("paper_detector"));
    }
}
