//! Quickstart: stream a hand-built day of DNS traffic through the unified
//! [`Engine`] facade and watch it detect a beaconing C&C domain plus its
//! infection community, end to end (ingest → detect → alert).
//!
//! Run with: `cargo run --release --example quickstart`

use earlybird::engine::{CollectingSink, DayBatch, EngineBuilder};
use earlybird::logmodel::{
    DatasetMeta, Day, DnsDayLog, DnsQuery, DnsRecordType, DomainInterner, HostId, HostKind, Ipv4,
    Timestamp,
};
use std::sync::Arc;

fn main() {
    // A miniature day of traffic: two compromised workstations beacon to a
    // C&C domain every 10 minutes and touched the delivery site moments
    // after infection; an innocent host browses something unrelated.
    let domains = Arc::new(DomainInterner::new());
    let mut queries = Vec::new();
    let mut push = |ts: u64, host: u32, name: &str, ip: [u8; 4]| {
        queries.push(DnsQuery {
            ts: Timestamp::from_secs(ts),
            src: HostId::new(host),
            src_ip: Ipv4::new(10, 0, 0, host as u8),
            qname: domains.intern(name),
            qtype: DnsRecordType::A,
            answer: Some(Ipv4::new(ip[0], ip[1], ip[2], ip[3])),
        });
    };

    for victim in [1u32, 2] {
        let infected_at = 36_000 + victim as u64 * 45;
        push(infected_at, victim, "dropper.example-bad.com", [191, 146, 166, 40]);
        for beat in 0..30 {
            push(infected_at + 90 + beat * 600, victim, "cc.example-bad.com", [191, 146, 166, 145]);
        }
    }
    push(40_000, 7, "totally-fine.net", [8, 8, 8, 8]);
    queries.sort_by_key(|q| q.ts);
    let day = DnsDayLog { day: Day::new(0), queries };

    // One engine, one call: reduce, profile, extract rares, detect C&C,
    // expand by belief propagation, and alert — all inside ingest_day.
    let meta = DatasetMeta {
        n_hosts: 8,
        host_kinds: vec![HostKind::Workstation; 8],
        internal_suffixes: vec![],
        bootstrap_days: 0,
        total_days: 1,
    };
    let sink = CollectingSink::new();
    let alerts = sink.handle();
    let mut engine = EngineBuilder::lanl()
        .auto_investigate(true)
        .sink(sink)
        .build(Arc::clone(&domains), meta)
        .expect("valid config");

    let report = engine.ingest_day(DayBatch::Dns(&day));

    println!("C&C detections:");
    for c in report.detections() {
        println!(
            "  {} (score {:.1}, period ~{}s, {} automated hosts)",
            c.name,
            c.score,
            c.period_secs.unwrap_or(0),
            c.auto_hosts
        );
    }

    println!("\nBelief propagation community:");
    if let Some(outcome) = &report.outcome {
        for d in &outcome.labeled {
            println!(
                "  iter {} {:<28} score {:.2} ({:?})",
                d.iteration,
                engine.resolve(d.domain),
                d.score,
                d.reason
            );
        }
        println!(
            "\nCompromised hosts: {:?}",
            outcome.compromised_hosts.iter().map(|h| h.to_string()).collect::<Vec<_>>()
        );
    }

    println!("\nAlert stream ({} alerts):", alerts.len());
    for a in alerts.snapshot() {
        println!("  #{} {:<28} {:?} score {:.2}", a.sequence, a.name, a.verdict, a.score);
    }
}
