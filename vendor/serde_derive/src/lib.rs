//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline serde shim. Parses the item's token stream directly (no `syn`)
//! and emits impls of the shim's `serde::Serialize` / `serde::Deserialize`
//! traits over the `serde::json::Value` data model.
//!
//! Supported shapes (everything this workspace derives):
//! structs with named fields, tuple structs, unit structs, and enums with
//! unit / tuple / struct variants; generic parameters without bounds; the
//! container attribute `#[serde(transparent)]` and the field attribute
//! `#[serde(skip)]`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsed representation
// ---------------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    generics: Vec<String>,
    transparent: bool,
    kind: Kind,
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

/// Serde attribute flags found while consuming leading `#[...]` attributes.
#[derive(Default)]
struct SerdeAttrs {
    transparent: bool,
    skip: bool,
}

/// Consumes leading attributes from `pos`, returning any serde flags.
fn take_attrs(tokens: &[TokenTree], pos: &mut usize) -> SerdeAttrs {
    let mut attrs = SerdeAttrs::default();
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '#' => {
                *pos += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
                    if g.delimiter() == Delimiter::Bracket {
                        scan_serde_attr(&g.stream(), &mut attrs);
                        *pos += 1;
                        continue;
                    }
                }
                panic!("malformed attribute");
            }
            _ => break,
        }
    }
    attrs
}

/// Inspects one attribute body (`serde(...)`, `doc = ...`, ...) for flags.
fn scan_serde_attr(stream: &TokenStream, attrs: &mut SerdeAttrs) {
    let toks: Vec<TokenTree> = stream.clone().into_iter().collect();
    let is_serde = matches!(&toks.first(), Some(TokenTree::Ident(i)) if i.to_string() == "serde");
    if !is_serde {
        return;
    }
    if let Some(TokenTree::Group(g)) = toks.get(1) {
        for t in g.stream() {
            if let TokenTree::Ident(i) = t {
                match i.to_string().as_str() {
                    "transparent" => attrs.transparent = true,
                    "skip" | "skip_serializing" | "skip_deserializing" => attrs.skip = true,
                    other => panic!("unsupported serde attribute `{other}`"),
                }
            }
        }
    }
}

/// Skips an optional `pub` / `pub(...)` visibility.
fn skip_vis(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(&tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if let Some(TokenTree::Group(g)) = tokens.get(*pos) {
            if g.delimiter() == Delimiter::Parenthesis {
                *pos += 1;
            }
        }
    }
}

/// Skips tokens until a top-level `,` (outside `<...>`), consuming it.
/// Returns at end of input as well. Handles `->` inside generic args.
fn skip_type(tokens: &[TokenTree], pos: &mut usize) {
    let mut angle_depth = 0usize;
    let mut prev_dash = false;
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) => {
                let c = p.as_char();
                if c == ',' && angle_depth == 0 {
                    *pos += 1;
                    return;
                }
                if c == '<' {
                    angle_depth += 1;
                } else if c == '>' && !prev_dash {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                prev_dash = c == '-';
            }
            _ => prev_dash = false,
        }
        *pos += 1;
    }
}

/// Parses generic parameter names from `<...>` starting at `pos` (which must
/// point at `<`), consuming through the matching `>`.
fn parse_generics(tokens: &[TokenTree], pos: &mut usize) -> Vec<String> {
    let mut params = Vec::new();
    let mut depth = 0usize;
    let mut expecting_param = true;
    while *pos < tokens.len() {
        match &tokens[*pos] {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                *pos += 1;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                *pos += 1;
                if depth == 0 {
                    return params;
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                expecting_param = true;
                *pos += 1;
            }
            TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => {
                expecting_param = false;
                *pos += 1;
            }
            TokenTree::Ident(i) if depth == 1 && expecting_param => {
                params.push(i.to_string());
                expecting_param = false;
                *pos += 1;
            }
            _ => *pos += 1,
        }
    }
    params
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0usize;
    let mut fields = Vec::new();
    while pos < tokens.len() {
        let attrs = take_attrs(&tokens, &mut pos);
        skip_vis(&tokens, &mut pos);
        let name = match &tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("expected field name, found {other:?}"),
        };
        pos += 1;
        match &tokens.get(pos) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => pos += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&tokens, &mut pos);
        fields.push(Field { name, skip: attrs.skip });
    }
    fields
}

/// Counts top-level comma-separated entries in a tuple-struct body.
fn tuple_arity(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut pos = 0usize;
    let mut arity = 0usize;
    while pos < tokens.len() {
        let _ = take_attrs(&tokens, &mut pos);
        skip_vis(&tokens, &mut pos);
        if pos >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut pos);
        arity += 1;
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut pos = 0usize;
    let mut variants = Vec::new();
    while pos < tokens.len() {
        let _ = take_attrs(&tokens, &mut pos);
        let name = match &tokens.get(pos) {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("expected variant name, found {other:?}"),
        };
        pos += 1;
        let kind = match &tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let arity = tuple_arity(g.stream());
                pos += 1;
                VariantKind::Tuple(arity)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream()).into_iter().map(|f| f.name).collect();
                pos += 1;
                VariantKind::Named(names)
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional `= discriminant` and the separating comma.
        while pos < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[pos] {
                if p.as_char() == ',' {
                    pos += 1;
                    break;
                }
            }
            pos += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0usize;
    let attrs = take_attrs(&tokens, &mut pos);
    skip_vis(&tokens, &mut pos);

    let is_enum = match &tokens.get(pos) {
        Some(TokenTree::Ident(i)) if i.to_string() == "struct" => false,
        Some(TokenTree::Ident(i)) if i.to_string() == "enum" => true,
        other => panic!("expected struct or enum, found {other:?}"),
    };
    pos += 1;
    let name = match &tokens.get(pos) {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected type name, found {other:?}"),
    };
    pos += 1;

    let generics = match &tokens.get(pos) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => parse_generics(&tokens, &mut pos),
        _ => Vec::new(),
    };

    // Scan forward (over any `where` clause) to the body.
    let kind = loop {
        match &tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                break if is_enum {
                    Kind::Enum(parse_variants(g.stream()))
                } else {
                    Kind::NamedStruct(parse_named_fields(g.stream()))
                };
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis && !is_enum => {
                break Kind::TupleStruct(tuple_arity(g.stream()));
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' && !is_enum => {
                break Kind::UnitStruct;
            }
            Some(_) => pos += 1,
            None => panic!("missing body for `{name}`"),
        }
    };

    Item { name, generics, transparent: attrs.transparent, kind }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn impl_header(item: &Item, trait_path: &str) -> String {
    if item.generics.is_empty() {
        format!("impl {trait_path} for {}", item.name)
    } else {
        let params = item.generics.join(", ");
        format!("impl<{params}> {trait_path} for {}<{params}>", item.name)
    }
}

fn gen_serialize(item: &Item) -> String {
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if item.transparent {
                assert_eq!(live.len(), 1, "transparent requires exactly one live field");
                format!("::serde::Serialize::serialize(&self.{})", live[0].name)
            } else {
                let mut s = String::from(
                    "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::json::Value)> = ::std::vec::Vec::new();\n",
                );
                for f in &live {
                    s.push_str(&format!(
                        "fields.push((::std::string::String::from(\"{0}\"), ::serde::Serialize::serialize(&self.{0})));\n",
                        f.name
                    ));
                }
                s.push_str("::serde::json::Value::Object(fields)");
                s
            }
        }
        Kind::TupleStruct(1) => "::serde::Serialize::serialize(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> =
                (0..*n).map(|i| format!("::serde::Serialize::serialize(&self.{i})")).collect();
            format!("::serde::json::Value::Array(::std::vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::json::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                let ty = &item.name;
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{ty}::{vn} => ::serde::json::Value::Str(::std::string::String::from(\"{vn}\")),\n"
                    )),
                    VariantKind::Tuple(1) => arms.push_str(&format!(
                        "{ty}::{vn}(f0) => ::serde::json::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::serialize(f0))]),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{ty}::{vn}({}) => ::serde::json::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::json::Value::Array(::std::vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantKind::Named(names) => {
                        let binds = names.join(", ");
                        let items: Vec<String> = names
                            .iter()
                            .map(|n| {
                                format!(
                                    "(::std::string::String::from(\"{n}\"), ::serde::Serialize::serialize({n}))"
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{ty}::{vn} {{ {binds} }} => ::serde::json::Value::Object(::std::vec![(::std::string::String::from(\"{vn}\"), ::serde::json::Value::Object(::std::vec![{}]))]),\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "{} {{\n fn serialize(&self) -> ::serde::json::Value {{\n {body}\n }}\n}}",
        impl_header(item, "::serde::Serialize")
    )
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        Kind::NamedStruct(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            let build = |source: &dyn Fn(&str) -> String| -> String {
                let mut inits = Vec::new();
                for f in fields {
                    if f.skip {
                        inits.push(format!("{}: ::std::default::Default::default()", f.name));
                    } else {
                        inits.push(format!("{}: {}", f.name, source(&f.name)));
                    }
                }
                format!("::std::result::Result::Ok({name} {{ {} }})", inits.join(", "))
            };
            if item.transparent {
                assert_eq!(live.len(), 1, "transparent requires exactly one live field");
                build(&|_field: &str| "::serde::Deserialize::deserialize(v)?".to_string())
            } else {
                let mut s = String::from(
                    "let obj = v.as_object().ok_or_else(|| ::serde::json::DeError::new(\"expected object\"))?;\n",
                );
                s.push_str(&build(&|field: &str| {
                    format!(
                        "::serde::Deserialize::deserialize(::serde::json::get_field(obj, \"{field}\")?)?"
                    )
                }));
                s
            }
        }
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(v)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                .collect();
            format!(
                "let items = v.as_array().ok_or_else(|| ::serde::json::DeError::new(\"expected array\"))?;\n\
                 if items.len() != {n} {{ return ::std::result::Result::Err(::serde::json::DeError::new(\"tuple struct arity mismatch\")); }}\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.kind {
                    VariantKind::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantKind::Tuple(1) => tagged_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize(payload)?)),\n"
                    )),
                    VariantKind::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::deserialize(&items[{i}])?"))
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let items = payload.as_array().ok_or_else(|| ::serde::json::DeError::new(\"expected variant array\"))?;\n\
                             if items.len() != {n} {{ return ::std::result::Result::Err(::serde::json::DeError::new(\"variant arity mismatch\")); }}\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n}},\n",
                            items.join(", ")
                        ));
                    }
                    VariantKind::Named(names) => {
                        let inits: Vec<String> = names
                            .iter()
                            .map(|fname| {
                                format!(
                                    "{fname}: ::serde::Deserialize::deserialize(::serde::json::get_field(obj, \"{fname}\")?)?"
                                )
                            })
                            .collect();
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{\n\
                             let obj = payload.as_object().ok_or_else(|| ::serde::json::DeError::new(\"expected variant object\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{ {} }})\n}},\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            let tagged_fallback = if tagged_arms.is_empty() {
                "_ => ::std::result::Result::Err(::serde::json::DeError::new(\"expected string variant\")),\n".to_string()
            } else {
                format!(
                    "other => {{\n\
                     let pairs = other.as_object().ok_or_else(|| ::serde::json::DeError::new(\"expected enum value\"))?;\n\
                     let (tag, payload) = pairs.first().ok_or_else(|| ::serde::json::DeError::new(\"empty enum object\"))?;\n\
                     match tag.as_str() {{\n{tagged_arms}\
                     _ => ::std::result::Result::Err(::serde::json::DeError::new(\"unknown variant\")),\n}}\n}}\n"
                )
            };
            format!(
                "match v {{\n\
                 ::serde::json::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 _ => ::std::result::Result::Err(::serde::json::DeError::new(\"unknown variant\")),\n}},\n\
                 {tagged_fallback}}}"
            )
        }
    };
    format!(
        "{} {{\n fn deserialize(v: &::serde::json::Value) -> ::std::result::Result<Self, ::serde::json::DeError> {{\n {body}\n }}\n}}",
        impl_header(item, "::serde::Deserialize")
    )
}
