//! Feature extraction against a [`DayContext`]: the six C&C features of
//! §IV-C and the eight domain-similarity features of §IV-D.

use crate::context::DayContext;
use earlybird_features::{CcFeatures, SimFeatures};
use earlybird_logmodel::DomainSym;
use std::collections::BTreeSet;

/// Extracts the C&C feature vector of a rare automated `domain`.
///
/// `auto_hosts` is the number of hosts with automated connections to the
/// domain, as established by the caller's automation pass.
pub fn cc_features(ctx: &DayContext<'_>, domain: DomainSym, auto_hosts: usize) -> CcFeatures {
    let (dom_age, dom_validity) = ctx.whois_features(domain);
    CcFeatures {
        no_hosts: ctx.index.connectivity(domain) as f64,
        auto_hosts: auto_hosts as f64,
        no_ref: ctx.index.no_ref_fraction(domain).unwrap_or(0.0),
        rare_ua: ctx.index.rare_ua_fraction(domain).unwrap_or(0.0),
        dom_age,
        dom_validity,
    }
}

/// Extracts the similarity feature vector of candidate `domain` relative to
/// the malicious set `malicious` of the current belief-propagation state.
pub fn sim_features(
    ctx: &DayContext<'_>,
    domain: DomainSym,
    malicious: &BTreeSet<DomainSym>,
) -> SimFeatures {
    let (dom_age, dom_validity) = ctx.whois_features(domain);
    SimFeatures {
        no_hosts: ctx.index.connectivity(domain) as f64,
        min_interval_secs: min_interval_to_malicious(ctx, domain, malicious),
        ip24: shares_subnet(ctx, domain, malicious, SubnetLevel::S24),
        ip16: shares_subnet(ctx, domain, malicious, SubnetLevel::S16),
        no_ref: ctx.index.no_ref_fraction(domain).unwrap_or(0.0),
        rare_ua: ctx.index.rare_ua_fraction(domain).unwrap_or(0.0),
        dom_age,
        dom_validity,
    }
}

/// Minimum gap in seconds between any host's first visit to `domain` and its
/// first visit to any malicious domain ("the minimum timing difference
/// between a host visit to domain D and other malicious domains in set S",
/// §IV-D). `None` when no host visited both sides.
pub fn min_interval_to_malicious(
    ctx: &DayContext<'_>,
    domain: DomainSym,
    malicious: &BTreeSet<DomainSym>,
) -> Option<f64> {
    let hosts = ctx.index.hosts_of(domain)?;
    let mut best: Option<u64> = None;
    for &host in hosts {
        let Some(t_dom) = ctx.index.first_contact(host, domain) else {
            continue;
        };
        for &m in malicious {
            if m == domain {
                continue;
            }
            if let Some(t_mal) = ctx.index.first_contact(host, m) {
                let gap = t_dom.abs_diff(t_mal);
                best = Some(best.map_or(gap, |b| b.min(gap)));
            }
        }
    }
    best.map(|b| b as f64)
}

#[derive(Clone, Copy)]
enum SubnetLevel {
    S24,
    S16,
}

fn shares_subnet(
    ctx: &DayContext<'_>,
    domain: DomainSym,
    malicious: &BTreeSet<DomainSym>,
    level: SubnetLevel,
) -> bool {
    let Some(ips) = ctx.index.ips_of(domain) else {
        return false;
    };
    malicious.iter().filter(|&&m| m != domain).any(|&m| {
        ctx.index.ips_of(m).is_some_and(|mips| {
            ips.iter().any(|a| {
                mips.iter().any(|b| match level {
                    SubnetLevel::S24 => a.subnet24() == b.subnet24(),
                    SubnetLevel::S16 => a.subnet16() == b.subnet16(),
                })
            })
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlybird_logmodel::{Day, DomainInterner, HostId, Ipv4, Timestamp};
    use earlybird_pipeline::{Contact, DayIndex, DomainHistory, HttpContext, RareSieve};

    struct World {
        folded: DomainInterner,
        contacts: Vec<Contact>,
    }

    impl World {
        fn new() -> Self {
            World { folded: DomainInterner::new(), contacts: Vec::new() }
        }

        fn push(
            &mut self,
            ts: u64,
            host: u32,
            name: &str,
            ip: Option<Ipv4>,
            http: Option<HttpContext>,
        ) {
            self.contacts.push(Contact {
                ts: Timestamp::from_secs(ts),
                host: HostId::new(host),
                domain: self.folded.intern(name),
                dest_ip: ip,
                http,
            });
        }

        fn index(&mut self) -> DayIndex {
            self.contacts.sort_by_key(|c| c.ts);
            let rare = RareSieve::paper_default().extract(&self.contacts, &DomainHistory::new());
            DayIndex::build(Day::new(0), &self.contacts, rare, None)
        }
    }

    #[test]
    fn cc_features_without_http_or_whois() {
        let mut w = World::new();
        w.push(0, 1, "cc.ru", None, None);
        w.push(600, 1, "cc.ru", None, None);
        w.push(5, 2, "cc.ru", None, None);
        let index = w.index();
        let ctx = DayContext {
            day: Day::new(0),
            index: &index,
            folded: &w.folded,
            whois: None,
            whois_defaults: (100.0, 200.0),
        };
        let f = cc_features(&ctx, w.folded.get("cc.ru").unwrap(), 1);
        assert_eq!(f.no_hosts, 2.0);
        assert_eq!(f.auto_hosts, 1.0);
        assert_eq!(f.no_ref, 0.0, "no HTTP data -> 0");
        assert_eq!((f.dom_age, f.dom_validity), (100.0, 200.0));
    }

    #[test]
    fn min_interval_uses_first_contacts_of_shared_hosts() {
        let mut w = World::new();
        // host 1 visits mal at t=100 and cand at t=160; host 2 visits cand
        // only — no contribution.
        w.push(100, 1, "mal.c3", None, None);
        w.push(160, 1, "cand.c3", None, None);
        w.push(500, 2, "cand.c3", None, None);
        let index = w.index();
        let ctx = DayContext {
            day: Day::new(0),
            index: &index,
            folded: &w.folded,
            whois: None,
            whois_defaults: (0.0, 0.0),
        };
        let mal: BTreeSet<DomainSym> = [w.folded.get("mal.c3").unwrap()].into_iter().collect();
        let cand = w.folded.get("cand.c3").unwrap();
        assert_eq!(min_interval_to_malicious(&ctx, cand, &mal), Some(60.0));
        // A domain visited by no host that also visited `mal` has no interval.
        let lonely: BTreeSet<DomainSym> = [cand].into_iter().collect();
        assert_eq!(
            min_interval_to_malicious(&ctx, w.folded.get("mal.c3").unwrap(), &lonely),
            Some(60.0)
        );
    }

    #[test]
    fn subnet_sharing_levels() {
        let mut w = World::new();
        w.push(1, 1, "mal.c3", Some(Ipv4::new(191, 146, 166, 145)), None);
        w.push(2, 1, "same24.c3", Some(Ipv4::new(191, 146, 166, 31)), None);
        w.push(3, 1, "same16.c3", Some(Ipv4::new(191, 146, 224, 111)), None);
        w.push(4, 1, "far.c3", Some(Ipv4::new(93, 31, 34, 158)), None);
        let index = w.index();
        let ctx = DayContext {
            day: Day::new(0),
            index: &index,
            folded: &w.folded,
            whois: None,
            whois_defaults: (0.0, 0.0),
        };
        let mal: BTreeSet<DomainSym> = [w.folded.get("mal.c3").unwrap()].into_iter().collect();
        let f24 = sim_features(&ctx, w.folded.get("same24.c3").unwrap(), &mal);
        assert!(f24.ip24 && f24.ip16, "/24 implies /16");
        let f16 = sim_features(&ctx, w.folded.get("same16.c3").unwrap(), &mal);
        assert!(!f16.ip24 && f16.ip16);
        let far = sim_features(&ctx, w.folded.get("far.c3").unwrap(), &mal);
        assert!(!far.ip24 && !far.ip16);
    }

    #[test]
    fn candidate_never_matches_itself() {
        let mut w = World::new();
        w.push(1, 1, "self.c3", Some(Ipv4::new(9, 9, 9, 9)), None);
        let index = w.index();
        let ctx = DayContext {
            day: Day::new(0),
            index: &index,
            folded: &w.folded,
            whois: None,
            whois_defaults: (0.0, 0.0),
        };
        let d = w.folded.get("self.c3").unwrap();
        let mal: BTreeSet<DomainSym> = [d].into_iter().collect();
        let f = sim_features(&ctx, d, &mal);
        assert!(!f.ip24 && !f.ip16);
        assert_eq!(f.min_interval_secs, None);
    }

    #[test]
    fn sim_features_use_http_fractions_when_present() {
        let mut w = World::new();
        w.push(1, 1, "mal.c3", None, None);
        w.push(30, 1, "cand.c3", None, Some(HttpContext { ua: None, referer_present: false }));
        let index = w.index();
        let ctx = DayContext {
            day: Day::new(0),
            index: &index,
            folded: &w.folded,
            whois: None,
            whois_defaults: (0.0, 0.0),
        };
        let mal: BTreeSet<DomainSym> = [w.folded.get("mal.c3").unwrap()].into_iter().collect();
        let f = sim_features(&ctx, w.folded.get("cand.c3").unwrap(), &mal);
        assert_eq!(f.no_ref, 1.0);
        assert_eq!(f.rare_ua, 1.0, "absent UA counts as rare");
        assert_eq!(f.min_interval_secs, Some(29.0));
    }
}
