//! The unified streaming facade over the DSN'15 pipeline: one
//! ingest → detect → alert API.
//!
//! The paper's operational loop (§III-E) is a single daily cycle —
//! normalize, reduce, profile, extract rare destinations, detect C&C
//! communication, expand by belief propagation — yet the lower-level crates
//! expose it as several entry points that every caller must re-assemble by
//! hand. [`Engine`] owns that choreography:
//!
//! * [`EngineBuilder`] unifies the scattered knobs (pipeline configuration,
//!   C&C model, similarity scorer, belief-propagation limits, WHOIS
//!   registry and defaults, SOC hint seeds, parallelism, alert sinks) into
//!   one validated [`EngineConfig`].
//! * [`Engine::begin_day`] opens a streaming [`DayIngest`] handle: push raw
//!   log lines ([`DayIngest::push_lines`]) or parsed records in chunks of
//!   any size — parsing and reduction fan out across the engine's worker
//!   pool while memory stays bounded by the chunk size — then
//!   [`DayIngest::finish`] runs the detection tail. [`DayBatch`] +
//!   [`Engine::ingest_day`] remain as a one-call wrapper over the same
//!   path, parallelizing per-domain C&C scoring across a sharded thread
//!   pool and returning a typed [`DayReport`] with per-stage counters.
//! * Typed [`Alert`]s flow through pluggable [`AlertSink`]s (collecting,
//!   JSON-lines, callback) in a deterministic order.
//! * [`Engine::investigate`] runs belief propagation for any hint mode
//!   (SOC hint hosts, seed domains, today's C&C detections) on any retained
//!   day, and [`Engine::train_enterprise`] fits the §IV-C/§IV-D regression
//!   models from ingested history, upgrading the engine in place.
//! * [`Engine::freeze`] / [`Engine::freeze_day`] capture the full mutable
//!   state (profiles, histories, retained indexes, trained models, alert
//!   sequencing) into an owned [`EngineSnapshot`] under a short critical
//!   section; [`EngineSnapshot::write_to`] serializes it — on any thread,
//!   while ingestion continues — to a versioned, self-checking store
//!   stream that cold-restarts with bit-identical continuation — see the
//!   `earlybird-store` crate.
//! * For a long-running service, the [`Persistence`] facade drives a
//!   manifest-managed [`StoreDir`] behind one [`SnapshotPolicy`]:
//!   full-vs-segment selection, sync or background commits awaited
//!   through a [`CommitHandle`], automatic chain folding on a
//!   [`CompactionTrigger`] (whole-chain [`compact_store`] or bounded
//!   [`compact_store_tiered`]), retention GC past
//!   [`RetentionPolicy::retain_days`], and O(current state) restore via
//!   [`Persistence::restore`] no matter how long the service ran.
//!   Storage is pluggable through the [`ObjectStore`] trait —
//!   [`LocalFsBackend`] (byte-compatible with pre-trait directories),
//!   [`MemBackend`], or the S3-style [`S3LiteBackend`] with multipart
//!   staging and a conditional manifest swap. Raw byte streams without a
//!   managed directory read back through
//!   [`EngineBuilder::restore_stream`].
//! * [`ShardedEngine`] partitions a day's traffic by internal host across
//!   N parallel inner shards and merges them deterministically: any shard
//!   count — including one — produces byte-identical reports, alerts, and
//!   checkpoints.
//! * Observability rides along the whole cycle: per-stage wall-time
//!   histograms (`engine_stage_micros{stage=parse|reduce|profile|cc|bp|
//!   checkpoint|restore|compact}`), ingest counters, and checkpoint
//!   bandwidth flow into a [`MetricsRegistry`] attached via
//!   [`EngineBuilder::metrics`] (or a private one reachable through
//!   [`Engine::metrics`]) — side-band only, never affecting results.
//!
//! # Example
//!
//! ```
//! use earlybird_engine::{DayBatch, EngineBuilder};
//! use earlybird_synthgen::lanl::{LanlConfig, LanlGenerator};
//! use std::sync::Arc;
//!
//! let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
//! let mut engine = EngineBuilder::lanl()
//!     .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
//!     .unwrap();
//! for day in &challenge.dataset.days[..30] {
//!     let report = engine.ingest_day(DayBatch::Dns(day));
//!     assert_eq!(report.day, day.day);
//! }
//! assert!(engine.days().count() > 0, "operation days retained");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alert;
mod batch;
mod builder;
mod core_loop;
mod ingest;
mod metrics;
mod persist;
mod persistence;
mod report;
mod shard;
mod train;

pub use alert::{
    Alert, AlertLog, AlertLogSink, AlertSink, CallbackSink, CollectedAlerts, CollectingSink,
    JsonLinesSink, Verdict, WriteErrors,
};
pub use batch::DayBatch;
pub use builder::{EngineBuilder, EngineConfig, EngineError};
pub use core_loop::{Engine, Investigation, SeedSpec};
pub use earlybird_obs::{MetricsRegistry, MetricsSnapshot};
pub use earlybird_store::{
    validate_scope_name, BlockKind, CheckpointMeta, CompactionReport, CompactionTrigger,
    FaultInjector, FaultedStore, LifecycleConfig, LocalFsBackend, MemBackend, ObjectStore,
    RetentionPolicy, S3LiteBackend, StoreDir, StoreError, StoreResult,
};
pub use ingest::{DayIngest, DayState, IngestSource};
pub use persist::{compact_store, compact_store_tiered, EngineSnapshot};
pub use persistence::{
    CommitHandle, CommitMode, CommitOutcome, Persistence, SnapshotMode, SnapshotPolicy,
};
pub use report::{CcCandidate, DayReport, InvestigationReport, StageCounters, TrainingReport};
pub use shard::{shard_of, ShardedDayIngest, ShardedEngine};
