//! Simulated WHOIS registry.
//!
//! The paper queries WHOIS for two features of each rare automated domain:
//! `DomAge` (days since registration) and `DomValidity` (days until the
//! registration expires). "Attacker-controlled sites tend to use more
//! recently registered domains ... attackers register their domains for
//! shorter periods of time" (§IV-C). Domains "whose WHOIS information can
//! not be parsed" receive population-average defaults (§VI-C); the registry
//! models those as [`WhoisAnswer::Unparseable`].

use earlybird_logmodel::Day;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A domain registration interval, in window days.
///
/// `created` may lie *before day 0* conceptually; long-lived benign domains
/// should be registered with `created = Day::new(0)` and a large prior age
/// encoded by generators through [`WhoisRegistry::register_aged`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Registration {
    /// Day the domain was registered (window-relative; see
    /// [`WhoisRegistry::register_aged`] for domains older than the window).
    pub created: Day,
    /// Day the registration expires.
    pub expires: Day,
    /// Extra age in days to add on top of `created` for domains registered
    /// before the observation window.
    pub prior_age_days: u32,
}

/// Result of a WHOIS lookup on a given day.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WhoisAnswer {
    /// Registration data parsed successfully.
    Known {
        /// Days since registration.
        age_days: f64,
        /// Days until the registration expires (0 when already expired).
        validity_days: f64,
    },
    /// WHOIS record exists but cannot be parsed (the paper substitutes
    /// population averages).
    Unparseable,
    /// No registration as of the query day — includes DGA domains whose
    /// registration postdates the query (§VI-D).
    NotFound,
}

/// Deterministic WHOIS registry keyed by folded domain name.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct WhoisRegistry {
    records: HashMap<String, Option<Registration>>,
}

impl WhoisRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `domain` created on `created`, expiring on `expires`.
    ///
    /// # Panics
    ///
    /// Panics if `expires <= created`.
    pub fn register(&mut self, domain: &str, created: Day, expires: Day) {
        assert!(expires > created, "registration must have positive validity");
        self.records
            .insert(domain.to_owned(), Some(Registration { created, expires, prior_age_days: 0 }));
    }

    /// Registers a domain that predates the observation window by
    /// `prior_age_days` (so its age on day `d` is `d + prior_age_days`).
    ///
    /// # Panics
    ///
    /// Panics if `expires` is day 0.
    pub fn register_aged(&mut self, domain: &str, prior_age_days: u32, expires: Day) {
        assert!(expires.index() > 0, "aged registration must not expire on day 0");
        self.records.insert(
            domain.to_owned(),
            Some(Registration { created: Day::new(0), expires, prior_age_days }),
        );
    }

    /// Marks a domain's WHOIS record as present but unparseable.
    pub fn register_unparseable(&mut self, domain: &str) {
        self.records.insert(domain.to_owned(), None);
    }

    /// Looks up `domain` as of `today`.
    pub fn lookup(&self, domain: &str, today: Day) -> WhoisAnswer {
        match self.records.get(domain) {
            None => WhoisAnswer::NotFound,
            Some(None) => WhoisAnswer::Unparseable,
            Some(Some(reg)) => {
                if reg.prior_age_days == 0 && today < reg.created {
                    // Registered only in the future (post-detection DGA).
                    WhoisAnswer::NotFound
                } else {
                    let age = today.days_since(reg.created) + reg.prior_age_days;
                    WhoisAnswer::Known {
                        age_days: age as f64,
                        validity_days: reg.expires.days_since(today) as f64,
                    }
                }
            }
        }
    }

    /// Raw registration record, if any (None for unparseable entries).
    pub fn registration(&self, domain: &str) -> Option<Registration> {
        self.records.get(domain).copied().flatten()
    }

    /// All records sorted by domain name — the persistence hook used by
    /// `earlybird-store` (`None` marks an unparseable entry).
    pub fn snapshot(&self) -> Vec<(String, Option<Registration>)> {
        let mut entries: Vec<(String, Option<Registration>)> =
            self.records.iter().map(|(name, reg)| (name.clone(), *reg)).collect();
        entries.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
        entries
    }

    /// Reassembles a registry from snapshot entries. Unlike
    /// [`WhoisRegistry::register`], this accepts entries verbatim and never
    /// panics — lookups on odd intervals saturate rather than underflow, so
    /// a hostile snapshot can at worst mis-age a domain it controls.
    pub fn from_snapshot(
        entries: impl IntoIterator<Item = (String, Option<Registration>)>,
    ) -> Self {
        WhoisRegistry { records: entries.into_iter().collect() }
    }

    /// Number of domains with any record (parseable or not).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn age_and_validity_computed_from_days() {
        let mut w = WhoisRegistry::new();
        w.register("evil.ru", Day::new(10), Day::new(40));
        match w.lookup("evil.ru", Day::new(25)) {
            WhoisAnswer::Known { age_days, validity_days } => {
                assert_eq!(age_days, 15.0);
                assert_eq!(validity_days, 15.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn unknown_domain_is_not_found() {
        let w = WhoisRegistry::new();
        assert_eq!(w.lookup("nosuch.com", Day::new(5)), WhoisAnswer::NotFound);
    }

    #[test]
    fn unparseable_is_reported_as_such() {
        let mut w = WhoisRegistry::new();
        w.register_unparseable("weird.tk");
        assert_eq!(w.lookup("weird.tk", Day::new(5)), WhoisAnswer::Unparseable);
        assert!(w.registration("weird.tk").is_none());
    }

    #[test]
    fn future_registration_is_not_found_until_created() {
        // The §VI-D DGA case: detected on 2/13, registered on 2/18.
        let mut w = WhoisRegistry::new();
        w.register("f0371288e0a20a541328.info", Day::new(48), Day::new(100));
        assert_eq!(w.lookup("f0371288e0a20a541328.info", Day::new(43)), WhoisAnswer::NotFound);
        assert!(matches!(
            w.lookup("f0371288e0a20a541328.info", Day::new(50)),
            WhoisAnswer::Known { .. }
        ));
    }

    #[test]
    fn aged_registration_accumulates_prior_age() {
        let mut w = WhoisRegistry::new();
        w.register_aged("nbc.com", 3_000, Day::new(400));
        match w.lookup("nbc.com", Day::new(31)) {
            WhoisAnswer::Known { age_days, validity_days } => {
                assert_eq!(age_days, 3_031.0);
                assert_eq!(validity_days, 369.0);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn expired_registration_has_zero_validity() {
        let mut w = WhoisRegistry::new();
        w.register("old.biz", Day::new(0), Day::new(5));
        match w.lookup("old.biz", Day::new(9)) {
            WhoisAnswer::Known { validity_days, .. } => assert_eq!(validity_days, 0.0),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "positive validity")]
    fn rejects_empty_registration() {
        let mut w = WhoisRegistry::new();
        w.register("x.com", Day::new(5), Day::new(5));
    }
}
