//! The evasion study (§VIII): how much timing randomization does an
//! attacker need to escape the beacon detector?
//!
//! The paper claims the dynamic histogram is "resilient against small
//! amounts of randomization introduced by attackers", that larger `(W, J_T)`
//! buy more resilience at the cost of more legitimate series labeled
//! automated, and that "completely randomized timing patterns" defeat all
//! timing-based detectors. This module measures all three claims: beacon
//! series with increasing jitter are pushed through the paper detector, a
//! wide-parameter variant, and the two baselines.

use earlybird_logmodel::Timestamp;
use earlybird_synthgen::rng::derive_rng;
use earlybird_timing::{AutocorrelationDetector, AutomationDetector, StdDevDetector};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Detection rates at one jitter level.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EvasionRow {
    /// Maximum absolute jitter added to each beacon interval, in seconds
    /// (`u64::MAX` encodes fully randomized timing).
    pub jitter_secs: u64,
    /// Detection rate of the paper detector (`W = 10`, `J_T = 0.06`).
    pub paper_detector: f64,
    /// Detection rate of the wide variant (`W = 30`, `J_T = 0.35`).
    pub wide_detector: f64,
    /// Detection rate of the std-dev baseline.
    pub stddev_baseline: f64,
    /// Detection rate of the autocorrelation baseline.
    pub autocorr_baseline: f64,
}

/// The jitter levels of the study; the final entry is fully randomized
/// timing (intervals drawn uniformly, no base period).
pub const JITTER_LEVELS: [u64; 8] = [0, 2, 5, 10, 20, 60, 180, u64::MAX];

/// Generates one beacon series with the given period and maximum jitter;
/// `u64::MAX` jitter produces fully random intervals in `[1, 2·period]`.
pub fn jittered_beacon(rng: &mut impl Rng, period: u64, jitter: u64, n: usize) -> Vec<Timestamp> {
    let mut t: i64 = rng.gen_range(0..3_600) as i64;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(Timestamp::from_secs(t as u64));
        let step = if jitter == u64::MAX {
            rng.gen_range(1..=2 * period) as i64
        } else {
            let j =
                if jitter == 0 { 0 } else { rng.gen_range(0..=2 * jitter) as i64 - jitter as i64 };
            (period as i64 + j).max(1)
        };
        t += step;
    }
    out
}

/// Runs the study: `trials` beacon series per jitter level (period drawn
/// from typical C&C cadences), returning one row per level.
pub fn evasion_study(seed: u64, trials: usize) -> Vec<EvasionRow> {
    let paper = AutomationDetector::paper_default();
    let wide = AutomationDetector::new(30, 0.35, 4);
    let stddev = StdDevDetector::new(30.0, 4);
    let autocorr = AutocorrelationDetector::new(30, 0.4, 4);

    JITTER_LEVELS
        .iter()
        .map(|&jitter| {
            let mut hits = [0usize; 4];
            for trial in 0..trials {
                let mut rng = derive_rng(seed, &[70, jitter, trial as u64]);
                let period = *[120u64, 300, 600, 1_200].get(trial % 4).expect("periods");
                let series = jittered_beacon(&mut rng, period, jitter, 40);
                if paper.is_automated(&series) {
                    hits[0] += 1;
                }
                if wide.is_automated(&series) {
                    hits[1] += 1;
                }
                if stddev.is_automated(&series) {
                    hits[2] += 1;
                }
                if autocorr.is_automated(&series) {
                    hits[3] += 1;
                }
            }
            let rate = |h: usize| h as f64 / trials as f64;
            EvasionRow {
                jitter_secs: jitter,
                paper_detector: rate(hits[0]),
                wide_detector: rate(hits[1]),
                stddev_baseline: rate(hits[2]),
                autocorr_baseline: rate(hits[3]),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_jitter_is_survived_fully_randomized_is_not() {
        let rows = evasion_study(7, 24);
        let at = |j: u64| rows.iter().find(|r| r.jitter_secs == j).unwrap();
        // §VIII claim 1: resilient to small randomization.
        assert!(at(5).paper_detector > 0.9, "5 s jitter: {:?}", at(5));
        // §VIII claim 3: completely randomized timing evades everything.
        let random = at(u64::MAX);
        assert!(random.paper_detector < 0.1, "random timing must evade: {random:?}");
        assert!(random.wide_detector < 0.3);
        assert!(random.stddev_baseline < 0.1);
    }

    #[test]
    fn wider_parameters_buy_resilience() {
        let rows = evasion_study(7, 24);
        // §VIII claim 2: at moderate jitter the wide detector holds on
        // longer than the paper's tight operating point.
        let moderate = rows.iter().find(|r| r.jitter_secs == 60).unwrap();
        assert!(
            moderate.wide_detector >= moderate.paper_detector,
            "wide must dominate at 60 s jitter: {moderate:?}"
        );
        // Monotone-ish decay for the paper detector.
        let clean = rows.iter().find(|r| r.jitter_secs == 0).unwrap();
        assert!(clean.paper_detector >= moderate.paper_detector);
        assert_eq!(clean.paper_detector, 1.0, "clean beacons are always caught");
    }

    #[test]
    fn beacon_generator_shapes() {
        let mut rng = derive_rng(1, &[0]);
        let series = jittered_beacon(&mut rng, 600, 0, 10);
        assert_eq!(series.len(), 10);
        let gaps: Vec<u64> = series.windows(2).map(|w| w[1] - w[0]).collect();
        assert!(gaps.iter().all(|&g| g == 600), "zero jitter is exact");
        let random = jittered_beacon(&mut rng, 600, u64::MAX, 10);
        assert!(random.windows(2).all(|w| w[1] > w[0]), "strictly increasing");
    }
}
