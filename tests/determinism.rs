//! Determinism and reproducibility: identical seeds produce identical
//! datasets, detections, and experiment outputs; different seeds differ.

use earlybird::engine::Investigation;
use earlybird::eval::lanl::LanlRun;
use earlybird::synthgen::ac::{AcConfig, AcGenerator};
use earlybird::synthgen::lanl::{ChallengeCase, LanlConfig, LanlGenerator};

#[test]
fn lanl_generation_is_reproducible() {
    let a = LanlGenerator::new(LanlConfig::tiny()).generate();
    let b = LanlGenerator::new(LanlConfig::tiny()).generate();
    assert_eq!(a.dataset.total_queries(), b.dataset.total_queries());
    for (da, db) in a.dataset.days.iter().zip(&b.dataset.days) {
        assert_eq!(da.queries.len(), db.queries.len(), "{:?}", da.day);
    }
    for (ca, cb) in a.campaigns.iter().zip(&b.campaigns) {
        assert_eq!(ca.plan.victims, cb.plan.victims);
        assert_eq!(ca.answer_domains(), cb.answer_domains());
    }
}

#[test]
fn different_seeds_differ() {
    let a = LanlGenerator::new(LanlConfig::tiny()).generate();
    let mut cfg = LanlConfig::tiny();
    cfg.seed = 99;
    let b = LanlGenerator::new(cfg).generate();
    let a_domains: Vec<_> = a.campaigns[0].answer_domains().iter().map(|s| s.to_string()).collect();
    let b_domains: Vec<_> = b.campaigns[0].answer_domains().iter().map(|s| s.to_string()).collect();
    assert_ne!(a_domains, b_domains, "campaign infrastructure must depend on the seed");
}

#[test]
fn ac_generation_is_reproducible() {
    let a = AcGenerator::new(AcConfig::tiny()).generate();
    let b = AcGenerator::new(AcConfig::tiny()).generate();
    assert_eq!(a.dataset.total_records(), b.dataset.total_records());
    assert_eq!(a.intel.ioc.len(), b.intel.ioc.len());
    let day = a.config.feb_day(10);
    let ra = &a.dataset.day(day).unwrap().records;
    let rb = &b.dataset.day(day).unwrap().records;
    for (x, y) in ra.iter().zip(rb) {
        assert_eq!(x.ts_local, y.ts_local);
        assert_eq!(x.src_ip, y.src_ip);
        assert_eq!(x.dest_ip, y.dest_ip);
    }
}

#[test]
fn detection_results_are_reproducible() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let run1 = LanlRun::new(&challenge);
    let run2 = LanlRun::new(&challenge);
    let (t1, _) = run1.table3();
    let (t2, _) = run2.table3();
    assert_eq!(t1.total(), t2.total());
    assert_eq!(t1.rows.len(), t2.rows.len());
    for (a, b) in t1.rows.iter().zip(&t2.rows) {
        assert_eq!(a, b);
    }
}

#[test]
fn bp_outcome_is_order_independent_of_seed_host_listing() {
    // Seeds given in different orders must label the same community.
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let run = LanlRun::new(&challenge);
    let campaign =
        challenge.campaigns.iter().find(|c| c.case == ChallengeCase::Two).expect("case 2 exists");
    let engine = run.engine();

    let mut reversed_hosts = campaign.hint_hosts.clone();
    reversed_hosts.reverse();

    let out1 = engine
        .investigate(
            campaign.day,
            Investigation::from_hint_hosts(campaign.hint_hosts.iter().copied()),
        )
        .expect("campaign day retained")
        .outcome;
    let out2 = engine
        .investigate(campaign.day, Investigation::from_hint_hosts(reversed_hosts))
        .expect("campaign day retained")
        .outcome;

    let mut d1: Vec<u32> = out1.labeled.iter().map(|d| d.domain.raw()).collect();
    let mut d2: Vec<u32> = out2.labeled.iter().map(|d| d.domain.raw()).collect();
    d1.sort_unstable();
    d2.sort_unstable();
    assert_eq!(d1, d2);
    assert_eq!(out1.compromised_hosts, out2.compromised_hosts);
}
