//! Cached metric handles for one engine.
//!
//! The engine registers every series it will ever touch once, at
//! construction, so the daily cycle's instrumentation cost is a handful of
//! relaxed atomic increments — no lock, no lookup, no allocation on the
//! parse/reduce hot path. The registry itself is shared (the serve daemon
//! hands every tenant the same one, labeled per tenant) and is
//! snapshot-readable while the engine runs.

use earlybird_obs::{Counter, Gauge, MetricsRegistry, StageTimer};
use std::sync::Arc;

/// One engine's handles into its [`MetricsRegistry`]: per-stage wall-time
/// timers on `engine_stage_micros{stage=...}` plus the ingest counters.
/// Timing is observability, never state — nothing here feeds back into
/// detection or into snapshot bytes.
#[derive(Clone, Debug)]
pub(crate) struct EngineMetrics {
    registry: Arc<MetricsRegistry>,
    /// Raw-line parsing + sequential host-id assignment.
    pub(crate) parse: StageTimer,
    /// Chunked reduction (normalization, folding, per-chunk reduce, absorb).
    pub(crate) reduce: StageTimer,
    /// Day finalization: index seal + profile/history fold + rare sieve.
    pub(crate) profile: StageTimer,
    /// C&C scoring over the day's rare domains.
    pub(crate) cc: StageTimer,
    /// Belief-propagation expansion.
    pub(crate) bp: StageTimer,
    /// One checkpoint block write (full or segment).
    pub(crate) checkpoint: StageTimer,
    /// One snapshot-stream restore.
    pub(crate) restore: StageTimer,
    /// One store compaction pass.
    pub(crate) compact: StageTimer,
    /// The short critical section of one `Engine::freeze` — the only part
    /// of a checkpoint that excludes ingestion. Its own series
    /// (`checkpoint_stall_micros`), since this is exactly the pause an
    /// always-on deployment watches.
    pub(crate) checkpoint_stall: StageTimer,
    /// Chain blocks replayed by the most recent compaction pass
    /// (`compaction_replay_segments`) — bounded by `1 + K` under a tiered
    /// trigger.
    pub(crate) compaction_replay: Gauge,
    /// Raw records accepted into open days (replays excluded).
    pub(crate) records: Counter,
    /// Unparseable raw log lines.
    pub(crate) parse_errors: Counter,
    /// Alerts dropped because a sink panicked and was detached.
    pub(crate) sink_failures: Counter,
    /// Bytes of checkpoint blocks written.
    pub(crate) checkpoint_bytes: Counter,
}

impl EngineMetrics {
    pub(crate) fn new(registry: Arc<MetricsRegistry>, labels: &[(String, String)]) -> Self {
        let extra: Vec<(&str, &str)> =
            labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
        let stage = |name: &'static str| {
            let mut l: Vec<(&str, &str)> = Vec::with_capacity(extra.len() + 1);
            l.push(("stage", name));
            l.extend(extra.iter().copied());
            registry.timer(
                "engine_stage_micros",
                "Wall time per engine pipeline stage in microseconds",
                &l,
            )
        };
        EngineMetrics {
            parse: stage("parse"),
            reduce: stage("reduce"),
            profile: stage("profile"),
            cc: stage("cc"),
            bp: stage("bp"),
            checkpoint: stage("checkpoint"),
            restore: stage("restore"),
            compact: stage("compact"),
            checkpoint_stall: registry.timer(
                "checkpoint_stall_micros",
                "Wall time ingestion is excluded while a snapshot freezes",
                &extra,
            ),
            compaction_replay: registry.gauge(
                "compaction_replay_segments",
                "Chain blocks replayed by the most recent compaction pass",
                &extra,
            ),
            records: registry.counter(
                "engine_records_total",
                "Raw records accepted into open days (duplicate-day replays excluded)",
                &extra,
            ),
            parse_errors: registry.counter(
                "engine_parse_errors_total",
                "Raw log lines that failed to parse",
                &extra,
            ),
            sink_failures: registry.counter(
                "engine_sink_failures_total",
                "Alerts dropped because a sink panicked and was detached",
                &extra,
            ),
            checkpoint_bytes: registry.counter(
                "engine_checkpoint_bytes_total",
                "Bytes of checkpoint blocks written (full and segment)",
                &extra,
            ),
            registry,
        }
    }

    /// The registry every handle records into.
    pub(crate) fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }
}
