//! Domain-similarity scoring for belief propagation (§IV-D, §V-B).
//!
//! Scores a candidate rare domain against the set of already-labeled
//! malicious domains. Two variants, as in the paper:
//!
//! * [`SimScorer::Regression`] — the enterprise model over eight features;
//! * [`SimScorer::Additive`] — the LANL fallback: normalized sum of
//!   connectivity, timing-correlation and IP-proximity components with
//!   threshold `T_s = 0.25`.

use crate::context::DayContext;
use crate::extract::{min_interval_to_malicious, sim_features};
use earlybird_features::{AdditiveScorer, FeatureScaler, IpProximity, RegressionModel};
use earlybird_logmodel::DomainSym;
use std::collections::BTreeSet;

/// Scorer for `Compute_SimScore` in Algorithm 1.
#[derive(Clone, Debug)]
pub enum SimScorer {
    /// Trained linear regression over the eight similarity features.
    Regression {
        /// The fitted model (threshold `T_s` inside).
        model: RegressionModel,
        /// The feature scaler fitted alongside.
        scaler: FeatureScaler,
    },
    /// The LANL additive function with explicit threshold and the
    /// timing-correlation window (Fig. 3 motivates ~160 s).
    Additive {
        /// Component scorer.
        scorer: AdditiveScorer,
        /// Decision threshold `T_s`.
        threshold: f64,
        /// Two first-visits within this many seconds count as correlated.
        correlation_window_secs: u64,
    },
}

impl SimScorer {
    /// The LANL configuration: additive scorer, `T_s = 0.25`, 160 s window.
    pub fn lanl_default() -> Self {
        SimScorer::Additive {
            scorer: AdditiveScorer::paper_default(),
            threshold: AdditiveScorer::PAPER_THRESHOLD,
            correlation_window_secs: 160,
        }
    }

    /// The decision threshold `T_s`.
    pub fn threshold(&self) -> f64 {
        match self {
            SimScorer::Regression { model, .. } => model.threshold(),
            SimScorer::Additive { threshold, .. } => *threshold,
        }
    }

    /// Replaces the decision threshold (the SOC capacity knob of §VI).
    pub fn set_threshold(&mut self, t: f64) {
        match self {
            SimScorer::Regression { model, .. } => model.set_threshold(t),
            SimScorer::Additive { threshold, .. } => *threshold = t,
        }
    }

    /// Scores `domain` against the malicious set.
    pub fn score(
        &self,
        ctx: &DayContext<'_>,
        domain: DomainSym,
        malicious: &BTreeSet<DomainSym>,
    ) -> f64 {
        match self {
            SimScorer::Regression { model, scaler } => {
                let f = sim_features(ctx, domain, malicious);
                model.score(&scaler.transform(&f.to_row()))
            }
            SimScorer::Additive { scorer, correlation_window_secs, .. } => {
                let f = sim_features(ctx, domain, malicious);
                let timing =
                    f.min_interval_secs.is_some_and(|dt| dt <= *correlation_window_secs as f64);
                let ip = if f.ip24 {
                    IpProximity::SameSubnet24
                } else if f.ip16 {
                    IpProximity::SameSubnet16
                } else {
                    IpProximity::None
                };
                scorer.score(f.no_hosts as u32, timing, ip).total
            }
        }
    }

    /// Timing correlation alone (exposed for diagnostics / Fig. 4 traces).
    pub fn is_timing_correlated(
        &self,
        ctx: &DayContext<'_>,
        domain: DomainSym,
        malicious: &BTreeSet<DomainSym>,
    ) -> bool {
        let window = match self {
            SimScorer::Additive { correlation_window_secs, .. } => *correlation_window_secs as f64,
            SimScorer::Regression { .. } => 160.0,
        };
        min_interval_to_malicious(ctx, domain, malicious).is_some_and(|dt| dt <= window)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlybird_logmodel::{Day, DomainInterner, HostId, Ipv4, Timestamp};
    use earlybird_pipeline::{Contact, DayIndex, DomainHistory, RareSieve};

    fn build(_folded: &DomainInterner, contacts: &mut [Contact]) -> DayIndex {
        contacts.sort_by_key(|c| c.ts);
        let rare = RareSieve::paper_default().extract(contacts, &DomainHistory::new());
        DayIndex::build(Day::new(0), contacts, rare, None)
    }

    fn contact(
        folded: &DomainInterner,
        ts: u64,
        host: u32,
        name: &str,
        ip: Option<Ipv4>,
    ) -> Contact {
        Contact {
            ts: Timestamp::from_secs(ts),
            host: HostId::new(host),
            domain: folded.intern(name),
            dest_ip: ip,
            http: None,
        }
    }

    #[test]
    fn correlated_and_proximate_domain_scores_high() {
        let folded = DomainInterner::new();
        let mut contacts = vec![
            contact(&folded, 100, 1, "mal.c3", Some(Ipv4::new(191, 146, 166, 145))),
            contact(&folded, 150, 1, "cand.c3", Some(Ipv4::new(191, 146, 166, 31))),
            contact(&folded, 155, 2, "cand.c3", Some(Ipv4::new(191, 146, 166, 31))),
        ];
        let index = build(&folded, &mut contacts);
        let ctx = DayContext {
            day: Day::new(0),
            index: &index,
            folded: &folded,
            whois: None,
            whois_defaults: (0.0, 0.0),
        };
        let scorer = SimScorer::lanl_default();
        let mal: BTreeSet<DomainSym> = [folded.get("mal.c3").unwrap()].into_iter().collect();
        let cand = folded.get("cand.c3").unwrap();
        let s = scorer.score(&ctx, cand, &mal);
        // connectivity 2/3 + timing 1 + ip24 1 -> (0.667 + 1 + 1)/3 ≈ 0.889
        assert!(s > 0.8, "score = {s}");
        assert!(s >= scorer.threshold());
        assert!(scorer.is_timing_correlated(&ctx, cand, &mal));
    }

    #[test]
    fn unrelated_domain_scores_below_lanl_threshold() {
        let folded = DomainInterner::new();
        let mut contacts = vec![
            contact(&folded, 100, 1, "mal.c3", Some(Ipv4::new(191, 146, 166, 145))),
            contact(&folded, 40_000, 2, "noise.c3", Some(Ipv4::new(8, 8, 8, 8))),
        ];
        let index = build(&folded, &mut contacts);
        let ctx = DayContext {
            day: Day::new(0),
            index: &index,
            folded: &folded,
            whois: None,
            whois_defaults: (0.0, 0.0),
        };
        let scorer = SimScorer::lanl_default();
        let mal: BTreeSet<DomainSym> = [folded.get("mal.c3").unwrap()].into_iter().collect();
        let s = scorer.score(&ctx, folded.get("noise.c3").unwrap(), &mal);
        assert!(s < scorer.threshold(), "score = {s}");
    }

    #[test]
    fn threshold_is_adjustable() {
        let mut scorer = SimScorer::lanl_default();
        assert_eq!(scorer.threshold(), 0.25);
        scorer.set_threshold(0.5);
        assert_eq!(scorer.threshold(), 0.5);
    }

    #[test]
    fn correlation_window_is_respected() {
        let folded = DomainInterner::new();
        let mut contacts = vec![
            contact(&folded, 100, 1, "mal.c3", None),
            contact(&folded, 100 + 161, 1, "late.c3", None),
        ];
        let index = build(&folded, &mut contacts);
        let ctx = DayContext {
            day: Day::new(0),
            index: &index,
            folded: &folded,
            whois: None,
            whois_defaults: (0.0, 0.0),
        };
        let scorer = SimScorer::lanl_default();
        let mal: BTreeSet<DomainSym> = [folded.get("mal.c3").unwrap()].into_iter().collect();
        assert!(!scorer.is_timing_correlated(&ctx, folded.get("late.c3").unwrap(), &mal));
    }
}
