//! Feature vectors and linear-regression scoring for the DSN'15 detector.
//!
//! The paper trains two linear regression models (R's `lm`) during the
//! one-month bootstrap:
//!
//! * a **C&C model** over six features of rare *automated* domains
//!   ([`CcFeatures`], §IV-C) — threshold `T_c`;
//! * a **domain-similarity model** over eight features of rare
//!   non-automated domains relative to the already-labeled malicious set
//!   ([`SimFeatures`], §IV-D) — threshold `T_s`.
//!
//! Both are ordinary least squares on a 0/1 label (VirusTotal-reported vs.
//! legitimate), so fitted scores live roughly in `[0, 1]` and thresholds such
//! as 0.4 are meaningful. [`regress::LinearRegression`] implements OLS via
//! normal equations with per-coefficient t-statistics, reproducing the
//! paper's feature-significance pruning (AutoHosts and IP16 dropped).
//!
//! For the anonymized LANL data — too few samples to regress — the paper
//! falls back to a "simple additive function" ([`additive::AdditiveScorer`],
//! §V-B).
//!
//! # Example
//!
//! ```
//! use earlybird_features::regress::LinearRegression;
//!
//! // y = 2x (plus an intercept of zero), recovered exactly.
//! let xs = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
//! let y = vec![0.0, 2.0, 4.0, 6.0];
//! let fit = LinearRegression::fit(&xs, &y)?;
//! assert!((fit.coefficient(0) - 2.0).abs() < 1e-9);
//! assert!(fit.intercept().abs() < 1e-9);
//! # Ok::<(), earlybird_features::regress::FitError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod additive;
pub mod linalg;
pub mod regress;
pub mod scale;
pub mod vectors;

pub use additive::{AdditiveScore, AdditiveScorer, IpProximity};
pub use regress::{Fit, FitError, LinearRegression, RegressionModel};
pub use scale::FeatureScaler;
pub use vectors::{CcFeatures, SimFeatures, CC_FEATURE_NAMES, SIM_FEATURE_NAMES};
