//! Durability & crash recovery: run the daily cycle with a store file on
//! disk, kill the process, and restart without losing the months of
//! accumulated baseline the detector depends on.
//!
//! The shape of a production deployment:
//!
//! 1. `Engine::checkpoint` writes one full snapshot when the service first
//!    reaches steady state;
//! 2. after each day's `ingest_day`, `Engine::checkpoint_day` appends an
//!    O(day) segment to the same file;
//! 3. on restart, `EngineBuilder::restore` replays the stream and the
//!    service resumes **bit-identically** — same reports, same alerts,
//!    same sink sequence numbers — as if it had never died. Re-feeding an
//!    already-covered day is absorbed by the duplicate-day replay guard
//!    (at-least-once ingestion, no double alerts).
//!
//! Run with: `cargo run --release --example checkpoint_restart`

use earlybird::engine::{CollectingSink, DayBatch, EngineBuilder};
use earlybird::logmodel::Day;
use earlybird::synthgen::lanl::{LanlConfig, LanlGenerator};
use std::sync::Arc;

fn main() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let dataset = &challenge.dataset;
    let boot = dataset.meta.bootstrap_days as usize;
    let split = boot + 3; // the process "dies" after this many days
    let store_path = std::env::temp_dir().join("earlybird-example.ebstore");

    // ---- Reference: one engine that never restarts. --------------------
    let sink = CollectingSink::new();
    let reference_alerts = sink.handle();
    let mut reference = EngineBuilder::lanl()
        .auto_investigate(true)
        .sink(sink)
        .build(Arc::clone(&dataset.domains), dataset.meta.clone())
        .expect("valid config");
    for day in &dataset.days {
        reference.ingest_day(DayBatch::Dns(day));
    }

    // ---- Incarnation #1: bootstrap, snapshot, then daily segments. -----
    {
        let mut store = std::fs::File::create(&store_path).expect("create store file");
        let mut engine = EngineBuilder::lanl()
            .auto_investigate(true)
            .sink(CollectingSink::new())
            .build(Arc::clone(&dataset.domains), dataset.meta.clone())
            .expect("valid config");
        for day in &dataset.days[..boot] {
            engine.ingest_day(DayBatch::Dns(day));
        }
        let full = engine.checkpoint(&mut store).expect("full checkpoint");
        println!(
            "full snapshot: {} days, {} retained indexes, {} bytes (crc {:#010x})",
            full.days, full.retained_days, full.bytes, full.checksum
        );
        for day in &dataset.days[boot..split] {
            engine.ingest_day(DayBatch::Dns(day));
            let seg = engine.checkpoint_day(&mut store).expect("segment");
            println!("  day segment {:?}: {} bytes", day.day, seg.bytes);
        }
        // Engine dropped here: the "crash". Only the store file survives.
    }

    // ---- Incarnation #2: cold restart from the store file. -------------
    let sink = CollectingSink::new();
    let restarted_alerts = sink.handle();
    let mut bytes = std::fs::File::open(&store_path).expect("open store file");
    let mut engine = EngineBuilder::lanl()
        .auto_investigate(true)
        .sink(sink)
        .restore(&mut bytes)
        .expect("snapshot restores");
    println!(
        "restored: {} operation days retained, {} profiled domains",
        engine.days().count(),
        engine.history().len()
    );

    // At-least-once replay of the day that was in flight when we died.
    let replay = engine.ingest_day(DayBatch::Dns(&dataset.days[split - 1]));
    assert!(replay.duplicate, "covered day absorbed as a replay");

    // Continue the stream to the end of the window.
    for day in &dataset.days[split..] {
        engine.ingest_day(DayBatch::Dns(day));
    }

    // ---- The restart was invisible. ------------------------------------
    let split_day = Day::new(split as u32);
    let expected: Vec<_> =
        reference_alerts.snapshot().into_iter().filter(|a| a.day >= split_day).collect();
    let actual = restarted_alerts.snapshot();
    assert_eq!(actual, expected, "post-restart alert stream must be bit-identical");
    assert_eq!(
        engine.days().collect::<Vec<_>>(),
        reference.days().collect::<Vec<_>>(),
        "retained day set must match"
    );
    println!(
        "post-restart alerts: {} (sequences {:?}..{:?}) — bit-identical to the uninterrupted run",
        actual.len(),
        actual.first().map(|a| a.sequence),
        actual.last().map(|a| a.sequence),
    );

    let _ = std::fs::remove_file(&store_path);
    println!("cold restart OK: durability layer verified");
}
