//! Throughput benchmarks for the data-reduction pipeline (the Fig. 2
//! machinery): normalization, reduction, rare extraction, and indexing.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use earlybird_core::{DailyPipeline, PipelineConfig};
use earlybird_logmodel::Day;
use std::sync::Arc;

fn bench_reduction(c: &mut Criterion) {
    let challenge = earlybird_bench::lanl_world();
    let meta = &challenge.dataset.meta;
    let day = challenge.dataset.day(Day::new(32)).unwrap().clone();

    c.bench_function("dns_day_reduce_and_index", |b| {
        b.iter_batched(
            || {
                let mut p = DailyPipeline::new(
                    Arc::clone(&challenge.dataset.domains),
                    PipelineConfig::lanl(),
                );
                // Warm the history with one bootstrap day so the rare sieve
                // does non-trivial work.
                p.bootstrap_dns_day(&challenge.dataset.days[0], meta);
                p
            },
            |mut p| p.process_dns_day(&day, meta),
            BatchSize::LargeInput,
        )
    });
}

fn bench_proxy_day(c: &mut Criterion) {
    let world = earlybird_bench::ac_world();
    let meta = &world.dataset.meta;
    let day = world.dataset.day(Day::new(40)).unwrap().clone();

    c.bench_function("proxy_day_normalize_reduce_index", |b| {
        b.iter_batched(
            || {
                let mut p = DailyPipeline::new(
                    Arc::clone(&world.dataset.domains),
                    PipelineConfig::enterprise(),
                );
                p.bootstrap_proxy_day(&world.dataset.days[0], &world.dataset.dhcp, meta);
                p
            },
            |mut p| p.process_proxy_day(&day, &world.dataset.dhcp, meta),
            BatchSize::LargeInput,
        )
    });
}

fn bench_fold_level(c: &mut Criterion) {
    // Ablation: folding depth changes how many distinct entities the
    // history tracks.
    let challenge = earlybird_bench::lanl_world();
    let meta = &challenge.dataset.meta;
    let day = challenge.dataset.day(Day::new(30)).unwrap().clone();
    let mut group = c.benchmark_group("fold_level_ablation");
    for level in [2usize, 3] {
        group.bench_function(format!("fold_to_{level}"), |b| {
            b.iter_batched(
                || {
                    DailyPipeline::new(
                        Arc::clone(&challenge.dataset.domains),
                        PipelineConfig { fold_level: level, ..PipelineConfig::lanl() },
                    )
                },
                |mut p| p.process_dns_day(&day, meta),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_reduction, bench_proxy_day, bench_fold_level
}
criterion_main!(benches);
