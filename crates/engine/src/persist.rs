//! Durable checkpoint/restore of the engine's full mutable state.
//!
//! The paper's detector only works because it accumulates months of history
//! — new-domain profiles, rare-UA host counts, per-day contact indexes,
//! trained regression weights (§III-E, §IV). This module makes that state
//! survive a process restart with **bit-identical continuation**: ingest
//! days `1..N`, freeze and commit a snapshot, restore into a fresh engine,
//! ingest days `N+1..M` — every report, alert, and sink sequence number
//! matches an uninterrupted run exactly.
//!
//! # Freeze, then write
//!
//! Persistence is split into two halves so the engine never pauses for the
//! duration of a store commit:
//!
//! * [`Engine::freeze`] / [`Engine::freeze_day`] capture the persistable
//!   state into an owned [`EngineSnapshot`] under a **short critical
//!   section** (interner/history tails are `Arc`-shared pointer copies;
//!   retained day indexes ride as `Arc<DayProduct>` clones). Its wall time
//!   is the `checkpoint_stall_micros` series — the only pause an always-on
//!   deployment sees.
//! * [`EngineSnapshot::write_to`] serializes the frozen view as one
//!   self-checking block — on the calling thread or a background worker —
//!   while ingestion continues. The bytes are identical to what a
//!   synchronous checkpoint of the quiesced engine would have written.
//!
//! Most callers drive both halves through the [`crate::Persistence`]
//! facade, which owns the [`StoreDir`], a [`crate::SnapshotPolicy`], and
//! (optionally) the background commit worker. Raw byte streams without a
//! managed directory — fixtures, pipes, in-memory buffers — write through
//! [`Engine::freeze`] + [`EngineSnapshot::write_to`] and read back through
//! [`EngineBuilder::restore_stream`] /
//! [`EngineBuilder::restore_stream_with_domains`].
//!
//! # Stream layout
//!
//! A store stream is one **full** block followed by any number of
//! **day-segment** blocks (see `earlybird_store::frame`):
//!
//! * A full block carries configuration (including trained models and the
//!   WHOIS registry), dataset metadata, all four interners, the raw-line
//!   host map, both cross-day histories, every stored day report, every
//!   retained contact index, and the alert sequence counter.
//! * A day segment carries only the state added since the previous block —
//!   interner tails, history-log tails, the new days' reports and indexes —
//!   so a daily cycle persists O(day), not O(history).
//! * [`EngineBuilder::restore_stream`] (and [`Persistence::restore`] over a
//!   managed chain) reads the full block, replays every trailing segment,
//!   and rebuilds the engine. Restored symbol numbering is identical to
//!   the original interners', so records produced against the original
//!   dataset (or a deterministic regeneration of it) remain valid.
//!
//! [`Persistence::restore`]: crate::Persistence::restore
//!
//! # Compaction
//!
//! [`compact_store`] folds a whole `full + N segments` chain back into a
//! single full block; [`compact_store_tiered`] folds only the oldest `K`
//! segments, bounding the pass's replay work by `K` instead of the chain
//! length (the `compaction_replay_segments` gauge records the bound).
//!
//! # Crash recovery
//!
//! Restoring and re-pushing the day that was in flight when the process
//! died gives at-least-once ingestion with no double counting: days the
//! snapshot already covers are absorbed by the engine's duplicate-day
//! replay guard (a no-op returning the stored counters), and the partial
//! day simply ingests fresh.
//!
//! Machine-local performance knobs (`parallelism`, `parallel_threshold`,
//! `ingest_chunk_records`) are deliberately *not* restored — they come from
//! the [`EngineBuilder`] so a snapshot can move between machines; none of
//! them affects results. Alert sinks are external resources and likewise
//! come from the builder.

use crate::builder::{validate_config, EngineBuilder, EngineConfig};
use crate::core_loop::Engine;
use crate::metrics::EngineMetrics;
use crate::report::{DayReport, StageCounters};
use earlybird_core::{BpConfig, CcModel, DailyPipeline, DayProduct, PipelineConfig, SimScorer};
use earlybird_logmodel::{
    Day, DomainInterner, DomainSym, HostId, HostMapper, Ipv4, PathInterner, UaInterner, UaSym,
};
use earlybird_pipeline::{DomainHistory, UaHistory};
use earlybird_store::{
    sections, BlockKind, BlockReader, BlockWriter, CheckpointMeta, CompactionReport, Decoder,
    Encoder, SectionTag, StoreDir, StoreError, StoreResult, FORMAT_VERSION,
};
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Watermarks of the state already persisted to the current store stream;
/// `checkpoint_day` writes everything beyond them. All the underlying
/// collections are append-only, which is what makes the delta well-defined.
#[derive(Clone, Debug, Default)]
pub(crate) struct PersistCursor {
    raw: usize,
    folded: usize,
    uas: usize,
    paths: usize,
    hosts: usize,
    history: usize,
    ua_pairs: usize,
    days: BTreeSet<Day>,
}

impl Engine {
    /// The persist-cursor lock. Checkpoints hold it for their whole write,
    /// so concurrent checkpoints serialize and each delta is well-defined;
    /// the engine's read paths never touch it.
    fn lock_cursor(&self) -> std::sync::MutexGuard<'_, PersistCursor> {
        self.persist_cursor.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn current_cursor(&self) -> PersistCursor {
        PersistCursor {
            raw: self.pipeline.raw_interner().len(),
            folded: self.pipeline.folded_interner().len(),
            uas: self.uas.len(),
            paths: self.paths.len(),
            hosts: self.line_hosts.len(),
            history: self.pipeline.history().ordered().len(),
            ua_pairs: self.pipeline.ua_history().pair_log().len(),
            days: self.reports.keys().copied().collect(),
        }
    }

    /// Freezes the engine's complete persistable state — configuration
    /// (including any trained models), dataset metadata, interners, host
    /// map, histories, day reports, retained contact indexes, and the
    /// alert sequence counter — into an owned [`EngineSnapshot`] under a
    /// short critical section, and advances the incremental persist cursor
    /// past everything captured.
    ///
    /// The snapshot borrows nothing from the engine: serialization
    /// ([`EngineSnapshot::write_to`]) and the store commit can run on a
    /// background thread while ingestion continues. The cursor advance is
    /// *eager* — the engine assumes the frozen bytes will reach their
    /// stream. A snapshot that is dropped unwritten (or whose commit
    /// fails) therefore breaks the segment stream: the next delta would
    /// assume state the chain never received. The [`crate::Persistence`]
    /// facade enforces this by refusing further commits after a failure
    /// ([`StoreError::PersistencePoisoned`]); recover by restoring from
    /// the store.
    ///
    /// Takes `&self`: a freeze never blocks the engine's read paths
    /// ([`Engine::report`], [`Engine::investigate`], ...) on a shared
    /// engine — only ingestion (which needs `&mut self`) waits, and only
    /// for the critical section, whose wall time is recorded on the
    /// `checkpoint_stall_micros` series.
    pub fn freeze(&self) -> EngineSnapshot {
        let mut cursor = self.lock_cursor();
        let (snap, next) = self.freeze_locked(BlockKind::Full, &PersistCursor::default());
        *cursor = next;
        snap
    }

    /// [`Engine::freeze`] for the daily cycle: captures only the state
    /// added since the last freeze — interner tails, history-log tails,
    /// the new days' reports and indexes; O(day), not O(history) — as a
    /// day-segment snapshot, advancing the cursor past it. Freezing with
    /// no new days ingested yields a (tiny) empty segment, which restores
    /// as a no-op.
    ///
    /// # Errors
    ///
    /// A day ingested *behind* the newest already-persisted day is refused
    /// as [`StoreError::StaleSegment`] — appending its segment would
    /// produce a chain the restore path rejects; freeze a fresh full
    /// snapshot ([`Engine::freeze`]) to persist back-filled days. On error
    /// the cursor is untouched.
    pub fn freeze_day(&self) -> StoreResult<EngineSnapshot> {
        let mut cursor = self.lock_cursor();
        Self::check_segment_freshness(&cursor, &self.reports)?;
        let delta = cursor.clone();
        let (snap, next) = self.freeze_locked(BlockKind::DaySegment, &delta);
        *cursor = next;
        Ok(snap)
    }

    /// Captures everything beyond `cursor` into an owned snapshot, plus
    /// the cursor value describing the captured watermarks. Does *not*
    /// advance the engine's cursor — callers holding the cursor lock
    /// decide when the advance happens (eager for [`Engine::freeze`] /
    /// [`Engine::freeze_day`]).
    fn freeze_locked(
        &self,
        kind: BlockKind,
        cursor: &PersistCursor,
    ) -> (EngineSnapshot, PersistCursor) {
        let _stall_span = self.metrics.checkpoint_stall.start();
        let (config_bytes, meta_bytes) = if kind == BlockKind::Full {
            let mut c = Encoder::new();
            write_config(&mut c, &self.cfg);
            let mut m = Encoder::new();
            sections::write_dataset_meta(&mut m, &self.meta);
            (Some(c.into_bytes()), Some(m.into_bytes()))
        } else {
            (None, None)
        };
        let raw = (cursor.raw, self.pipeline.raw_interner().snapshot_tail(cursor.raw));
        let folded = (cursor.folded, self.pipeline.folded_interner().snapshot_tail(cursor.folded));
        let uas = (cursor.uas, self.uas.snapshot_tail(cursor.uas));
        let paths = (cursor.paths, self.paths.snapshot_tail(cursor.paths));
        let mut ips = self.line_hosts.snapshot_ips();
        let hosts = (cursor.hosts, ips.split_off(cursor.hosts.min(ips.len())));
        let order = self.pipeline.history().ordered();
        let history = (
            cursor.history,
            order.get(cursor.history..).unwrap_or(&[]).to_vec(),
            self.pipeline.history().days_ingested(),
        );
        let log = self.pipeline.ua_history().pair_log();
        let ua_history = (
            self.pipeline.ua_history().rare_threshold(),
            cursor.ua_pairs,
            log.get(cursor.ua_pairs..).unwrap_or(&[]).to_vec(),
        );
        let reports: Vec<DayReport> = self
            .reports
            .iter()
            .filter(|(d, _)| !cursor.days.contains(d))
            .map(|(_, r)| r.clone())
            .collect();
        let products: Vec<(Day, Arc<DayProduct>)> = self
            .products
            .iter()
            .filter(|(d, _)| !cursor.days.contains(d))
            .map(|(d, p)| (*d, Arc::clone(p)))
            .collect();
        {
            // Prune memoized encodings of evicted days while the engine is
            // quiesced; snapshot writers only ever insert.
            let mut cache = self.product_encodings.lock().expect("product encoding cache poisoned");
            cache.retain(|d, _| self.products.contains_key(d));
        }
        let next = PersistCursor {
            raw: raw.0 + raw.1.len(),
            folded: folded.0 + folded.1.len(),
            uas: uas.0 + uas.1.len(),
            paths: paths.0 + paths.1.len(),
            hosts: hosts.0 + hosts.1.len(),
            history: history.0 + history.1.len(),
            ua_pairs: ua_history.1 + ua_history.2.len(),
            days: self.reports.keys().copied().collect(),
        };
        let snap = EngineSnapshot {
            kind,
            config_bytes,
            meta_bytes,
            raw,
            folded,
            uas,
            paths,
            hosts,
            history,
            ua_history,
            reports,
            products,
            encodings: Arc::clone(&self.product_encodings),
            sequence: self.sequence.load(Ordering::SeqCst),
            metrics: self.metrics.clone(),
        };
        (snap, next)
    }

    /// Rejects a segment that would persist a day older than the newest
    /// day already on the stream (see [`StoreError::StaleSegment`]).
    fn check_segment_freshness(
        cursor: &PersistCursor,
        reports: &std::collections::BTreeMap<Day, DayReport>,
    ) -> StoreResult<()> {
        let Some(&last) = cursor.days.iter().next_back() else {
            return Ok(());
        };
        for day in reports.keys() {
            if *day < last && !cursor.days.contains(day) {
                return Err(StoreError::StaleSegment {
                    day: day.index(),
                    last_persisted: last.index(),
                });
            }
        }
        Ok(())
    }

    /// Applies one block's state sections (everything after Config/Meta)
    /// onto this engine.
    fn apply_state_sections<R: Read>(&mut self, block: &mut BlockReader<'_, R>) -> StoreResult<()> {
        let payload = block.section(SectionTag::Interners)?;
        let mut d = Decoder::new(&payload, SectionTag::Interners.name());
        sections::read_interner_into(&mut d, self.pipeline.raw_interner(), "raw domain")?;
        sections::read_interner_into(&mut d, self.pipeline.folded_interner(), "folded domain")?;
        sections::read_interner_into(&mut d, &self.uas, "user-agent")?;
        sections::read_interner_into(&mut d, &self.paths, "path")?;
        d.finish()?;

        let payload = block.section(SectionTag::Hosts)?;
        let mut d = Decoder::new(&payload, SectionTag::Hosts.name());
        sections::read_host_mapper_into(&mut d, &mut self.line_hosts)?;
        d.finish()?;

        let payload = block.section(SectionTag::History)?;
        let mut d = Decoder::new(&payload, SectionTag::History.name());
        let (start, domains, days_ingested) = sections::read_domain_history(&mut d)?;
        if start != self.pipeline.history().ordered().len() {
            return Err(StoreError::corrupt(format!(
                "history delta starts at {start}, engine holds {}",
                self.pipeline.history().ordered().len()
            )));
        }
        self.pipeline.restore_history_delta(domains, days_ingested);
        let (threshold, start, pairs) = sections::read_ua_history(&mut d)?;
        if threshold != self.cfg.pipeline.rare_ua_threshold {
            return Err(StoreError::corrupt(format!(
                "snapshot rare-UA threshold {threshold} disagrees with configuration {}",
                self.cfg.pipeline.rare_ua_threshold
            )));
        }
        if start != self.pipeline.ua_history().pair_log().len() {
            return Err(StoreError::corrupt(format!(
                "user-agent history delta starts at {start}, engine holds {}",
                self.pipeline.ua_history().pair_log().len()
            )));
        }
        self.pipeline.restore_ua_delta(pairs);
        d.finish()?;

        let payload = block.section(SectionTag::Reports)?;
        let mut d = Decoder::new(&payload, SectionTag::Reports.name());
        // Mirror of the write-side `StaleSegment` guard: a segment may only
        // carry days beyond everything already replayed — including days
        // earlier *in the same segment*, so an internally-descending
        // (corrupt or hand-crafted) segment is rejected too.
        let mut newest = self.reports.keys().next_back().copied();
        let is_segment = block.kind() == BlockKind::DaySegment;
        let n = d.seq_len(4)?;
        for _ in 0..n {
            let report = read_day_report(&mut d)?;
            let day = report.day;
            if is_segment {
                if newest.is_some_and(|newest| day < newest) {
                    return Err(StoreError::corrupt(format!(
                        "segment persists stale {day} behind already-replayed {}",
                        newest.expect("checked")
                    )));
                }
                newest = Some(day);
            }
            if self.reports.insert(day, report).is_some() {
                return Err(StoreError::corrupt(format!("duplicate report for {day}")));
            }
        }
        d.finish()?;

        let payload = block.section(SectionTag::Products)?;
        let mut d = Decoder::new(&payload, SectionTag::Products.name());
        let n = d.seq_len(4)?;
        for _ in 0..n {
            let dns_counts = sections::read_opt_dns_counts(&mut d)?;
            let proxy_counts = sections::read_opt_proxy_counts(&mut d)?;
            let norm_counts = sections::read_opt_norm_counts(&mut d)?;
            let index = sections::read_day_index(&mut d)?;
            let day = index.day();
            let product = DayProduct {
                day,
                index,
                folded: Arc::clone(self.pipeline.folded_interner()),
                dns_counts,
                proxy_counts,
                norm_counts,
            };
            self.invalidate_product_encoding(day);
            if self.products.insert(day, Arc::new(product)).is_some() {
                return Err(StoreError::corrupt(format!("duplicate retained index for {day}")));
            }
        }
        d.finish()?;
        // Enforce the retention window across blocks exactly like live
        // ingestion does.
        if let Some(limit) = self.cfg.retain_days {
            while self.products.len() > limit {
                self.products.pop_first();
            }
        }

        let payload = block.section(SectionTag::Sequence)?;
        let mut d = Decoder::new(&payload, SectionTag::Sequence.name());
        let sequence = d.varint()?;
        d.finish()?;
        if sequence < self.sequence.load(Ordering::SeqCst) {
            return Err(StoreError::corrupt("alert sequence counter moved backwards"));
        }
        self.sequence.store(sequence, Ordering::SeqCst);
        Ok(())
    }
}

/// An engine's persistable state, frozen at one instant by
/// [`Engine::freeze`] / [`Engine::freeze_day`] into an owned value.
///
/// The snapshot borrows nothing from the engine, so it can move to a
/// background thread (`EngineSnapshot: Send`) and serialize while
/// ingestion continues. Freezing is cheap: interner and history tails are
/// `Arc`-shared pointer copies, retained day indexes ride as
/// `Arc<DayProduct>` clones of the engine's own immutable products, and
/// the memoized product-encoding cache is *shared* with the live engine,
/// so a day's index is encoded at most once across every snapshot that
/// ships it.
///
/// [`EngineSnapshot::write_to`] produces bytes identical to what a
/// synchronous checkpoint of the quiesced engine would have written —
/// background and sync commits restore bit-identically by construction.
pub struct EngineSnapshot {
    kind: BlockKind,
    /// Pre-encoded Config/Meta section payloads (full snapshots only) —
    /// encoded at freeze so the snapshot need not clone `EngineConfig`.
    config_bytes: Option<Vec<u8>>,
    meta_bytes: Option<Vec<u8>>,
    /// Interner tails as `(start, strings)` watermark deltas.
    raw: (usize, Vec<Arc<str>>),
    folded: (usize, Vec<Arc<str>>),
    uas: (usize, Vec<Arc<str>>),
    paths: (usize, Vec<Arc<str>>),
    hosts: (usize, Vec<Ipv4>),
    /// `(start, tail, days_ingested)` of the destination history log.
    history: (usize, Vec<DomainSym>, u32),
    /// `(rare_threshold, start, tail)` of the user-agent pair log.
    ua_history: (usize, usize, Vec<(UaSym, HostId)>),
    reports: Vec<DayReport>,
    products: Vec<(Day, Arc<DayProduct>)>,
    /// The live engine's memoized product encodings (insert-only from
    /// writers; pruned under the freeze critical section).
    encodings: Arc<std::sync::Mutex<std::collections::BTreeMap<Day, Arc<Vec<u8>>>>>,
    sequence: u64,
    metrics: EngineMetrics,
}

impl std::fmt::Debug for EngineSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineSnapshot")
            .field("kind", &self.kind)
            .field("days", &self.reports.len())
            .field("sequence", &self.sequence)
            .finish_non_exhaustive()
    }
}

impl EngineSnapshot {
    /// Whether this snapshot serializes as a full block or a day segment.
    pub fn kind(&self) -> BlockKind {
        self.kind
    }

    /// Number of day reports the snapshot carries (all stored days for a
    /// full snapshot, the delta for a day segment).
    pub fn days(&self) -> usize {
        self.reports.len()
    }

    pub(crate) fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Serializes the frozen state as one self-checking block. This is
    /// the single write path for every snapshot — sync shims, the
    /// [`crate::Persistence`] worker, and compaction all funnel through
    /// it, which is what makes their outputs interchangeable.
    ///
    /// Writing the same snapshot twice produces the same bytes; writing to
    /// two sinks (say, a store commit and a side backup) is legitimate.
    ///
    /// # Errors
    ///
    /// Propagates writer failures as [`StoreError::Io`].
    pub fn write_to<W: Write>(&self, out: &mut W) -> StoreResult<CheckpointMeta> {
        let _checkpoint_span = self.metrics.checkpoint.start();
        let mut block = BlockWriter::begin(out, self.kind)?;

        if let (Some(config), Some(meta)) = (&self.config_bytes, &self.meta_bytes) {
            let mut e = Encoder::new();
            e.raw(config);
            block.section(SectionTag::Config, e)?;
            let mut e = Encoder::new();
            e.raw(meta);
            block.section(SectionTag::Meta, e)?;
        }

        let mut e = Encoder::new();
        sections::write_interner_tail(&mut e, self.raw.0, &self.raw.1);
        sections::write_interner_tail(&mut e, self.folded.0, &self.folded.1);
        sections::write_interner_tail(&mut e, self.uas.0, &self.uas.1);
        sections::write_interner_tail(&mut e, self.paths.0, &self.paths.1);
        block.section(SectionTag::Interners, e)?;

        let mut e = Encoder::new();
        sections::write_host_mapper_tail(&mut e, self.hosts.0, &self.hosts.1);
        block.section(SectionTag::Hosts, e)?;

        let mut e = Encoder::new();
        sections::write_domain_history_tail(
            &mut e,
            self.history.0,
            &self.history.1,
            self.history.2,
        );
        sections::write_ua_history_tail(
            &mut e,
            self.ua_history.0,
            self.ua_history.1,
            &self.ua_history.2,
        );
        block.section(SectionTag::History, e)?;

        let mut e = Encoder::new();
        e.usizev(self.reports.len());
        for report in &self.reports {
            write_day_report(&mut e, report);
        }
        block.section(SectionTag::Reports, e)?;

        let mut e = Encoder::new();
        e.usizev(self.products.len());
        {
            // Day products are immutable once retained, so their encoding
            // is computed by the first snapshot that ships them and spliced
            // verbatim into every later block that does. Eviction pruning
            // happens at freeze time; here the cache only grows.
            let mut cache = self.encodings.lock().expect("product encoding cache poisoned");
            for (day, product) in &self.products {
                let bytes = cache.entry(*day).or_insert_with(|| {
                    let mut pe = Encoder::new();
                    sections::write_opt_dns_counts(&mut pe, product.dns_counts.as_ref());
                    sections::write_opt_proxy_counts(&mut pe, product.proxy_counts.as_ref());
                    sections::write_opt_norm_counts(&mut pe, product.norm_counts.as_ref());
                    sections::write_day_index(&mut pe, &product.index);
                    Arc::new(pe.into_bytes())
                });
                e.raw(bytes);
            }
        }
        block.section(SectionTag::Products, e)?;

        let mut e = Encoder::new();
        e.varint(self.sequence);
        block.section(SectionTag::Sequence, e)?;

        let (bytes, checksum) = block.finish()?;
        self.metrics.checkpoint_bytes.add(bytes);
        Ok(CheckpointMeta {
            kind: self.kind,
            format_version: FORMAT_VERSION,
            bytes,
            checksum,
            days: self.reports.len(),
            retained_days: self.products.len(),
        })
    }
}

/// Folds a [`StoreDir`]'s `full + N segments` chain back into a single
/// full block, applying the directory's retention policy.
///
/// The pass never touches live engine state: the chain is restored into a
/// *scratch* engine (semantics come entirely from the snapshot, so any
/// builder would do), contact indexes older than
/// [`earlybird_store::RetentionPolicy::retain_days`] are pruned — their
/// counter reports stay, making the new full block the source of truth for
/// evicted days — and the re-snapshotted state is committed through
/// [`StoreDir::commit_full`]'s atomic manifest swap. A crash at any point
/// leaves either the old chain or the new block, never a torn store;
/// leftover objects are quarantined by the next [`StoreDir::open`], and
/// superseded blocks whose best-effort deletion fails are counted in
/// [`CompactionReport::gc_failures`] rather than silently leaked.
///
/// An engine restored from the compacted store continues bit-identically
/// to one restored from the original chain (see the `lifecycle`
/// integration suite).
///
/// # Errors
///
/// Typed [`StoreError`]s from the chain replay or the commit; compacting
/// an empty directory is [`StoreError::Corrupt`].
pub fn compact_store(dir: &mut StoreDir) -> StoreResult<CompactionReport> {
    compact_prefix(dir, None)
}

/// Tiered variant of [`compact_store`]: folds only the oldest
/// `fold_segments` segments (clamped to the chain) into the full block,
/// leaving newer segments in place. The pass replays at most
/// `1 + fold_segments` blocks regardless of chain length — bounded,
/// predictable work for an always-on daily cycle — at the cost of needing
/// more passes to fully flatten a long chain. The partial fold commits
/// through [`StoreDir::commit_fold`]'s atomic manifest swap, so a crash at
/// any point still leaves either the old chain or the new one.
///
/// Retention pruning only sees days carried by the replayed prefix; days
/// newer than the fold boundary are pruned by later passes once the
/// boundary moves past them (restore applies the engine-side retention
/// window regardless).
///
/// # Errors
///
/// As for [`compact_store`].
pub fn compact_store_tiered(
    dir: &mut StoreDir,
    fold_segments: usize,
) -> StoreResult<CompactionReport> {
    compact_prefix(dir, Some(fold_segments))
}

fn compact_prefix(dir: &mut StoreDir, fold: Option<usize>) -> StoreResult<CompactionReport> {
    if dir.is_empty() {
        return Err(StoreError::corrupt("cannot compact an empty store: no full snapshot yet"));
    }
    let total = dir.segment_count();
    let fold = fold.map_or(total, |k| k.max(1).min(total));
    let replayed = 1 + fold;
    let bytes_before = dir.chain_bytes();
    let gc_count_before = dir.gc_failures();
    let gc_names_before = dir.gc_failed_objects().len();
    let mut scratch =
        EngineBuilder::lanl().restore_impl(None, &mut dir.reader_prefix(replayed)?)?;
    let days_pruned = match dir.config().retention.retain_days {
        Some(keep) => scratch.prune_retained(keep),
        None => 0,
    };
    let mut pending = dir.begin(BlockKind::Full)?;
    let meta = scratch.freeze().write_to(&mut pending)?;
    if fold == total {
        dir.commit_full(pending, &meta)?;
    } else {
        dir.commit_fold(pending, &meta, fold)?;
    }
    Ok(CompactionReport {
        segments_folded: fold,
        segments_replayed: replayed,
        bytes_before,
        bytes_after: meta.bytes,
        days_pruned,
        gc_failures: dir.gc_failures() - gc_count_before,
        gc_failed_objects: dir.gc_failed_objects()[gc_names_before..].to_vec(),
        full: meta,
    })
}

impl EngineBuilder {
    /// Rebuilds an engine from a raw store stream — one full snapshot
    /// block written by [`Engine::freeze`] + [`EngineSnapshot::write_to`],
    /// optionally followed by day-segment blocks ([`Engine::freeze_day`]).
    ///
    /// All *semantic* configuration — pipeline thresholds, beacon detector,
    /// C&C and similarity models (trained or heuristic), belief-propagation
    /// limits, WHOIS registry and defaults, SOC seeds, bootstrap split,
    /// retention window — comes from the snapshot; setting those on the
    /// builder has no effect on restore. The builder contributes what a
    /// snapshot cannot carry across processes: alert sinks, the
    /// machine-local performance knobs ([`EngineBuilder::parallelism`],
    /// [`EngineBuilder::parallel_threshold`],
    /// [`EngineBuilder::ingest_chunk_records`]) — none of which affects
    /// results — and, optionally, shared interners:
    /// [`EngineBuilder::proxy_interners`] installed before `restore` are
    /// honored (the snapshot contents are verified against them, so
    /// symbols a dataset minted after the checkpoint stay valid), and
    /// [`EngineBuilder::restore_stream_with_domains`] does the same for the raw
    /// domain interner of dataset-driven record pushes.
    ///
    /// The restored engine's continued operation is bit-identical to an
    /// engine that never restarted: identical reports, alerts, and sink
    /// sequence numbers for every subsequently ingested day.
    ///
    /// # Errors
    ///
    /// Every defect is a typed [`StoreError`]: [`StoreError::BadMagic`] for
    /// non-snapshot input, [`StoreError::UnsupportedVersion`] for future
    /// formats, [`StoreError::Truncated`] for torn writes,
    /// [`StoreError::ChecksumMismatch`] for bit rot, and
    /// [`StoreError::Corrupt`] for anything that decodes but violates an
    /// engine invariant — including a supplied shared interner whose
    /// contents disagree with the snapshot. No input panics.
    pub fn restore_stream<R: Read>(self, input: &mut R) -> Result<Engine, StoreError> {
        self.restore_impl(None, input)
    }

    /// [`EngineBuilder::restore_stream`] sharing the caller's raw domain interner
    /// (typically a dataset's), so records parsed or generated against it
    /// — including symbols minted *after* the checkpoint — remain valid in
    /// the restored engine. The snapshot's raw-interner contents are
    /// verified against `raw`; any disagreement is a typed
    /// [`StoreError::Corrupt`].
    ///
    /// # Errors
    ///
    /// As for [`EngineBuilder::restore_stream`].
    pub fn restore_stream_with_domains<R: Read>(
        self,
        raw: Arc<DomainInterner>,
        input: &mut R,
    ) -> Result<Engine, StoreError> {
        self.restore_impl(Some(raw), input)
    }

    pub(crate) fn restore_impl<R: Read>(
        self,
        raw: Option<Arc<DomainInterner>>,
        input: &mut R,
    ) -> Result<Engine, StoreError> {
        let (builder_cfg, sinks, uas, paths, metrics) = self.into_parts();
        let restore_span = metrics.restore.start();

        let Some(mut block) = BlockReader::next_block(input)? else {
            return Err(StoreError::Truncated { context: "snapshot stream" });
        };
        if block.kind() != BlockKind::Full {
            return Err(StoreError::corrupt("store stream must begin with a full snapshot"));
        }

        let payload = block.section(SectionTag::Config)?;
        let mut d = Decoder::new(&payload, SectionTag::Config.name());
        let mut cfg = read_config(&mut d)?;
        d.finish()?;
        cfg.parallelism = builder_cfg.parallelism.max(1);
        cfg.parallel_threshold = builder_cfg.parallel_threshold.max(1);
        cfg.ingest_chunk_records = builder_cfg.ingest_chunk_records.max(1);
        validate_config(&cfg).map_err(|e| StoreError::corrupt(e.to_string()))?;

        let payload = block.section(SectionTag::Meta)?;
        let mut d = Decoder::new(&payload, SectionTag::Meta.name());
        let meta = sections::read_dataset_meta(&mut d)?;
        d.finish()?;

        // Empty histories plus either fresh interners or caller-shared
        // ones (whose contents the snapshot sections verify): the first
        // block's sections are deltas from zero, applied through the same
        // path as any later segment. The pipeline is assembled *before*
        // SOC seeds are re-interned, so the folded interner is only ever
        // extended by snapshot contents.
        let pipeline = DailyPipeline::from_restored(
            raw.unwrap_or_else(|| Arc::new(DomainInterner::new())),
            Arc::new(DomainInterner::new()),
            cfg.pipeline,
            DomainHistory::new(),
            UaHistory::new(cfg.pipeline.rare_ua_threshold),
        );
        let mut engine = Engine::from_restored(
            cfg,
            sinks,
            meta,
            pipeline,
            uas.unwrap_or_else(|| Arc::new(UaInterner::new())),
            paths.unwrap_or_else(|| Arc::new(PathInterner::new())),
            HostMapper::new(),
            metrics,
        );
        engine.apply_state_sections(&mut block)?;
        block.finish()?;

        while let Some(mut block) = BlockReader::next_block(input)? {
            if block.kind() != BlockKind::DaySegment {
                return Err(StoreError::corrupt(
                    "only one full snapshot may open a store stream; found a second",
                ));
            }
            engine.apply_state_sections(&mut block)?;
            block.finish()?;
        }

        // SOC seed symbols were interned at original build time, so they
        // already exist in the restored folded namespace; re-interning
        // resolves them without creating new symbols.
        engine.reintern_soc_seeds();
        *engine.lock_cursor() = engine.current_cursor();
        restore_span.finish();
        Ok(engine)
    }
}

// -- engine config ----------------------------------------------------------

fn write_config(e: &mut Encoder, cfg: &EngineConfig) {
    e.usizev(cfg.pipeline.fold_level);
    e.usizev(cfg.pipeline.unpopular_threshold);
    e.usizev(cfg.pipeline.rare_ua_threshold);
    sections::write_automation(e, &cfg.automation);
    match &cfg.cc_model {
        CcModel::LanlHeuristic { min_hosts, period_tolerance_secs } => {
            e.u8(0);
            e.usizev(*min_hosts);
            e.varint(*period_tolerance_secs);
        }
        CcModel::Regression { model, scaler } => {
            e.u8(1);
            sections::write_regression_model(e, model);
            sections::write_scaler(e, scaler);
        }
    }
    match &cfg.sim {
        SimScorer::Additive { scorer, threshold, correlation_window_secs } => {
            e.u8(0);
            sections::write_additive(e, scorer);
            e.f64(*threshold);
            e.varint(*correlation_window_secs);
        }
        SimScorer::Regression { model, scaler } => {
            e.u8(1);
            sections::write_regression_model(e, model);
            sections::write_scaler(e, scaler);
        }
    }
    e.usizev(cfg.bp.max_iterations);
    match &cfg.whois {
        None => e.bool(false),
        Some(whois) => {
            e.bool(true);
            sections::write_whois(e, whois);
        }
    }
    e.f64(cfg.whois_defaults.0);
    e.f64(cfg.whois_defaults.1);
    e.usizev(cfg.soc_seed_domains.len());
    for seed in &cfg.soc_seed_domains {
        e.str(seed);
    }
    e.bool(cfg.auto_investigate);
    e.usizev(cfg.parallelism);
    e.usizev(cfg.parallel_threshold);
    e.usizev(cfg.ingest_chunk_records);
    e.opt_varint(cfg.bootstrap_days.map(u64::from));
    e.opt_varint(cfg.retain_days.map(|d| d as u64));
}

fn read_config(d: &mut Decoder<'_>) -> StoreResult<EngineConfig> {
    let pipeline = PipelineConfig {
        fold_level: d.usizev()?,
        unpopular_threshold: d.usizev()?,
        rare_ua_threshold: d.usizev()?,
    };
    let automation = sections::read_automation(d)?;
    let cc_model = match d.u8()? {
        0 => CcModel::LanlHeuristic { min_hosts: d.usizev()?, period_tolerance_secs: d.varint()? },
        1 => CcModel::Regression {
            model: sections::read_regression_model(d)?,
            scaler: sections::read_scaler(d)?,
        },
        b => return Err(StoreError::corrupt(format!("unknown C&C model tag {b}"))),
    };
    if let CcModel::Regression { model, scaler } = &cc_model {
        if scaler.n_features() != model.fit().n_features() {
            return Err(StoreError::corrupt("C&C scaler/model feature count mismatch"));
        }
    }
    let sim = match d.u8()? {
        0 => SimScorer::Additive {
            scorer: sections::read_additive(d)?,
            threshold: d.f64()?,
            correlation_window_secs: d.varint()?,
        },
        1 => {
            let model = sections::read_regression_model(d)?;
            let scaler = sections::read_scaler(d)?;
            if scaler.n_features() != model.fit().n_features() {
                return Err(StoreError::corrupt("similarity scaler/model feature count mismatch"));
            }
            SimScorer::Regression { model, scaler }
        }
        b => return Err(StoreError::corrupt(format!("unknown similarity scorer tag {b}"))),
    };
    let bp = BpConfig { max_iterations: d.usizev()? };
    let whois = if d.bool()? { Some(sections::read_whois(d)?) } else { None };
    let whois_defaults = (d.f64()?, d.f64()?);
    let n = d.seq_len(1)?;
    let mut soc_seed_domains = Vec::with_capacity(n.min(64 * 1024));
    for _ in 0..n {
        soc_seed_domains.push(d.str()?);
    }
    let auto_investigate = d.bool()?;
    let parallelism = d.usizev()?;
    let parallel_threshold = d.usizev()?;
    let ingest_chunk_records = d.usizev()?;
    let bootstrap_days = match d.opt_varint()? {
        None => None,
        Some(v) => Some(
            u32::try_from(v)
                .map_err(|_| StoreError::corrupt("bootstrap_days override exceeds u32"))?,
        ),
    };
    let retain_days = match d.opt_varint()? {
        None => None,
        Some(v) => {
            Some(usize::try_from(v).map_err(|_| StoreError::corrupt("retain_days exceeds usize"))?)
        }
    };
    Ok(EngineConfig {
        pipeline,
        automation,
        cc_model,
        sim,
        bp,
        whois,
        whois_defaults,
        soc_seed_domains,
        auto_investigate,
        parallelism,
        parallel_threshold,
        ingest_chunk_records,
        bootstrap_days,
        retain_days,
    })
}

// -- day reports ------------------------------------------------------------

fn write_day_report(e: &mut Encoder, report: &DayReport) {
    e.u32v(report.day.index());
    e.bool(report.bootstrap);
    let s = &report.stages;
    e.usizev(s.records_in);
    e.usizev(s.parse_errors);
    e.usizev(s.domains_all);
    e.usizev(s.domains_after_internal_filter);
    e.usizev(s.domains_after_server_filter);
    e.usizev(s.new_destinations);
    e.usizev(s.rare_destinations);
    e.usizev(s.automated_domains);
    e.usizev(s.cc_detections);
    e.usizev(s.bp_iterations);
    e.usizev(s.bp_labeled);
    e.usizev(s.alerts_emitted);
    e.usizev(s.sink_failures);
    // wall_micros is deliberately not part of the format: it is wall-clock
    // measurement noise, not engine state, and persisting it would make
    // otherwise-identical states produce different snapshot bytes.
    sections::write_opt_dns_counts(e, report.dns_counts.as_ref());
    sections::write_opt_proxy_counts(e, report.proxy_counts.as_ref());
    sections::write_opt_norm_counts(e, report.norm_counts.as_ref());
}

fn read_day_report(d: &mut Decoder<'_>) -> StoreResult<DayReport> {
    let day = Day::new(d.u32v()?);
    let bootstrap = d.bool()?;
    let stages = StageCounters {
        records_in: d.usizev()?,
        parse_errors: d.usizev()?,
        domains_all: d.usizev()?,
        domains_after_internal_filter: d.usizev()?,
        domains_after_server_filter: d.usizev()?,
        new_destinations: d.usizev()?,
        rare_destinations: d.usizev()?,
        automated_domains: d.usizev()?,
        cc_detections: d.usizev()?,
        bp_iterations: d.usizev()?,
        bp_labeled: d.usizev()?,
        alerts_emitted: d.usizev()?,
        sink_failures: d.usizev()?,
        wall_micros: 0,
    };
    Ok(DayReport {
        day,
        bootstrap,
        duplicate: false,
        stages,
        dns_counts: sections::read_opt_dns_counts(d)?,
        proxy_counts: sections::read_opt_proxy_counts(d)?,
        norm_counts: sections::read_opt_norm_counts(d)?,
        cc_candidates: Vec::new(),
        alerts: Vec::new(),
        outcome: None,
    })
}

// -- engine helpers ----------------------------------------------------------

impl Engine {
    /// Re-interns the configured SOC seed names into the (restored) folded
    /// namespace; see [`EngineBuilder::restore_stream`].
    pub(crate) fn reintern_soc_seeds(&mut self) {
        self.soc_seed_syms =
            self.cfg.soc_seed_domains.iter().map(|n| self.pipeline.intern_seed(n)).collect();
    }
}
