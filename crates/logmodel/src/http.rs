//! Web-proxy log records (AC-style dataset).

use crate::intern::{DomainSym, PathSym, UaSym};
use crate::ip::Ipv4;
use crate::time::{Timestamp, TzOffset};
use crate::HostId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// HTTP request methods recorded by border proxies.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum HttpMethod {
    /// GET request (the overwhelming majority of both benign and beacon traffic).
    #[default]
    Get,
    /// POST request (uploads, form submissions, some C&C check-ins).
    Post,
    /// HEAD request.
    Head,
    /// CONNECT tunnel (HTTPS interception point).
    Connect,
    /// PUT request.
    Put,
}

impl fmt::Display for HttpMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HttpMethod::Get => "GET",
            HttpMethod::Post => "POST",
            HttpMethod::Head => "HEAD",
            HttpMethod::Connect => "CONNECT",
            HttpMethod::Put => "PUT",
        };
        f.write_str(s)
    }
}

/// An HTTP status code.
///
/// The AC validation workflow treats `504` responses as "unknown" (server
/// error) and removes them from the final tallies (§VI-B).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Serialize, Deserialize)]
pub struct HttpStatus(pub u16);

impl HttpStatus {
    /// 200 OK.
    pub const OK: HttpStatus = HttpStatus(200);
    /// 404 Not Found.
    pub const NOT_FOUND: HttpStatus = HttpStatus(404);
    /// 504 Gateway Timeout — the paper's "unknown" marker.
    pub const GATEWAY_TIMEOUT: HttpStatus = HttpStatus(504);

    /// Whether this is a success (2xx) status.
    pub const fn is_success(self) -> bool {
        self.0 >= 200 && self.0 < 300
    }
}

impl fmt::Display for HttpStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One HTTP(S) connection crossing the enterprise border, as logged by a web
/// proxy (§III-A: timestamp, source and destination, full URL, method, status
/// code, user-agent string, web referer, ...).
///
/// Raw records carry a *local* timestamp plus the collector's timezone, and a
/// source IP that may be a short-lived DHCP or VPN lease; normalization
/// (`earlybird-pipeline`) converts to UTC and resolves [`Self::host`].
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub struct ProxyRecord {
    /// Local timestamp at the collecting proxy.
    pub ts_local: Timestamp,
    /// Timezone of the collecting proxy.
    pub tz: TzOffset,
    /// Source IP as seen by the proxy (DHCP/VPN lease, not a stable identity).
    pub src_ip: Ipv4,
    /// Stable host identity; `None` until normalization resolves the lease,
    /// and possibly `None` afterwards for unresolvable records.
    pub host: Option<HostId>,
    /// Destination domain from the Host header / URL (interned, full name).
    pub domain: DomainSym,
    /// Destination server address.
    pub dest_ip: Ipv4,
    /// Request method.
    pub method: HttpMethod,
    /// Response status code.
    pub status: HttpStatus,
    /// URL path + query component (interned).
    pub url_path: PathSym,
    /// User-agent header, when present.
    pub user_agent: Option<UaSym>,
    /// Referer header's domain, when present. Beacon processes typically
    /// send none (the `NoRef` feature, §IV-C).
    pub referer: Option<DomainSym>,
}

impl ProxyRecord {
    /// The record's timestamp converted to UTC.
    pub fn ts_utc(&self) -> Timestamp {
        self.tz.to_utc(self.ts_local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DomainInterner, PathInterner};

    #[test]
    fn status_classification() {
        assert!(HttpStatus::OK.is_success());
        assert!(!HttpStatus::NOT_FOUND.is_success());
        assert_eq!(HttpStatus::GATEWAY_TIMEOUT.to_string(), "504");
    }

    #[test]
    fn method_display() {
        assert_eq!(HttpMethod::Get.to_string(), "GET");
        assert_eq!(HttpMethod::Connect.to_string(), "CONNECT");
        assert_eq!(HttpMethod::default(), HttpMethod::Get);
    }

    #[test]
    fn utc_conversion_uses_tz() {
        let domains = DomainInterner::new();
        let paths = PathInterner::new();
        let rec = ProxyRecord {
            ts_local: Timestamp::from_secs(7_200),
            tz: TzOffset::from_minutes(60),
            src_ip: Ipv4::new(10, 0, 0, 1),
            host: None,
            domain: domains.intern("nbc.com"),
            dest_ip: Ipv4::new(93, 184, 216, 34),
            method: HttpMethod::Get,
            status: HttpStatus::OK,
            url_path: paths.intern("/"),
            user_agent: None,
            referer: None,
        };
        assert_eq!(rec.ts_utc(), Timestamp::from_secs(3_600));
    }
}
