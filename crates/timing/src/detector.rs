//! The automated-connection detector: dynamic histogram + Jeffrey divergence
//! against a periodic reference, parameterized by `(W, J_T)` (§IV-C, Table II).

use crate::distance::{jeffrey_divergence, l1_distance};
use crate::histogram::{dynamic_bins, intervals_of, periodic_reference, Histogram};
use earlybird_logmodel::Timestamp;
use serde::{Deserialize, Serialize};

/// The statistical distance used to compare the observed inter-connection
/// histogram to the periodic reference.
///
/// The paper chose Jeffrey divergence for numerical stability but notes "We
/// experimented with other statistical metrics (e.g., L1 distance), but the
/// results were very similar" (§IV-C); both are provided so the ablation
/// bench can verify that claim.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistanceMetric {
    /// Jeffrey divergence (the paper's choice).
    #[default]
    Jeffrey,
    /// L1 distance.
    L1,
}

impl DistanceMetric {
    /// Evaluates the metric on aligned frequency vectors.
    pub fn distance(self, h: &[f64], k: &[f64]) -> f64 {
        match self {
            DistanceMetric::Jeffrey => jeffrey_divergence(h, k),
            DistanceMetric::L1 => l1_distance(h, k),
        }
    }
}

/// Evidence that a (host, domain) connection series is automated.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AutomationEvidence {
    /// Estimated beacon period in seconds (the highest-frequency cluster hub).
    pub period: u64,
    /// Jeffrey divergence between the observed histogram and the periodic
    /// reference (lower = more regular).
    pub divergence: f64,
    /// Number of connections in the series.
    pub connections: usize,
}

/// Detector for automated (beacon-like) connection timing.
///
/// `bin_width` (`W`) controls resilience to attacker-introduced jitter;
/// `jt_threshold` (`J_T`) controls resilience to outliers; the paper selects
/// `W = 10 s`, `J_T = 0.06` on the LANL training campaigns (Table II).
///
/// # Example
///
/// ```
/// use earlybird_timing::AutomationDetector;
/// use earlybird_logmodel::Timestamp;
/// let det = AutomationDetector::new(10, 0.06, 4);
/// let beacon: Vec<Timestamp> = (0..8).map(|i| Timestamp::from_secs(i * 120)).collect();
/// assert!(det.is_automated(&beacon));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AutomationDetector {
    bin_width: u64,
    jt_threshold: f64,
    min_connections: usize,
    metric: DistanceMetric,
}

impl AutomationDetector {
    /// Creates a detector with bin width `W` seconds, Jeffrey threshold
    /// `J_T`, and a minimum number of connections per day below which a
    /// series is never labeled automated.
    ///
    /// # Panics
    ///
    /// Panics if `jt_threshold` is negative or `min_connections < 2`.
    pub fn new(bin_width: u64, jt_threshold: f64, min_connections: usize) -> Self {
        assert!(jt_threshold >= 0.0, "threshold must be non-negative");
        assert!(min_connections >= 2, "need at least two connections for an interval");
        AutomationDetector {
            bin_width,
            jt_threshold,
            min_connections,
            metric: DistanceMetric::Jeffrey,
        }
    }

    /// Replaces the distance metric (the §IV-C "we experimented with other
    /// statistical metrics" ablation).
    pub fn with_metric(mut self, metric: DistanceMetric) -> Self {
        self.metric = metric;
        self
    }

    /// The distance metric in use.
    pub fn metric(&self) -> DistanceMetric {
        self.metric
    }

    /// The paper's selected parameterization: `W = 10 s`, `J_T = 0.06`,
    /// minimum 4 connections.
    pub fn paper_default() -> Self {
        AutomationDetector::new(10, 0.06, 4)
    }

    /// Bin width `W` in seconds.
    pub fn bin_width(&self) -> u64 {
        self.bin_width
    }

    /// Jeffrey divergence threshold `J_T`.
    pub fn jt_threshold(&self) -> f64 {
        self.jt_threshold
    }

    /// Minimum connections per day for a series to qualify.
    pub fn min_connections(&self) -> usize {
        self.min_connections
    }

    /// Evaluates a chronologically sorted series of connection timestamps,
    /// returning automation evidence if the series is beacon-like.
    ///
    /// Returns `None` for series shorter than the minimum, or whose
    /// histogram diverges from periodic by more than `J_T`.
    ///
    /// # Panics
    ///
    /// Panics if `timestamps` is not sorted (see
    /// [`intervals_of`] for details).
    pub fn evaluate(&self, timestamps: &[Timestamp]) -> Option<AutomationEvidence> {
        if timestamps.len() < self.min_connections {
            return None;
        }
        let intervals = intervals_of(timestamps);
        let hist = Histogram::from_bins(dynamic_bins(&intervals, self.bin_width));
        let (obs, reference) = periodic_reference(&hist)?;
        let divergence = self.metric.distance(&obs, &reference);
        if divergence <= self.jt_threshold {
            Some(AutomationEvidence {
                period: hist.dominant_period().expect("non-empty histogram"),
                divergence,
                connections: timestamps.len(),
            })
        } else {
            None
        }
    }

    /// Whether the series is automated (shorthand for
    /// [`evaluate`](Self::evaluate)`.is_some()`).
    pub fn is_automated(&self, timestamps: &[Timestamp]) -> bool {
        self.evaluate(timestamps).is_some()
    }
}

impl Default for AutomationDetector {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn secs(v: &[u64]) -> Vec<Timestamp> {
        v.iter().map(|&s| Timestamp::from_secs(s)).collect()
    }

    #[test]
    fn perfect_beacon_has_zero_divergence() {
        let det = AutomationDetector::paper_default();
        let ts = secs(&[0, 600, 1200, 1800, 2400]);
        let ev = det.evaluate(&ts).unwrap();
        assert_eq!(ev.period, 600);
        assert_eq!(ev.divergence, 0.0);
        assert_eq!(ev.connections, 5);
    }

    #[test]
    fn jitter_within_bin_width_is_tolerated() {
        let det = AutomationDetector::paper_default();
        // +-8 s jitter around a 300 s beacon stays inside W = 10.
        let ts = secs(&[0, 300, 608, 905, 1207, 1498, 1805]);
        assert!(det.is_automated(&ts), "small randomization must survive");
    }

    #[test]
    fn single_large_gap_is_tolerated() {
        let det = AutomationDetector::paper_default();
        // 12 regular intervals + one 4000 s gap (host asleep).
        let mut t = 0;
        let mut ts = vec![Timestamp::from_secs(0)];
        for i in 0..12 {
            t += if i == 6 { 4000 } else { 600 };
            ts.push(Timestamp::from_secs(t));
        }
        assert!(det.is_automated(&ts), "one outlier in 12 intervals must survive");
    }

    #[test]
    fn user_browsing_pattern_is_rejected() {
        let det = AutomationDetector::paper_default();
        // Irregular, human-like gaps.
        let ts = secs(&[0, 13, 430, 445, 2210, 2215, 7601, 9000]);
        assert!(!det.is_automated(&ts));
    }

    #[test]
    fn short_series_never_automated() {
        let det = AutomationDetector::paper_default();
        assert!(!det.is_automated(&secs(&[0, 600, 1200])));
        assert!(!det.is_automated(&secs(&[])));
    }

    #[test]
    fn larger_threshold_admits_more_series() {
        // Two outliers in 15 intervals: rejected at 0.06, admitted at 0.35
        // (the paper's 5-second-bin threshold).
        let mut t = 0;
        let mut ts = vec![Timestamp::from_secs(0)];
        for i in 0..15 {
            t += if i == 5 || i == 11 { 3000 } else { 60 };
            ts.push(Timestamp::from_secs(t));
        }
        assert!(!AutomationDetector::new(10, 0.06, 4).is_automated(&ts));
        assert!(AutomationDetector::new(10, 0.35, 4).is_automated(&ts));
    }

    #[test]
    fn wider_bins_absorb_more_jitter() {
        // Intervals spread up to 20 s from the first hub: outside W = 10,
        // inside W = 20.
        let ts = secs(&[0, 315, 615, 910, 1220, 1525, 1825]);
        assert!(!AutomationDetector::new(10, 0.06, 4).is_automated(&ts));
        assert!(AutomationDetector::new(20, 0.06, 4).is_automated(&ts));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn constructor_validates_min_connections() {
        let _ = AutomationDetector::new(10, 0.06, 1);
    }

    #[test]
    fn l1_metric_behaves_like_jeffrey_on_clear_cases() {
        // The paper's observation: "the results were very similar".
        let jeffrey = AutomationDetector::paper_default();
        let l1 = AutomationDetector::new(10, 0.2, 4).with_metric(DistanceMetric::L1);
        let beacon: Vec<Timestamp> = (0..20).map(|i| Timestamp::from_secs(i * 300)).collect();
        let noise = secs(&[0, 13, 430, 445, 2_210, 2_215, 7_601, 9_000]);
        assert!(jeffrey.is_automated(&beacon) && l1.is_automated(&beacon));
        assert!(!jeffrey.is_automated(&noise) && !l1.is_automated(&noise));
        assert_eq!(l1.metric(), DistanceMetric::L1);
        assert_eq!(jeffrey.metric(), DistanceMetric::Jeffrey);
    }

    #[test]
    fn l1_tolerates_single_outlier_at_matched_threshold() {
        // One outlier in 13 intervals: L1 distance = 2/13 ≈ 0.154, so a
        // threshold of 0.2 matches Jeffrey's 0.06 operating point.
        let mut t = 0;
        let mut ts = vec![Timestamp::from_secs(0)];
        for i in 0..13 {
            t += if i == 6 { 4_000 } else { 600 };
            ts.push(Timestamp::from_secs(t));
        }
        let l1 = AutomationDetector::new(10, 0.2, 4).with_metric(DistanceMetric::L1);
        assert!(l1.is_automated(&ts));
    }

    proptest! {
        #[test]
        fn any_exact_beacon_is_detected(period in 1u64..100_000, n in 4usize..50) {
            let ts: Vec<Timestamp> = (0..n as u64).map(|i| Timestamp::from_secs(i * period)).collect();
            let ev = AutomationDetector::paper_default().evaluate(&ts);
            prop_assert!(ev.is_some());
            prop_assert_eq!(ev.unwrap().period, period);
        }

        #[test]
        fn detection_is_invariant_to_time_shift(shift in 0u64..1_000_000) {
            let base: Vec<Timestamp> = (0..10u64).map(|i| Timestamp::from_secs(i * 120)).collect();
            let shifted: Vec<Timestamp> = base.iter().map(|t| *t + shift).collect();
            let det = AutomationDetector::paper_default();
            prop_assert_eq!(det.evaluate(&base), det.evaluate(&shifted));
        }
    }
}
