//! Crash-during-lifecycle fault injection: kill the store at **every**
//! filesystem write/rename point of the daily persist cycle — segment
//! appends, full-snapshot commits, compaction swaps, GC deletions — and
//! prove `StoreDir::open` always recovers a valid chain with no
//! acknowledged day lost.
//!
//! The [`FaultInjector`] counts filesystem mutations and fails the N-th
//! (and, like a dead process, every one after it). The suites below
//! enumerate N from 0 upward until a run completes with no fault fired,
//! so every mutation point in the schedule is killed exactly once.

use earlybird::engine::{
    compact_store, CompactionTrigger, DayBatch, Engine, EngineBuilder, FaultInjector,
    LifecycleConfig, RetentionPolicy, StageCounters, StoreDir, StoreError,
};
use earlybird::logmodel::Day;
use earlybird::synthgen::lanl::{LanlChallenge, LanlConfig, LanlGenerator};
use earlybird_engine::CollectingSink;
use std::collections::BTreeSet;
use std::path::PathBuf;
use std::sync::Arc;

fn temp_store(tag: &str) -> PathBuf {
    let root = std::env::temp_dir().join(format!("earlybird-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    root
}

fn strip_wall(s: &StageCounters) -> StageCounters {
    StageCounters { wall_micros: 0, ..*s }
}

fn challenge() -> LanlChallenge {
    LanlGenerator::new(LanlConfig::tiny()).generate()
}

fn engine_for(challenge: &LanlChallenge) -> Engine {
    EngineBuilder::lanl()
        .soc_seed("ioc.planted.c3")
        .auto_investigate(true)
        .sink(CollectingSink::new())
        .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
        .expect("valid config")
}

/// Reference counters for every day of the suite, from an engine that
/// never persists at all.
fn reference_counters(challenge: &LanlChallenge) -> Vec<StageCounters> {
    let mut engine = engine_for(challenge);
    challenge
        .dataset
        .days
        .iter()
        .map(|day| strip_wall(&engine.ingest_day(DayBatch::Dns(day)).stages))
        .collect()
}

/// After a simulated crash, reopening the directory must yield a chain
/// that restores cleanly and still holds every acknowledged day with the
/// exact counters of an uninterrupted run. Returns the restored engine
/// (`None` when the crash predates the first durable block, which is only
/// legitimate while nothing was acknowledged).
fn assert_no_acked_loss(
    root: &PathBuf,
    cfg: LifecycleConfig,
    acked: &BTreeSet<Day>,
    reference: &[StageCounters],
    context: &str,
) -> Option<Engine> {
    let dir = StoreDir::open(root, cfg)
        .unwrap_or_else(|e| panic!("{context}: store must reopen after the crash: {e}"));
    if dir.is_empty() {
        assert!(acked.is_empty(), "{context}: acked days {acked:?} but the chain is empty");
        return None;
    }
    let restored = EngineBuilder::lanl()
        .restore_dir(&dir)
        .unwrap_or_else(|e| panic!("{context}: recovered chain must restore: {e}"));
    let days: BTreeSet<Day> = restored.reports().map(|r| r.day).collect();
    for day in acked {
        assert!(days.contains(day), "{context}: acknowledged {day:?} lost; chain holds {days:?}");
    }
    for report in restored.reports() {
        assert_eq!(
            strip_wall(&report.stages),
            reference[report.day.index() as usize],
            "{context}: counters for {:?}",
            report.day
        );
    }
    Some(restored)
}

/// The daily cycle under fire: first persist writes the full block, later
/// ones append segments, and the `max_segments = 2` trigger forces
/// repeated compaction passes (with retention GC) — so the enumerated
/// crash points cover pending-block creation, fsync, both renames, the
/// manifest swap, and superseded-chain deletion, in every phase.
#[test]
fn crash_at_every_op_of_the_daily_cycle_loses_no_acked_day() {
    let challenge = challenge();
    let reference = reference_counters(&challenge);
    let boot = challenge.dataset.meta.bootstrap_days as usize;
    let days = &challenge.dataset.days[..boot + 6];
    let cfg = LifecycleConfig {
        compaction: CompactionTrigger { max_segments: Some(2), max_segment_bytes: None },
        retention: RetentionPolicy { retain_days: Some(3) },
    };

    let mut crash_points = 0u64;
    for fault_at in 0u64.. {
        let root = temp_store("daily");
        let mut dir = StoreDir::create(&root, cfg).expect("create store dir");
        let injector = FaultInjector::new();
        dir.set_fault_injector(injector.clone());
        injector.arm(fault_at);

        let mut engine = engine_for(&challenge);
        let mut acked: BTreeSet<Day> = BTreeSet::new();
        let mut crashed = false;
        for day in days {
            engine.ingest_day(DayBatch::Dns(day));
            match engine.checkpoint_day_to(&mut dir) {
                Ok(_) => {
                    acked.insert(day.day);
                }
                Err(e) => {
                    assert!(
                        matches!(e, StoreError::Io(_)),
                        "fault {fault_at}: only the injected fault may fail the cycle: {e}"
                    );
                    crashed = true;
                    break;
                }
            }
        }
        // The dead process goes away; recovery sees only the directory.
        drop(dir);
        drop(engine);

        let context = format!("fault at op {fault_at}");
        let restored = assert_no_acked_loss(&root, cfg, &acked, &reference, &context);
        drop(restored);
        std::fs::remove_dir_all(&root).unwrap();

        if !crashed {
            assert!(!injector.crashed(), "fault {fault_at} fired but no checkpoint reported it");
            crash_points = fault_at;
            break;
        }
    }
    // The schedule above crosses full-commit, segment-commit, and several
    // compaction passes; that is a lot of distinct mutation points.
    assert!(crash_points >= 30, "expected a deep op schedule, covered {crash_points} points");
}

/// Compaction in isolation: build a stable chain once, then crash an
/// explicit `compact_store` at every op. Afterwards the store must hold
/// either the old chain or the new block — never a torn store — with all
/// days intact, and a later un-faulted compaction must succeed.
#[test]
fn crash_at_every_op_of_compaction_leaves_old_or_new_chain() {
    let challenge = challenge();
    let reference = reference_counters(&challenge);
    let boot = challenge.dataset.meta.bootstrap_days as usize;
    let split = boot + 4;
    let cfg = LifecycleConfig {
        compaction: CompactionTrigger::disabled(),
        retention: RetentionPolicy { retain_days: Some(2) },
    };

    // The chain every iteration starts from: full + segments on disk.
    let master = temp_store("compact-master");
    {
        let mut dir = StoreDir::create(&master, cfg).expect("create store dir");
        let mut engine = engine_for(&challenge);
        for day in &challenge.dataset.days[..split] {
            engine.ingest_day(DayBatch::Dns(day));
            engine.checkpoint_day_to(&mut dir).expect("daily persist");
        }
        assert!(dir.segment_count() >= 3, "chain long enough to make compaction interesting");
    }
    let acked: BTreeSet<Day> = (0..split as u32).map(Day::new).collect();

    for fault_at in 0u64.. {
        let root = temp_store("compact");
        std::fs::create_dir_all(&root).unwrap();
        for entry in std::fs::read_dir(&master).unwrap() {
            let entry = entry.unwrap();
            if entry.file_type().unwrap().is_file() {
                std::fs::copy(entry.path(), root.join(entry.file_name())).unwrap();
            }
        }

        let mut dir = StoreDir::open(&root, cfg).expect("open the copied chain");
        let entries_before = dir.entries().len();
        let injector = FaultInjector::new();
        dir.set_fault_injector(injector.clone());
        injector.arm(fault_at);
        let outcome = compact_store(&mut dir);
        let crashed = outcome.is_err();
        if let Err(e) = &outcome {
            assert!(matches!(e, StoreError::Io(_)), "fault {fault_at}: unexpected error {e}");
        }
        drop(dir);

        let context = format!("compaction fault at op {fault_at}");
        let restored = assert_no_acked_loss(&root, cfg, &acked, &reference, &context);
        drop(restored);

        // Old chain or new block, never something in between — and the
        // recovered store always accepts a clean compaction.
        let mut dir = StoreDir::open(&root, cfg).expect("reopen");
        let entries = dir.entries().len();
        assert!(
            entries == entries_before || entries == 1,
            "{context}: chain must be the old one ({entries_before} entries) or the compacted \
             one (1 entry), found {entries}"
        );
        let report = compact_store(&mut dir).expect("clean compaction after recovery");
        assert_eq!(dir.entries().len(), 1, "{context}: recovered store compacts fully");
        assert!(report.bytes_after > 0);
        std::fs::remove_dir_all(&root).unwrap();

        if !crashed {
            assert!(fault_at >= 5, "compaction has several mutation points, covered {fault_at}");
            break;
        }
    }
    std::fs::remove_dir_all(&master).unwrap();
}

/// An abandoned pending block (crash between `begin` and commit) is swept
/// to quarantine and never becomes part of the chain.
#[test]
fn abandoned_pending_blocks_are_quarantined() {
    let challenge = challenge();
    let split = (challenge.dataset.meta.bootstrap_days + 2) as usize;
    let cfg = LifecycleConfig::default();
    let root = temp_store("abandoned");

    let mut dir = StoreDir::create(&root, cfg).expect("create store dir");
    let mut engine = engine_for(&challenge);
    for day in &challenge.dataset.days[..split] {
        engine.ingest_day(DayBatch::Dns(day));
        engine.checkpoint_day_to(&mut dir).expect("daily persist");
    }
    // Begin a block and walk away mid-write — the torn .tmp stays behind.
    let mut pending = dir.begin(earlybird::store::BlockKind::DaySegment).expect("begin");
    use std::io::Write as _;
    pending.write_all(b"EBSTORE1 torn half-written segment").unwrap();
    drop(pending);
    drop(dir);

    let dir = StoreDir::open(&root, cfg).expect("reopen");
    assert_eq!(dir.quarantined().len(), 1, "the torn pending block is quarantined");
    let restored = EngineBuilder::lanl().restore_dir(&dir).expect("chain unaffected");
    assert_eq!(restored.reports().count(), split);
    std::fs::remove_dir_all(&root).unwrap();
}
