//! Quickstart: detect a beaconing C&C domain and its infection community in
//! a hand-built day of contacts.
//!
//! Run with: `cargo run --release --example quickstart`

use earlybird::core::{
    belief_propagation, BpConfig, CcDetector, DayContext, Seeds, SimScorer,
};
use earlybird::logmodel::{Day, DomainInterner, HostId, Ipv4, Timestamp};
use earlybird::pipeline::{Contact, DayIndex, DomainHistory, RareSieve};

fn main() {
    // A miniature day of traffic: two compromised workstations beacon to a
    // C&C domain every 10 minutes and touched the delivery site moments
    // after infection; an innocent host browses something unrelated.
    let folded = DomainInterner::new();
    let mut contacts = Vec::new();
    let mut push = |ts: u64, host: u32, name: &str, ip: [u8; 4]| {
        contacts.push(Contact {
            ts: Timestamp::from_secs(ts),
            host: HostId::new(host),
            domain: folded.intern(name),
            dest_ip: Some(Ipv4::new(ip[0], ip[1], ip[2], ip[3])),
            http: None,
        });
    };

    for victim in [1u32, 2] {
        let infected_at = 36_000 + victim as u64 * 45;
        push(infected_at, victim, "dropper.example-bad.com", [191, 146, 166, 40]);
        for beat in 0..30 {
            push(infected_at + 90 + beat * 600, victim, "cc.example-bad.com", [191, 146, 166, 145]);
        }
    }
    push(40_000, 7, "totally-fine.net", [8, 8, 8, 8]);

    // Index the day: everything here is "rare" (no history yet).
    contacts.sort_by_key(|c| c.ts);
    let rare = RareSieve::paper_default().extract(&contacts, &DomainHistory::new());
    let index = DayIndex::build(Day::new(0), &contacts, rare, None);
    let ctx = DayContext {
        day: Day::new(0),
        index: &index,
        folded: &folded,
        whois: None,
        whois_defaults: (0.0, 0.0),
    };

    // No-hint mode: find C&C communication, then expand by belief
    // propagation.
    let cc = CcDetector::lanl_default();
    let detections = cc.detect_all(&ctx);
    println!("C&C detections:");
    for d in &detections {
        println!(
            "  {} (period ~{}s, {} automated hosts)",
            folded.resolve(d.domain),
            d.period().unwrap_or(0),
            d.auto_hosts.len()
        );
    }

    let seeds = Seeds::from_domains_with_hosts(&ctx, detections.iter().map(|d| d.domain));
    let outcome =
        belief_propagation(&ctx, Some(&cc), &SimScorer::lanl_default(), &seeds, &BpConfig::lanl_default());

    println!("\nBelief propagation community:");
    for d in &outcome.labeled {
        println!(
            "  iter {} {:<28} score {:.2} ({:?})",
            d.iteration,
            folded.resolve(d.domain),
            d.score,
            d.reason
        );
    }
    println!(
        "\nCompromised hosts: {:?}",
        outcome.compromised_hosts.iter().map(|h| h.to_string()).collect::<Vec<_>>()
    );
}
