//! Simulation time: seconds-resolution timestamps, day indices, and timezone
//! offsets.
//!
//! The paper processes logs in daily batches ("the system is run daily"), so
//! [`Day`] is a first-class unit. Timestamps count seconds from the start of
//! the simulated observation window (day 0, 00:00 UTC); real datasets would
//! map their epoch onto this axis during normalization.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Number of seconds in a day.
pub const SECONDS_PER_DAY: u64 = 86_400;

/// A second-resolution instant on the simulation time axis (UTC).
///
/// # Example
///
/// ```
/// use earlybird_logmodel::{Day, Timestamp};
/// let t = Timestamp::from_day_secs(Day::new(2), 120);
/// assert_eq!(t.as_secs(), 2 * 86_400 + 120);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Timestamp(u64);

impl Timestamp {
    /// Creates a timestamp from raw seconds since the window origin.
    pub const fn from_secs(secs: u64) -> Self {
        Timestamp(secs)
    }

    /// Creates a timestamp from a day index and seconds within that day.
    ///
    /// # Panics
    ///
    /// Panics if `secs >= SECONDS_PER_DAY` in debug builds.
    pub fn from_day_secs(day: Day, secs: u64) -> Self {
        debug_assert!(secs < SECONDS_PER_DAY, "secs-of-day out of range: {secs}");
        Timestamp(day.index() as u64 * SECONDS_PER_DAY + secs)
    }

    /// Seconds since the window origin.
    pub const fn as_secs(self) -> u64 {
        self.0
    }

    /// The day this instant falls on.
    pub const fn day(self) -> Day {
        Day((self.0 / SECONDS_PER_DAY) as u32)
    }

    /// Seconds elapsed since the start of [`Self::day`].
    pub const fn secs_of_day(self) -> u64 {
        self.0 % SECONDS_PER_DAY
    }

    /// Absolute distance in seconds between two instants.
    pub fn abs_diff(self, other: Timestamp) -> u64 {
        self.0.abs_diff(other.0)
    }

    /// Saturating addition of a signed offset in seconds.
    pub fn offset(self, secs: i64) -> Timestamp {
        Timestamp(self.0.saturating_add_signed(secs))
    }
}

impl fmt::Debug for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Timestamp({})", self)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.secs_of_day();
        write!(f, "d{:02} {:02}:{:02}:{:02}", self.day().index(), s / 3600, (s % 3600) / 60, s % 60)
    }
}

impl Add<u64> for Timestamp {
    type Output = Timestamp;
    fn add(self, rhs: u64) -> Timestamp {
        Timestamp(self.0 + rhs)
    }
}

impl AddAssign<u64> for Timestamp {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = u64;
    /// Seconds from `rhs` to `self`.
    ///
    /// # Panics
    ///
    /// Panics if `rhs` is later than `self`.
    fn sub(self, rhs: Timestamp) -> u64 {
        self.0.checked_sub(rhs.0).expect("timestamp subtraction underflow")
    }
}

/// A day index within the observation window (day 0 = first bootstrap day).
///
/// # Example
///
/// ```
/// use earlybird_logmodel::Day;
/// let d = Day::new(30);
/// assert_eq!(d.next(), Day::new(31));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct Day(u32);

impl Day {
    /// Creates a day from its zero-based index.
    pub const fn new(index: u32) -> Self {
        Day(index)
    }

    /// Zero-based index of this day.
    pub const fn index(self) -> u32 {
        self.0
    }

    /// The following day.
    pub const fn next(self) -> Day {
        Day(self.0 + 1)
    }

    /// The timestamp at 00:00:00 of this day.
    pub const fn start(self) -> Timestamp {
        Timestamp(self.0 as u64 * SECONDS_PER_DAY)
    }

    /// Number of days from `earlier` to `self` (0 if `earlier` is later).
    pub fn days_since(self, earlier: Day) -> u32 {
        self.0.saturating_sub(earlier.0)
    }

    /// Iterator over `self, self+1, .., end-1`.
    pub fn range_to(self, end: Day) -> impl Iterator<Item = Day> {
        (self.0..end.0).map(Day)
    }
}

impl fmt::Debug for Day {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Day({})", self.0)
    }
}

impl fmt::Display for Day {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "day {}", self.0)
    }
}

impl Add<u32> for Day {
    type Output = Day;
    fn add(self, rhs: u32) -> Day {
        Day(self.0 + rhs)
    }
}

/// A timezone offset in minutes east of UTC, as carried by raw proxy records
/// collected from devices in different geographies (§IV-A of the paper).
///
/// # Example
///
/// ```
/// use earlybird_logmodel::{Timestamp, TzOffset};
/// let tz = TzOffset::from_minutes(-300); // UTC-5
/// let local = Timestamp::from_secs(10_000);
/// assert_eq!(tz.to_utc(local).as_secs(), 10_000 + 300 * 60);
/// ```
#[derive(
    Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug, Serialize, Deserialize,
)]
pub struct TzOffset(i32);

impl TzOffset {
    /// UTC itself.
    pub const UTC: TzOffset = TzOffset(0);

    /// Creates an offset from minutes east of UTC.
    ///
    /// # Panics
    ///
    /// Panics if the offset exceeds +-18 hours (the IANA bound).
    pub fn from_minutes(minutes: i32) -> Self {
        assert!(minutes.abs() <= 18 * 60, "timezone offset out of range");
        TzOffset(minutes)
    }

    /// Minutes east of UTC.
    pub const fn minutes(self) -> i32 {
        self.0
    }

    /// Converts a local timestamp carrying this offset to UTC.
    pub fn to_utc(self, local: Timestamp) -> Timestamp {
        local.offset(-(self.0 as i64) * 60)
    }

    /// Converts a UTC timestamp to local time in this offset.
    pub fn to_local(self, utc: Timestamp) -> Timestamp {
        utc.offset(self.0 as i64 * 60)
    }
}

impl fmt::Display for TzOffset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sign = if self.0 < 0 { '-' } else { '+' };
        let m = self.0.unsigned_abs();
        write!(f, "UTC{}{:02}:{:02}", sign, m / 60, m % 60)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_day_roundtrip() {
        let t = Timestamp::from_day_secs(Day::new(5), 4_000);
        assert_eq!(t.day(), Day::new(5));
        assert_eq!(t.secs_of_day(), 4_000);
    }

    #[test]
    fn timestamp_display_formats_day_and_time() {
        let t = Timestamp::from_day_secs(Day::new(3), 3_661);
        assert_eq!(t.to_string(), "d03 01:01:01");
    }

    #[test]
    fn timestamp_arithmetic() {
        let a = Timestamp::from_secs(100);
        let b = a + 20;
        assert_eq!(b - a, 20);
        assert_eq!(a.abs_diff(b), 20);
        assert_eq!(b.abs_diff(a), 20);
    }

    #[test]
    fn timestamp_offset_saturates_at_zero() {
        let a = Timestamp::from_secs(10);
        assert_eq!(a.offset(-100).as_secs(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn timestamp_subtraction_underflow_panics() {
        let _ = Timestamp::from_secs(1) - Timestamp::from_secs(2);
    }

    #[test]
    fn day_range_and_ordering() {
        let days: Vec<Day> = Day::new(2).range_to(Day::new(5)).collect();
        assert_eq!(days, vec![Day::new(2), Day::new(3), Day::new(4)]);
        assert!(Day::new(1) < Day::new(2));
        assert_eq!(Day::new(7).days_since(Day::new(3)), 4);
        assert_eq!(Day::new(3).days_since(Day::new(7)), 0);
    }

    #[test]
    fn day_start_is_midnight() {
        assert_eq!(Day::new(2).start(), Timestamp::from_secs(2 * SECONDS_PER_DAY));
    }

    #[test]
    fn tz_roundtrip() {
        let tz = TzOffset::from_minutes(330); // UTC+5:30
        let utc = Timestamp::from_secs(50_000);
        assert_eq!(tz.to_utc(tz.to_local(utc)), utc);
        assert_eq!(tz.to_string(), "UTC+05:30");
        assert_eq!(TzOffset::from_minutes(-300).to_string(), "UTC-05:00");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn tz_out_of_range_panics() {
        let _ = TzOffset::from_minutes(19 * 60);
    }
}
