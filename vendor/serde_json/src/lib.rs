//! Vendored, offline-buildable stand-in for `serde_json`: renders the shim
//! serde data model ([`serde::json::Value`]) to JSON text and parses JSON
//! text back. API surface matches what this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`].

pub use serde::json::{DeError, Value};
use std::fmt;

/// A serialization or parse error.
#[derive(Clone, Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error { message: message.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to compact JSON.
///
/// # Errors
///
/// Never fails for the shim data model; the `Result` mirrors upstream.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes `value` to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Never fails for the shim data model; the `Result` mirrors upstream.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any shim-deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::deserialize(&value)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(x) => out.push_str(&x.to_string()),
        Value::UInt(x) => out.push_str(&x.to_string()),
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..level * width {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, x: f64) {
    if x.is_nan() || x.is_infinite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Keep a trailing `.0` so floats stay floats on re-parse.
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&x.to_string());
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new("trailing characters"));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error::new("unexpected end of input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b't' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            b'"' => self.string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::new("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut pairs = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.expect(b':')?;
                    pairs.push((key, self.value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(Error::new("expected `,` or `}`")),
                    }
                }
            }
            _ => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        _ => return Err(Error::new("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode UTF-8 starting at the byte we consumed.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk =
                        self.bytes.get(start..end).ok_or_else(|| Error::new("truncated UTF-8"))?;
                    out.push_str(
                        std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() || text == "-" {
            return Err(Error::new("expected number"));
        }
        if is_float {
            text.parse::<f64>().map(Value::Float).map_err(|_| Error::new("bad float"))
        } else if text.starts_with('-') {
            text.parse::<i64>().map(Value::Int).map_err(|_| Error::new("bad integer"))
        } else {
            text.parse::<u64>().map(Value::UInt).map_err(|_| Error::new("bad integer"))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&0.4f64).unwrap(), "0.4");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"hi\"x").unwrap(), "\"hi\\\"x\"");
        let back: u64 = from_str(&to_string(&u64::MAX).unwrap()).unwrap();
        assert_eq!(back, u64::MAX);
    }

    #[test]
    fn roundtrip_collections() {
        let v = vec![(1u32, "a".to_string()), (2, "b".to_string())];
        let json = to_string_pretty(&v).unwrap();
        let back: Vec<(u32, String)> = from_str(&json).unwrap();
        assert_eq!(back, v);
        let opt: Option<u32> = from_str("null").unwrap();
        assert_eq!(opt, None);
    }

    #[test]
    fn pretty_uses_key_space() {
        let v = vec![("threshold".to_string(), 0.4f64)];
        let m: std::collections::BTreeMap<String, f64> = v.into_iter().collect();
        let json = to_string_pretty(&m).unwrap();
        assert!(json.contains('\n'));
    }
}
