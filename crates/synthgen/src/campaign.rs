//! Abstract multi-stage campaign planning, shared by both dataset
//! generators.
//!
//! A plan captures the infection pattern of §II-A: per victim, a *delivery*
//! contact, a *payload* download shortly after, then regular *C&C* beaconing
//! for the rest of the day, with any *second-stage* domains visited inside
//! the same short window — "a host visits several domains under the
//! attacker's control within a relatively short time period".

use earlybird_intel::CampaignId;
use earlybird_logmodel::{Day, HostId, Ipv4, Timestamp, SECONDS_PER_DAY};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The infection-stage role a campaign domain plays.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CampaignDomainRole {
    /// Front-end delivery site (spear-phishing link, exploit kit).
    Delivery,
    /// Second-stage payload host.
    Payload,
    /// Command-and-control server (beaconed).
    CommandAndControl,
    /// Additional attacker infrastructure visited during infection.
    SecondStage,
}

/// A campaign domain with its serving addresses.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedDomain {
    /// Folded domain name.
    pub name: String,
    /// Stage role.
    pub role: CampaignDomainRole,
    /// Serving IPs (campaign domains cluster in subnets, §IV-D).
    pub ips: Vec<Ipv4>,
}

/// One planned malicious contact.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannedContact {
    /// UTC time of the contact.
    pub ts: Timestamp,
    /// The victim making the contact.
    pub host: HostId,
    /// Index into [`CampaignPlan::domains`].
    pub domain_idx: usize,
    /// Whether this contact belongs to the automated beacon train.
    pub beacon: bool,
}

/// A fully planned campaign: domains, victims, and every malicious contact.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignPlan {
    /// Campaign identifier.
    pub id: CampaignId,
    /// The day the infection runs.
    pub day: Day,
    /// Campaign domains; index 0 is always the C&C domain.
    pub domains: Vec<PlannedDomain>,
    /// Compromised hosts.
    pub victims: Vec<HostId>,
    /// All malicious contacts, sorted by time.
    pub contacts: Vec<PlannedContact>,
    /// Beacon period in seconds.
    pub beacon_period: u64,
}

/// Tunable shape of a campaign.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CampaignShape {
    /// Number of non-C&C domains (delivery / payload / second stage).
    pub extra_domains: usize,
    /// Beacon period in seconds.
    pub beacon_period: u64,
    /// Maximum absolute jitter added to each beacon interval, in seconds
    /// (keep below the detector's bin width to model the paper's "small
    /// variation between connections").
    pub beacon_jitter: u64,
    /// Window (seconds) within which a victim visits the non-C&C domains
    /// after first infection (Fig. 3: malicious-to-malicious gaps are short).
    pub burst_window: u64,
    /// Earliest infection second-of-day.
    pub start_earliest: u64,
    /// Latest infection second-of-day.
    pub start_latest: u64,
}

impl Default for CampaignShape {
    fn default() -> Self {
        CampaignShape {
            extra_domains: 2,
            beacon_period: 600,
            beacon_jitter: 3,
            burst_window: 120,
            start_earliest: 9 * 3_600,
            start_latest: 13 * 3_600,
        }
    }
}

impl CampaignPlan {
    /// Plans a campaign on `day` for the given victims.
    ///
    /// Domain index 0 is the C&C domain; indices `1..` are delivery /
    /// payload / second-stage domains. The delivery and payload domains
    /// share a /24 subnet and the remaining infrastructure shares their /16
    /// (the locality the IP-proximity features key on).
    ///
    /// # Panics
    ///
    /// Panics if `victims` is empty or the shape's start window is invalid.
    pub fn plan(
        rng: &mut impl Rng,
        id: CampaignId,
        day: Day,
        victims: Vec<HostId>,
        domain_names: Vec<String>,
        shape: CampaignShape,
    ) -> CampaignPlan {
        assert!(!victims.is_empty(), "campaign needs at least one victim");
        assert!(shape.start_earliest < shape.start_latest, "invalid start window");
        assert_eq!(
            domain_names.len(),
            shape.extra_domains + 1,
            "one name per domain (C&C + extras)"
        );

        // Attacker infrastructure: the C&C anchors a /16; delivery and
        // payload share a /24 that lies inside that /16 only sometimes, and
        // second-stage domains scatter — the paper measured *partial*
        // subnet locality (§V-B), not a single shared prefix.
        let net_a = rng.gen_range(60u32..220);
        let net_b = rng.gen_range(1u32..250);
        let mk_ip = |c: u32, d: u32| Ipv4::new(net_a as u8, net_b as u8, c as u8, d as u8);
        let rand_ip = |rng: &mut dyn rand::RngCore| {
            Ipv4::new(
                rng.gen_range(60u32..220) as u8,
                rng.gen_range(1u32..250) as u8,
                rng.gen_range(1u32..250) as u8,
                rng.gen_range(1u32..250) as u8,
            )
        };
        let delivery24_in16 = rng.gen_bool(0.4);
        let delivery24 = if delivery24_in16 {
            mk_ip(rng.gen_range(1..250), 0).subnet24()
        } else {
            rand_ip(rng).subnet24()
        };
        let in_delivery24 = |rng: &mut dyn rand::RngCore, s: earlybird_logmodel::Subnet24| {
            let base = s.to_string();
            let prefix: Vec<u8> = base
                .trim_end_matches("/24")
                .split('.')
                .take(3)
                .map(|p| p.parse().expect("subnet octet"))
                .collect();
            Ipv4::new(prefix[0], prefix[1], prefix[2], rng.gen_range(1u32..250) as u8)
        };

        let mut domains = Vec::with_capacity(domain_names.len());
        for (i, name) in domain_names.into_iter().enumerate() {
            let role = match i {
                0 => CampaignDomainRole::CommandAndControl,
                1 => CampaignDomainRole::Delivery,
                2 => CampaignDomainRole::Payload,
                _ => CampaignDomainRole::SecondStage,
            };
            let ip = match role {
                // Delivery and payload always share their /24.
                CampaignDomainRole::Delivery | CampaignDomainRole::Payload => {
                    in_delivery24(rng, delivery24)
                }
                // C&C anchors the campaign /16.
                CampaignDomainRole::CommandAndControl => {
                    mk_ip(rng.gen_range(1..250), rng.gen_range(1..250))
                }
                // Second-stage infrastructure shares the C&C /16 only
                // sometimes.
                CampaignDomainRole::SecondStage => {
                    if rng.gen_bool(0.3) {
                        mk_ip(rng.gen_range(1..250), rng.gen_range(1..250))
                    } else {
                        rand_ip(rng)
                    }
                }
            };
            domains.push(PlannedDomain { name, role, ips: vec![ip] });
        }

        let mut contacts = Vec::new();
        let day_end = SECONDS_PER_DAY - 1;
        for &victim in &victims {
            let t0 = rng.gen_range(shape.start_earliest..shape.start_latest);
            // Delivery, payload, and second-stage visits inside the burst
            // window, in stage order.
            let mut cursor = t0;
            for idx in 1..domains.len() {
                cursor +=
                    rng.gen_range(5..=shape.burst_window.max(6) / domains.len().max(1) as u64);
                contacts.push(PlannedContact {
                    ts: Timestamp::from_day_secs(day, cursor.min(day_end)),
                    host: victim,
                    domain_idx: idx,
                    beacon: false,
                });
            }
            // First C&C contact shortly after foothold, then the beacon
            // train with bounded jitter until end of day.
            let mut t = cursor + rng.gen_range(10..=30);
            while t < SECONDS_PER_DAY {
                contacts.push(PlannedContact {
                    ts: Timestamp::from_day_secs(day, t),
                    host: victim,
                    domain_idx: 0,
                    beacon: true,
                });
                let jitter = if shape.beacon_jitter == 0 {
                    0
                } else {
                    rng.gen_range(0..=2 * shape.beacon_jitter) as i64 - shape.beacon_jitter as i64
                };
                t = (t as i64 + shape.beacon_period as i64 + jitter).max(t as i64 + 1) as u64;
            }
        }
        contacts.sort_by_key(|c| c.ts);

        CampaignPlan { id, day, domains, victims, contacts, beacon_period: shape.beacon_period }
    }

    /// The C&C domain's name.
    pub fn cc_domain(&self) -> &str {
        &self.domains[0].name
    }

    /// All domain names.
    pub fn domain_names(&self) -> impl Iterator<Item = &str> {
        self.domains.iter().map(|d| d.name.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::derive_rng;

    fn plan_one(seed: u64) -> CampaignPlan {
        let mut rng = derive_rng(seed, &[9]);
        CampaignPlan::plan(
            &mut rng,
            CampaignId(1),
            Day::new(30),
            vec![HostId::new(5), HostId::new(9)],
            vec!["cc.c3".into(), "deliver.c3".into(), "payload.c3".into()],
            CampaignShape::default(),
        )
    }

    #[test]
    fn first_domain_is_cc() {
        let p = plan_one(1);
        assert_eq!(p.domains[0].role, CampaignDomainRole::CommandAndControl);
        assert_eq!(p.cc_domain(), "cc.c3");
        assert_eq!(p.domains[1].role, CampaignDomainRole::Delivery);
        assert_eq!(p.domains[2].role, CampaignDomainRole::Payload);
    }

    #[test]
    fn delivery_and_payload_share_slash24() {
        let p = plan_one(2);
        let d = p.domains[1].ips[0];
        let pay = p.domains[2].ips[0];
        assert_eq!(d.subnet24(), pay.subnet24(), "delivery and payload share a /24");
    }

    #[test]
    fn every_victim_beacons_regularly() {
        let p = plan_one(3);
        for &victim in &p.victims {
            let beacons: Vec<Timestamp> =
                p.contacts.iter().filter(|c| c.host == victim && c.beacon).map(|c| c.ts).collect();
            assert!(beacons.len() > 20, "a day of 600 s beacons: {}", beacons.len());
            for w in beacons.windows(2) {
                let gap = w[1] - w[0];
                assert!(gap.abs_diff(600) <= 3, "beacon gap {gap} outside jitter bound");
            }
        }
    }

    #[test]
    fn burst_contacts_precede_beacons_within_window() {
        let p = plan_one(4);
        for &victim in &p.victims {
            let mut stage: Vec<&PlannedContact> =
                p.contacts.iter().filter(|c| c.host == victim && !c.beacon).collect();
            stage.sort_by_key(|c| c.ts);
            let first = stage.first().unwrap().ts;
            let last = stage.last().unwrap().ts;
            assert!(last - first <= 120, "burst confined to the window");
            let first_beacon = p
                .contacts
                .iter()
                .filter(|c| c.host == victim && c.beacon)
                .map(|c| c.ts)
                .min()
                .unwrap();
            assert!(first_beacon > last, "C&C follows the delivery burst");
        }
    }

    #[test]
    fn contacts_are_time_sorted_and_on_day() {
        let p = plan_one(5);
        assert!(p.contacts.windows(2).all(|w| w[0].ts <= w[1].ts));
        assert!(p.contacts.iter().all(|c| c.ts.day() == Day::new(30)));
    }

    #[test]
    fn planning_is_deterministic() {
        assert_eq!(plan_one(6), plan_one(6));
    }

    #[test]
    #[should_panic(expected = "at least one victim")]
    fn empty_victims_rejected() {
        let mut rng = derive_rng(0, &[0]);
        let _ = CampaignPlan::plan(
            &mut rng,
            CampaignId(0),
            Day::new(0),
            vec![],
            vec!["cc.c3".into()],
            CampaignShape { extra_domains: 0, ..CampaignShape::default() },
        );
    }
}
