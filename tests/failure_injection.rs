//! Failure injection: the pipeline and detectors must degrade gracefully
//! when the environment misbehaves — missing DHCP leases, unparseable
//! WHOIS, empty days, and degenerate training populations.

use earlybird::core::{
    belief_propagation, BpConfig, CcDetector, DailyPipeline, PipelineConfig, Seeds, SimScorer,
};
use earlybird::intel::WhoisRegistry;
use earlybird::logmodel::{Day, DhcpLog, DnsDayLog, DomainInterner, HostId, ProxyDayLog};
use earlybird::synthgen::ac::{AcConfig, AcGenerator};
use earlybird::synthgen::lanl::{LanlConfig, LanlGenerator};
use std::sync::Arc;

#[test]
fn empty_days_produce_empty_products() {
    let raw = Arc::new(DomainInterner::new());
    let mut pipeline = DailyPipeline::new(Arc::clone(&raw), PipelineConfig::lanl());
    let meta = Default::default();
    let product = pipeline.process_dns_day(&DnsDayLog { day: Day::new(0), queries: vec![] }, &meta);
    assert_eq!(product.index.rare_count(), 0);
    assert_eq!(product.dns_counts.unwrap().records_all, 0);

    // Belief propagation on an empty day finds nothing and terminates.
    let ctx = product.context(None, (0.0, 0.0));
    let out = belief_propagation(
        &ctx,
        Some(&CcDetector::lanl_default()),
        &SimScorer::lanl_default(),
        &Seeds::from_hosts([HostId::new(1)]),
        &BpConfig::lanl_default(),
    );
    assert!(out.labeled.is_empty());
}

#[test]
fn missing_dhcp_leases_drop_records_without_panicking() {
    let world = AcGenerator::new(AcConfig::tiny()).generate();
    let meta = &world.dataset.meta;
    let mut pipeline =
        DailyPipeline::new(Arc::clone(&world.dataset.domains), PipelineConfig::enterprise());

    // Feed a day through an *empty* lease log: every record is unresolvable.
    let empty_dhcp = DhcpLog::new();
    let day = world.dataset.days[35].clone();
    let product = pipeline.process_proxy_day(&day, &empty_dhcp, meta);
    let norm = product.norm_counts.unwrap();
    assert_eq!(norm.output, 0, "nothing resolvable");
    assert_eq!(norm.dropped_unresolvable + norm.dropped_ip_literal, norm.input);
    assert_eq!(product.index.rare_count(), 0);
}

#[test]
fn partial_dhcp_outage_keeps_the_rest_of_the_day() {
    let world = AcGenerator::new(AcConfig::tiny()).generate();
    let meta = &world.dataset.meta;

    // A lease log covering only the first half of the day.
    let mut partial = DhcpLog::new();
    let day = world.dataset.days[35].clone();
    let day_start = day.day.start();
    for h in 0..meta.n_hosts {
        let slot = (h as u64 + day.day.index() as u64 * 17) % meta.n_hosts as u64;
        let ip = earlybird::logmodel::Ipv4::new(
            10,
            8 + (slot >> 8) as u8,
            (slot & 0xFF) as u8,
            1 + (h % 250) as u8,
        );
        partial.add(earlybird::logmodel::DhcpLease {
            ip,
            host: HostId::new(h),
            start: day_start,
            end: day_start + 43_200,
        });
    }
    let mut pipeline =
        DailyPipeline::new(Arc::clone(&world.dataset.domains), PipelineConfig::enterprise());
    let product = pipeline.process_proxy_day(&day, &partial, meta);
    let norm = product.norm_counts.unwrap();
    assert!(norm.output > 0, "morning records survive");
    assert!(norm.dropped_unresolvable > 0, "afternoon records dropped");
}

#[test]
fn whois_outage_falls_back_to_defaults_everywhere() {
    // An entirely unparseable registry must not change *which* domains are
    // automated, only their age/validity features.
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let meta = &challenge.dataset.meta;
    let mut pipeline =
        DailyPipeline::new(Arc::clone(&challenge.dataset.domains), PipelineConfig::lanl());
    let campaign = &challenge.campaigns[0];
    for day_log in &challenge.dataset.days {
        if day_log.day < campaign.day {
            pipeline.bootstrap_dns_day(day_log, meta);
        }
    }
    let product = pipeline.process_dns_day(challenge.dataset.day(campaign.day).unwrap(), meta);

    let mut broken = WhoisRegistry::new();
    for name in campaign.answer_domains() {
        broken.register_unparseable(name);
    }
    let ctx_broken = product.context(Some(&broken), (321.0, 123.0));
    let ctx_missing = product.context(None, (321.0, 123.0));
    for name in campaign.answer_domains() {
        let sym = pipeline.folded_interner().get(name).unwrap();
        assert_eq!(ctx_broken.whois_features(sym), (321.0, 123.0));
        assert_eq!(ctx_missing.whois_features(sym), (321.0, 123.0));
    }
}

#[test]
fn seeds_absent_from_the_day_are_harmless() {
    // IOC seeds for domains nobody contacted today must not crash BP or
    // inflate results.
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let meta = &challenge.dataset.meta;
    let mut pipeline =
        DailyPipeline::new(Arc::clone(&challenge.dataset.domains), PipelineConfig::lanl());
    let product = pipeline.process_dns_day(&challenge.dataset.days[0], meta);
    let ctx = product.context(None, (0.0, 0.0));

    let ghost = pipeline.intern_seed("never-contacted.example.com");
    let seeds = Seeds::from_domains_with_hosts(&ctx, [ghost]);
    assert!(seeds.hosts.is_empty(), "no hosts contact a ghost seed");
    let out = belief_propagation(
        &ctx,
        Some(&CcDetector::lanl_default()),
        &SimScorer::lanl_default(),
        &seeds,
        &BpConfig::lanl_default(),
    );
    assert_eq!(out.detected().count(), 0);
    assert_eq!(out.labeled.len(), 1, "only the seed itself is in the labeled list");
}

#[test]
fn training_on_single_class_population_degrades_to_base_rate() {
    use earlybird::core::{train_cc_model, CcSample};
    use earlybird::features::CcFeatures;
    // All-positive labels with constant features: no panic; the ridge
    // fallback yields the only sensible model — predict the base rate
    // (1.0) regardless of input.
    let samples: Vec<CcSample> = (0..30)
        .map(|_| CcSample { features: CcFeatures::default(), reported: true })
        .collect();
    let (model, scaler) = train_cc_model(&samples, 0.4).expect("degenerate fit still resolves");
    let probe = CcFeatures { no_hosts: 5.0, rare_ua: 1.0, ..CcFeatures::default() };
    let score = model.score(&scaler.transform(&probe.to_row()));
    assert!((score - 1.0).abs() < 1e-6, "base-rate prediction, got {score}");

    // Too few samples is still a typed error, never a panic.
    let tiny = &samples[..3];
    assert!(train_cc_model(tiny, 0.4).is_err());
}

#[test]
fn hint_host_with_no_rare_domains_terminates_immediately() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let meta = &challenge.dataset.meta;
    let mut pipeline =
        DailyPipeline::new(Arc::clone(&challenge.dataset.domains), PipelineConfig::lanl());
    // Bootstrap everything so very little is rare, then hint a server host
    // (filtered out of the index entirely).
    for day_log in &challenge.dataset.days[..10] {
        pipeline.bootstrap_dns_day(day_log, meta);
    }
    let product = pipeline.process_dns_day(&challenge.dataset.days[10], meta);
    let ctx = product.context(None, (0.0, 0.0));
    let out = belief_propagation(
        &ctx,
        Some(&CcDetector::lanl_default()),
        &SimScorer::lanl_default(),
        &Seeds::from_hosts([HostId::new(0)]), // host 0 is a server
        &BpConfig::lanl_default(),
    );
    assert!(out.labeled.is_empty());
    assert_eq!(out.compromised_hosts.len(), 1, "the seed host only");
}

#[test]
fn replayed_proxy_day_is_idempotent_for_histories() {
    let world = AcGenerator::new(AcConfig::tiny()).generate();
    let meta = &world.dataset.meta;
    let mut pipeline =
        DailyPipeline::new(Arc::clone(&world.dataset.domains), PipelineConfig::enterprise());
    let day = ProxyDayLog { day: Day::new(0), records: world.dataset.days[0].records.clone() };
    pipeline.bootstrap_proxy_day(&day, &world.dataset.dhcp, meta);
    let len_once = pipeline.history().len();
    pipeline.bootstrap_proxy_day(&day, &world.dataset.dhcp, meta);
    assert_eq!(pipeline.history().len(), len_once, "same domains, same history");
}
