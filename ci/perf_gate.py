#!/usr/bin/env python3
"""Perf regression gate: compare a fresh perf_smoke reading to the baseline.

Usage: python3 ci/perf_gate.py <fresh.json> [baseline.json]

The baseline defaults to BASELINE below (overridable with the
PERF_BASELINE environment variable), which points at the most recent
checked-in reading — bumping it after a perf PR is a one-line change. The gate fails (exit 1) when any *gated* throughput metric in
the fresh reading falls more than TOLERANCE below the baseline, when
the fresh obs_overhead_pct (the ingest cost of an enabled metrics
registry vs a disabled one) exceeds OBS_OVERHEAD_MAX_PCT, or when the
always-on checkpoint contract fails: checkpoint_ingest_ratio (ingest
throughput with background checkpoints committing underneath, as a
fraction of a paired idle arm) below CHECKPOINT_INGEST_RATIO_MIN, or
checkpoint_stall_ms (the longest Persistence::commit freeze stall the
ingest thread saw) above CHECKPOINT_STALL_MAX_MS.

Tolerance rationale
-------------------
The gate exists to catch order-of-magnitude regressions (an accidental
debug build, a quadratic loop in the hot path, a lost fast path), not to
police single-digit-percent noise:

* perf_smoke runs on shared CI runners whose effective CPU budget varies
  run to run; repeated local readings of an unchanged binary scatter by
  roughly +/-15% on most metrics.
* The checked-in baseline and the CI reading come from different machines,
  which shifts every metric by a constant-ish hardware factor.

A 30% one-sided tolerance (fresh >= 0.70 * baseline) sits well above that
noise floor while still tripping on any real hot-path regression, which in
this codebase has always shown up as 2x or worse.

Gated vs informational metrics
------------------------------
Gated metrics are single-process, CPU-bound loops whose readings are
stable enough for a threshold. The serve-daemon metrics are reported but
NOT gated: the loopback service round-trips through OS sockets and thread
scheduling, and its readings scatter by 4x between identical runs on a
loaded box (see ci/BENCH_7.json history). serve_query_p50_ms is likewise
scheduler-dominated, and lower-is-better, so it is excluded too.

obs_overhead_pct is gated *absolutely* rather than against the baseline:
it is a same-machine, same-run A/B difference (alternating arms, per-arm
minimum), so the cross-machine hardware factor cancels and a tight bound
is meaningful where a ratio-to-baseline would not be. The 3% ceiling is
the observability tentpole's contract: metrics on the parse hot path must
be effectively free.

checkpoint_ingest_ratio is gated absolutely for the same reason: it is a
paired same-loop A/B inside one perf_smoke run. The 0.70 floor is the
always-on tentpole's contract (ingest keeps >= 70% of its idle rate while
checkpoints commit in the background); it holds even on a single-core
runner, where the background worker steals real ingest cycles, and is
comfortably exceeded wherever a second core can absorb the encode.
checkpoint_stall_ms bounds the freeze critical section itself; measured
stalls sit near 1ms, and the 25ms ceiling only trips if freezing stops
being O(day) (e.g. someone reintroduces a full-table clone).

The sharded ingest arm has its own within-file contract: on a smoke run
with at least SHARDED_MIN_CORES cores, sharded_ingest_rec_s (a 4-shard
ShardedEngine over the same world) must reach SHARDED_SPEEDUP_MIN times
ingest_records_per_sec from the same report — partitioned parallel
reduction is the point of the sharding tier, and both numbers come from
one run on one machine so the ratio is noise-resistant. On a runner with
fewer cores the parallel shards cannot beat one engine by construction,
so the ratio is printed as informational (the report's cpu_cores field
says which regime the reading came from). shard_merge_ms is always
informational: it is lower-is-better and small compared to reduction.

Schema changes: a gated metric missing from the *fresh* reading is a hard
failure — it means perf_smoke silently stopped measuring something the
gate promises to watch. A metric missing only from the *baseline* is
reported and skipped, so adding a metric to perf_smoke does not require
updating the baseline and the gate in lockstep (the new metric simply
goes ungated until the baseline is refreshed).
"""

import json
import os
import sys

# Most recent checked-in perf_smoke reading; the default comparison base.
BASELINE = os.environ.get("PERF_BASELINE", "ci/BENCH_10.json")

TOLERANCE = 0.30

# Absolute ceiling on the instrumentation overhead reading (percent).
OBS_OVERHEAD_MAX_PCT = 3.0

# Absolute floor on ingest-under-checkpoint throughput vs the paired idle
# arm, and absolute ceiling on the worst freeze stall (milliseconds).
CHECKPOINT_INGEST_RATIO_MIN = 0.70
CHECKPOINT_STALL_MAX_MS = 25.0

# Within-file floor on the sharded-vs-single ingest speedup, applied only
# when the smoke ran with at least SHARDED_MIN_CORES cores (see docstring).
SHARDED_SPEEDUP_MIN = 1.5
SHARDED_MIN_CORES = 4

# Higher-is-better metrics stable enough to gate (see module docstring).
GATED = [
    "ingest_records_per_sec",
    "parse_lines_per_sec",
    "parse_mb_per_sec",
    "intern_hits_per_sec",
    "checkpoint_mb_per_sec",
    "restore_mb_per_sec",
    "ingest_while_checkpoint_rec_s",
    "sharded_ingest_rec_s",
    "compaction_mb_per_sec",
    "backend_put_mb_s",
]

# Reported for the trajectory, never gated (noise-dominated; see docstring).
INFORMATIONAL = [
    "shard_merge_ms",
    "serve_ingest_rec_s",
    "serve_query_p50_ms",
]


def main(argv):
    if len(argv) < 2 or len(argv) > 3:
        print(__doc__)
        return 2
    fresh_path = argv[1]
    base_path = argv[2] if len(argv) == 3 else BASELINE
    with open(fresh_path) as f:
        fresh = json.load(f)
    with open(base_path) as f:
        base = json.load(f)

    print(f"perf gate: {fresh_path} vs baseline {base_path} "
          f"(fail below {1 - TOLERANCE:.2f}x)")
    failures = []
    for key in GATED:
        if key not in fresh:
            print(f"  FAIL {key:28s} MISSING from fresh reading "
                  f"{fresh_path} — perf_smoke stopped measuring it")
            failures.append(key)
            continue
        if key not in base:
            print(f"  SKIP {key:28s} absent from baseline "
                  f"(ungated until {base_path} is refreshed)")
            continue
        ratio = fresh[key] / base[key]
        verdict = "ok" if ratio >= 1 - TOLERANCE else "FAIL"
        print(f"  {verdict:4s} {key:28s} {fresh[key]:>14,.1f} "
              f"vs {base[key]:>14,.1f}  ({ratio:.2f}x)")
        if verdict == "FAIL":
            failures.append(key)
    for key in INFORMATIONAL:
        if key in base and key in fresh:
            print(f"  info {key:28s} {fresh[key]:>14,.3f} "
                  f"vs {base[key]:>14,.3f}  (not gated)")

    # Absolute gate on the fresh overhead reading only (see docstring).
    if "obs_overhead_pct" in fresh:
        overhead = fresh["obs_overhead_pct"]
        verdict = "ok" if overhead <= OBS_OVERHEAD_MAX_PCT else "FAIL"
        print(f"  {verdict:4s} {'obs_overhead_pct':28s} {overhead:>14,.2f} "
              f"(absolute ceiling {OBS_OVERHEAD_MAX_PCT:.1f})")
        if verdict == "FAIL":
            failures.append("obs_overhead_pct")
    else:
        print(f"  SKIP {'obs_overhead_pct':28s} absent from fresh reading")

    # Always-on contract: both readings are same-run A/Bs, gated absolutely.
    if "checkpoint_ingest_ratio" in fresh:
        ratio = fresh["checkpoint_ingest_ratio"]
        verdict = "ok" if ratio >= CHECKPOINT_INGEST_RATIO_MIN else "FAIL"
        print(f"  {verdict:4s} {'checkpoint_ingest_ratio':28s} {ratio:>14,.3f} "
              f"(absolute floor {CHECKPOINT_INGEST_RATIO_MIN:.2f})")
        if verdict == "FAIL":
            failures.append("checkpoint_ingest_ratio")
    else:
        print(f"  SKIP {'checkpoint_ingest_ratio':28s} absent from fresh reading")
    if "checkpoint_stall_ms" in fresh:
        stall = fresh["checkpoint_stall_ms"]
        verdict = "ok" if stall <= CHECKPOINT_STALL_MAX_MS else "FAIL"
        print(f"  {verdict:4s} {'checkpoint_stall_ms':28s} {stall:>14,.3f} "
              f"(absolute ceiling {CHECKPOINT_STALL_MAX_MS:.1f})")
        if verdict == "FAIL":
            failures.append("checkpoint_stall_ms")
    else:
        print(f"  SKIP {'checkpoint_stall_ms':28s} absent from fresh reading")

    # Sharded speedup contract: within-file ratio, enforced only on a
    # multi-core smoke (see docstring).
    if "sharded_ingest_rec_s" in fresh and "ingest_records_per_sec" in fresh:
        speedup = fresh["sharded_ingest_rec_s"] / fresh["ingest_records_per_sec"]
        cores = fresh.get("cpu_cores", 0)
        if cores >= SHARDED_MIN_CORES:
            verdict = "ok" if speedup >= SHARDED_SPEEDUP_MIN else "FAIL"
            print(f"  {verdict:4s} {'sharded_speedup':28s} {speedup:>14,.2f}x "
                  f"(floor {SHARDED_SPEEDUP_MIN:.1f}x on {cores} cores)")
            if verdict == "FAIL":
                failures.append("sharded_speedup")
        else:
            print(f"  info {'sharded_speedup':28s} {speedup:>14,.2f}x "
                  f"(not gated: {cores} core(s) < {SHARDED_MIN_CORES})")

    if failures:
        print(f"perf gate FAILED: {', '.join(failures)} fell outside "
              f"the gate bounds")
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
