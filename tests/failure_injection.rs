//! Failure injection: the engine must degrade gracefully when the
//! environment misbehaves — missing DHCP leases, unparseable WHOIS, empty
//! days, and degenerate training populations.

use earlybird::engine::{DayBatch, EngineBuilder, Investigation};
use earlybird::intel::WhoisRegistry;
use earlybird::logmodel::{Day, DhcpLog, DnsDayLog, DomainInterner, HostId, ProxyDayLog};
use earlybird::synthgen::ac::{AcConfig, AcGenerator};
use earlybird::synthgen::lanl::{LanlConfig, LanlGenerator};
use std::sync::Arc;

#[test]
fn empty_days_produce_empty_products() {
    let raw = Arc::new(DomainInterner::new());
    let mut engine = EngineBuilder::lanl()
        .bootstrap_days(0)
        .build(Arc::clone(&raw), Default::default())
        .expect("valid config");
    let report = engine.ingest_day(DayBatch::Dns(&DnsDayLog { day: Day::new(0), queries: vec![] }));
    assert_eq!(report.stages.rare_destinations, 0);
    assert_eq!(report.dns_counts.unwrap().records_all, 0);

    // Belief propagation on an empty day finds nothing and terminates.
    let out = engine
        .investigate(Day::new(0), Investigation::from_hint_hosts([HostId::new(1)]))
        .expect("day retained")
        .outcome;
    assert!(out.labeled.is_empty());
}

#[test]
fn missing_dhcp_leases_drop_records_without_panicking() {
    let world = AcGenerator::new(AcConfig::tiny()).generate();
    let mut engine = EngineBuilder::enterprise()
        .build(Arc::clone(&world.dataset.domains), world.dataset.meta.clone())
        .expect("valid config");

    // Feed a day through an *empty* lease log: every record is unresolvable.
    let empty_dhcp = DhcpLog::new();
    let day = world.dataset.days[35].clone();
    let report = engine.ingest_day(DayBatch::Proxy { day: &day, dhcp: &empty_dhcp });
    assert!(!report.bootstrap, "day 35 is an operation day");
    let norm = report.norm_counts.unwrap();
    assert_eq!(norm.output, 0, "nothing resolvable");
    assert_eq!(norm.dropped_unresolvable + norm.dropped_ip_literal, norm.input);
    assert_eq!(report.stages.rare_destinations, 0);
}

#[test]
fn partial_dhcp_outage_keeps_the_rest_of_the_day() {
    let world = AcGenerator::new(AcConfig::tiny()).generate();
    let meta = &world.dataset.meta;

    // A lease log covering only the first half of the day.
    let mut partial = DhcpLog::new();
    let day = world.dataset.days[35].clone();
    let day_start = day.day.start();
    for h in 0..meta.n_hosts {
        let slot = (h as u64 + day.day.index() as u64 * 17) % meta.n_hosts as u64;
        let ip = earlybird::logmodel::Ipv4::new(
            10,
            8 + (slot >> 8) as u8,
            (slot & 0xFF) as u8,
            1 + (h % 250) as u8,
        );
        partial.add(earlybird::logmodel::DhcpLease {
            ip,
            host: HostId::new(h),
            start: day_start,
            end: day_start + 43_200,
        });
    }
    let mut engine = EngineBuilder::enterprise()
        .build(Arc::clone(&world.dataset.domains), world.dataset.meta.clone())
        .expect("valid config");
    let report = engine.ingest_day(DayBatch::Proxy { day: &day, dhcp: &partial });
    let norm = report.norm_counts.unwrap();
    assert!(norm.output > 0, "morning records survive");
    assert!(norm.dropped_unresolvable > 0, "afternoon records dropped");
}

#[test]
fn whois_outage_falls_back_to_defaults_everywhere() {
    // An entirely unparseable registry must not change *which* domains are
    // automated, only their age/validity features.
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let campaign = &challenge.campaigns[0];

    let mut broken = WhoisRegistry::new();
    for name in campaign.answer_domains() {
        broken.register_unparseable(name);
    }

    let mut with_broken = EngineBuilder::lanl()
        .whois(broken)
        .whois_defaults((321.0, 123.0))
        .bootstrap_days(campaign.day.index())
        .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
        .expect("valid config");
    let mut without = EngineBuilder::lanl()
        .whois_defaults((321.0, 123.0))
        .bootstrap_days(campaign.day.index())
        .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
        .expect("valid config");
    for day_log in &challenge.dataset.days {
        if day_log.day <= campaign.day {
            with_broken.ingest_day(DayBatch::Dns(day_log));
            without.ingest_day(DayBatch::Dns(day_log));
        }
    }

    let ctx_broken = with_broken.context(campaign.day).expect("campaign day retained");
    let ctx_missing = without.context(campaign.day).expect("campaign day retained");
    for name in campaign.answer_domains() {
        let sym = with_broken.folded().get(name).unwrap();
        assert_eq!(ctx_broken.whois_features(sym), (321.0, 123.0));
        let sym = without.folded().get(name).unwrap();
        assert_eq!(ctx_missing.whois_features(sym), (321.0, 123.0));
    }
}

#[test]
fn seeds_absent_from_the_day_are_harmless() {
    // IOC seeds for domains nobody contacted today must not crash BP or
    // inflate results.
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let mut engine = EngineBuilder::lanl()
        .bootstrap_days(0)
        .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
        .expect("valid config");
    engine.ingest_day(DayBatch::Dns(&challenge.dataset.days[0]));

    let ghost = engine.intern_domain("never-contacted.example.com");
    let report = engine
        .investigate(Day::new(0), Investigation::from_seed_domains([ghost]).count_seeds(true))
        .expect("day retained");
    let out = &report.outcome;
    assert!(out.compromised_hosts.is_empty(), "no hosts contact a ghost seed");
    assert_eq!(out.detected().count(), 0);
    assert_eq!(out.labeled.len(), 1, "only the seed itself is in the labeled list");
}

#[test]
fn training_on_single_class_population_degrades_to_base_rate() {
    use earlybird::core::{train_cc_model, CcSample};
    use earlybird::features::CcFeatures;
    // All-positive labels with constant features: no panic; the ridge
    // fallback yields the only sensible model — predict the base rate
    // (1.0) regardless of input.
    let samples: Vec<CcSample> =
        (0..30).map(|_| CcSample { features: CcFeatures::default(), reported: true }).collect();
    let (model, scaler) = train_cc_model(&samples, 0.4).expect("degenerate fit still resolves");
    let probe = CcFeatures { no_hosts: 5.0, rare_ua: 1.0, ..CcFeatures::default() };
    let score = model.score(&scaler.transform(&probe.to_row()));
    assert!((score - 1.0).abs() < 1e-6, "base-rate prediction, got {score}");

    // Too few samples is still a typed error, never a panic.
    let tiny = &samples[..3];
    assert!(train_cc_model(tiny, 0.4).is_err());
}

#[test]
fn hint_host_with_no_rare_domains_terminates_immediately() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    // Bootstrap everything so very little is rare, then hint a server host
    // (filtered out of the index entirely).
    let mut engine = EngineBuilder::lanl()
        .bootstrap_days(10)
        .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
        .expect("valid config");
    for day_log in &challenge.dataset.days[..=10] {
        engine.ingest_day(DayBatch::Dns(day_log));
    }
    let out = engine
        .investigate(
            Day::new(10),
            Investigation::from_hint_hosts([HostId::new(0)]), // host 0 is a server
        )
        .expect("day retained")
        .outcome;
    assert!(out.labeled.is_empty());
    assert_eq!(out.compromised_hosts.len(), 1, "the seed host only");
}

#[test]
fn replayed_proxy_day_is_idempotent_for_histories() {
    let world = AcGenerator::new(AcConfig::tiny()).generate();
    let mut engine = EngineBuilder::enterprise()
        .build(Arc::clone(&world.dataset.domains), world.dataset.meta.clone())
        .expect("valid config");
    let day = ProxyDayLog { day: Day::new(0), records: world.dataset.days[0].records.clone() };
    let first = engine.ingest_day(DayBatch::Proxy { day: &day, dhcp: &world.dataset.dhcp });
    let len_once = engine.history().len();
    let replay = engine.ingest_day(DayBatch::Proxy { day: &day, dhcp: &world.dataset.dhcp });
    assert!(!first.duplicate);
    assert!(replay.duplicate, "re-fed day is a flagged no-op");
    assert_eq!(engine.history().len(), len_once, "same domains, same history");
}
