//! Manifest-driven snapshot lifecycle: bounded chains, atomic commits,
//! compaction, and retention GC — over any [`ObjectStore`] backend.
//!
//! The raw block layer ([`crate::frame`]) writes an append-only stream —
//! one full snapshot plus one segment per day — which is exactly wrong for
//! a service that runs for months: restore cost grows O(uptime) and
//! nothing ever prunes state. [`StoreDir`] turns that stream into a
//! *managed store*:
//!
//! ```text
//! store (an ObjectStore namespace — a directory, a memory map, a bucket)
//!   MANIFEST              small, CRC-protected, atomically swapped
//!   full-000003.ebstore   the chain's full snapshot
//!   seg-000004.ebstore    ordered O(day) segments …
//!   seg-000005.ebstore
//!   quarantine/…          orphaned / leftover objects moved aside at open
//! ```
//!
//! The `MANIFEST` records the ordered chain of `full + N segment` objects
//! (name, byte length, block CRC) under its own magic, version, and
//! trailing CRC-32. Every mutation follows the same discipline, phrased in
//! terms of the [`ObjectStore`] contract (see [`crate::backend`]):
//!
//! 1. stage the new object through [`ObjectStore::put_atomic`] (a tmp
//!    file, a buffered blob, multipart parts — the backend's business);
//! 2. finalize it, making it visible under its final name;
//! 3. swap the manifest via [`ObjectStore::swap_manifest`] — atomic, and
//!    conditional on the generation where the backend supports it;
//! 4. only then delete objects the new manifest no longer references
//!    (best-effort — failures are counted in [`StoreDir::gc_failures`],
//!    and leftovers are quarantined at the next open).
//!
//! A crash between any two steps leaves either the old chain or the new
//! one, never a torn store: staged uploads and committed-but-unreferenced
//! blocks are swept into quarantine by [`StoreDir::open`], which restores
//! in O(current state) regardless of uptime. The crash suites prove this
//! for every backend by counting *backend mutations* through a
//! [`FaultedStore`] wrapper and killing each
//! one in turn.
//!
//! Compaction and retention *policy* lives here ([`LifecycleConfig`]); the
//! pass itself needs an engine to replay the chain, so it lives in
//! `earlybird-engine` (`compact_store` / `compact_store_tiered`): restore
//! the chain — or, tiered, only the old full block plus the
//! [`CompactionTrigger::fold_segments`] oldest segments — into a scratch
//! engine, optionally prune contact indexes past
//! [`RetentionPolicy::retain_days`] (their counters stay in the full block
//! — the full block is the source of truth for evicted days), write one
//! new full block, and atomically swap the manifest via
//! [`StoreDir::commit_full`] (whole chain) or [`StoreDir::commit_fold`]
//! (prefix only, tail segments kept in place).

use crate::backend::{
    FaultInjector, FaultedStore, LocalFsBackend, MemBackend, ObjectStore, ObjectUpload,
    MANIFEST_NAME,
};
use crate::codec::{crc32, Decoder, Encoder};
use crate::error::{StoreError, StoreResult};
use crate::frame::{BlockKind, CheckpointMeta};
use earlybird_obs::{Counter, MetricsRegistry, StageTimer};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{self, BufWriter, Read, Write};
use std::path::PathBuf;

/// Magic bytes opening the `MANIFEST` object.
pub const MANIFEST_MAGIC: [u8; 8] = *b"EBMANIF1";

/// Newest manifest layout revision this build reads and writes.
pub const MANIFEST_VERSION: u16 = 1;

// -- policy -----------------------------------------------------------------

/// When the segment chain is folded back into a single full block.
///
/// A trigger fires when *any* configured bound is exceeded; with both
/// bounds `None` compaction never runs automatically (it can still be
/// invoked explicitly).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CompactionTrigger {
    /// Compact once the chain holds more than this many segments.
    pub max_segments: Option<usize>,
    /// Compact once the segments' total size exceeds this many bytes.
    pub max_segment_bytes: Option<u64>,
    /// Fold at most this many of the *oldest* segments per pass (tiered
    /// compaction): each pass replays `1 + K` blocks into the scratch
    /// engine instead of the whole chain, bounding pause-adjacent work by
    /// K rather than by uptime. `None` folds the entire chain in one pass.
    pub fold_segments: Option<usize>,
}

impl Default for CompactionTrigger {
    /// Compact past 32 segments — roughly a month of daily cycles — and
    /// fold the whole chain when it fires.
    fn default() -> Self {
        CompactionTrigger { max_segments: Some(32), max_segment_bytes: None, fold_segments: None }
    }
}

impl CompactionTrigger {
    /// A trigger that never fires (explicit-compaction-only stores).
    pub fn disabled() -> Self {
        CompactionTrigger { max_segments: None, max_segment_bytes: None, fold_segments: None }
    }
}

/// How much per-day state a compacted full block keeps investigable.
///
/// Retention prunes the *contact indexes* of days older than the newest
/// `retain_days` during compaction; the pruned days' counter reports are
/// still folded into the full block first, so no acknowledged day ever
/// disappears from the record — the full block stays the source of truth
/// for evicted days.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetentionPolicy {
    /// Keep only the newest N days' contact indexes through a compaction;
    /// `None` keeps every retained index.
    pub retain_days: Option<usize>,
}

/// The lifecycle knobs of a [`StoreDir`]: compaction trigger plus retention
/// policy. Operational, not part of the stored format — two processes may
/// open the same store with different configurations.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LifecycleConfig {
    /// When the segment chain is compacted.
    pub compaction: CompactionTrigger,
    /// What a compaction keeps investigable.
    pub retention: RetentionPolicy,
}

/// Outcome of one compaction pass (produced by the engine crate's
/// `compact_store` / `compact_store_tiered`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompactionReport {
    /// Segments folded into the new full block.
    pub segments_folded: usize,
    /// Chain blocks replayed into the scratch engine during the pass
    /// (the old full block plus the folded segments) — bounded by
    /// `1 + K` under [`CompactionTrigger::fold_segments`].
    pub segments_replayed: usize,
    /// Chain bytes before the pass (full + segments).
    pub bytes_before: u64,
    /// Bytes of the full block after the pass (tail segments excluded).
    pub bytes_after: u64,
    /// Retained contact indexes pruned by the retention policy.
    pub days_pruned: usize,
    /// Superseded chain objects whose best-effort GC deletion failed
    /// during the pass (they leak until the next open quarantines them) —
    /// non-fatal, but operators should watch it.
    pub gc_failures: u64,
    /// Names of the objects behind [`CompactionReport::gc_failures`], so
    /// operators can reconcile leaked objects against
    /// [`StoreDir::quarantined`] after the next open.
    pub gc_failed_objects: Vec<String>,
    /// The new full block's summary.
    pub full: CheckpointMeta,
}

// -- manifest ---------------------------------------------------------------

/// One object of the chain, as recorded by the manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ManifestEntry {
    /// Full snapshot or day segment.
    pub kind: BlockKind,
    /// Object name within the store's namespace.
    pub name: String,
    /// Expected byte length (block including magic and CRC).
    pub bytes: u64,
    /// The block's CRC-32, as reported at commit time.
    pub crc: u32,
}

/// The decoded `MANIFEST`: a generation counter plus the ordered chain.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Manifest {
    /// Monotonic commit counter; also seeds unique chain object names and
    /// conditions the backend's manifest swap.
    generation: u64,
    entries: Vec<ManifestEntry>,
}

impl Manifest {
    fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        let mut out = Vec::from(MANIFEST_MAGIC);
        e.varint(MANIFEST_VERSION as u64);
        e.varint(self.generation);
        e.usizev(self.entries.len());
        for entry in &self.entries {
            e.u8(entry.kind.to_byte());
            e.str(&entry.name);
            e.varint(entry.bytes);
            e.varint(entry.crc as u64);
        }
        out.extend_from_slice(&e.into_bytes());
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    fn decode(bytes: &[u8]) -> StoreResult<Manifest> {
        if bytes.len() < MANIFEST_MAGIC.len() + 4 {
            return Err(StoreError::Truncated { context: "manifest" });
        }
        if bytes[..MANIFEST_MAGIC.len()] != MANIFEST_MAGIC {
            return Err(StoreError::BadMagic);
        }
        let (body, stored) = bytes.split_at(bytes.len() - 4);
        let stored = u32::from_le_bytes(stored.try_into().expect("4 bytes"));
        let computed = crc32(body);
        if stored != computed {
            return Err(StoreError::ChecksumMismatch { expected: stored, found: computed });
        }
        let mut d = Decoder::new(&body[MANIFEST_MAGIC.len()..], "manifest");
        let version = d.varint()?;
        if version > MANIFEST_VERSION as u64 {
            return Err(StoreError::UnsupportedVersion {
                found: version.min(u16::MAX as u64) as u16,
                supported: MANIFEST_VERSION,
            });
        }
        let generation = d.varint()?;
        let n = d.seq_len(3)?;
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let kind = BlockKind::from_byte(d.u8()?)?;
            let name = d.str()?;
            if name.is_empty()
                || name.contains(['/', '\\'])
                || name == ".."
                || name == MANIFEST_NAME
            {
                return Err(StoreError::corrupt(format!("manifest entry name {name:?} invalid")));
            }
            let bytes = d.varint()?;
            let crc = u32::try_from(d.varint()?)
                .map_err(|_| StoreError::corrupt("manifest entry CRC exceeds u32"))?;
            entries.push(ManifestEntry { kind, name, bytes, crc });
        }
        d.finish()?;
        for (i, entry) in entries.iter().enumerate() {
            let expected = if i == 0 { BlockKind::Full } else { BlockKind::DaySegment };
            if entry.kind != expected {
                return Err(StoreError::corrupt(format!(
                    "manifest entry {i} is a {:?} block; expected {expected:?}",
                    entry.kind
                )));
            }
            if entries[..i].iter().any(|prev| prev.name == entry.name) {
                return Err(StoreError::corrupt(format!("manifest lists {:?} twice", entry.name)));
            }
        }
        Ok(Manifest { generation, entries })
    }
}

// -- pending blocks ---------------------------------------------------------

/// A chain object being written: a staged [`ObjectUpload`] that becomes
/// visible only when committed through [`StoreDir::commit_full`] /
/// [`StoreDir::commit_segment`]. Dropping it uncommitted abandons the
/// upload — at most staging residue remains, which the next
/// [`StoreDir::open`] quarantines (or, for multipart backends, the
/// staging-area reaper collects).
#[derive(Debug)]
pub struct PendingBlock {
    kind: BlockKind,
    name: String,
    upload: BufWriter<Box<dyn ObjectUpload>>,
}

impl Write for PendingBlock {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.upload.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.upload.flush()
    }
}

impl PendingBlock {
    /// Flushes the staging buffer and hands back the raw upload for
    /// commit.
    fn seal(mut self) -> StoreResult<(BlockKind, String, Box<dyn ObjectUpload>)> {
        self.upload.flush()?;
        let upload = self.upload.into_inner().map_err(|e| StoreError::Io(e.into_error()))?;
        Ok((self.kind, self.name, upload))
    }
}

/// How a commit splices its block into the manifest: replace the whole
/// chain (full checkpoint / whole-chain compaction), replace only the old
/// full plus the `K` oldest segments (tiered fold), or append (segment).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CommitShape {
    Full,
    Segment,
    Fold(usize),
}

// -- metrics ----------------------------------------------------------------

/// Cached metric handles for one store, labeled by backend kind (plus any
/// caller labels, e.g. the owning tenant). `None` until
/// [`StoreDir::attach_metrics`] — every instrumentation point is a plain
/// `if let`, so an unattached store pays nothing.
#[derive(Clone, Debug)]
struct StoreMetrics {
    commit: StageTimer,
    put: StageTimer,
    swap: StageTimer,
    get: StageTimer,
    commit_bytes: Counter,
    gc_failures: Counter,
    quarantined: Counter,
}

impl StoreMetrics {
    fn new(registry: &MetricsRegistry, backend: &'static str, extra: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(&str, &str)> = vec![("backend", backend)];
        labels.extend(extra.iter().copied());
        StoreMetrics {
            commit: registry.timer(
                "store_commit_micros",
                "Wall time of one chain commit: seal, finalize, manifest swap, GC",
                &labels,
            ),
            put: registry.timer(
                "store_put_micros",
                "Wall time finalizing one staged object upload",
                &labels,
            ),
            swap: registry.timer(
                "store_swap_micros",
                "Wall time of one atomic manifest swap",
                &labels,
            ),
            get: registry.timer(
                "store_get_micros",
                "Wall time opening one chain object for read",
                &labels,
            ),
            commit_bytes: registry.counter(
                "store_commit_bytes_total",
                "Bytes committed into the chain",
                &labels,
            ),
            gc_failures: registry.counter(
                "store_gc_failures_total",
                "Best-effort GC deletions that failed (objects leak until quarantined)",
                &labels,
            ),
            quarantined: registry.counter(
                "store_quarantined_total",
                "Orphaned objects moved into quarantine at open",
                &labels,
            ),
        }
    }
}

// -- the store directory ----------------------------------------------------

/// A snapshot store owned through its manifest: every visible chain
/// mutation is an atomic manifest swap, so a crash at any point leaves
/// either the old chain or the new one. See the module docs for the layout
/// and the commit discipline.
///
/// The storage medium is pluggable: [`StoreDir::create`] / [`StoreDir::open`]
/// keep the original local-directory signatures (via
/// [`LocalFsBackend`]), and the `_with` constructors accept any
/// [`ObjectStore`] — in-memory, the S3-style simulation, or a real
/// object-store adapter.
#[derive(Debug)]
pub struct StoreDir {
    backend: Box<dyn ObjectStore>,
    cfg: LifecycleConfig,
    manifest: Manifest,
    quarantined: Vec<String>,
    gc_failures: u64,
    gc_failed: Vec<String>,
    metrics: Option<StoreMetrics>,
}

impl StoreDir {
    /// Creates a fresh store on a local directory (parents included) with
    /// an empty chain — shorthand for [`StoreDir::create_with`] over a
    /// [`LocalFsBackend`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures; a directory that already
    /// holds a `MANIFEST` is refused as [`StoreError::Corrupt`] — use
    /// [`StoreDir::open`] (or [`StoreDir::open_or_create`]) for those.
    pub fn create(root: impl Into<PathBuf>, cfg: LifecycleConfig) -> StoreResult<Self> {
        Self::create_with(LocalFsBackend::new(root)?, cfg)
    }

    /// Creates a fresh store on any backend with an empty chain.
    ///
    /// # Errors
    ///
    /// As for [`StoreDir::create`], plus [`StoreError::ManifestConflict`]
    /// when a concurrent writer creates the store first (conditional
    /// backends).
    pub fn create_with(
        backend: impl ObjectStore + 'static,
        cfg: LifecycleConfig,
    ) -> StoreResult<Self> {
        Self::create_boxed(Box::new(backend), cfg)
    }

    /// [`StoreDir::create_with`] for an already-boxed backend — the shape
    /// [`ObjectStore::scope`] hands out, so per-tenant stores can be
    /// created under a shared backend.
    ///
    /// # Errors
    ///
    /// As for [`StoreDir::create_with`].
    pub fn create_boxed(backend: Box<dyn ObjectStore>, cfg: LifecycleConfig) -> StoreResult<Self> {
        if backend.read_manifest()?.is_some() {
            return Err(StoreError::corrupt(format!(
                "{} already holds a store (open it instead of creating over it)",
                backend.describe()
            )));
        }
        let manifest = Manifest::default();
        backend.swap_manifest(None, manifest.generation, &manifest.encode())?;
        Ok(StoreDir {
            backend,
            cfg,
            manifest,
            quarantined: Vec::new(),
            gc_failures: 0,
            gc_failed: Vec::new(),
            metrics: None,
        })
    }

    /// Opens an existing store on a local directory — shorthand for
    /// [`StoreDir::open_with`] over a [`LocalFsBackend`]. Byte-compatible
    /// with directories written before the backend split.
    ///
    /// # Errors
    ///
    /// As for [`StoreDir::open_with`].
    pub fn open(root: impl Into<PathBuf>, cfg: LifecycleConfig) -> StoreResult<Self> {
        Self::open_with(LocalFsBackend::new(root)?, cfg)
    }

    /// Opens an existing store on any backend: reads and validates the
    /// `MANIFEST` (magic, version, CRC, entry ordering), verifies every
    /// referenced chain object exists with its recorded length, and sweeps
    /// orphaned objects — leftover `*.tmp`s and `*.ebstore` blocks no
    /// manifest references, the residue of a crash — into quarantine.
    ///
    /// Open (and the restore that follows) is O(current state): however
    /// long the service ran, the chain holds one full block plus the
    /// segments appended since the last compaction.
    ///
    /// # Errors
    ///
    /// Typed [`StoreError`]s for a missing, corrupt, or future-versioned
    /// manifest, and for manifest-referenced objects that are missing or
    /// damaged (a broken chain is surfaced, never silently repaired). A
    /// store that needs a quarantine sweep but refuses writes fails up
    /// front as [`StoreError::ReadOnlyStore`].
    pub fn open_with(
        backend: impl ObjectStore + 'static,
        cfg: LifecycleConfig,
    ) -> StoreResult<Self> {
        Self::open_boxed(Box::new(backend), cfg)
    }

    /// [`StoreDir::open_with`] for an already-boxed backend — the shape
    /// [`ObjectStore::scope`] hands out, so per-tenant stores can be
    /// reopened under a shared backend.
    ///
    /// # Errors
    ///
    /// As for [`StoreDir::open_with`].
    pub fn open_boxed(backend: Box<dyn ObjectStore>, cfg: LifecycleConfig) -> StoreResult<Self> {
        let Some(manifest_bytes) = backend.read_manifest()? else {
            return Err(StoreError::corrupt(format!(
                "{} has no MANIFEST: not a store",
                backend.describe()
            )));
        };
        let manifest = Manifest::decode(&manifest_bytes)?;
        let mut dir = StoreDir {
            backend,
            cfg,
            manifest,
            quarantined: Vec::new(),
            gc_failures: 0,
            gc_failed: Vec::new(),
            metrics: None,
        };
        dir.validate_chain()?;
        dir.sweep_orphans()?;
        Ok(dir)
    }

    /// [`StoreDir::open`] when a manifest exists, [`StoreDir::create`]
    /// otherwise — the idiomatic entry point for a daily-cycle service on
    /// a local directory.
    ///
    /// # Errors
    ///
    /// As for [`StoreDir::open`] / [`StoreDir::create`].
    pub fn open_or_create(root: impl Into<PathBuf>, cfg: LifecycleConfig) -> StoreResult<Self> {
        Self::open_or_create_with(LocalFsBackend::new(root)?, cfg)
    }

    /// [`StoreDir::open_or_create`] for any backend.
    ///
    /// # Errors
    ///
    /// As for [`StoreDir::open_with`] / [`StoreDir::create_with`].
    pub fn open_or_create_with(
        backend: impl ObjectStore + 'static,
        cfg: LifecycleConfig,
    ) -> StoreResult<Self> {
        Self::open_or_create_boxed(Box::new(backend), cfg)
    }

    /// [`StoreDir::open_or_create_with`] for an already-boxed backend —
    /// the idiomatic entry point for a per-tenant store under a shared,
    /// scoped [`ObjectStore`].
    ///
    /// # Errors
    ///
    /// As for [`StoreDir::open_with`] / [`StoreDir::create_with`].
    pub fn open_or_create_boxed(
        backend: Box<dyn ObjectStore>,
        cfg: LifecycleConfig,
    ) -> StoreResult<Self> {
        if backend.read_manifest()?.is_some() {
            Self::open_boxed(backend, cfg)
        } else {
            Self::create_boxed(backend, cfg)
        }
    }

    // -- accessors ----------------------------------------------------------

    /// The backend this store runs on.
    pub fn backend(&self) -> &dyn ObjectStore {
        self.backend.as_ref()
    }

    /// The lifecycle configuration supplied at open/create.
    pub fn config(&self) -> &LifecycleConfig {
        &self.cfg
    }

    /// The manifest's monotonic commit counter.
    pub fn generation(&self) -> u64 {
        self.manifest.generation
    }

    /// The ordered chain recorded by the manifest.
    pub fn entries(&self) -> &[ManifestEntry] {
        &self.manifest.entries
    }

    /// Whether the chain holds no blocks yet.
    pub fn is_empty(&self) -> bool {
        self.manifest.entries.is_empty()
    }

    /// Segments currently in the chain (excludes the full block).
    pub fn segment_count(&self) -> usize {
        self.manifest.entries.len().saturating_sub(1)
    }

    /// Total bytes of the chain's segments.
    pub fn segment_bytes(&self) -> u64 {
        self.manifest.entries.iter().skip(1).map(|e| e.bytes).sum()
    }

    /// Total bytes of the whole chain (full block + segments).
    pub fn chain_bytes(&self) -> u64 {
        self.manifest.entries.iter().map(|e| e.bytes).sum()
    }

    /// Whether the configured [`CompactionTrigger`] has fired.
    pub fn compaction_due(&self) -> bool {
        let t = &self.cfg.compaction;
        t.max_segments.is_some_and(|n| self.segment_count() > n)
            || t.max_segment_bytes.is_some_and(|b| self.segment_bytes() > b)
    }

    /// Objects moved into quarantine by [`StoreDir::open`] (paths for the
    /// local backend, quarantine keys otherwise).
    pub fn quarantined(&self) -> &[String] {
        &self.quarantined
    }

    /// Superseded chain objects whose best-effort GC deletion has failed
    /// over this handle's lifetime. Non-fatal — the objects leak until the
    /// next open quarantines them — but a growing count means the backend
    /// is refusing deletes and an operator should look.
    pub fn gc_failures(&self) -> u64 {
        self.gc_failures
    }

    /// Names of the objects behind [`StoreDir::gc_failures`], in the order
    /// the deletions failed — reconcile against [`StoreDir::quarantined`]
    /// after the next open to confirm the leaks were collected.
    pub fn gc_failed_objects(&self) -> &[String] {
        &self.gc_failed
    }

    /// Attaches this store to a [`MetricsRegistry`]: commit / put / swap /
    /// get latencies, committed bytes, GC failures, and quarantine counts
    /// flow into `store_*` series labeled by backend kind plus
    /// `extra_labels` (e.g. the owning tenant). Counts accrued before the
    /// attach — a quarantine sweep at open happens first by construction —
    /// are folded in so the registry never under-reports this handle.
    pub fn attach_metrics(&mut self, registry: &MetricsRegistry, extra_labels: &[(&str, &str)]) {
        let metrics = StoreMetrics::new(registry, self.backend.kind(), extra_labels);
        metrics.gc_failures.add(self.gc_failures);
        metrics.quarantined.add(self.quarantined.len() as u64);
        self.metrics = Some(metrics);
    }

    /// Installs a [`FaultInjector`] for durability tests by wrapping the
    /// backend in a [`FaultedStore`]; every subsequent backend mutation is
    /// accounted against it.
    pub fn set_fault_injector(&mut self, fault: FaultInjector) {
        let inner = std::mem::replace(&mut self.backend, Box::new(MemBackend::new()));
        self.backend = Box::new(FaultedStore::boxed(inner, fault));
    }

    // -- reading ------------------------------------------------------------

    /// A reader over the chain in manifest order — exactly the
    /// `full + N segments` stream `EngineBuilder::restore_stream` replays.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if a chain object cannot be opened (surfaced
    /// lazily per object while reading).
    pub fn reader(&self) -> StoreResult<ChainReader<'_>> {
        self.reader_prefix(self.manifest.entries.len())
    }

    /// A reader over only the first `blocks` chain objects in manifest
    /// order — the replay input of a tiered compaction pass, which folds
    /// the old full block plus the oldest K segments and leaves the tail
    /// untouched.
    ///
    /// # Errors
    ///
    /// As for [`StoreDir::reader`].
    pub fn reader_prefix(&self, blocks: usize) -> StoreResult<ChainReader<'_>> {
        let names: Vec<String> =
            self.manifest.entries.iter().take(blocks).map(|e| e.name.clone()).collect();
        Ok(ChainReader {
            backend: self.backend.as_ref(),
            names: names.into_iter(),
            current: None,
            get_timer: self.metrics.as_ref().map(|m| m.get.clone()),
        })
    }

    // -- writing ------------------------------------------------------------

    /// Opens a new chain object of `kind`, staged invisibly until
    /// committed. The returned handle implements [`Write`]; hand it to the
    /// engine's block writer, then commit via [`StoreDir::commit_full`] /
    /// [`StoreDir::commit_segment`].
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when a segment is begun on an empty chain
    /// (a full snapshot must exist first); backend errors otherwise.
    pub fn begin(&self, kind: BlockKind) -> StoreResult<PendingBlock> {
        if kind == BlockKind::DaySegment && self.is_empty() {
            return Err(StoreError::corrupt(
                "cannot append a segment to an empty store: write a full snapshot first",
            ));
        }
        let name = Self::chain_name(kind, self.manifest.generation + 1);
        let upload = self.backend.put_atomic(&name)?;
        Ok(PendingBlock { kind, name, upload: BufWriter::with_capacity(256 * 1024, upload) })
    }

    fn chain_name(kind: BlockKind, generation: u64) -> String {
        let prefix = if kind == BlockKind::Full { "full" } else { "seg" };
        format!("{prefix}-{generation:06}.ebstore")
    }

    /// Commits a full snapshot, **replacing the whole chain**: the pending
    /// object is finalized as `full-<generation>.ebstore`, the manifest
    /// atomically swaps to reference only it, and the previous chain's
    /// objects are deleted best-effort (failures count in
    /// [`StoreDir::gc_failures`]; a crash before deletion leaves them for
    /// quarantine). This is both the first-checkpoint path and the
    /// compaction commit.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when `pending` is not a full block or `meta`
    /// disagrees with it; backend errors (including
    /// [`StoreError::ManifestConflict`] on a lost multi-writer race)
    /// otherwise.
    pub fn commit_full(&mut self, pending: PendingBlock, meta: &CheckpointMeta) -> StoreResult<()> {
        self.commit(pending, meta, CommitShape::Full)
    }

    /// Commits a tiered-compaction fold: the pending **full** block —
    /// written from a scratch engine that replayed the old full block plus
    /// the oldest `folded` segments — atomically replaces exactly that
    /// prefix of the chain, keeping the newer tail segments in place. The
    /// replaced prefix is then deleted best-effort, like any commit.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when `pending` is not a full block, `meta`
    /// disagrees with it, or the chain holds fewer than `folded` segments;
    /// backend errors otherwise.
    pub fn commit_fold(
        &mut self,
        pending: PendingBlock,
        meta: &CheckpointMeta,
        folded: usize,
    ) -> StoreResult<()> {
        if self.is_empty() || folded > self.segment_count() {
            return Err(StoreError::corrupt(format!(
                "fold commit claims {folded} segments but the chain holds {}",
                self.segment_count()
            )));
        }
        self.commit(pending, meta, CommitShape::Fold(folded))
    }

    /// Commits a day segment: the pending object is finalized as
    /// `seg-<generation>.ebstore` and the manifest atomically swaps to a
    /// copy with the segment appended to the chain.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] when `pending` is not a segment block, the
    /// chain is empty, or `meta` disagrees with the bytes written; backend
    /// errors otherwise.
    pub fn commit_segment(
        &mut self,
        pending: PendingBlock,
        meta: &CheckpointMeta,
    ) -> StoreResult<()> {
        self.commit(pending, meta, CommitShape::Segment)
    }

    fn commit(
        &mut self,
        pending: PendingBlock,
        meta: &CheckpointMeta,
        shape: CommitShape,
    ) -> StoreResult<()> {
        let expect = match shape {
            CommitShape::Full | CommitShape::Fold(_) => BlockKind::Full,
            CommitShape::Segment => BlockKind::DaySegment,
        };
        let _commit_span = self.metrics.as_ref().map(|m| m.commit.start());
        if pending.kind != expect || meta.kind != expect {
            return Err(StoreError::corrupt(format!(
                "commit of a {expect:?} block was handed a {:?} pending / {:?} meta",
                pending.kind, meta.kind
            )));
        }
        if expect == BlockKind::DaySegment && self.is_empty() {
            return Err(StoreError::corrupt(
                "cannot commit a segment to an empty store: write a full snapshot first",
            ));
        }
        let (kind, name, upload) = pending.seal()?;
        let generation = self.manifest.generation + 1;
        if name != Self::chain_name(kind, generation) {
            // A pending block begun before an intervening commit carries a
            // generation-stale name; committing it would duplicate a chain
            // entry and brick the manifest. Abandon it (drop) instead.
            return Err(StoreError::corrupt(format!(
                "pending block {name:?} was begun at an earlier generation (the chain has moved \
                 to {}); begin a fresh block",
                self.manifest.generation
            )));
        }
        let staged = upload.bytes_staged();
        if staged != meta.bytes {
            // Abandon the upload (drop): it never becomes visible.
            return Err(StoreError::corrupt(format!(
                "pending block holds {staged} bytes but its meta claims {}",
                meta.bytes
            )));
        }
        {
            let _put_span = self.metrics.as_ref().map(|m| m.put.start());
            upload.finalize()?;
        }

        let mut next = self.manifest.clone();
        next.generation = generation;
        let entry = ManifestEntry { kind, name, bytes: meta.bytes, crc: meta.checksum };
        let replaced: Vec<String> = match shape {
            CommitShape::Full => {
                let old = next.entries.drain(..).map(|e| e.name).collect();
                next.entries.push(entry);
                old
            }
            CommitShape::Fold(folded) => {
                // Replace the old full block plus the `folded` oldest
                // segments; the tail keeps its order behind the new full.
                let old = next.entries.drain(..folded + 1).map(|e| e.name).collect();
                next.entries.insert(0, entry);
                old
            }
            CommitShape::Segment => {
                next.entries.push(entry);
                Vec::new()
            }
        };
        {
            let _swap_span = self.metrics.as_ref().map(|m| m.swap.start());
            self.backend.swap_manifest(
                Some(self.manifest.generation),
                next.generation,
                &next.encode(),
            )?;
        }
        self.manifest = next;
        if let Some(m) = &self.metrics {
            m.commit_bytes.add(meta.bytes);
        }

        // The old chain is unreferenced now; deletion is garbage
        // collection, not correctness. A failure (or a crash) leaves
        // orphans for the next open's quarantine sweep — counted so
        // operators can see objects leaking.
        for name in replaced {
            if self.backend.delete(&name).is_err() {
                self.gc_failures += 1;
                self.gc_failed.push(name);
                if let Some(m) = &self.metrics {
                    m.gc_failures.inc();
                }
            }
        }
        Ok(())
    }

    // -- internals ----------------------------------------------------------

    /// Verifies every manifest-referenced object exists with its recorded
    /// length. Content integrity is the block CRC's job during restore.
    fn validate_chain(&self) -> StoreResult<()> {
        let listed: BTreeMap<String, u64> =
            self.backend.list()?.into_iter().map(|o| (o.name, o.bytes)).collect();
        for entry in &self.manifest.entries {
            let Some(&bytes) = listed.get(&entry.name) else {
                return Err(StoreError::corrupt(format!(
                    "manifest references {:?}, which is missing from the store",
                    entry.name
                )));
            };
            if bytes != entry.bytes {
                return Err(StoreError::corrupt(format!(
                    "chain object {:?} holds {bytes} bytes; manifest records {}",
                    entry.name, entry.bytes
                )));
            }
        }
        Ok(())
    }

    /// Moves unreferenced store objects (crash residue: `*.tmp`,
    /// superseded or never-committed `*.ebstore`) into quarantine. When a
    /// sweep is needed, the backend's writability is probed *first* so a
    /// read-only store fails whole with a typed error instead of
    /// half-swept with a raw I/O one.
    fn sweep_orphans(&mut self) -> StoreResult<()> {
        let mut orphans = Vec::new();
        for object in self.backend.list()? {
            let name = object.name;
            if name == MANIFEST_NAME {
                continue;
            }
            let ours = name.ends_with(".ebstore") || name.ends_with(".tmp");
            let referenced = self.manifest.entries.iter().any(|e| e.name == name);
            if ours && !referenced {
                orphans.push(name);
            }
        }
        if orphans.is_empty() {
            return Ok(());
        }
        self.backend.ensure_mutable()?;
        orphans.sort();
        for name in orphans {
            let target = self.backend.quarantine(&name)?;
            self.quarantined.push(target);
        }
        Ok(())
    }
}

// -- chain reader -----------------------------------------------------------

/// Sequential [`Read`] over the manifest's chain objects, in order — feed
/// to `EngineBuilder::restore_stream` (or use `Persistence::restore`).
pub struct ChainReader<'a> {
    backend: &'a dyn ObjectStore,
    names: std::vec::IntoIter<String>,
    current: Option<Box<dyn Read + Send>>,
    get_timer: Option<StageTimer>,
}

impl fmt::Debug for ChainReader<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ChainReader")
            .field("backend", &self.backend.kind())
            .field("remaining", &self.names.len())
            .finish_non_exhaustive()
    }
}

impl Read for ChainReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        loop {
            if self.current.is_none() {
                match self.names.next() {
                    Some(name) => {
                        let _get_span = self.get_timer.as_ref().map(|t| t.start());
                        let reader = self.backend.get(&name).map_err(|e| match e {
                            StoreError::Io(e) => e,
                            other => io::Error::other(other.to_string()),
                        })?;
                        self.current = Some(reader);
                    }
                    None => return Ok(0),
                }
            }
            let n = self.current.as_mut().expect("object open").read(buf)?;
            if n > 0 || buf.is_empty() {
                return Ok(n);
            }
            self.current = None; // EOF on this object; advance the chain.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn tmp_root(tag: &str) -> PathBuf {
        let root = std::env::temp_dir()
            .join(format!("earlybird-lifecycle-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn manifest_roundtrips_and_rejects_damage() {
        let manifest = Manifest {
            generation: 7,
            entries: vec![
                ManifestEntry {
                    kind: BlockKind::Full,
                    name: "full-000005.ebstore".into(),
                    bytes: 1234,
                    crc: 0xDEAD_BEEF,
                },
                ManifestEntry {
                    kind: BlockKind::DaySegment,
                    name: "seg-000006.ebstore".into(),
                    bytes: 56,
                    crc: 1,
                },
            ],
        };
        let bytes = manifest.encode();
        assert_eq!(Manifest::decode(&bytes).unwrap(), manifest);

        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            assert!(Manifest::decode(&bad).is_err(), "flip at byte {i} must be detected");
        }
        for cut in 0..bytes.len() {
            assert!(Manifest::decode(&bytes[..cut]).is_err(), "cut at {cut} must be detected");
        }
    }

    #[test]
    fn manifest_rejects_structural_violations() {
        // Segment-first chain.
        let m = Manifest {
            generation: 1,
            entries: vec![ManifestEntry {
                kind: BlockKind::DaySegment,
                name: "seg-000001.ebstore".into(),
                bytes: 1,
                crc: 0,
            }],
        };
        assert!(matches!(Manifest::decode(&m.encode()), Err(StoreError::Corrupt { .. })));

        // Path traversal in a name.
        let m = Manifest {
            generation: 1,
            entries: vec![ManifestEntry {
                kind: BlockKind::Full,
                name: "../evil.ebstore".into(),
                bytes: 1,
                crc: 0,
            }],
        };
        assert!(matches!(Manifest::decode(&m.encode()), Err(StoreError::Corrupt { .. })));

        // Duplicate names.
        let entry = ManifestEntry {
            kind: BlockKind::DaySegment,
            name: "seg-000002.ebstore".into(),
            bytes: 1,
            crc: 0,
        };
        let m = Manifest {
            generation: 2,
            entries: vec![
                ManifestEntry {
                    kind: BlockKind::Full,
                    name: "full-000001.ebstore".into(),
                    bytes: 1,
                    crc: 0,
                },
                entry.clone(),
                entry,
            ],
        };
        assert!(matches!(Manifest::decode(&m.encode()), Err(StoreError::Corrupt { .. })));
    }

    #[test]
    fn create_then_open_roundtrips_an_empty_chain() {
        let root = tmp_root("create");
        let dir = StoreDir::create(&root, LifecycleConfig::default()).unwrap();
        assert!(dir.is_empty());
        assert_eq!(dir.generation(), 0);
        drop(dir);

        assert!(
            matches!(
                StoreDir::create(&root, LifecycleConfig::default()),
                Err(StoreError::Corrupt { .. })
            ),
            "creating over an existing store must be refused"
        );
        let reopened = StoreDir::open(&root, LifecycleConfig::default()).unwrap();
        assert!(reopened.is_empty());
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn create_then_open_roundtrips_on_every_backend() {
        let backends: Vec<Box<dyn Fn() -> Box<dyn ObjectStore>>> = vec![
            Box::new(|| Box::new(MemBackend::new())),
            Box::new(|| Box::new(crate::backend::S3LiteBackend::new())),
        ];
        for fresh in backends {
            let backend = fresh();
            let kind = backend.kind();
            let dir = StoreDir::create_boxed(backend, LifecycleConfig::default()).unwrap();
            assert!(dir.is_empty(), "{kind}");
            assert_eq!(dir.generation(), 0, "{kind}");
        }
    }

    #[test]
    fn open_requires_a_manifest() {
        let root = tmp_root("no-manifest");
        fs::create_dir_all(&root).unwrap();
        assert!(matches!(
            StoreDir::open(&root, LifecycleConfig::default()),
            Err(StoreError::Corrupt { .. })
        ));
        fs::remove_dir_all(&root).unwrap();

        assert!(matches!(
            StoreDir::open_with(MemBackend::new(), LifecycleConfig::default()),
            Err(StoreError::Corrupt { .. })
        ));
    }

    #[test]
    fn compaction_trigger_fires_on_either_bound() {
        let root = tmp_root("trigger");
        let mut dir = StoreDir::create(
            &root,
            LifecycleConfig {
                compaction: CompactionTrigger {
                    max_segments: Some(2),
                    max_segment_bytes: Some(1_000_000),
                    fold_segments: None,
                },
                retention: RetentionPolicy::default(),
            },
        )
        .unwrap();
        // Simulate manifest states without real blocks.
        dir.manifest.entries.push(ManifestEntry {
            kind: BlockKind::Full,
            name: "full-000001.ebstore".into(),
            bytes: 10,
            crc: 0,
        });
        assert!(!dir.compaction_due());
        for i in 0..3 {
            dir.manifest.entries.push(ManifestEntry {
                kind: BlockKind::DaySegment,
                name: format!("seg-00000{}.ebstore", i + 2),
                bytes: 10,
                crc: 0,
            });
        }
        assert!(dir.compaction_due(), "3 segments > max 2");
        dir.manifest.entries.truncate(2);
        assert!(!dir.compaction_due());
        dir.manifest.entries[1].bytes = 2_000_000;
        assert!(dir.compaction_due(), "byte bound exceeded");
        fs::remove_dir_all(&root).unwrap();
    }
}
