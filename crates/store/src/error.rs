//! Typed failures of the snapshot layer.
//!
//! Every way a snapshot can be unusable — wrong file, future format,
//! truncated write, flipped bit, or a payload that decodes but violates an
//! engine invariant — surfaces as a distinct [`StoreError`] variant. The
//! decoder never panics on untrusted bytes and never silently misloads.

use std::fmt;

/// Shorthand for results of checkpoint/restore operations.
pub type StoreResult<T> = Result<T, StoreError>;

/// A failure while writing or reading a snapshot stream.
#[derive(Debug)]
pub enum StoreError {
    /// The underlying reader/writer failed.
    Io(std::io::Error),
    /// The stream does not start with the `EBSTORE1` magic — not a
    /// snapshot, or one written by an incompatible future layout.
    BadMagic,
    /// The block was written by a newer format revision than this build
    /// understands.
    UnsupportedVersion {
        /// Version found in the block header.
        found: u16,
        /// Newest version this build can read.
        supported: u16,
    },
    /// The block's trailing CRC-32 does not match its contents: the bytes
    /// were corrupted in storage or transit.
    ChecksumMismatch {
        /// Checksum recorded in the stream.
        expected: u32,
        /// Checksum recomputed over the bytes actually read.
        found: u32,
    },
    /// The stream ended in the middle of a block — a torn or truncated
    /// write.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// The bytes decoded but violate the format or an engine invariant
    /// (wrong section order, out-of-range enum tag, non-contiguous ids,
    /// invalid configuration, ...).
    Corrupt {
        /// What failed validation.
        context: String,
    },
    /// A day segment would persist a day older than the chain's newest
    /// already-persisted day. Appending it would produce a stream the
    /// restore path rejects (segments must move forward), so the write is
    /// refused up front and the chain stays replayable.
    StaleSegment {
        /// Index of the out-of-order day the caller tried to persist.
        day: u32,
        /// Index of the newest day already persisted to the stream.
        last_persisted: u32,
    },
    /// The backing store refuses writes — detected up front (before a
    /// quarantine sweep or a commit mutates anything), so the caller gets
    /// one actionable error instead of a half-applied mutation and a raw
    /// I/O failure. The underlying `io::Error`, when one revealed the
    /// condition, is kept as the [`std::error::Error::source`].
    ReadOnlyStore {
        /// Where the store lives (a path for the local backend, a bucket
        /// description otherwise).
        store: String,
        /// The I/O failure that revealed the condition, if any (an
        /// up-front permission probe carries `None`).
        source: Option<std::io::Error>,
    },
    /// A staged upload's finalize found an object already committed under
    /// its target name: another writer won the race for this generation
    /// (chain object names are generation-derived). The existing object is
    /// left untouched — the loser's bytes never become visible.
    ObjectConflict {
        /// Name both writers raced for.
        name: String,
    },
    /// A conditional manifest swap observed a different generation than
    /// the writer expected: another writer committed first. The store is
    /// intact (the competing commit won); reopen it to see the new chain
    /// before retrying.
    ManifestConflict {
        /// Generation the losing writer expected to supersede (`None`
        /// when it tried to create a fresh store).
        expected: Option<u64>,
        /// Generation actually in the store (`None` when no manifest
        /// exists yet).
        found: Option<u64>,
    },
    /// A `Persistence` handle refuses further commits because an earlier
    /// frozen snapshot failed to reach the store: the engine's persist
    /// cursor has advanced past bytes the chain never received, so any
    /// later segment would leave a gap. The store itself is intact (the
    /// failed commit never became visible) — restore from it and resume.
    PersistencePoisoned {
        /// The failure that poisoned the handle, as displayed.
        context: String,
    },
}

impl StoreError {
    /// Builds a [`StoreError::Corrupt`] with a formatted context.
    pub fn corrupt(context: impl Into<String>) -> Self {
        StoreError::Corrupt { context: context.into() }
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            StoreError::BadMagic => f.write_str("not an earlybird snapshot (bad magic)"),
            StoreError::UnsupportedVersion { found, supported } => {
                write!(f, "snapshot format v{found} is newer than supported v{supported}")
            }
            StoreError::ChecksumMismatch { expected, found } => {
                write!(
                    f,
                    "snapshot checksum mismatch: stored {expected:#010x}, computed {found:#010x}"
                )
            }
            StoreError::Truncated { context } => {
                write!(f, "snapshot truncated while reading {context}")
            }
            StoreError::Corrupt { context } => write!(f, "snapshot corrupt: {context}"),
            StoreError::StaleSegment { day, last_persisted } => {
                write!(
                    f,
                    "refusing to persist day {day} behind already-persisted day \
                     {last_persisted}: the segment chain must move forward"
                )
            }
            StoreError::ReadOnlyStore { store, .. } => {
                write!(
                    f,
                    "store at {store} is read-only: quarantine sweeps and commits need write \
                     access — fix the permissions, or copy the chain somewhere writable before \
                     opening"
                )
            }
            StoreError::ObjectConflict { name } => {
                write!(
                    f,
                    "object {name:?} already exists: another writer committed this generation \
                     first; reopen the store and retry"
                )
            }
            StoreError::ManifestConflict { expected, found } => {
                let fmt_gen = |g: &Option<u64>| match g {
                    Some(g) => format!("generation {g}"),
                    None => "no manifest".to_string(),
                };
                write!(
                    f,
                    "conditional manifest swap refused: writer expected {}, store holds {} — \
                     another writer committed first; reopen the store and retry",
                    fmt_gen(expected),
                    fmt_gen(found)
                )
            }
            StoreError::PersistencePoisoned { context } => {
                write!(
                    f,
                    "persistence handle is poisoned by an earlier failed commit ({context}): \
                     the chain is missing acknowledged snapshot bytes — restore from the store \
                     and resume from the restored engine"
                )
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            StoreError::ReadOnlyStore { source: Some(e), .. } => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;
    use std::io;

    /// The satellite contract: underlying `io::Error`s are *wrapped*, not
    /// stringified — `Display` stays human-readable while `source()` hands
    /// back the original error with its kind and message intact.
    #[test]
    fn display_and_source_roundtrip_the_underlying_io_error() {
        let inner = io::Error::new(io::ErrorKind::PermissionDenied, "EACCES on MANIFEST.tmp");
        let err: StoreError = inner.into();
        assert!(err.to_string().contains("EACCES on MANIFEST.tmp"), "{err}");

        let source = err.source().expect("Io must expose its source");
        let io_back = source.downcast_ref::<io::Error>().expect("source is the io::Error");
        assert_eq!(io_back.kind(), io::ErrorKind::PermissionDenied);
        assert_eq!(io_back.to_string(), "EACCES on MANIFEST.tmp");

        // The chain survives boxing as a generic error object.
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        let kind = boxed.source().and_then(|s| s.downcast_ref::<io::Error>()).map(io::Error::kind);
        assert_eq!(kind, Some(io::ErrorKind::PermissionDenied));
    }

    #[test]
    fn read_only_store_keeps_its_revealing_io_error_as_source() {
        let inner = io::Error::new(io::ErrorKind::PermissionDenied, "read-only filesystem");
        let err = StoreError::ReadOnlyStore { store: "/srv/store".into(), source: Some(inner) };
        let shown = err.to_string();
        assert!(shown.contains("/srv/store"), "{shown}");
        assert!(shown.contains("read-only"), "{shown}");
        let source = err.source().expect("revealing io::Error exposed");
        assert_eq!(
            source.downcast_ref::<io::Error>().map(io::Error::kind),
            Some(io::ErrorKind::PermissionDenied)
        );

        // The probe path has no io::Error to wrap; source is then empty.
        let probe = StoreError::ReadOnlyStore { store: "mem".into(), source: None };
        assert!(probe.source().is_none());
    }

    #[test]
    fn variants_without_an_underlying_error_have_no_source() {
        for err in [
            StoreError::BadMagic,
            StoreError::Truncated { context: "x" },
            StoreError::corrupt("y"),
            StoreError::ManifestConflict { expected: Some(1), found: Some(2) },
            StoreError::PersistencePoisoned { context: "z".into() },
        ] {
            assert!(err.source().is_none(), "{err}");
        }
    }
}
