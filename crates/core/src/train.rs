//! Training-phase model fitting (§III-E steps 3–4): the C&C scoring model
//! and the domain-similarity model, each a linear regression on a labeled
//! two-week population with min-max feature scaling.
//!
//! Labels come from VirusTotal: a domain is a positive example when "at
//! least one anti-virus engine reports it" (§IV-C). Near-collinear features
//! (AutoHosts vs. NoHosts; IP16 vs. IP24 — exactly the pairs the paper
//! found insignificant) can make the normal equations singular on synthetic
//! populations, so fitting falls back to a tiny ridge penalty when needed.

use earlybird_features::{
    CcFeatures, FeatureScaler, Fit, FitError, LinearRegression, RegressionModel, SimFeatures,
    CC_FEATURE_NAMES, SIM_FEATURE_NAMES,
};

/// A labeled C&C training sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CcSample {
    /// Extracted features of a rare automated domain.
    pub features: CcFeatures,
    /// Whether VirusTotal reported the domain at training time.
    pub reported: bool,
}

/// A labeled domain-similarity training sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimSample {
    /// Extracted features of a rare (non-automated) domain relative to the
    /// compromised-host seed set.
    pub features: SimFeatures,
    /// Whether VirusTotal reported the domain at training time.
    pub reported: bool,
}

fn fit_with_fallback(rows: &[Vec<f64>], y: &[f64]) -> Result<Fit, FitError> {
    match LinearRegression::fit(rows, y) {
        Err(FitError::Singular) => LinearRegression::fit_ridge(rows, y, 1e-6),
        other => other,
    }
}

/// Fits the six-feature C&C model with decision threshold `T_c`.
///
/// # Errors
///
/// Propagates [`FitError`] when the population is too small or degenerate.
pub fn train_cc_model(
    samples: &[CcSample],
    threshold: f64,
) -> Result<(RegressionModel, FeatureScaler), FitError> {
    let raw: Vec<Vec<f64>> = samples.iter().map(|s| s.features.to_row()).collect();
    let scaler = FeatureScaler::fit(&raw).ok_or(FitError::DimensionMismatch)?;
    let rows = scaler.transform_all(&raw);
    let y: Vec<f64> = samples.iter().map(|s| if s.reported { 1.0 } else { 0.0 }).collect();
    let fit = fit_with_fallback(&rows, &y)?;
    Ok((RegressionModel::new(&CC_FEATURE_NAMES, fit, threshold), scaler))
}

/// Fits the eight-feature domain-similarity model with decision threshold
/// `T_s`.
///
/// # Errors
///
/// Propagates [`FitError`] when the population is too small or degenerate.
pub fn train_sim_model(
    samples: &[SimSample],
    threshold: f64,
) -> Result<(RegressionModel, FeatureScaler), FitError> {
    let raw: Vec<Vec<f64>> = samples.iter().map(|s| s.features.to_row()).collect();
    let scaler = FeatureScaler::fit(&raw).ok_or(FitError::DimensionMismatch)?;
    let rows = scaler.transform_all(&raw);
    let y: Vec<f64> = samples.iter().map(|s| if s.reported { 1.0 } else { 0.0 }).collect();
    let fit = fit_with_fallback(&rows, &y)?;
    Ok((RegressionModel::new(&SIM_FEATURE_NAMES, fit, threshold), scaler))
}

/// Population-average `(DomAge, DomValidity)` over known WHOIS answers —
/// the defaults substituted for unparseable records (§VI-C).
pub fn whois_defaults(known: impl IntoIterator<Item = (f64, f64)>) -> (f64, f64) {
    let mut n = 0usize;
    let (mut age, mut validity) = (0.0, 0.0);
    for (a, v) in known {
        age += a;
        validity += v;
        n += 1;
    }
    if n == 0 {
        (0.0, 0.0)
    } else {
        (age / n as f64, validity / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc_sample(no_ref: f64, dom_age: f64, reported: bool, k: usize) -> CcSample {
        CcSample {
            features: CcFeatures {
                no_hosts: 1.0 + (k % 3) as f64,
                auto_hosts: 1.0 + (k % 2) as f64,
                no_ref,
                rare_ua: if reported { 0.8 } else { 0.2 },
                dom_age,
                dom_validity: if reported { 60.0 } else { 800.0 + k as f64 },
            },
            reported,
        }
    }

    fn population() -> Vec<CcSample> {
        let mut v = Vec::new();
        for k in 0..30 {
            v.push(cc_sample(0.9, 10.0 + k as f64, true, k));
            v.push(cc_sample(0.1, 1_500.0 + k as f64, false, k));
        }
        v
    }

    #[test]
    fn cc_model_separates_reported_from_legitimate() {
        let (model, scaler) = train_cc_model(&population(), 0.5).unwrap();
        let hot = cc_sample(0.95, 5.0, true, 1).features;
        let cold = cc_sample(0.05, 2_000.0, false, 1).features;
        let s_hot = model.score(&scaler.transform(&hot.to_row()));
        let s_cold = model.score(&scaler.transform(&cold.to_row()));
        assert!(s_hot > s_cold, "hot {s_hot} vs cold {s_cold}");
        assert!(model.is_positive(&scaler.transform(&hot.to_row())));
        assert!(!model.is_positive(&scaler.transform(&cold.to_row())));
    }

    #[test]
    fn dom_age_weight_is_negative() {
        // Reported domains are younger, so the (scaled) DomAge weight must
        // come out negative — the paper's observation in §VI-A.
        let (model, _) = train_cc_model(&population(), 0.4).unwrap();
        let idx = CC_FEATURE_NAMES.iter().position(|n| *n == "DomAge").unwrap();
        assert!(model.fit().coefficient(idx) < 0.0);
    }

    #[test]
    fn collinear_population_falls_back_to_ridge() {
        // Make AutoHosts identical to NoHosts -> perfectly collinear.
        let samples: Vec<CcSample> = (0..40)
            .map(|k| {
                let reported = k % 2 == 0;
                CcSample {
                    features: CcFeatures {
                        no_hosts: 1.0 + (k % 4) as f64,
                        auto_hosts: 1.0 + (k % 4) as f64,
                        no_ref: if reported { 0.9 } else { 0.1 },
                        rare_ua: 0.5,
                        dom_age: 100.0,
                        dom_validity: 100.0,
                    },
                    reported,
                }
            })
            .collect();
        let result = train_cc_model(&samples, 0.4);
        assert!(result.is_ok(), "ridge fallback must handle collinearity: {result:?}");
    }

    #[test]
    fn sim_model_fits_and_scores() {
        let samples: Vec<SimSample> = (0..40)
            .map(|k| {
                let reported = k % 2 == 0;
                SimSample {
                    features: SimFeatures {
                        no_hosts: 1.0 + (k % 3) as f64,
                        min_interval_secs: Some(if reported { 30.0 } else { 20_000.0 + k as f64 }),
                        ip24: reported && k % 4 == 0,
                        ip16: reported,
                        no_ref: if reported { 0.8 } else { 0.3 },
                        rare_ua: if reported { 0.7 } else { 0.1 },
                        dom_age: if reported { 12.0 } else { 900.0 + k as f64 },
                        dom_validity: if reported { 90.0 } else { 1_000.0 },
                    },
                    reported,
                }
            })
            .collect();
        let (model, scaler) = train_sim_model(&samples, 0.4).unwrap();
        let hot = samples[0].features;
        let cold = samples[1].features;
        assert!(
            model.score(&scaler.transform(&hot.to_row()))
                > model.score(&scaler.transform(&cold.to_row()))
        );
        assert_eq!(model.feature_names().count(), SIM_FEATURE_NAMES.len());
    }

    #[test]
    fn too_few_samples_error() {
        let samples: Vec<CcSample> = (0..3).map(|k| cc_sample(0.5, 10.0, k % 2 == 0, k)).collect();
        assert!(train_cc_model(&samples, 0.4).is_err());
    }

    #[test]
    fn whois_defaults_average() {
        assert_eq!(whois_defaults([(10.0, 100.0), (30.0, 300.0)]), (20.0, 200.0));
        assert_eq!(whois_defaults([]), (0.0, 0.0));
    }
}
