//! Internal hosts of the monitored enterprise.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of an internal host (workstation or server).
///
/// Raw logs identify hosts by IP; normalization resolves DHCP/VPN assignments
/// to stable host identities (§IV-A), which this type represents.
///
/// # Example
///
/// ```
/// use earlybird_logmodel::HostId;
/// let h = HostId::new(42);
/// assert_eq!(h.to_string(), "host-42");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HostId(u32);

impl HostId {
    /// Creates a host identifier from a raw index.
    pub const fn new(index: u32) -> Self {
        HostId(index)
    }

    /// The raw index of this host.
    pub const fn index(self) -> u32 {
        self.0
    }
}

impl fmt::Debug for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "HostId({})", self.0)
    }
}

impl fmt::Display for HostId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "host-{}", self.0)
    }
}

/// Whether a host is an end-user workstation or an internal server.
///
/// The paper filters out "queries initiated by internal servers (since we aim
/// at detecting compromised hosts)" during reduction; generators tag each
/// host so the reduction step can be exercised.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum HostKind {
    /// An end-user workstation; the population we defend.
    #[default]
    Workstation,
    /// An internal server (DNS resolver, mail relay, proxy, ...); its queries
    /// are dropped during data reduction.
    Server,
}

impl fmt::Display for HostKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HostKind::Workstation => f.write_str("workstation"),
            HostKind::Server => f.write_str("server"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn host_id_display_and_index() {
        let h = HostId::new(7);
        assert_eq!(h.index(), 7);
        assert_eq!(h.to_string(), "host-7");
        assert_eq!(format!("{h:?}"), "HostId(7)");
    }

    #[test]
    fn host_kind_default_is_workstation() {
        assert_eq!(HostKind::default(), HostKind::Workstation);
        assert_eq!(HostKind::Server.to_string(), "server");
    }

    #[test]
    fn host_id_is_ordered_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(HostId::new(1));
        s.insert(HostId::new(1));
        assert_eq!(s.len(), 1);
        assert!(HostId::new(1) < HostId::new(2));
    }
}
