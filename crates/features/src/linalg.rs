//! Minimal dense linear algebra for ordinary least squares: Gaussian
//! elimination with partial pivoting for solving and inverting small
//! symmetric systems (the normal equations are `(p+1) x (p+1)` with `p <= 8`
//! in this system).

// Index-based loops mirror the textbook elimination formulas; iterator
// rewrites obscure the row/column structure here.
#![allow(clippy::needless_range_loop)]

/// Solves `A x = b` by Gaussian elimination with partial pivoting.
///
/// Returns `None` when the matrix is (numerically) singular.
///
/// # Panics
///
/// Panics if `a` is not square or `b`'s length does not match.
pub fn solve(a: &[Vec<f64>], b: &[f64]) -> Option<Vec<f64>> {
    let n = a.len();
    assert!(a.iter().all(|row| row.len() == n), "matrix must be square");
    assert_eq!(b.len(), n, "rhs length must match matrix dimension");
    // Augmented matrix.
    let mut m: Vec<Vec<f64>> = a
        .iter()
        .zip(b)
        .map(|(row, &bi)| {
            let mut r = row.clone();
            r.push(bi);
            r
        })
        .collect();
    for col in 0..n {
        // Partial pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            m[i][col].abs().partial_cmp(&m[j][col].abs()).expect("NaN in matrix")
        })?;
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        m.swap(col, pivot);
        let diag = m[col][col];
        for j in col..=n {
            m[col][j] /= diag;
        }
        for row in 0..n {
            if row != col {
                let factor = m[row][col];
                if factor != 0.0 {
                    for j in col..=n {
                        m[row][j] -= factor * m[col][j];
                    }
                }
            }
        }
    }
    Some(m.into_iter().map(|row| row[n]).collect())
}

/// Inverts a square matrix by solving against the identity.
///
/// Returns `None` when the matrix is singular.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn invert(a: &[Vec<f64>]) -> Option<Vec<Vec<f64>>> {
    let n = a.len();
    let mut cols = Vec::with_capacity(n);
    for j in 0..n {
        let mut e = vec![0.0; n];
        e[j] = 1.0;
        cols.push(solve(a, &e)?);
    }
    // cols[j] is the j-th column of the inverse; transpose into rows.
    let mut inv = vec![vec![0.0; n]; n];
    for (j, col) in cols.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            inv[i][j] = v;
        }
    }
    Some(inv)
}

/// `A^T A` for a row-major design matrix (rows = samples).
pub fn gram(rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let p = rows.first().map_or(0, Vec::len);
    let mut g = vec![vec![0.0; p]; p];
    for row in rows {
        debug_assert_eq!(row.len(), p, "ragged design matrix");
        for i in 0..p {
            for j in i..p {
                g[i][j] += row[i] * row[j];
            }
        }
    }
    for i in 0..p {
        for j in 0..i {
            g[i][j] = g[j][i];
        }
    }
    g
}

/// `A^T y` for a row-major design matrix.
pub fn gram_rhs(rows: &[Vec<f64>], y: &[f64]) -> Vec<f64> {
    let p = rows.first().map_or(0, Vec::len);
    let mut v = vec![0.0; p];
    for (row, &yi) in rows.iter().zip(y) {
        for i in 0..p {
            v[i] += row[i] * yi;
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        assert_eq!(solve(&a, &[3.0, 4.0]).unwrap(), vec![3.0, 4.0]);
    }

    #[test]
    fn solves_requiring_pivot() {
        // First pivot is zero; requires row swap.
        let a = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        let x = solve(&a, &[5.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 5.0]);
    }

    #[test]
    fn detects_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve(&a, &[1.0, 2.0]).is_none());
        assert!(invert(&a).is_none());
    }

    #[test]
    fn inverts_3x3() {
        let a = vec![vec![2.0, 0.0, 0.0], vec![0.0, 4.0, 0.0], vec![1.0, 0.0, 1.0]];
        let inv = invert(&a).unwrap();
        // A * A^-1 = I
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += a[i][k] * inv[k][j];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((s - expect).abs() < 1e-9, "A*inv[{i}][{j}] = {s}");
            }
        }
    }

    #[test]
    fn gram_is_symmetric() {
        let rows = vec![vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]];
        let g = gram(&rows);
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(g[i][j], g[j][i]);
            }
        }
        assert_eq!(g[0][0], 1.0 + 16.0);
        assert_eq!(g[0][1], 2.0 + 20.0);
    }

    #[test]
    fn gram_rhs_matches_manual() {
        let rows = vec![vec![1.0, 0.0], vec![0.0, 2.0]];
        assert_eq!(gram_rhs(&rows, &[3.0, 4.0]), vec![3.0, 8.0]);
    }

    proptest! {
        #[test]
        fn solve_then_multiply_roundtrips(
            d in proptest::collection::vec(0.5f64..5.0, 3),
            off in proptest::collection::vec(-0.4f64..0.4, 3),
            b in proptest::collection::vec(-10.0f64..10.0, 3),
        ) {
            // Diagonally dominant => well-conditioned.
            let a = vec![
                vec![d[0], off[0], off[1]],
                vec![off[0], d[1], off[2]],
                vec![off[1], off[2], d[2]],
            ];
            let x = solve(&a, &b).expect("diag-dominant is nonsingular");
            for i in 0..3 {
                let s: f64 = (0..3).map(|k| a[i][k] * x[k]).sum();
                prop_assert!((s - b[i]).abs() < 1e-6);
            }
        }
    }
}
