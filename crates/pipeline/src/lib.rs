//! Log normalization, reduction, profiling, and per-day indexing (§IV-A and
//! the profiling steps of §III-E).
//!
//! The pipeline turns raw dataset records into a uniform stream of
//! [`Contact`]s — `(UTC timestamp, host, folded domain, destination IP,
//! optional HTTP context)` — so the detection layer is agnostic to whether
//! the input was DNS or web-proxy logs ("We focus on general patterns of
//! infections that is common in various types of network data", §II-C):
//!
//! * [`normalize`] — timezone conversion to UTC and DHCP/VPN lease
//!   resolution for proxy records; IP-literal destination filtering.
//! * [`fold`] — domain folding to the paper's second level (third level for
//!   anonymized LANL names) with a dedicated folded-name interner.
//! * [`reduce`] — A-record / internal-query / internal-server filters with
//!   the per-step distinct-domain counters that Fig. 2 plots, built from
//!   thread-safe chunk reducers ([`reduce_dns_chunk`] /
//!   [`reduce_proxy_chunk`]) whose partial counters a [`DayReducer`] merges
//!   into day totals.
//! * [`history`] — incrementally updated histories of external destinations
//!   and user-agent strings.
//! * [`rare`] — "new + unpopular" rare-destination extraction.
//! * [`index`] — the per-day [`DayIndex`] over contacts: host↔domain edges,
//!   per-edge timestamp series, per-domain IPs and HTTP statistics; built
//!   whole-day by [`DayIndex::build`] or incrementally from out-of-order
//!   chunks by [`DayIndexBuilder`].
//!
//! The chunk-level entry points take only `&self` state (the fold memo and
//! the [`InternalFilter`] verdict cache are internally synchronized), so one
//! day's chunks can be reduced on parallel workers while a single-threaded
//! owner merges counters and index state in chunk order.
//!
//! # Example
//!
//! ```
//! use earlybird_logmodel::{Day, DomainInterner};
//! use earlybird_pipeline::fold::FoldTable;
//! use std::sync::Arc;
//!
//! let raw = Arc::new(DomainInterner::new());
//! let sym = raw.intern("news.nbc.com");
//! let mut fold = FoldTable::new(Arc::clone(&raw), 2);
//! let folded = fold.fold(sym);
//! assert_eq!(&*fold.folded_interner().resolve(folded), "nbc.com");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contact;
pub mod fold;
pub mod history;
pub mod index;
pub mod normalize;
pub mod rare;
pub mod reduce;

pub use contact::{Contact, HttpContext};
pub use fold::{DomainFolder, FoldTable};
pub use history::{DomainHistory, UaHistory};
pub use index::{DayIndex, DayIndexBuilder, DayIndexSnapshot, EdgeHttpSnapshot, EdgeKey};
pub use normalize::{normalize_proxy_chunk, normalize_proxy_day, NormalizationCounts};
pub use rare::{RareDomains, RareSieve};
pub use reduce::{
    reduce_dns_chunk, reduce_dns_day, reduce_proxy_chunk, reduce_proxy_day, ChunkReduction,
    DayReducer, DnsReductionCounts, InternalFilter, InternalJudge, ProxyReductionCounts,
    ReductionConfig,
};
