//! # earlybird
//!
//! A production-quality Rust reproduction of **"Detection of Early-Stage
//! Enterprise Infection by Mining Large-Scale Log Data"** (Oprea, Li, Yen,
//! Chin, Alrwais — DSN 2015, arXiv:1411.5005): belief propagation over
//! host↔domain graphs seeded by SOC hints or by a timing-based C&C
//! detector, together with the full log-mining substrate the paper depends
//! on (normalization, reduction, profiling, rare-destination extraction,
//! dynamic-histogram beacon detection, linear-regression scoring) and the
//! synthetic LANL / enterprise dataset generators used to evaluate it.
//!
//! This crate is a facade re-exporting the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`logmodel`] | `earlybird-logmodel` | timestamps, hosts, interned domains/UAs, DNS & proxy records |
//! | [`timing`] | `earlybird-timing` | dynamic histograms, Jeffrey divergence, automation detectors |
//! | [`features`] | `earlybird-features` | feature vectors, OLS regression, additive LANL score |
//! | [`intel`] | `earlybird-intel` | WHOIS / VirusTotal / IOC / ground-truth simulators |
//! | [`pipeline`] | `earlybird-pipeline` | normalization, reduction, histories, rare sieve, day index |
//! | [`synthgen`] | `earlybird-synthgen` | LANL & AC dataset generators with injected campaigns |
//! | [`core`] | `earlybird-core` | C&C detector, Algorithm 1 belief propagation, daily pipeline |
//! | [`eval`] | `earlybird-eval` | harnesses regenerating every table and figure of the paper |
//!
//! # Quickstart
//!
//! Detect the LANL challenge campaigns end to end:
//!
//! ```
//! use earlybird::eval::lanl::LanlRun;
//! use earlybird::synthgen::lanl::{LanlConfig, LanlGenerator};
//!
//! let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
//! let run = LanlRun::new(&challenge);
//! let (table3, _results) = run.table3();
//! let rates = table3.overall_rates();
//! assert!(rates.tdr > 0.5, "most campaign domains detected");
//! ```

#![forbid(unsafe_code)]

pub use earlybird_core as core;
pub use earlybird_eval as eval;
pub use earlybird_features as features;
pub use earlybird_intel as intel;
pub use earlybird_logmodel as logmodel;
pub use earlybird_pipeline as pipeline;
pub use earlybird_synthgen as synthgen;
pub use earlybird_timing as timing;
