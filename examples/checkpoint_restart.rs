//! Durability & crash recovery through the [`Persistence`] facade: run
//! the daily cycle with commits on the background worker, kill the
//! process, and restart without losing the months of accumulated baseline
//! the detector depends on.
//!
//! The shape of a production deployment:
//!
//! 1. `Persistence::new(dir, SnapshotPolicy::default().background())`
//!    owns the store and a background commit worker;
//! 2. after each day's `ingest_day`, `Persistence::commit` freezes the
//!    engine's persistable state under a short critical section and
//!    returns a `CommitHandle` immediately — serialization and the store
//!    commit run behind it while the next day's ingest proceeds, and
//!    `CommitHandle::wait` is the durability ack;
//! 3. on restart, `Persistence::restore` replays the chain and the
//!    service resumes **bit-identically** — same reports, same alerts,
//!    same sink sequence numbers — as if it had never died. Re-feeding an
//!    already-covered day is absorbed by the duplicate-day replay guard
//!    (at-least-once ingestion, no double alerts).
//!
//! Run with: `cargo run --release --example checkpoint_restart`

use earlybird::engine::{
    CollectingSink, DayBatch, EngineBuilder, LifecycleConfig, Persistence, SnapshotPolicy, StoreDir,
};
use earlybird::logmodel::Day;
use earlybird::synthgen::lanl::{LanlConfig, LanlGenerator};
use std::sync::Arc;

fn main() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let dataset = &challenge.dataset;
    let boot = dataset.meta.bootstrap_days as usize;
    let split = boot + 3; // the process "dies" after this many days
    let root = std::env::temp_dir().join("earlybird-example-restart");
    let _ = std::fs::remove_dir_all(&root);

    // ---- Reference: one engine that never restarts. --------------------
    let sink = CollectingSink::new();
    let reference_alerts = sink.handle();
    let mut reference = EngineBuilder::lanl()
        .auto_investigate(true)
        .sink(sink)
        .build(Arc::clone(&dataset.domains), dataset.meta.clone())
        .expect("valid config");
    for day in &dataset.days {
        reference.ingest_day(DayBatch::Dns(day));
    }

    // ---- Incarnation #1: bootstrap, then background daily commits. -----
    {
        let dir = StoreDir::open_or_create(&root, LifecycleConfig::default()).expect("store dir");
        let store = Persistence::new(dir, SnapshotPolicy::default().background());
        let mut engine = EngineBuilder::lanl()
            .auto_investigate(true)
            .sink(CollectingSink::new())
            .build(Arc::clone(&dataset.domains), dataset.meta.clone())
            .expect("valid config");
        for day in &dataset.days[..boot] {
            engine.ingest_day(DayBatch::Dns(day));
        }
        let full = store.commit(&engine).expect("freeze").wait().expect("full checkpoint commits");
        println!(
            "full snapshot: {} days, {} retained indexes, {} bytes (crc {:#010x})",
            full.block.days, full.block.retained_days, full.block.bytes, full.block.checksum
        );

        // Daily cycle: `commit` returns as soon as the day's state is
        // frozen, so the previous handle is awaited only after the *next*
        // day has been ingested — serialization always overlaps ingest.
        let mut inflight: Option<(Day, earlybird::engine::CommitHandle)> = None;
        for day in &dataset.days[boot..split] {
            engine.ingest_day(DayBatch::Dns(day));
            if let Some((d, handle)) = inflight.take() {
                let outcome = handle.wait().expect("segment durable");
                println!(
                    "  day segment {d:?}: {} bytes, durable at generation {}",
                    outcome.block.bytes, outcome.generation
                );
            }
            inflight = Some((day.day, store.commit(&engine).expect("freeze")));
        }
        if let Some((d, handle)) = inflight {
            let outcome = handle.wait().expect("segment durable");
            println!(
                "  day segment {d:?}: {} bytes, durable at generation {}",
                outcome.block.bytes, outcome.generation
            );
        }
        // Engine dropped here: the "crash". Only the directory survives.
    }

    // ---- Incarnation #2: cold restart from the store directory. --------
    let sink = CollectingSink::new();
    let restarted_alerts = sink.handle();
    let dir = StoreDir::open(&root, LifecycleConfig::default()).expect("reopen store dir");
    let store = Persistence::new(dir, SnapshotPolicy::default());
    let mut engine = store
        .restore(EngineBuilder::lanl().auto_investigate(true).sink(sink))
        .expect("chain restores");
    println!(
        "restored: {} operation days retained, {} profiled domains",
        engine.days().count(),
        engine.history().len()
    );

    // At-least-once replay of the day that was in flight when we died.
    let replay = engine.ingest_day(DayBatch::Dns(&dataset.days[split - 1]));
    assert!(replay.duplicate, "covered day absorbed as a replay");

    // Continue the stream to the end of the window.
    for day in &dataset.days[split..] {
        engine.ingest_day(DayBatch::Dns(day));
    }

    // ---- The restart was invisible. ------------------------------------
    let split_day = Day::new(split as u32);
    let expected: Vec<_> =
        reference_alerts.snapshot().into_iter().filter(|a| a.day >= split_day).collect();
    let actual = restarted_alerts.snapshot();
    assert_eq!(actual, expected, "post-restart alert stream must be bit-identical");
    assert_eq!(
        engine.days().collect::<Vec<_>>(),
        reference.days().collect::<Vec<_>>(),
        "retained day set must match"
    );
    println!(
        "post-restart alerts: {} (sequences {:?}..{:?}) — bit-identical to the uninterrupted run",
        actual.len(),
        actual.first().map(|a| a.sequence),
        actual.last().map(|a| a.sequence),
    );

    drop(store);
    let _ = std::fs::remove_dir_all(&root);
    println!("cold restart OK: durability layer verified");
}
