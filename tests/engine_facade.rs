//! The unified Engine facade: mixed DNS + proxy days through one engine,
//! facade/harness consistency, and alert-sink ordering & determinism.

use earlybird::engine::{
    Alert, CallbackSink, CollectingSink, DayBatch, Engine, EngineBuilder, Investigation, Verdict,
};
use earlybird::logmodel::{
    DatasetMeta, Day, DhcpLease, DhcpLog, DnsDayLog, DnsQuery, DnsRecordType, DomainInterner,
    HostId, HostKind, HttpMethod, HttpStatus, Ipv4, PathInterner, ProxyDayLog, ProxyRecord,
    Timestamp, TzOffset,
};
use earlybird::synthgen::lanl::{ChallengeCase, LanlConfig, LanlGenerator};
use std::sync::{Arc, Mutex};

fn mixed_meta() -> DatasetMeta {
    DatasetMeta {
        n_hosts: 10,
        host_kinds: vec![HostKind::Workstation; 10],
        internal_suffixes: vec![],
        bootstrap_days: 0,
        total_days: 2,
    }
}

/// Day 0 as DNS: hosts 1 and 2 beacon to `cc.alpha.c3` and touched the
/// dropper moments after infection; host 7 is innocent noise.
fn dns_day(domains: &DomainInterner) -> DnsDayLog {
    let mut queries = Vec::new();
    let mut push = |ts: u64, host: u32, name: &str, ip: [u8; 4]| {
        queries.push(DnsQuery {
            ts: Timestamp::from_secs(ts),
            src: HostId::new(host),
            src_ip: Ipv4::new(10, 0, 0, host as u8),
            qname: domains.intern(name),
            qtype: DnsRecordType::A,
            answer: Some(Ipv4::new(ip[0], ip[1], ip[2], ip[3])),
        });
    };
    for victim in [1u32, 2] {
        let infected_at = 30_000 + victim as u64 * 40;
        push(infected_at, victim, "drop.alpha.c3", [198, 51, 100, 7]);
        for beat in 0..25 {
            push(infected_at + 60 + beat * 600, victim, "cc.alpha.c3", [198, 51, 100, 99]);
        }
    }
    push(41_000, 7, "fine.noise.c3", [8, 8, 8, 8]);
    queries.sort_by_key(|q| q.ts);
    DnsDayLog { day: Day::new(0), queries }
}

/// Day 1 as proxy traffic: hosts 3 and 4 beacon to `cc.beta.c3` over HTTP
/// behind DHCP leases.
fn proxy_day(domains: &DomainInterner) -> (ProxyDayLog, DhcpLog) {
    let paths = PathInterner::new();
    let path = paths.intern("/ping");
    let day = Day::new(1);
    let mut dhcp = DhcpLog::new();
    for host in [3u32, 4] {
        dhcp.add(DhcpLease {
            ip: Ipv4::new(10, 9, 0, host as u8),
            host: HostId::new(host),
            start: day.start(),
            end: day.start() + 86_400,
        });
    }
    let mut records = Vec::new();
    for host in [3u32, 4] {
        for beat in 0..30 {
            records.push(ProxyRecord {
                ts_local: Timestamp::from_day_secs(day, 20_000 + host as u64 * 13 + beat * 300),
                tz: TzOffset::UTC,
                src_ip: Ipv4::new(10, 9, 0, host as u8),
                host: None,
                domain: domains.intern("cc.beta.c3"),
                dest_ip: Ipv4::new(203, 0, 113, 50),
                method: HttpMethod::Get,
                status: HttpStatus::OK,
                url_path: path,
                user_agent: None,
                referer: None,
            });
        }
    }
    records.sort_by_key(|r| r.ts_local);
    (ProxyDayLog { day, records }, dhcp)
}

#[test]
fn one_engine_ingests_mixed_dns_and_proxy_days() {
    let domains = Arc::new(DomainInterner::new());
    let sink = CollectingSink::new();
    let alerts = sink.handle();
    let mut engine = EngineBuilder::lanl()
        .auto_investigate(true)
        .sink(sink)
        .build(Arc::clone(&domains), mixed_meta())
        .expect("valid config");

    let dns = dns_day(&domains);
    let report0 = engine.ingest_day(DayBatch::Dns(&dns));
    let (proxy, dhcp) = proxy_day(&domains);
    let report1 = engine.ingest_day(DayBatch::Proxy { day: &proxy, dhcp: &dhcp });

    // Day 0 (DNS): the beacon is detected and the dropper joins the
    // community through belief propagation.
    let day0: Vec<&str> = report0.detections().map(|c| c.name.as_str()).collect();
    assert_eq!(day0, ["cc.alpha.c3"], "DNS-day C&C detection");
    let outcome0 = report0.outcome.as_ref().expect("auto-investigation ran");
    let labeled0: Vec<String> =
        outcome0.labeled.iter().map(|d| engine.resolve(d.domain).to_string()).collect();
    assert!(labeled0.contains(&"drop.alpha.c3".to_string()), "{labeled0:?}");
    assert!(!labeled0.contains(&"fine.noise.c3".to_string()));
    assert_eq!(
        outcome0.compromised_hosts.iter().copied().collect::<Vec<_>>(),
        [HostId::new(1), HostId::new(2)]
    );

    // Day 1 (proxy): normalization resolved the leases, and the HTTP
    // beacon is detected by the same engine.
    assert!(report1.norm_counts.unwrap().output > 0, "leases resolved");
    let day1: Vec<&str> = report1.detections().map(|c| c.name.as_str()).collect();
    assert_eq!(day1, ["cc.beta.c3"], "proxy-day C&C detection");

    // The alert stream covers both sources in order.
    let stream = alerts.snapshot();
    assert!(stream.len() >= 3, "C&C + related + next-day C&C: {stream:?}");
    assert!(stream.windows(2).all(|w| w[0].sequence < w[1].sequence));
    assert!(stream.iter().any(|a| a.name == "cc.alpha.c3" && a.day == Day::new(0)));
    assert!(stream.iter().any(|a| a.name == "cc.beta.c3" && a.day == Day::new(1)));
    assert!(stream.iter().any(|a| a.name == "drop.alpha.c3" && a.verdict == Verdict::Related));
}

/// Driving the engine by hand must agree with the `eval::lanl::LanlRun`
/// harness wiring (same builder defaults, ingest order, and per-case
/// investigation protocol). Equivalence with the *raw pre-redesign call
/// sequence* is asserted separately by the engine crate's
/// `investigate_matches_raw_call_sequence` unit test, which is allowed to
/// touch the low-level APIs.
#[test]
fn hand_driven_engine_matches_harness_campaign_detections() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let run = earlybird::eval::lanl::LanlRun::new(&challenge);

    let mut engine: Engine = EngineBuilder::lanl()
        .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
        .expect("valid config");
    for day in &challenge.dataset.days {
        engine.ingest_day(DayBatch::Dns(day));
    }

    for campaign in &challenge.campaigns {
        let investigation = match campaign.case {
            ChallengeCase::Four => Investigation::no_hint(),
            _ => Investigation::from_hint_hosts(campaign.hint_hosts.iter().copied()),
        };
        let mine = engine
            .investigate(campaign.day, investigation)
            .expect("campaign day retained")
            .reported_names();
        let harness = run.evaluate_campaign(campaign).detected;
        assert_eq!(mine, harness, "campaign on 3/{} must agree", campaign.march_day);
    }
}

/// Alert delivery is deterministic across identical runs and identical
/// across sinks attached to the same engine.
#[test]
fn alert_sinks_are_ordered_and_deterministic() {
    let run_once = || -> (Vec<Alert>, Vec<(u64, String)>) {
        let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
        let collecting = CollectingSink::new();
        let handle = collecting.handle();
        let callback_log: Arc<Mutex<Vec<(u64, String)>>> = Arc::new(Mutex::new(Vec::new()));
        let callback_store = Arc::clone(&callback_log);
        let mut engine = EngineBuilder::lanl()
            .auto_investigate(true)
            .sink(collecting)
            .sink(CallbackSink::new(move |a: &Alert| {
                callback_store.lock().unwrap().push((a.sequence, a.name.clone()));
            }))
            .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
            .expect("valid config");
        for day in &challenge.dataset.days {
            engine.ingest_day(DayBatch::Dns(day));
        }
        let log = callback_log.lock().unwrap().clone();
        (handle.snapshot(), log)
    };

    let (alerts_a, callback_a) = run_once();
    let (alerts_b, _) = run_once();

    assert!(!alerts_a.is_empty(), "campaign days must alert");
    // Strictly increasing sequence numbers — a total delivery order.
    assert!(alerts_a.windows(2).all(|w| w[0].sequence < w[1].sequence));
    // Both sinks observed the identical stream.
    let collected: Vec<(u64, String)> =
        alerts_a.iter().map(|a| (a.sequence, a.name.clone())).collect();
    assert_eq!(collected, callback_a);
    // Identical input produces the identical alert stream.
    assert_eq!(alerts_a, alerts_b);
}

/// `Engine::days()` / `Engine::reports()` guarantee ascending day order no
/// matter how days were fed in (the documented sorted-by-day contract).
#[test]
fn days_and_reports_iterate_in_sorted_day_order() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let mut engine = EngineBuilder::lanl()
        .bootstrap_days(0)
        .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
        .expect("valid config");
    // Deliberately scrambled ingestion order.
    for index in [4usize, 0, 6, 2, 5, 1, 3] {
        engine.ingest_day(DayBatch::Dns(&challenge.dataset.days[index]));
    }
    let days: Vec<Day> = engine.days().collect();
    assert_eq!(days.len(), 7);
    assert!(days.windows(2).all(|w| w[0] < w[1]), "days() must ascend: {days:?}");
    let report_days: Vec<Day> = engine.reports().map(|r| r.day).collect();
    assert!(report_days.windows(2).all(|w| w[0] < w[1]), "reports() must ascend");
    assert_eq!(report_days, days, "every scrambled day is an operation day here");
}

/// One panicking sink must not poison the registry or abort the daily
/// cycle: it is detached with a typed `EngineError::SinkPanicked`, the
/// surviving sinks receive every alert, and subsequent days keep flowing.
#[test]
fn panicking_sink_is_detached_without_aborting_the_cycle() {
    use earlybird::engine::{AlertSink, EngineError};

    struct ExplodingSink {
        emitted: usize,
    }
    impl AlertSink for ExplodingSink {
        fn emit(&mut self, alert: &Alert) {
            self.emitted += 1;
            if self.emitted >= 2 {
                panic!("sink backend gone: {}", alert.name);
            }
        }
    }

    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let collecting = CollectingSink::new();
    let survivors = collecting.handle();
    let mut engine = EngineBuilder::lanl()
        .auto_investigate(true)
        .sink(ExplodingSink { emitted: 0 })
        .sink(collecting)
        .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
        .expect("valid config");

    // Quiet the default panic hook: the sink's panic is expected and caught.
    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let mut failure_days = 0;
    for day in &challenge.dataset.days {
        let report = engine.try_ingest_day(DayBatch::Dns(day)).expect("cycle must complete");
        failure_days += usize::from(report.stages.sink_failures > 0);
    }
    std::panic::set_hook(hook);

    assert_eq!(failure_days, 1, "the sink dies once and only once");
    let errors = engine.take_sink_errors();
    assert_eq!(errors.len(), 1);
    assert!(
        matches!(&errors[0], EngineError::SinkPanicked { sink: 0, message } if message.contains("sink backend gone")),
        "{errors:?}"
    );
    assert!(engine.take_sink_errors().is_empty(), "errors drain once");

    // The surviving sink saw the full, uninterrupted alert stream.
    let reference = {
        let collecting = CollectingSink::new();
        let handle = collecting.handle();
        let mut engine = EngineBuilder::lanl()
            .auto_investigate(true)
            .sink(collecting)
            .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
            .expect("valid config");
        for day in &challenge.dataset.days {
            engine.ingest_day(DayBatch::Dns(day));
        }
        handle.snapshot()
    };
    assert!(!reference.is_empty());
    assert_eq!(survivors.snapshot(), reference, "survivor delivery is unaffected");
}

/// A C&C scoring-worker panic surfaces as a typed `WorkerPanicked` error —
/// even when every shard dies — and the day is still registered: the
/// replay guard stays armed (histories were already updated) and the
/// contact index remains available for post-mortem rescoring.
#[test]
fn scoring_worker_panic_is_typed_and_day_stays_replay_guarded() {
    use earlybird::engine::EngineError;
    use earlybird::features::{FeatureScaler, LinearRegression, RegressionModel};

    // A model whose scaler expects 3 features (the C&C extractor produces
    // 6) panics inside the scoring workers on the first automated domain.
    let xs: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, 1.0, (i % 2) as f64]).collect();
    let fit = LinearRegression::fit_ridge(&xs, &[0.0; 8], 1e-3).unwrap();
    let model = RegressionModel::new(&["a", "b", "c"], fit, 0.5);
    let scaler = FeatureScaler::identity(3);

    let domains = Arc::new(DomainInterner::new());
    let day = dns_day(&domains);
    let mut engine = EngineBuilder::lanl()
        .cc_model(earlybird::core::CcModel::Regression { model, scaler })
        .parallelism(2)
        .parallel_threshold(1)
        .build(Arc::clone(&domains), mixed_meta())
        .expect("valid config");

    let hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let err = engine.try_ingest_day(DayBatch::Dns(&day)).unwrap_err();
    std::panic::set_hook(hook);
    assert!(matches!(err, EngineError::WorkerPanicked(_)), "{err}");

    // The day is registered despite the failed tail.
    assert!(engine.report(Day::new(0)).is_some(), "report stored for replay guard");
    assert!(engine.day_index(Day::new(0)).is_some(), "index retained for post-mortem");
    let history_len = engine.history().len();
    let replay = engine.try_ingest_day(DayBatch::Dns(&day)).expect("replay is a no-op");
    assert!(replay.duplicate, "re-push absorbed by the replay guard");
    assert_eq!(engine.history().len(), history_len, "profiles not double-counted");
}
