//! Vendored, offline-buildable stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal serialization framework under the same crate name and import
//! paths the real `serde` would provide (`serde::{Serialize, Deserialize}`
//! plus the derive macros). The data model is a single JSON-like [`json::Value`]
//! tree; `serde_json` (also vendored) renders and parses it.
//!
//! Only the surface this workspace actually uses is implemented. It is not
//! wire-compatible with upstream serde and should be replaced by the real
//! crates whenever a registry is available.

pub mod json;

pub use serde_derive::{Deserialize, Serialize};

/// Types that can render themselves into a [`json::Value`] tree.
pub trait Serialize {
    /// Converts `self` into the JSON data model.
    fn serialize(&self) -> json::Value;
}

/// Types that can be reconstructed from a [`json::Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, reporting a [`json::DeError`] on shape mismatch.
    fn deserialize(v: &json::Value) -> Result<Self, json::DeError>;
}

/// Mirrors `serde::ser` so fully-qualified paths keep working.
pub mod ser {
    pub use crate::Serialize;
}

/// Mirrors `serde::de` so fully-qualified paths keep working.
pub mod de {
    pub use crate::Deserialize;
}

mod impls {
    use super::json::{DeError, Value};
    use super::{Deserialize, Serialize};
    use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
    use std::hash::{BuildHasher, Hash};

    // A `Value` is already the data model: serialization is identity.
    impl Serialize for Value {
        fn serialize(&self) -> Value {
            self.clone()
        }
    }

    impl Deserialize for Value {
        fn deserialize(v: &Value) -> Result<Self, DeError> {
            Ok(v.clone())
        }
    }

    macro_rules! uint_impl {
        ($($t:ty),*) => {$(
            impl Serialize for $t {
                fn serialize(&self) -> Value {
                    Value::UInt(*self as u64)
                }
            }
            impl Deserialize for $t {
                fn deserialize(v: &Value) -> Result<Self, DeError> {
                    let raw = v
                        .as_u64()
                        .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))?;
                    <$t>::try_from(raw)
                        .map_err(|_| DeError::new(concat!(stringify!($t), " out of range")))
                }
            }
        )*};
    }
    uint_impl!(u8, u16, u32, u64, usize);

    macro_rules! int_impl {
        ($($t:ty),*) => {$(
            impl Serialize for $t {
                fn serialize(&self) -> Value {
                    Value::Int(*self as i64)
                }
            }
            impl Deserialize for $t {
                fn deserialize(v: &Value) -> Result<Self, DeError> {
                    let raw = v
                        .as_i64()
                        .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))?;
                    <$t>::try_from(raw)
                        .map_err(|_| DeError::new(concat!(stringify!($t), " out of range")))
                }
            }
        )*};
    }
    int_impl!(i8, i16, i32, i64, isize);

    macro_rules! float_impl {
        ($($t:ty),*) => {$(
            impl Serialize for $t {
                fn serialize(&self) -> Value {
                    Value::Float(*self as f64)
                }
            }
            impl Deserialize for $t {
                fn deserialize(v: &Value) -> Result<Self, DeError> {
                    v.as_f64()
                        .map(|x| x as $t)
                        .ok_or_else(|| DeError::new(concat!("expected ", stringify!($t))))
                }
            }
        )*};
    }
    float_impl!(f32, f64);

    impl Serialize for bool {
        fn serialize(&self) -> Value {
            Value::Bool(*self)
        }
    }
    impl Deserialize for bool {
        fn deserialize(v: &Value) -> Result<Self, DeError> {
            v.as_bool().ok_or_else(|| DeError::new("expected bool"))
        }
    }

    impl Serialize for String {
        fn serialize(&self) -> Value {
            Value::Str(self.clone())
        }
    }
    impl Deserialize for String {
        fn deserialize(v: &Value) -> Result<Self, DeError> {
            v.as_str().map(str::to_owned).ok_or_else(|| DeError::new("expected string"))
        }
    }
    impl Serialize for str {
        fn serialize(&self) -> Value {
            Value::Str(self.to_owned())
        }
    }
    impl Serialize for std::sync::Arc<str> {
        fn serialize(&self) -> Value {
            Value::Str(self.to_string())
        }
    }
    impl Deserialize for std::sync::Arc<str> {
        fn deserialize(v: &Value) -> Result<Self, DeError> {
            v.as_str().map(std::sync::Arc::from).ok_or_else(|| DeError::new("expected string"))
        }
    }

    impl<T: Serialize + ?Sized> Serialize for &T {
        fn serialize(&self) -> Value {
            (**self).serialize()
        }
    }
    impl<T: Serialize + ?Sized> Serialize for Box<T> {
        fn serialize(&self) -> Value {
            (**self).serialize()
        }
    }
    impl<T: Deserialize> Deserialize for Box<T> {
        fn deserialize(v: &Value) -> Result<Self, DeError> {
            T::deserialize(v).map(Box::new)
        }
    }

    impl<T: Serialize> Serialize for Option<T> {
        fn serialize(&self) -> Value {
            match self {
                Some(x) => x.serialize(),
                None => Value::Null,
            }
        }
    }
    impl<T: Deserialize> Deserialize for Option<T> {
        fn deserialize(v: &Value) -> Result<Self, DeError> {
            match v {
                Value::Null => Ok(None),
                other => T::deserialize(other).map(Some),
            }
        }
    }

    impl<T: Serialize> Serialize for Vec<T> {
        fn serialize(&self) -> Value {
            Value::Array(self.iter().map(Serialize::serialize).collect())
        }
    }
    impl<T: Deserialize> Deserialize for Vec<T> {
        fn deserialize(v: &Value) -> Result<Self, DeError> {
            v.as_array()
                .ok_or_else(|| DeError::new("expected array"))?
                .iter()
                .map(T::deserialize)
                .collect()
        }
    }
    impl<T: Serialize> Serialize for [T] {
        fn serialize(&self) -> Value {
            Value::Array(self.iter().map(Serialize::serialize).collect())
        }
    }

    impl<T: Serialize + Ord> Serialize for BTreeSet<T> {
        fn serialize(&self) -> Value {
            Value::Array(self.iter().map(Serialize::serialize).collect())
        }
    }
    impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
        fn deserialize(v: &Value) -> Result<Self, DeError> {
            v.as_array()
                .ok_or_else(|| DeError::new("expected array"))?
                .iter()
                .map(T::deserialize)
                .collect()
        }
    }
    impl<T: Serialize + Eq + Hash, S: BuildHasher> Serialize for HashSet<T, S> {
        fn serialize(&self) -> Value {
            // Deterministic output: sort the rendered elements.
            let mut items: Vec<Value> = self.iter().map(Serialize::serialize).collect();
            items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            Value::Array(items)
        }
    }
    impl<T: Deserialize + Eq + Hash, S: BuildHasher + Default> Deserialize for HashSet<T, S> {
        fn deserialize(v: &Value) -> Result<Self, DeError> {
            v.as_array()
                .ok_or_else(|| DeError::new("expected array"))?
                .iter()
                .map(T::deserialize)
                .collect()
        }
    }

    fn map_pairs<'a, K: Serialize + 'a, V: Serialize + 'a>(
        it: impl Iterator<Item = (&'a K, &'a V)>,
    ) -> Value {
        Value::Array(it.map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()])).collect())
    }

    fn pairs_back<K: Deserialize, V: Deserialize, M: FromIterator<(K, V)>>(
        v: &Value,
    ) -> Result<M, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::new("expected array of pairs"))?
            .iter()
            .map(|pair| {
                let items = pair.as_array().ok_or_else(|| DeError::new("expected pair"))?;
                if items.len() != 2 {
                    return Err(DeError::new("expected [key, value] pair"));
                }
                Ok((K::deserialize(&items[0])?, V::deserialize(&items[1])?))
            })
            .collect()
    }

    impl<K: Serialize + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
        fn serialize(&self) -> Value {
            map_pairs(self.iter())
        }
    }
    impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
        fn deserialize(v: &Value) -> Result<Self, DeError> {
            pairs_back(v)
        }
    }
    impl<K: Serialize + Eq + Hash, V: Serialize, S: BuildHasher> Serialize for HashMap<K, V, S> {
        fn serialize(&self) -> Value {
            let mut items: Vec<Value> = self
                .iter()
                .map(|(k, v)| Value::Array(vec![k.serialize(), v.serialize()]))
                .collect();
            items.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
            Value::Array(items)
        }
    }
    impl<K: Deserialize + Eq + Hash, V: Deserialize, S: BuildHasher + Default> Deserialize
        for HashMap<K, V, S>
    {
        fn deserialize(v: &Value) -> Result<Self, DeError> {
            pairs_back(v)
        }
    }

    macro_rules! tuple_impl {
        ($(($($n:tt $t:ident),+)),+) => {$(
            impl<$($t: Serialize),+> Serialize for ($($t,)+) {
                fn serialize(&self) -> Value {
                    Value::Array(vec![$(self.$n.serialize()),+])
                }
            }
            impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
                fn deserialize(v: &Value) -> Result<Self, DeError> {
                    let items = v.as_array().ok_or_else(|| DeError::new("expected tuple array"))?;
                    let expected = [$($n),+].len();
                    if items.len() != expected {
                        return Err(DeError::new("tuple arity mismatch"));
                    }
                    Ok(($($t::deserialize(&items[$n])?,)+))
                }
            }
        )+};
    }
    tuple_impl!(
        (0 A),
        (0 A, 1 B),
        (0 A, 1 B, 2 C),
        (0 A, 1 B, 2 C, 3 D),
        (0 A, 1 B, 2 C, 3 D, 4 E)
    );
}
