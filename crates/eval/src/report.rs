//! Minimal fixed-width text tables for experiment output.

/// Renders a table with a header row and aligned columns.
///
/// # Example
///
/// ```
/// use earlybird_eval::report::render_table;
/// let t = render_table(
///     &["case", "TP"],
///     &[vec!["1".into(), "6".into()], vec!["2".into(), "8".into()]],
/// );
/// assert!(t.contains("case"));
/// assert!(t.lines().count() >= 4);
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let sep: String = {
        let mut s = String::from("+");
        for w in &widths {
            s.push_str(&"-".repeat(w + 2));
            s.push('+');
        }
        s
    };
    let render_row = |cells: &[String]| {
        let mut s = String::from("|");
        for (i, w) in widths.iter().enumerate() {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            s.push_str(&format!(" {cell:>w$} |", w = w));
        }
        s
    };
    let mut out = String::new();
    out.push_str(&sep);
    out.push('\n');
    out.push_str(&render_row(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>()));
    out.push('\n');
    out.push_str(&sep);
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row));
        out.push('\n');
    }
    out.push_str(&sep);
    out.push('\n');
    out
}

/// Formats a float with the given number of decimals.
pub fn fmt_f(x: f64, decimals: usize) -> String {
    format!("{x:.decimals$}")
}

/// Downsamples a sorted value series into `n` CDF points `(value,
/// fraction)` suitable for plotting or printing.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn cdf_points(sorted: &[f64], n: usize) -> Vec<(f64, f64)> {
    assert!(n > 0, "need at least one point");
    if sorted.is_empty() {
        return Vec::new();
    }
    let len = sorted.len();
    (1..=n)
        .map(|k| {
            let idx = (k * len / n).max(1) - 1;
            (sorted[idx], (idx + 1) as f64 / len as f64)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let t = render_table(
            &["name", "count"],
            &[vec!["a".into(), "1".into()], vec!["longer".into(), "12345".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert!(lines.iter().all(|l| l.len() == lines[0].len()), "all lines equal width");
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let data: Vec<f64> = (1..=100).map(|x| x as f64).collect();
        let pts = cdf_points(&data, 10);
        assert_eq!(pts.len(), 10);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn cdf_of_empty_is_empty() {
        assert!(cdf_points(&[], 5).is_empty());
    }

    #[test]
    fn fmt_f_rounds() {
        assert_eq!(fmt_f(0.98333, 2), "0.98");
    }
}
