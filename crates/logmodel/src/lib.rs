//! Core data model for enterprise log mining.
//!
//! This crate defines the vocabulary types shared by every other `earlybird`
//! crate: simulation [`Timestamp`]s and [`Day`]s, internal [`HostId`]s,
//! interned [`DomainSym`] / [`UaSym`] / [`PathSym`] symbols, [`Ipv4`]
//! addresses with subnet arithmetic, and the two raw record types the DSN'15
//! paper mines — [`DnsQuery`] (LANL-style DNS logs) and [`ProxyRecord`]
//! (AC-style web-proxy logs) — together with the [`DnsDataset`] /
//! [`ProxyDataset`] containers that bundle records with their string
//! interners and DHCP/VPN lease logs.
//!
//! # Example
//!
//! ```
//! use earlybird_logmodel::{Day, DomainInterner, Timestamp};
//!
//! let domains = DomainInterner::new();
//! let evil = domains.intern("update.badcdn.info");
//! assert_eq!(&*domains.resolve(evil), "update.badcdn.info");
//!
//! let ts = Timestamp::from_day_secs(Day::new(3), 3_600);
//! assert_eq!(ts.day(), Day::new(3));
//! assert_eq!(ts.secs_of_day(), 3_600);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod dataset;
pub mod dns;
pub mod domain;
pub mod hash;
pub mod host;
pub mod http;
pub mod intern;
pub mod ip;
pub mod published;
pub mod scan;
pub mod time;

pub use codec::{
    format_dns_line, format_proxy_line, parse_dns_line, parse_dns_line_unassigned, parse_dns_lines,
    parse_dns_log, parse_dns_span, parse_proxy_line, parse_proxy_lines, parse_proxy_log,
    parse_proxy_span, payload_line, HostMapper, LineChunks, ParseLogError, ParsedChunk,
};
pub use dataset::{
    DatasetMeta, DhcpLease, DhcpLog, DnsDataset, DnsDayLog, ProxyDataset, ProxyDayLog,
};
pub use dns::{DnsQuery, DnsRecordType};
pub use domain::{fold_domain, label_count, top_level_domain};
pub use hash::{FastHasher, FastMap, FastSet, FastState};
pub use host::{HostId, HostKind};
pub use http::{HttpMethod, HttpStatus, ProxyRecord};
pub use intern::{
    DomainInterner, DomainSym, DomainTag, InternerReader, PathInterner, PathSym, PathTag, Symbol,
    TypedInterner, UaInterner, UaSym, UaTag,
};
pub use ip::{Ipv4, ParseIpv4Error, Subnet16, Subnet24};
pub use published::Published;
pub use time::{Day, Timestamp, TzOffset, SECONDS_PER_DAY};
