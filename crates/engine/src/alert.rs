//! The typed alert layer: what the engine tells the SOC, and where.

use earlybird_core::LabelReason;
use earlybird_logmodel::{Day, DomainSym, HostId};
use serde::{Deserialize, Serialize};
use std::io::Write;
use std::sync::{Arc, Mutex};

/// Why a domain was flagged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Verdict {
    /// Flagged by the C&C communication detector (`Detect_C&C`).
    CommandAndControl,
    /// Labeled by similarity expansion during belief propagation.
    Related,
    /// Provided as a seed (SOC hint / IOC) and confirmed present today.
    SeedConfirmed,
}

impl Verdict {
    /// Maps a belief-propagation label reason onto an alert verdict.
    pub fn from_reason(reason: LabelReason) -> Self {
        match reason {
            LabelReason::CcDetected => Verdict::CommandAndControl,
            LabelReason::Similarity => Verdict::Related,
            LabelReason::Seed => Verdict::SeedConfirmed,
        }
    }
}

/// One suspicious-domain alert.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Alert {
    /// Engine-wide monotonically increasing sequence number (delivery
    /// order is deterministic for a deterministic input stream).
    pub sequence: u64,
    /// Day the evidence was observed.
    pub day: Day,
    /// The flagged (folded) domain.
    pub domain: DomainSym,
    /// Resolved domain name.
    pub name: String,
    /// Model score at flagging time (C&C score, similarity score, or 1.0
    /// for confirmed seeds).
    pub score: f64,
    /// Why the domain was flagged.
    pub verdict: Verdict,
    /// Belief-propagation iteration that flagged it (0 for the daily C&C
    /// pass and for seeds).
    pub iteration: usize,
    /// Estimated beacon period, when the C&C detector produced evidence.
    pub period_secs: Option<u64>,
    /// Internal hosts contacting the domain today.
    pub hosts: Vec<HostId>,
}

/// A pluggable alert consumer.
///
/// Sinks receive every alert the engine emits — from the daily ingest cycle
/// and from explicit [`crate::Engine::investigate`] calls — in sequence
/// order.
pub trait AlertSink {
    /// Consumes one alert.
    fn emit(&mut self, alert: &Alert);
}

/// Shared handle to the alerts gathered by a [`CollectingSink`].
#[derive(Clone, Debug, Default)]
pub struct CollectedAlerts {
    store: Arc<Mutex<Vec<Alert>>>,
}

impl CollectedAlerts {
    /// A snapshot of all alerts collected so far, in delivery order.
    pub fn snapshot(&self) -> Vec<Alert> {
        self.store.lock().expect("alert store poisoned").clone()
    }

    /// Number of alerts collected so far.
    pub fn len(&self) -> usize {
        self.store.lock().expect("alert store poisoned").len()
    }

    /// Whether no alert has been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An in-memory sink; read the results through its [`CollectedAlerts`]
/// handle (which stays valid after the sink moves into the engine).
#[derive(Debug, Default)]
pub struct CollectingSink {
    store: Arc<Mutex<Vec<Alert>>>,
}

impl CollectingSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared handle for reading collected alerts later.
    pub fn handle(&self) -> CollectedAlerts {
        CollectedAlerts { store: Arc::clone(&self.store) }
    }
}

impl AlertSink for CollectingSink {
    fn emit(&mut self, alert: &Alert) {
        self.store.lock().expect("alert store poisoned").push(alert.clone());
    }
}

/// Shared, queryable handle over the alerts emitted through an
/// [`AlertLogSink`] — the service-facing alert store.
///
/// Alerts are appended in engine delivery order, which is globally
/// sequence-ordered (sequence numbers are allocated under the sink lock),
/// so cursor reads are a binary search. After a restart the log starts
/// empty while the engine's sequence counter resumes from the snapshot —
/// so cursors held by clients stay monotone across restarts; they simply
/// see no replayed alerts for days that were already durable.
#[derive(Clone, Debug, Default)]
pub struct AlertLog {
    store: Arc<Mutex<Vec<Alert>>>,
}

impl AlertLog {
    /// All alerts with `sequence >= since`, in sequence order.
    pub fn since(&self, since: u64) -> Vec<Alert> {
        let log = self.store.lock().expect("alert log poisoned");
        let start = log.partition_point(|a| a.sequence < since);
        log[start..].to_vec()
    }

    /// One past the highest sequence in the log (`0` when empty): the
    /// cursor a client should pass to [`AlertLog::since`] to read only
    /// alerts emitted after this call.
    pub fn next_sequence(&self) -> u64 {
        let log = self.store.lock().expect("alert log poisoned");
        log.last().map_or(0, |a| a.sequence + 1)
    }

    /// Number of alerts in the log.
    pub fn len(&self) -> usize {
        self.store.lock().expect("alert log poisoned").len()
    }

    /// Whether the log holds no alert.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An in-memory sink backing an [`AlertLog`] query handle; the handle stays
/// valid after the sink moves into the engine.
#[derive(Debug, Default)]
pub struct AlertLogSink {
    store: Arc<Mutex<Vec<Alert>>>,
}

impl AlertLogSink {
    /// Creates an empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The shared query handle.
    pub fn log(&self) -> AlertLog {
        AlertLog { store: Arc::clone(&self.store) }
    }
}

impl AlertSink for AlertLogSink {
    fn emit(&mut self, alert: &Alert) {
        self.store.lock().expect("alert log poisoned").push(alert.clone());
    }
}

/// Shared counter of alerts a [`JsonLinesSink`] failed to write (full disk,
/// closed pipe, ...). Stays valid after the sink moves into the engine.
#[derive(Clone, Debug, Default)]
pub struct WriteErrors {
    count: Arc<std::sync::atomic::AtomicU64>,
}

impl WriteErrors {
    /// Number of alerts dropped by the sink so far.
    pub fn count(&self) -> u64 {
        self.count.load(std::sync::atomic::Ordering::SeqCst)
    }
}

/// Streams each alert as one JSON object per line to any writer.
///
/// Write failures never panic the engine; they are counted and observable
/// through [`JsonLinesSink::write_errors`] (and, because alert sequence
/// numbers are gapless, detectable downstream as sequence gaps).
pub struct JsonLinesSink<W: Write> {
    writer: W,
    errors: WriteErrors,
}

impl<W: Write> JsonLinesSink<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        JsonLinesSink { writer, errors: WriteErrors::default() }
    }

    /// The shared dropped-write counter, for checking after the sink moves
    /// into the engine.
    pub fn write_errors(&self) -> WriteErrors {
        self.errors.clone()
    }

    /// Unwraps the writer (e.g. to inspect an in-memory buffer).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write> AlertSink for JsonLinesSink<W> {
    fn emit(&mut self, alert: &Alert) {
        let line = serde_json::to_string(alert).expect("alerts serialize");
        if writeln!(self.writer, "{line}").is_err() {
            self.errors.count.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        }
    }
}

/// Invokes a closure per alert.
pub struct CallbackSink<F: FnMut(&Alert)> {
    callback: F,
}

impl<F: FnMut(&Alert)> CallbackSink<F> {
    /// Wraps `callback`.
    pub fn new(callback: F) -> Self {
        CallbackSink { callback }
    }
}

impl<F: FnMut(&Alert)> AlertSink for CallbackSink<F> {
    fn emit(&mut self, alert: &Alert) {
        (self.callback)(alert);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alert(sequence: u64) -> Alert {
        Alert {
            sequence,
            day: Day::new(3),
            domain: {
                let i = earlybird_logmodel::DomainInterner::new();
                i.intern("x.example")
            },
            name: "x.example".into(),
            score: 0.5,
            verdict: Verdict::CommandAndControl,
            iteration: 0,
            period_secs: Some(600),
            hosts: vec![HostId::new(4)],
        }
    }

    #[test]
    fn collecting_sink_preserves_order() {
        let sink = CollectingSink::new();
        let handle = sink.handle();
        let mut sink: Box<dyn AlertSink> = Box::new(sink);
        for s in 0..5 {
            sink.emit(&alert(s));
        }
        let got = handle.snapshot();
        assert_eq!(got.len(), 5);
        assert!(got.windows(2).all(|w| w[0].sequence < w[1].sequence));
    }

    #[test]
    fn json_lines_sink_writes_one_object_per_line() {
        let mut sink = JsonLinesSink::new(Vec::new());
        sink.emit(&alert(0));
        sink.emit(&alert(1));
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.contains("\"x.example\"")));
    }

    #[test]
    fn json_lines_sink_counts_write_failures() {
        struct FailingWriter;
        impl Write for FailingWriter {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("disk full"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonLinesSink::new(FailingWriter);
        let errors = sink.write_errors();
        sink.emit(&alert(0));
        sink.emit(&alert(1));
        assert_eq!(errors.count(), 2, "dropped alerts are observable");
    }

    #[test]
    fn alert_log_cursor_reads_are_half_open() {
        let sink = AlertLogSink::new();
        let log = sink.log();
        assert_eq!(log.next_sequence(), 0, "empty log starts the cursor at 0");
        let mut sink: Box<dyn AlertSink> = Box::new(sink);
        for s in [2u64, 5, 9] {
            sink.emit(&alert(s));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.since(0).len(), 3);
        assert_eq!(log.since(3).iter().map(|a| a.sequence).collect::<Vec<_>>(), vec![5, 9]);
        assert_eq!(log.since(9).len(), 1, "since is inclusive");
        assert_eq!(log.next_sequence(), 10);
        assert!(log.since(log.next_sequence()).is_empty(), "next_sequence sees only new alerts");
    }

    #[test]
    fn callback_sink_invokes() {
        let mut seen = Vec::new();
        {
            let mut sink = CallbackSink::new(|a: &Alert| seen.push(a.sequence));
            sink.emit(&alert(7));
        }
        assert_eq!(seen, vec![7]);
    }
}
