//! The JSON-like data model shared by the vendored `serde` and `serde_json`.

use std::fmt;

/// A JSON value tree. Object keys keep insertion order so struct output is
/// stable and matches field declaration order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (kept separate so `u64::MAX` round-trips).
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object pairs, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as `u64`, if numeric and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(x) => Some(*x),
            Value::Int(x) => u64::try_from(*x).ok(),
            Value::Float(x) if x.fract() == 0.0 && *x >= 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as `i64`, if numeric and in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(x) => Some(*x),
            Value::UInt(x) => i64::try_from(*x).ok(),
            Value::Float(x) if x.fract() == 0.0 && x.abs() <= i64::MAX as f64 => Some(*x as i64),
            _ => None,
        }
    }

    /// The value as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(x) => Some(*x as f64),
            Value::UInt(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Fetches a required object field (used by generated `Deserialize` impls).
pub fn get_field<'a>(pairs: &'a [(String, Value)], key: &str) -> Result<&'a Value, DeError> {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::new(format!("missing field `{key}`")))
}

/// A deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError { message: message.into() }
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.message)
    }
}

impl std::error::Error for DeError {}
