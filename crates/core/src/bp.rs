//! Algorithm 1: belief propagation over the incremental bipartite
//! host↔domain graph (§IV-B).
//!
//! Starting from seed hosts (and optionally seed domains), each iteration
//! first sweeps the candidate rare domains with `Detect_C&C`; if none fire,
//! it scores every candidate with `Compute_SimScore` against the current
//! malicious set and labels the top scorer if it clears `T_s`. Newly labeled
//! domains expand the compromised-host set through `dom_host`, which in turn
//! expands the candidate set through `host_rdom`. The algorithm stops when
//! no new domain is labeled or the iteration cap is reached.

use crate::cc::CcDetector;
use crate::context::DayContext;
use crate::similarity::SimScorer;
use earlybird_logmodel::{DomainSym, HostId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// How a domain ended up labeled malicious.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LabelReason {
    /// Provided as a seed (SOC hint or C&C-detector output).
    Seed,
    /// Flagged by `Detect_C&C` during an iteration.
    CcDetected,
    /// Labeled as the top similarity scorer of an iteration.
    Similarity,
}

/// A labeled domain with its score and provenance.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScoredDomain {
    /// The (folded) domain.
    pub domain: DomainSym,
    /// Score at labeling time (C&C score, similarity score, or 1.0 for
    /// seeds).
    pub score: f64,
    /// Labeling provenance.
    pub reason: LabelReason,
    /// Iteration that labeled the domain (0 for seeds).
    pub iteration: usize,
}

/// Trace of one belief-propagation iteration (the provenance shown in
/// Fig. 4).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct IterationTrace {
    /// Iteration number, starting at 1.
    pub iteration: usize,
    /// Domains labeled this iteration.
    pub labeled: Vec<ScoredDomain>,
    /// Hosts newly marked compromised this iteration.
    pub new_hosts: Vec<HostId>,
    /// Candidate pool size (`|R \ M|`) at the start of the iteration.
    pub candidates: usize,
    /// Best similarity score observed (if the similarity path ran).
    pub best_similarity: Option<f64>,
}

/// Seeds for a belief-propagation run.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Seeds {
    /// Known compromised hosts (SOC hints, or hosts contacting detected C&C
    /// domains).
    pub hosts: Vec<HostId>,
    /// Known malicious domains (IOCs, or detected C&C domains).
    pub domains: Vec<DomainSym>,
}

impl Seeds {
    /// Seeds from hint hosts only (LANL cases 1–3).
    pub fn from_hosts(hosts: impl IntoIterator<Item = HostId>) -> Self {
        Seeds { hosts: hosts.into_iter().collect(), domains: Vec::new() }
    }

    /// Seeds from domains plus the hosts contacting them (no-hint mode and
    /// SOC-hints mode with IOC domains).
    pub fn from_domains_with_hosts(
        ctx: &DayContext<'_>,
        domains: impl IntoIterator<Item = DomainSym>,
    ) -> Self {
        let domains: Vec<DomainSym> = domains.into_iter().collect();
        let mut hosts = BTreeSet::new();
        for &d in &domains {
            if let Some(hs) = ctx.index.hosts_of(d) {
                hosts.extend(hs.iter().copied());
            }
        }
        Seeds { hosts: hosts.into_iter().collect(), domains }
    }
}

/// Belief-propagation configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BpConfig {
    /// Maximum iterations ("we ran the belief propagation algorithm for a
    /// maximum of five iterations", §V-C).
    pub max_iterations: usize,
}

impl BpConfig {
    /// The LANL configuration: 5 iterations.
    pub fn lanl_default() -> Self {
        BpConfig { max_iterations: 5 }
    }

    /// The enterprise configuration: a larger cap, since AC communities are
    /// bigger (Fig. 8 has 12 domains).
    pub fn enterprise_default() -> Self {
        BpConfig { max_iterations: 30 }
    }
}

/// Result of a belief-propagation run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BpOutcome {
    /// All labeled malicious domains (seeds first, then in labeling order).
    pub labeled: Vec<ScoredDomain>,
    /// The final compromised-host set `H`.
    pub compromised_hosts: BTreeSet<HostId>,
    /// Per-iteration traces.
    pub iterations: Vec<IterationTrace>,
}

impl BpOutcome {
    /// Labeled domains excluding the seeds (the paper reports detections
    /// "not considering the seeds provided by SOC", §VI-D).
    pub fn detected(&self) -> impl Iterator<Item = &ScoredDomain> {
        self.labeled.iter().filter(|d| d.reason != LabelReason::Seed)
    }

    /// Detected domains ordered by descending score ("an ordered list of
    /// suspicious domains presented to SOC").
    pub fn detected_by_suspiciousness(&self) -> Vec<ScoredDomain> {
        let mut v: Vec<ScoredDomain> = self.detected().copied().collect();
        v.sort_by(|a, b| b.score.partial_cmp(&a.score).expect("scores are finite"));
        v
    }
}

/// Runs Algorithm 1.
///
/// `cc` implements `Detect_C&C`; pass `None` to disable the per-iteration
/// C&C sweep (pure similarity expansion). `sim` implements
/// `Compute_SimScore` with its threshold `T_s`.
///
/// Internal plumbing: applications run this through `earlybird-engine`'s
/// `Engine::investigate` (explicit hint modes) or the engine's
/// auto-investigation during ingest.
pub fn belief_propagation(
    ctx: &DayContext<'_>,
    cc: Option<&CcDetector>,
    sim: &SimScorer,
    seeds: &Seeds,
    cfg: &BpConfig,
) -> BpOutcome {
    let mut hosts: BTreeSet<HostId> = seeds.hosts.iter().copied().collect();
    let mut malicious: BTreeSet<DomainSym> = seeds.domains.iter().copied().collect();
    let mut labeled: Vec<ScoredDomain> = seeds
        .domains
        .iter()
        .map(|&domain| ScoredDomain { domain, score: 1.0, reason: LabelReason::Seed, iteration: 0 })
        .collect();

    // R: rare domains contacted by hosts in H.
    let mut candidates: BTreeSet<DomainSym> = BTreeSet::new();
    for &h in &hosts {
        if let Some(rdoms) = ctx.index.rare_domains_of(h) {
            candidates.extend(rdoms.iter().copied());
        }
    }

    let mut iterations = Vec::new();
    for iteration in 1..=cfg.max_iterations {
        let pool: Vec<DomainSym> =
            candidates.iter().copied().filter(|d| !malicious.contains(d)).collect();
        let mut trace = IterationTrace {
            iteration,
            labeled: Vec::new(),
            new_hosts: Vec::new(),
            candidates: pool.len(),
            best_similarity: None,
        };

        // Phase 1: Detect_C&C over the candidate pool.
        let mut newly: Vec<ScoredDomain> = Vec::new();
        if let Some(cc) = cc {
            for &d in &pool {
                if let Some(det) = cc.evaluate(ctx, d) {
                    newly.push(ScoredDomain {
                        domain: d,
                        score: det.score,
                        reason: LabelReason::CcDetected,
                        iteration,
                    });
                }
            }
        }

        // Phase 2: top similarity scorer, if no C&C fired.
        if newly.is_empty() {
            let mut best: Option<(DomainSym, f64)> = None;
            for &d in &pool {
                let s = sim.score(ctx, d, &malicious);
                if best.is_none_or(|(_, bs)| s > bs) {
                    best = Some((d, s));
                }
            }
            if let Some((d, s)) = best {
                trace.best_similarity = Some(s);
                if s >= sim.threshold() {
                    newly.push(ScoredDomain {
                        domain: d,
                        score: s,
                        reason: LabelReason::Similarity,
                        iteration,
                    });
                }
            }
        }

        if newly.is_empty() {
            iterations.push(trace);
            break;
        }

        // Expand M, H, and R.
        for nd in &newly {
            malicious.insert(nd.domain);
            labeled.push(*nd);
            if let Some(hs) = ctx.index.hosts_of(nd.domain) {
                for &h in hs {
                    if hosts.insert(h) {
                        trace.new_hosts.push(h);
                        if let Some(rdoms) = ctx.index.rare_domains_of(h) {
                            candidates.extend(rdoms.iter().copied());
                        }
                    }
                }
            }
        }
        trace.labeled = newly;
        iterations.push(trace);
    }

    BpOutcome { labeled, compromised_hosts: hosts, iterations }
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlybird_logmodel::{Day, DomainInterner, Ipv4, Timestamp};
    use earlybird_pipeline::{Contact, DayIndex, DomainHistory, RareSieve};

    struct World {
        folded: DomainInterner,
        contacts: Vec<Contact>,
    }

    impl World {
        fn new() -> Self {
            World { folded: DomainInterner::new(), contacts: Vec::new() }
        }

        fn visit(&mut self, ts: u64, host: u32, name: &str, ip: Option<Ipv4>) {
            self.contacts.push(Contact {
                ts: Timestamp::from_secs(ts),
                host: HostId::new(host),
                domain: self.folded.intern(name),
                dest_ip: ip,
                http: None,
            });
        }

        fn beacon(&mut self, host: u32, name: &str, period: u64, n: u64, phase: u64, ip: Ipv4) {
            for i in 0..n {
                self.visit(phase + i * period, host, name, Some(ip));
            }
        }

        fn index(&mut self) -> DayIndex {
            self.contacts.sort_by_key(|c| c.ts);
            let rare = RareSieve::paper_default().extract(&self.contacts, &DomainHistory::new());
            DayIndex::build(Day::new(0), &self.contacts, rare, None)
        }
    }

    fn ctx<'a>(index: &'a DayIndex, folded: &'a DomainInterner) -> DayContext<'a> {
        DayContext { day: Day::new(0), index, folded, whois: None, whois_defaults: (0.0, 0.0) }
    }

    /// Builds the Fig. 4 scenario: a hint host whose C&C beacons are found
    /// first, then related domains labeled by similarity.
    fn fig4_world() -> World {
        let mut w = World::new();
        let cc_ip = Ipv4::new(191, 146, 166, 145);
        let d2_ip = Ipv4::new(191, 146, 166, 31); // same /24 as d3
        let d3_ip = Ipv4::new(191, 146, 166, 77);
        let d4_ip = Ipv4::new(191, 146, 224, 111); // same /16 only

        // Two victims beacon to the C&C at 600 s.
        w.beacon(1, "rainbow.c3", 600, 40, 36_000, cc_ip);
        w.beacon(2, "rainbow.c3", 602, 40, 36_100, cc_ip);
        // Victim 1's infection burst: delivery + payload close in time.
        w.visit(35_900, 1, "fluttershy.c3", Some(d2_ip));
        w.visit(35_960, 1, "pinkiepie.c3", Some(d3_ip));
        // Victim 2 contacts the /16 neighbor, not correlated in time.
        w.visit(50_000, 2, "applejack.c3", Some(d4_ip));
        // Unrelated noise visited by an unrelated host.
        w.visit(20_000, 9, "noise.c3", Some(Ipv4::new(8, 8, 8, 8)));
        w
    }

    #[test]
    fn case3_expansion_from_hint_host() {
        let mut w = fig4_world();
        let index = w.index();
        let ctx = ctx(&index, &w.folded);
        let cc = CcDetector::lanl_default();
        let sim = SimScorer::lanl_default();
        let seeds = Seeds::from_hosts([HostId::new(1)]);
        let out = belief_propagation(&ctx, Some(&cc), &sim, &seeds, &BpConfig::lanl_default());

        let names: Vec<String> =
            out.labeled.iter().map(|d| w.folded.resolve(d.domain).to_string()).collect();
        assert!(names.contains(&"rainbow.c3".to_string()), "C&C found: {names:?}");
        assert!(names.contains(&"fluttershy.c3".to_string()));
        assert!(names.contains(&"pinkiepie.c3".to_string()));
        assert!(names.contains(&"applejack.c3".to_string()), "/16 neighbor of labeled set");
        assert!(!names.contains(&"noise.c3".to_string()), "noise must stay out");
        // Host 2 discovered through the shared C&C domain.
        assert!(out.compromised_hosts.contains(&HostId::new(2)));
        assert!(!out.compromised_hosts.contains(&HostId::new(9)));
        // First labeled domain is the C&C, via the C&C phase.
        assert_eq!(out.labeled[0].reason, LabelReason::CcDetected);
    }

    #[test]
    fn no_hint_mode_seeds_with_cc_domains() {
        let mut w = fig4_world();
        let index = w.index();
        let ctx = ctx(&index, &w.folded);
        let cc = CcDetector::lanl_default();
        let sim = SimScorer::lanl_default();

        // First run the day's C&C pass, then seed BP with the detections.
        let detections = cc.detect_all(&ctx);
        assert_eq!(detections.len(), 1);
        let seeds = Seeds::from_domains_with_hosts(&ctx, detections.iter().map(|d| d.domain));
        assert_eq!(seeds.hosts.len(), 2, "both beaconing victims seed H");

        let out = belief_propagation(&ctx, Some(&cc), &sim, &seeds, &BpConfig::lanl_default());
        let detected: Vec<String> =
            out.detected().map(|d| w.folded.resolve(d.domain).to_string()).collect();
        assert!(detected.contains(&"fluttershy.c3".to_string()), "{detected:?}");
        assert!(detected.contains(&"pinkiepie.c3".to_string()));
        assert!(!detected.contains(&"rainbow.c3".to_string()), "seed not re-counted");
    }

    #[test]
    fn stops_when_best_score_below_threshold() {
        let mut w = World::new();
        w.visit(100, 1, "seeded.c3", None);
        w.visit(40_000, 1, "unrelated.c3", None); // same host, far in time
        let index = w.index();
        let ctx = ctx(&index, &w.folded);
        let sim = SimScorer::lanl_default();
        let seeds = Seeds::from_domains_with_hosts(&ctx, [w.folded.get("seeded.c3").unwrap()]);
        let out = belief_propagation(&ctx, None, &sim, &seeds, &BpConfig::lanl_default());
        assert_eq!(out.detected().count(), 0);
        assert_eq!(out.iterations.len(), 1, "single iteration that found nothing");
        let t = &out.iterations[0];
        assert!(t.best_similarity.unwrap() < sim.threshold());
        assert_eq!(t.candidates, 1);
    }

    #[test]
    fn respects_iteration_cap() {
        // A chain of domains each 100 s apart, each visited by the next
        // host too, so similarity keeps firing.
        let mut w = World::new();
        for i in 0..10u32 {
            w.visit(1_000 + i as u64 * 100, 1, &format!("chain{i}.c3"), None);
        }
        let index = w.index();
        let ctx = ctx(&index, &w.folded);
        let sim = SimScorer::lanl_default();
        let seeds = Seeds::from_domains_with_hosts(&ctx, [w.folded.get("chain0.c3").unwrap()]);
        let cfg = BpConfig { max_iterations: 3 };
        let out = belief_propagation(&ctx, None, &sim, &seeds, &cfg);
        assert!(out.iterations.len() <= 3);
        assert!(out.detected().count() <= 3, "one similarity label per iteration");
    }

    #[test]
    fn empty_seeds_produce_empty_outcome() {
        let mut w = World::new();
        w.visit(1, 1, "a.c3", None);
        let index = w.index();
        let ctx = ctx(&index, &w.folded);
        let sim = SimScorer::lanl_default();
        let out =
            belief_propagation(&ctx, None, &sim, &Seeds::default(), &BpConfig::lanl_default());
        assert!(out.labeled.is_empty());
        assert!(out.compromised_hosts.is_empty());
    }

    #[test]
    fn detected_by_suspiciousness_is_sorted() {
        let mut w = fig4_world();
        let index = w.index();
        let ctx = ctx(&index, &w.folded);
        let cc = CcDetector::lanl_default();
        let sim = SimScorer::lanl_default();
        let seeds = Seeds::from_hosts([HostId::new(1)]);
        let out = belief_propagation(&ctx, Some(&cc), &sim, &seeds, &BpConfig::lanl_default());
        let ranked = out.detected_by_suspiciousness();
        assert!(ranked.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn traces_record_expansion_provenance() {
        let mut w = fig4_world();
        let index = w.index();
        let ctx = ctx(&index, &w.folded);
        let cc = CcDetector::lanl_default();
        let sim = SimScorer::lanl_default();
        let seeds = Seeds::from_hosts([HostId::new(1)]);
        let out = belief_propagation(&ctx, Some(&cc), &sim, &seeds, &BpConfig::lanl_default());
        // Iteration 1 labels the C&C and discovers host 2.
        let first = &out.iterations[0];
        assert_eq!(first.iteration, 1);
        assert_eq!(first.labeled.len(), 1);
        assert_eq!(first.labeled[0].reason, LabelReason::CcDetected);
        assert_eq!(first.new_hosts, vec![HostId::new(2)]);
        // Each labeled domain records its iteration number.
        for (i, trace) in out.iterations.iter().enumerate() {
            for d in &trace.labeled {
                assert_eq!(d.iteration, i + 1);
            }
        }
    }
}
