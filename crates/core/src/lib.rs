//! The DSN'15 detection framework: C&C communication detection and belief
//! propagation over the host↔domain graph (Oprea et al., "Detection of
//! Early-Stage Enterprise Infection by Mining Large-Scale Log Data").
//!
//! The crate composes the substrates (`earlybird-pipeline`,
//! `earlybird-timing`, `earlybird-features`, `earlybird-intel`) into the
//! paper's two-phase system:
//!
//! * **Training** — [`train`] fits the C&C and domain-similarity regression
//!   models from two weeks of labeled automated/rare domains (§IV-C, §IV-D).
//! * **Operation** — [`daily::DailyPipeline`] normalizes, reduces, profiles
//!   and indexes each day; [`cc::CcDetector`] finds beaconing C&C domains
//!   (with either the enterprise regression model or the LANL two-host
//!   heuristic); [`bp::belief_propagation`] runs Algorithm 1 in the
//!   SOC-hints or no-hint mode and returns the labeled communities with full
//!   per-iteration traces (the provenance shown in Fig. 4/7/8).
//!
//! # This crate is internal plumbing
//!
//! [`DailyPipeline`], [`CcDetector`] and [`belief_propagation`] are the raw
//! building blocks of the daily cycle. Application code should not thread
//! them together by hand: the `earlybird-engine` crate (re-exported as
//! `earlybird::engine`) runs the whole ingest → detect → alert loop behind
//! one validated API, parallelizes the C&C scoring pass, and delivers typed
//! alerts. Reach for these types directly only when building new detector
//! variants or experiments below the engine.
//!
//! # Example
//!
//! ```
//! use earlybird_core::daily::{DailyPipeline, PipelineConfig};
//! use earlybird_logmodel::DomainInterner;
//! use std::sync::Arc;
//!
//! let raw = Arc::new(DomainInterner::new());
//! let pipeline = DailyPipeline::new(Arc::clone(&raw), PipelineConfig::enterprise());
//! assert_eq!(pipeline.config().fold_level, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bp;
pub mod cc;
pub mod context;
pub mod daily;
pub mod extract;
pub mod similarity;
pub mod train;

pub use bp::{
    belief_propagation, BpConfig, BpOutcome, IterationTrace, LabelReason, ScoredDomain, Seeds,
};
pub use cc::{automated_pairs_with, CcDetection, CcDetector, CcModel};
pub use context::DayContext;
pub use daily::{DailyPipeline, DayAccum, DayOutcome, DayProduct, PipelineConfig, ShardDayPartial};
pub use extract::{cc_features, min_interval_to_malicious, sim_features};
pub use similarity::SimScorer;
pub use train::{train_cc_model, train_sim_model, whois_defaults, CcSample, SimSample};
