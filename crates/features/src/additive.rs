//! The LANL additive domain score (§V-B).
//!
//! The anonymized LANL data offers too few labeled samples to train a
//! regression, so the paper scores a candidate domain as the *normalized sum*
//! of three components relative to the already-labeled malicious set:
//! domain connectivity, timing correlation (0/1), and IP-space proximity
//! (2 for a shared /24, 1 for a shared /16, 0 otherwise), with threshold
//! `T_s = 0.25`.

use serde::{Deserialize, Serialize};

/// IP-space proximity of a candidate domain to the labeled-malicious set.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum IpProximity {
    /// No shared subnet.
    #[default]
    None,
    /// Shares a /16 subnet with a malicious domain (component value 1).
    SameSubnet16,
    /// Shares a /24 subnet with a malicious domain (component value 2).
    SameSubnet24,
}

impl IpProximity {
    /// The paper's component value: 2 for /24, 1 for /16, 0 otherwise.
    pub fn component(self) -> f64 {
        match self {
            IpProximity::None => 0.0,
            IpProximity::SameSubnet16 => 1.0,
            IpProximity::SameSubnet24 => 2.0,
        }
    }
}

/// A scored breakdown of the additive function.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdditiveScore {
    /// Connectivity component in `[0, 1]`.
    pub connectivity: f64,
    /// Timing-correlation component in `{0, 1}`.
    pub timing: f64,
    /// IP-proximity component in `[0, 1]` (normalized from `{0, 1, 2}`).
    pub ip: f64,
    /// Normalized total in `[0, 1]`: the mean of the three components.
    pub total: f64,
}

/// The additive scorer with its connectivity cap.
///
/// Connectivity saturates at `conn_cap` hosts: a rare domain contacted by
/// `conn_cap` or more distinct hosts carries full connectivity weight.
///
/// # Example
///
/// ```
/// use earlybird_features::{AdditiveScorer, IpProximity};
/// let scorer = AdditiveScorer::paper_default();
/// let s = scorer.score(2, true, IpProximity::SameSubnet24);
/// assert!(s.total >= 0.25, "timing + /24 proximity clears T_s");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AdditiveScorer {
    conn_cap: u32,
}

impl AdditiveScorer {
    /// Creates a scorer saturating connectivity at `conn_cap` hosts.
    ///
    /// # Panics
    ///
    /// Panics if `conn_cap` is zero.
    pub fn new(conn_cap: u32) -> Self {
        assert!(conn_cap > 0, "connectivity cap must be positive");
        AdditiveScorer { conn_cap }
    }

    /// The configuration used for the LANL challenge (cap of 3 hosts,
    /// matching the multi-victim campaigns of the simulations).
    pub fn paper_default() -> Self {
        AdditiveScorer::new(3)
    }

    /// The LANL threshold `T_s = 0.25` chosen on the training campaigns.
    pub const PAPER_THRESHOLD: f64 = 0.25;

    /// The connectivity saturation cap.
    pub fn conn_cap(&self) -> u32 {
        self.conn_cap
    }

    /// Scores a candidate domain.
    ///
    /// `connectivity` is the number of distinct internal hosts contacting
    /// the domain; `timing_correlated` is whether some host visited the
    /// domain close in time to a labeled malicious domain; `ip` is the
    /// IP-space proximity.
    pub fn score(
        &self,
        connectivity: u32,
        timing_correlated: bool,
        ip: IpProximity,
    ) -> AdditiveScore {
        let connectivity = connectivity.min(self.conn_cap) as f64 / self.conn_cap as f64;
        let timing = if timing_correlated { 1.0 } else { 0.0 };
        let ip = ip.component() / 2.0;
        AdditiveScore { connectivity, timing, ip, total: (connectivity + timing + ip) / 3.0 }
    }
}

impl Default for AdditiveScorer {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ip_component_values_match_paper() {
        assert_eq!(IpProximity::None.component(), 0.0);
        assert_eq!(IpProximity::SameSubnet16.component(), 1.0);
        assert_eq!(IpProximity::SameSubnet24.component(), 2.0);
    }

    #[test]
    fn all_components_zero_scores_zero() {
        let s = AdditiveScorer::paper_default().score(0, false, IpProximity::None);
        assert_eq!(s.total, 0.0);
    }

    #[test]
    fn all_components_max_scores_one() {
        let s = AdditiveScorer::paper_default().score(5, true, IpProximity::SameSubnet24);
        assert_eq!(s.total, 1.0);
    }

    #[test]
    fn timing_alone_clears_lanl_threshold() {
        let s = AdditiveScorer::paper_default().score(1, true, IpProximity::None);
        assert!(s.total >= AdditiveScorer::PAPER_THRESHOLD, "total = {}", s.total);
    }

    #[test]
    fn lone_host_without_correlation_stays_below_threshold() {
        let s = AdditiveScorer::paper_default().score(1, false, IpProximity::None);
        assert!(s.total < AdditiveScorer::PAPER_THRESHOLD, "total = {}", s.total);
    }

    #[test]
    fn shared_16_alone_stays_below_threshold_but_24_does_not() {
        let scorer = AdditiveScorer::paper_default();
        let s16 = scorer.score(0, false, IpProximity::SameSubnet16);
        let s24 = scorer.score(0, false, IpProximity::SameSubnet24);
        assert!(s16.total < AdditiveScorer::PAPER_THRESHOLD);
        assert!(s24.total >= AdditiveScorer::PAPER_THRESHOLD);
        assert!(s24.total > s16.total, "/24 must outweigh /16 (different weights, §V-B)");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cap_rejected() {
        let _ = AdditiveScorer::new(0);
    }

    proptest! {
        #[test]
        fn total_is_mean_of_components_and_bounded(
            conn in 0u32..20,
            timing in proptest::bool::ANY,
            ip_kind in 0u8..3,
        ) {
            let ip = match ip_kind {
                0 => IpProximity::None,
                1 => IpProximity::SameSubnet16,
                _ => IpProximity::SameSubnet24,
            };
            let s = AdditiveScorer::paper_default().score(conn, timing, ip);
            prop_assert!((0.0..=1.0).contains(&s.total));
            let mean = (s.connectivity + s.timing + s.ip) / 3.0;
            prop_assert!((s.total - mean).abs() < 1e-12);
        }

        #[test]
        fn score_is_monotone_in_connectivity(conn in 0u32..10) {
            let scorer = AdditiveScorer::paper_default();
            let lo = scorer.score(conn, false, IpProximity::None);
            let hi = scorer.score(conn + 1, false, IpProximity::None);
            prop_assert!(hi.total >= lo.total);
        }
    }
}
