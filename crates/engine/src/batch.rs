//! Source-agnostic daily input batches.

use earlybird_logmodel::{Day, DhcpLog, DnsDayLog, ProxyDayLog};

/// One day of raw logs from either supported source, handed to
/// [`crate::Engine::ingest_day`].
///
/// The engine normalizes both flavours into the same reduced-contact
/// representation internally, so detection code never branches on source.
#[derive(Clone, Copy, Debug)]
pub enum DayBatch<'a> {
    /// A day of DNS queries (the LANL-style source, §V).
    Dns(&'a DnsDayLog),
    /// A day of web-proxy records plus the DHCP lease log needed to
    /// attribute dynamic IPs to hosts (the enterprise source, §VI).
    Proxy {
        /// The proxy records.
        day: &'a ProxyDayLog,
        /// The lease log covering the day.
        dhcp: &'a DhcpLog,
    },
}

impl DayBatch<'_> {
    /// The day the batch falls on.
    pub fn day(&self) -> Day {
        match self {
            DayBatch::Dns(d) => d.day,
            DayBatch::Proxy { day, .. } => day.day,
        }
    }

    /// Number of raw records in the batch.
    pub fn records(&self) -> usize {
        match self {
            DayBatch::Dns(d) => d.queries.len(),
            DayBatch::Proxy { day, .. } => day.records.len(),
        }
    }
}
