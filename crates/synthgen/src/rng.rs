//! Deterministic seed derivation so each (seed, day, purpose) tuple gets an
//! independent random stream — this is what makes day-wise streaming
//! generation reproduce byte-for-byte what whole-dataset generation yields.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives an [`StdRng`] from a base seed and an arbitrary label path, via
/// splitmix64-style mixing.
///
/// # Example
///
/// ```
/// use earlybird_synthgen::rng::derive_rng;
/// use rand::Rng;
/// let mut a = derive_rng(42, &[1, 7]);
/// let mut b = derive_rng(42, &[1, 7]);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// let mut c = derive_rng(42, &[1, 8]);
/// assert_ne!(derive_rng(42, &[1, 7]).gen::<u64>(), c.gen::<u64>());
/// ```
pub fn derive_rng(seed: u64, path: &[u64]) -> StdRng {
    let mut state = splitmix(seed ^ 0x9E37_79B9_7F4A_7C15);
    for &p in path {
        state = splitmix(state ^ splitmix(p.wrapping_add(0xBF58_476D_1CE4_E5B9)));
    }
    StdRng::seed_from_u64(state)
}

fn splitmix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_path_same_stream() {
        let xs: Vec<u64> =
            derive_rng(7, &[3, 1, 4]).sample_iter(rand::distributions::Standard).take(8).collect();
        let ys: Vec<u64> =
            derive_rng(7, &[3, 1, 4]).sample_iter(rand::distributions::Standard).take(8).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn different_seed_or_path_diverges() {
        let base: u64 = derive_rng(7, &[3]).gen();
        assert_ne!(base, derive_rng(8, &[3]).gen::<u64>());
        assert_ne!(base, derive_rng(7, &[4]).gen::<u64>());
        assert_ne!(base, derive_rng(7, &[3, 0]).gen::<u64>());
    }

    #[test]
    fn path_order_matters() {
        assert_ne!(derive_rng(1, &[2, 3]).gen::<u64>(), derive_rng(1, &[3, 2]).gen::<u64>());
    }
}
