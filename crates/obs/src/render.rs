//! Point-in-time snapshots and the Prometheus text exposition.

use std::fmt::Write as _;

/// A frozen read of one histogram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Ascending bucket upper bounds (microseconds for latency series).
    pub bounds: Vec<u64>,
    /// Per-bucket counts, `bounds.len() + 1` long; the last bucket counts
    /// observations above every bound (`+Inf`). NOT cumulative — see
    /// [`HistogramSnapshot::cumulative`].
    pub buckets: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Number of observations.
    pub count: u64,
}

impl HistogramSnapshot {
    /// The Prometheus-style cumulative bucket counts (last == `count`).
    pub fn cumulative(&self) -> Vec<u64> {
        let mut running = 0u64;
        self.buckets
            .iter()
            .map(|&b| {
                running += b;
                running
            })
            .collect()
    }
}

/// The value half of a [`Sample`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SampleValue {
    /// A monotone total.
    Counter(u64),
    /// A current level.
    Gauge(i64),
    /// A fixed-bucket distribution.
    Histogram(HistogramSnapshot),
}

/// One registered metric as read at snapshot time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sample {
    /// The metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The help text from first registration.
    pub help: &'static str,
    /// The value read.
    pub value: SampleValue,
}

impl Sample {
    /// Whether every `(key, value)` in `subset` appears in this sample's
    /// labels. An empty subset matches everything with the name.
    pub fn matches(&self, name: &str, subset: &[(&str, &str)]) -> bool {
        self.name == name
            && subset.iter().all(|(k, v)| self.labels.iter().any(|(lk, lv)| lk == k && lv == v))
    }
}

/// A deterministic, sorted read of every metric in a registry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// All samples, sorted by `(name, labels)`.
    pub samples: Vec<Sample>,
}

impl MetricsSnapshot {
    /// Sums every counter named `name` whose labels contain `subset`.
    /// Non-counter kinds under the name are ignored.
    pub fn counter_sum(&self, name: &str, subset: &[(&str, &str)]) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.matches(name, subset))
            .filter_map(|s| match &s.value {
                SampleValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Sums every gauge named `name` whose labels contain `subset`.
    pub fn gauge_sum(&self, name: &str, subset: &[(&str, &str)]) -> i64 {
        self.samples
            .iter()
            .filter(|s| s.matches(name, subset))
            .filter_map(|s| match &s.value {
                SampleValue::Gauge(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// The first histogram matching `(name, subset)`, if any.
    pub fn histogram(&self, name: &str, subset: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        self.samples.iter().filter(|s| s.matches(name, subset)).find_map(|s| match &s.value {
            SampleValue::Histogram(h) => Some(h),
            _ => None,
        })
    }

    /// Aggregated `(count, sum)` over every histogram matching `(name,
    /// subset)` — e.g. total observations across all tenants.
    pub fn histogram_totals(&self, name: &str, subset: &[(&str, &str)]) -> HistogramTotals {
        let mut totals = HistogramTotals { count: 0, sum: 0 };
        for s in self.samples.iter().filter(|s| s.matches(name, subset)) {
            if let SampleValue::Histogram(h) = &s.value {
                totals.count += h.count;
                totals.sum += h.sum;
            }
        }
        totals
    }

    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# HELP` / `# TYPE` headers once per metric name,
    /// histograms expanded to cumulative `_bucket{le=...}`, `_sum`, and
    /// `_count` series, labels escaped, everything in sorted order.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name: Option<&str> = None;
        for s in &self.samples {
            if last_name != Some(s.name.as_str()) {
                if !s.help.is_empty() {
                    let _ = writeln!(out, "# HELP {} {}", s.name, escape_help(s.help));
                }
                let kind = match s.value {
                    SampleValue::Counter(_) => "counter",
                    SampleValue::Gauge(_) => "gauge",
                    SampleValue::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {} {}", s.name, kind);
                last_name = Some(s.name.as_str());
            }
            match &s.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {}", s.name, label_block(&s.labels, None), v);
                }
                SampleValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", s.name, label_block(&s.labels, None), v);
                }
                SampleValue::Histogram(h) => {
                    let cumulative = h.cumulative();
                    for (i, c) in cumulative.iter().enumerate() {
                        let le = match h.bounds.get(i) {
                            Some(b) => b.to_string(),
                            None => "+Inf".to_string(),
                        };
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {}",
                            s.name,
                            label_block(&s.labels, Some(&le)),
                            c
                        );
                    }
                    let _ =
                        writeln!(out, "{}_sum{} {}", s.name, label_block(&s.labels, None), h.sum);
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        s.name,
                        label_block(&s.labels, None),
                        h.count
                    );
                }
            }
        }
        out
    }
}

/// Aggregated histogram totals returned by
/// [`MetricsSnapshot::histogram_totals`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramTotals {
    /// Total observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
}

/// `{k="v",...}` with escaping, with an optional trailing `le` label for
/// histogram buckets; empty string when there are no labels at all.
fn label_block(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn escape_help(v: &str) -> String {
    v.replace('\\', "\\\\").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use crate::MetricsRegistry;

    #[test]
    fn exposition_golden() {
        let reg = MetricsRegistry::new();
        reg.counter("requests_total", "Total requests", &[("tenant", "acme")]).add(7);
        reg.counter("requests_total", "Total requests", &[("tenant", "zeta")]).add(2);
        reg.gauge("inflight", "Open operations", &[]).set(3);
        reg.histogram("lat_micros", "Latency", &[("tenant", "acme")], &[100, 1000]).observe(150);
        let text = reg.render_prometheus();
        let expected = "\
# HELP inflight Open operations
# TYPE inflight gauge
inflight 3
# HELP lat_micros Latency
# TYPE lat_micros histogram
lat_micros_bucket{tenant=\"acme\",le=\"100\"} 0
lat_micros_bucket{tenant=\"acme\",le=\"1000\"} 1
lat_micros_bucket{tenant=\"acme\",le=\"+Inf\"} 1
lat_micros_sum{tenant=\"acme\"} 150
lat_micros_count{tenant=\"acme\"} 1
# HELP requests_total Total requests
# TYPE requests_total counter
requests_total{tenant=\"acme\"} 7
requests_total{tenant=\"zeta\"} 2
";
        assert_eq!(text, expected);
    }

    #[test]
    fn label_values_are_escaped() {
        let reg = MetricsRegistry::new();
        reg.counter("c", "", &[("path", "a\"b\\c")]).inc();
        let text = reg.render_prometheus();
        assert!(text.contains("c{path=\"a\\\"b\\\\c\"} 1"), "got: {text}");
        assert!(!text.contains("# HELP"), "empty help emits no HELP line");
    }

    #[test]
    fn subset_matching_aggregates_across_labels() {
        let reg = MetricsRegistry::new();
        reg.counter("n", "", &[("tenant", "a"), ("kind", "x")]).add(1);
        reg.counter("n", "", &[("tenant", "b"), ("kind", "x")]).add(2);
        reg.counter("n", "", &[("tenant", "a"), ("kind", "y")]).add(4);
        let snap = reg.snapshot();
        assert_eq!(snap.counter_sum("n", &[]), 7);
        assert_eq!(snap.counter_sum("n", &[("kind", "x")]), 3);
        assert_eq!(snap.counter_sum("n", &[("tenant", "a")]), 5);
        assert_eq!(snap.counter_sum("n", &[("tenant", "a"), ("kind", "y")]), 4);
        assert_eq!(snap.counter_sum("missing", &[]), 0);
    }
}
