//! Benchmarks of Algorithm 1: belief propagation in both modes, plus the
//! threshold-sweep ablation (how `T_s` changes work done per day).

use criterion::{criterion_group, criterion_main, Criterion};
use earlybird_core::{belief_propagation, BpConfig, CcDetector, Seeds, SimScorer};
use earlybird_eval::lanl::LanlRun;
use earlybird_synthgen::lanl::ChallengeCase;

fn bench_bp_modes(c: &mut Criterion) {
    let challenge = earlybird_bench::lanl_world();
    let run = LanlRun::new(&challenge);
    let case3 = challenge
        .campaigns
        .iter()
        .find(|k| k.case == ChallengeCase::Three)
        .expect("schedule has case 3");
    let case4 = challenge
        .campaigns
        .iter()
        .find(|k| k.case == ChallengeCase::Four)
        .expect("schedule has case 4");
    let cc = CcDetector::lanl_default();
    let sim = SimScorer::lanl_default();

    let mut group = c.benchmark_group("belief_propagation");
    {
        let product = &run.products()[&case3.day];
        let ctx = product.context(None, (0.0, 0.0));
        let seeds = Seeds::from_hosts(case3.hint_hosts.iter().copied());
        group.bench_function("soc_hints_case3_day", |b| {
            b.iter(|| belief_propagation(&ctx, Some(&cc), &sim, &seeds, &BpConfig::lanl_default()))
        });
    }
    {
        let product = &run.products()[&case4.day];
        let ctx = product.context(None, (0.0, 0.0));
        group.bench_function("no_hint_case4_day_incl_cc_pass", |b| {
            b.iter(|| {
                let detections = cc.detect_all(&ctx);
                let seeds = Seeds::from_domains_with_hosts(&ctx, detections.iter().map(|d| d.domain));
                belief_propagation(&ctx, Some(&cc), &sim, &seeds, &BpConfig::lanl_default())
            })
        });
    }
    group.finish();
}

fn bench_bp_threshold_sweep(c: &mut Criterion) {
    // Ablation: lower T_s admits more expansion iterations per run.
    let challenge = earlybird_bench::lanl_world();
    let run = LanlRun::new(&challenge);
    let case3 = challenge
        .campaigns
        .iter()
        .find(|k| k.case == ChallengeCase::Three)
        .expect("schedule has case 3");
    let product = &run.products()[&case3.day];
    let ctx = product.context(None, (0.0, 0.0));
    let cc = CcDetector::lanl_default();
    let seeds = Seeds::from_hosts(case3.hint_hosts.iter().copied());

    let mut group = c.benchmark_group("bp_threshold_sweep");
    for ts in [0.15f64, 0.25, 0.5] {
        let mut sim = SimScorer::lanl_default();
        sim.set_threshold(ts);
        group.bench_function(format!("ts_{ts}"), |b| {
            b.iter(|| belief_propagation(&ctx, Some(&cc), &sim, &seeds, &BpConfig::lanl_default()))
        });
    }
    group.finish();
}

fn bench_cc_daily_pass(c: &mut Criterion) {
    // The daily C&C sweep over all rare domains (step 3 of operation).
    let challenge = earlybird_bench::lanl_world();
    let run = LanlRun::new(&challenge);
    let case4 = challenge
        .campaigns
        .iter()
        .find(|k| k.case == ChallengeCase::Four)
        .expect("schedule has case 4");
    let product = &run.products()[&case4.day];
    let ctx = product.context(None, (0.0, 0.0));
    let cc = CcDetector::lanl_default();
    c.bench_function("cc_detect_all_rare_domains", |b| b.iter(|| cc.detect_all(&ctx)));
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_bp_modes, bench_bp_threshold_sweep, bench_cc_daily_pass
}
criterion_main!(benches);
