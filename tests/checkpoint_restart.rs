//! Cold-restart equivalence of `Engine::checkpoint` / `checkpoint_day` /
//! `EngineBuilder::restore_stream`: ingest days `1..N`, checkpoint, restore into a
//! fresh engine, ingest days `N+1..M` — reports, alerts, and sink sequences
//! must be **bit-identical** to an uninterrupted run, on both the LANL DNS
//! suite and the enterprise proxy suite, through both the full-snapshot and
//! the incremental per-day segment paths.
//!
//! This suite deliberately stays on the deprecated `checkpoint*` /
//! `restore*` shims: it is the compatibility proof that the one-release
//! shims keep producing and reading the exact bytes of the
//! `freeze()`/`Persistence` path until they are removed.

use earlybird::engine::{
    Alert, CheckpointMeta, CollectedAlerts, DayBatch, DayReport, Engine, EngineBuilder, StoreError,
};
use earlybird::logmodel::Day;
use earlybird::synthgen::ac::{AcConfig, AcGenerator, AcWorld};
use earlybird::synthgen::lanl::{LanlChallenge, LanlConfig, LanlGenerator};
use earlybird_core::{CcModel, SimScorer};
use earlybird_engine::CollectingSink;
use earlybird_features::{FeatureScaler, LinearRegression, RegressionModel, CC_FEATURE_NAMES};
use std::sync::Arc;

fn assert_reports_equal(restored: &DayReport, reference: &DayReport, context: &str) {
    assert_eq!(restored.day, reference.day, "{context}: day");
    assert_eq!(restored.bootstrap, reference.bootstrap, "{context}: bootstrap flag");
    assert_eq!(restored.duplicate, reference.duplicate, "{context}: duplicate flag");
    assert!(restored.stages.deterministic_eq(&reference.stages), "{context}: stage counters");
    assert_eq!(restored.dns_counts, reference.dns_counts, "{context}: dns counts");
    assert_eq!(restored.proxy_counts, reference.proxy_counts, "{context}: proxy counts");
    assert_eq!(restored.norm_counts, reference.norm_counts, "{context}: norm counts");
    assert_eq!(restored.cc_candidates, reference.cc_candidates, "{context}: candidates");
    assert_eq!(restored.alerts, reference.alerts, "{context}: alerts");
    assert_eq!(restored.outcome, reference.outcome, "{context}: BP outcome");
}

/// Cross-checks the restored engine against the reference engine on every
/// retained-state accessor the detection layer reads.
fn assert_engines_agree(restored: &Engine, reference: &Engine, context: &str) {
    assert_eq!(
        restored.days().collect::<Vec<_>>(),
        reference.days().collect::<Vec<_>>(),
        "{context}: retained days"
    );
    assert_eq!(restored.history().len(), reference.history().len(), "{context}: history");
    assert_eq!(
        restored.history().days_ingested(),
        reference.history().days_ingested(),
        "{context}: days ingested"
    );
    assert_eq!(restored.ua_history().len(), reference.ua_history().len(), "{context}: UA history");
    for (a, b) in restored.reports().zip(reference.reports()) {
        assert_eq!(a.day, b.day, "{context}: report order");
        assert!(a.stages.deterministic_eq(&b.stages), "{context}: stored {:?}", a.day);
    }
    for day in reference.days() {
        assert_eq!(
            restored.cc_scores(day).unwrap(),
            reference.cc_scores(day).unwrap(),
            "{context}: re-scored candidates for {day:?}"
        );
    }
}

fn lanl_engine(challenge: &LanlChallenge) -> (Engine, CollectedAlerts) {
    let sink = CollectingSink::new();
    let handle = sink.handle();
    let engine = EngineBuilder::lanl()
        .soc_seed("ioc.planted.c3")
        .auto_investigate(true)
        .sink(sink)
        .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
        .expect("valid config");
    (engine, handle)
}

/// Full-snapshot cold restart on the LANL DNS suite.
#[test]
fn lanl_cold_restart_is_bit_identical() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let split = (challenge.dataset.meta.bootstrap_days + 3) as usize;

    // Reference: one engine, never restarted.
    let (mut reference, ref_alerts) = lanl_engine(&challenge);
    let mut ref_reports = Vec::new();
    for day in &challenge.dataset.days {
        ref_reports.push(reference.ingest_day(DayBatch::Dns(day)));
    }

    // Interrupted: ingest the prefix, checkpoint, drop the engine.
    let mut snapshot = Vec::new();
    let meta: CheckpointMeta;
    {
        let (mut engine, _alerts) = lanl_engine(&challenge);
        for day in &challenge.dataset.days[..split] {
            engine.ingest_day(DayBatch::Dns(day));
        }
        meta = engine.freeze().write_to(&mut snapshot).expect("checkpoint succeeds");
    }
    assert_eq!(meta.days, split, "every ingested day persisted");
    assert!(meta.bytes > 0 && meta.bytes == snapshot.len() as u64);

    // Cold restart: fresh process, fresh sink; only perf knobs and sinks
    // come from the builder.
    let sink = CollectingSink::new();
    let restored_alerts = sink.handle();
    let mut restored = EngineBuilder::lanl()
        .parallelism(3)
        .parallel_threshold(1)
        .sink(sink)
        .restore_stream(&mut snapshot.as_slice())
        .expect("snapshot restores");

    // Continue ingesting; every report must match the uninterrupted run.
    for (i, day) in challenge.dataset.days[split..].iter().enumerate() {
        let report = restored.ingest_day(DayBatch::Dns(day));
        assert_reports_equal(&report, &ref_reports[split + i], &format!("{:?}", day.day));
    }
    assert_engines_agree(&restored, &reference, "post-restart");

    // The restored sink stream is exactly the uninterrupted stream's
    // suffix — sequence numbers included, because the alert counter is
    // part of the snapshot.
    let split_day = Day::new(split as u32);
    let expected_suffix: Vec<Alert> =
        ref_alerts.snapshot().into_iter().filter(|a| a.day >= split_day).collect();
    assert!(!expected_suffix.is_empty(), "suite must alert after the split");
    assert_eq!(restored_alerts.snapshot(), expected_suffix, "sink sequence bit-identical");

    // Investigations on pre-checkpoint days replay identically too.
    for campaign in &challenge.campaigns {
        let inv =
            earlybird::engine::Investigation::from_hint_hosts(campaign.hint_hosts.iter().copied());
        let a = restored.investigate(campaign.day, inv.clone()).unwrap();
        let b = reference.investigate(campaign.day, inv).unwrap();
        assert_eq!(a.outcome, b.outcome, "campaign on {:?}", campaign.day);
    }
}

/// The incremental `checkpoint_day` segment path restores equivalently to a
/// full snapshot: one full block at the bootstrap boundary, then one
/// appended segment per ingested day.
#[test]
fn lanl_incremental_segments_restore_equivalently() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let boot = challenge.dataset.meta.bootstrap_days as usize;
    let split = boot + 4;

    let (mut reference, ref_alerts) = lanl_engine(&challenge);
    let mut ref_reports = Vec::new();
    for day in &challenge.dataset.days {
        ref_reports.push(reference.ingest_day(DayBatch::Dns(day)));
    }

    // Daily cycle: full snapshot once, then O(day) segments appended to the
    // same stream.
    let mut stream = Vec::new();
    let full_size: usize;
    let mut segment_sizes = Vec::new();
    {
        let (mut engine, _alerts) = lanl_engine(&challenge);
        for day in &challenge.dataset.days[..boot] {
            engine.ingest_day(DayBatch::Dns(day));
        }
        full_size = engine.freeze().write_to(&mut stream).expect("full checkpoint").bytes as usize;
        for day in &challenge.dataset.days[boot..split] {
            engine.ingest_day(DayBatch::Dns(day));
            let meta =
                engine.freeze_day().expect("fresh day").write_to(&mut stream).expect("segment");
            assert_eq!(meta.days, 1, "exactly one new day per segment");
            segment_sizes.push(meta.bytes as usize);
        }
    }
    // O(day), not O(history): each segment is much smaller than the full
    // snapshot it extends.
    for &size in &segment_sizes {
        assert!(
            size < full_size / 2,
            "segment ({size} B) should be far smaller than the full snapshot ({full_size} B)"
        );
    }

    let sink = CollectingSink::new();
    let restored_alerts = sink.handle();
    let mut restored = EngineBuilder::lanl()
        .sink(sink)
        .restore_stream(&mut stream.as_slice())
        .expect("full + segments restore");

    for (i, day) in challenge.dataset.days[split..].iter().enumerate() {
        let report = restored.ingest_day(DayBatch::Dns(day));
        assert_reports_equal(&report, &ref_reports[split + i], &format!("{:?}", day.day));
    }
    assert_engines_agree(&restored, &reference, "segments");

    let split_day = Day::new(split as u32);
    let expected_suffix: Vec<Alert> =
        ref_alerts.snapshot().into_iter().filter(|a| a.day >= split_day).collect();
    assert_eq!(restored_alerts.snapshot(), expected_suffix, "segment-path sink sequence");
}

fn ac_engine(world: &AcWorld) -> (Engine, CollectedAlerts) {
    let sink = CollectingSink::new();
    let handle = sink.handle();
    let engine = EngineBuilder::enterprise()
        .whois(world.intel.whois.clone())
        .proxy_interners(Arc::clone(&world.dataset.uas), Arc::clone(&world.dataset.paths))
        .auto_investigate(true)
        .sink(sink)
        .build(Arc::clone(&world.dataset.domains), world.dataset.meta.clone())
        .expect("valid config");
    (engine, handle)
}

/// Cold restart on the enterprise proxy suite (normalization, DHCP leases,
/// HTTP context, rare-UA history, WHOIS registry all in the snapshot).
#[test]
fn enterprise_proxy_cold_restart_is_bit_identical() {
    let world = AcGenerator::new(AcConfig::tiny()).generate();
    let meta = &world.dataset.meta;
    // Cover the bootstrap/operation boundary plus several operation days,
    // splitting in the middle of the operation window.
    let last = (meta.bootstrap_days + 8).min(meta.total_days) as usize;
    let split = (meta.bootstrap_days + 4) as usize;

    let (mut reference, ref_alerts) = ac_engine(&world);
    let mut ref_reports = Vec::new();
    for day in &world.dataset.days[..last] {
        ref_reports.push(reference.ingest_day(DayBatch::Proxy { day, dhcp: &world.dataset.dhcp }));
    }

    let mut snapshot = Vec::new();
    {
        let (mut engine, _alerts) = ac_engine(&world);
        for day in &world.dataset.days[..split] {
            engine.ingest_day(DayBatch::Proxy { day, dhcp: &world.dataset.dhcp });
        }
        engine.freeze().write_to(&mut snapshot).expect("checkpoint succeeds");
    }

    // Restart sharing the dataset's interners: the snapshot contents are
    // verified against them, and symbols the dataset minted after the
    // checkpoint stay valid in the restored engine.
    let sink = CollectingSink::new();
    let restored_alerts = sink.handle();
    let mut restored = EngineBuilder::enterprise()
        .proxy_interners(Arc::clone(&world.dataset.uas), Arc::clone(&world.dataset.paths))
        .sink(sink)
        .restore_stream_with_domains(Arc::clone(&world.dataset.domains), &mut snapshot.as_slice())
        .expect("snapshot restores");
    assert!(restored.config().whois.is_some(), "WHOIS registry restored");

    for (i, day) in world.dataset.days[split..last].iter().enumerate() {
        let report = restored.ingest_day(DayBatch::Proxy { day, dhcp: &world.dataset.dhcp });
        assert_reports_equal(&report, &ref_reports[split + i], &format!("{:?}", day.day));
    }
    assert_engines_agree(&restored, &reference, "proxy");

    let split_day = Day::new(split as u32);
    let expected_suffix: Vec<Alert> =
        ref_alerts.snapshot().into_iter().filter(|a| a.day >= split_day).collect();
    assert_eq!(restored_alerts.snapshot(), expected_suffix, "proxy sink sequence");
}

/// Trained model parameters (regression weights, scaler bounds, WHOIS
/// defaults) survive the round trip and keep scoring identically.
#[test]
fn trained_models_survive_checkpoint() {
    // A toy trained configuration exercising the Regression variants.
    let xs: Vec<Vec<f64>> = (0..20)
        .map(|i| {
            let no_ref = if i % 2 == 0 { 1.0 } else { 0.0 };
            vec![1.0 + i as f64, 1.0, no_ref, 0.5, 100.0, 100.0 - i as f64]
        })
        .collect();
    let y: Vec<f64> = (0..20).map(|i| if i % 2 == 0 { 1.0 } else { 0.0 }).collect();
    let scaler = FeatureScaler::fit(&xs).unwrap();
    let fit = LinearRegression::fit_ridge(&scaler.transform_all(&xs), &y, 1e-6).unwrap();
    let model = RegressionModel::new(&CC_FEATURE_NAMES, fit, 0.37);
    let cc_model = CcModel::Regression { model, scaler };

    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let split = (challenge.dataset.meta.bootstrap_days + 2) as usize;
    let mut engine = EngineBuilder::lanl()
        .cc_model(cc_model.clone())
        .whois_defaults((123.5, 42.25))
        .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
        .unwrap();
    for day in &challenge.dataset.days[..split] {
        engine.ingest_day(DayBatch::Dns(day));
    }

    let mut snapshot = Vec::new();
    engine.freeze().write_to(&mut snapshot).unwrap();
    let restored =
        EngineBuilder::lanl().restore_stream(&mut snapshot.as_slice()).expect("snapshot restores");

    let (
        CcModel::Regression { model: a, scaler: sa },
        CcModel::Regression { model: b, scaler: sb },
    ) = (&restored.config().cc_model, &cc_model)
    else {
        panic!("regression model expected after restore");
    };
    assert_eq!(a, b, "regression weights bit-identical");
    assert_eq!(sa, sb, "scaler bounds bit-identical");
    assert_eq!(restored.whois_defaults(), (123.5, 42.25));
    match (&restored.config().sim, &engine.config().sim) {
        (SimScorer::Additive { threshold: a, .. }, SimScorer::Additive { threshold: b, .. }) => {
            assert_eq!(a, b)
        }
        other => panic!("additive sim scorer expected, got {other:?}"),
    }
    for day in engine.days() {
        assert_eq!(restored.cc_scores(day).unwrap(), engine.cc_scores(day).unwrap());
    }
}

/// Crash-recovery semantics: restore a snapshot taken after day N, then
/// re-push day N (the "partially ingested day" of an at-least-once log
/// replayer). The duplicate-day guard absorbs it silently — no double
/// profile counting, no duplicate alerts — and day N+1 continues exactly.
#[test]
fn crash_recovery_replay_raises_no_double_alerts() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let split = (challenge.dataset.meta.bootstrap_days + 2) as usize;

    let (mut reference, ref_alerts) = lanl_engine(&challenge);
    let mut ref_reports = Vec::new();
    for day in &challenge.dataset.days {
        ref_reports.push(reference.ingest_day(DayBatch::Dns(day)));
    }

    let mut snapshot = Vec::new();
    {
        let (mut engine, _alerts) = lanl_engine(&challenge);
        for day in &challenge.dataset.days[..split] {
            engine.ingest_day(DayBatch::Dns(day));
        }
        engine.freeze().write_to(&mut snapshot).unwrap();
    }

    let sink = CollectingSink::new();
    let restored_alerts = sink.handle();
    let mut restored =
        EngineBuilder::lanl().sink(sink).restore_stream(&mut snapshot.as_slice()).unwrap();

    // At-least-once delivery: the log replayer re-feeds the last day the
    // snapshot already covers.
    let history_len = restored.history().len();
    let replay = restored.ingest_day(DayBatch::Dns(&challenge.dataset.days[split - 1]));
    assert!(replay.duplicate, "covered day must be flagged as a replay");
    assert_eq!(restored.history().len(), history_len, "profiles not double-counted");
    assert!(restored_alerts.snapshot().is_empty(), "no duplicate alerts on replay");

    // The in-flight day then ingests fresh and matches the reference run.
    let report = restored.ingest_day(DayBatch::Dns(&challenge.dataset.days[split]));
    assert_reports_equal(&report, &ref_reports[split], "post-replay day");
    let split_day = Day::new(split as u32);
    let expected: Vec<Alert> =
        ref_alerts.snapshot().into_iter().filter(|a| a.day == split_day).collect();
    assert_eq!(restored_alerts.snapshot(), expected);
}

/// Deterministic bytes: checkpointing the same state twice — or a restored
/// copy of it — produces identical snapshots.
#[test]
fn checkpoint_bytes_are_deterministic() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let split = (challenge.dataset.meta.bootstrap_days + 2) as usize;
    let (mut engine, _alerts) = lanl_engine(&challenge);
    for day in &challenge.dataset.days[..split] {
        engine.ingest_day(DayBatch::Dns(day));
    }

    let mut a = Vec::new();
    engine.freeze().write_to(&mut a).unwrap();
    let mut b = Vec::new();
    engine.freeze().write_to(&mut b).unwrap();
    assert_eq!(a, b, "same state, same bytes");

    // checkpoint → restore → checkpoint reproduces the stream bit-for-bit
    // (the builder must mirror the perf knobs, which are snapshotted as
    // written even though restore overrides them).
    let restored = EngineBuilder::lanl()
        .parallelism(engine.config().parallelism)
        .parallel_threshold(engine.config().parallel_threshold)
        .ingest_chunk_records(engine.config().ingest_chunk_records)
        .restore_stream(&mut a.as_slice())
        .unwrap();
    let mut c = Vec::new();
    restored.freeze().write_to(&mut c).unwrap();
    assert_eq!(a, c, "restored engine re-checkpoints identically");
}

/// A stream that does not open with a full snapshot is rejected with a
/// typed error, as is appending a second full snapshot.
#[test]
fn malformed_streams_are_typed_errors() {
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let (mut engine, _alerts) = lanl_engine(&challenge);
    engine.ingest_day(DayBatch::Dns(&challenge.dataset.days[0]));

    // Segment-first stream.
    let mut seg_only = Vec::new();
    engine.freeze_day().unwrap().write_to(&mut seg_only).unwrap();
    let err = EngineBuilder::lanl().restore_stream(&mut seg_only.as_slice()).unwrap_err();
    assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");

    // Double-full stream.
    let mut doubled = Vec::new();
    engine.freeze().write_to(&mut doubled).unwrap();
    engine.freeze().write_to(&mut doubled).unwrap();
    let err = EngineBuilder::lanl().restore_stream(&mut doubled.as_slice()).unwrap_err();
    assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");

    // Empty stream.
    let err = EngineBuilder::lanl().restore_stream(&mut [].as_slice()).unwrap_err();
    assert!(matches!(err, StoreError::Truncated { .. }), "{err}");

    // A caller-shared interner whose contents disagree with the snapshot
    // must be rejected, not silently renumbered.
    let mut snap = Vec::new();
    engine.freeze().write_to(&mut snap).unwrap();
    let foreign = Arc::new(earlybird::logmodel::DomainInterner::new());
    foreign.intern("unrelated.example");
    let err = EngineBuilder::lanl()
        .restore_stream_with_domains(foreign, &mut snap.as_slice())
        .unwrap_err();
    assert!(matches!(err, StoreError::Corrupt { .. }), "{err}");
}
