//! Type-safe string interning.
//!
//! Enterprise logs repeat the same domain names, user-agent strings, and URL
//! paths millions of times; interning collapses them to 4-byte symbols. The
//! interner is append-only and internally synchronized, so datasets can share
//! one interner across analysis threads.
//!
//! [`Symbol<T>`] is parameterized by a tag type so that a [`DomainSym`] can
//! never be confused with a [`UaSym`] at compile time (C-NEWTYPE).

use crate::hash::FastMap;
use crate::published::Published;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::sync::{Arc, RwLock};

/// Tag for domain-name symbols.
#[derive(Debug)]
pub enum DomainTag {}
/// Tag for user-agent-string symbols.
#[derive(Debug)]
pub enum UaTag {}
/// Tag for URL-path symbols.
#[derive(Debug)]
pub enum PathTag {}

/// An interned domain name.
pub type DomainSym = Symbol<DomainTag>;
/// An interned user-agent string.
pub type UaSym = Symbol<UaTag>;
/// An interned URL path.
pub type PathSym = Symbol<PathTag>;

/// Interner for domain names.
pub type DomainInterner = TypedInterner<DomainTag>;
/// Interner for user-agent strings.
pub type UaInterner = TypedInterner<UaTag>;
/// Interner for URL paths.
pub type PathInterner = TypedInterner<PathTag>;

/// A compact handle to a string interned in a [`TypedInterner<T>`].
///
/// Symbols are only meaningful together with the interner that produced them.
#[derive(Serialize, Deserialize)]
#[serde(transparent)]
pub struct Symbol<T> {
    raw: u32,
    #[serde(skip)]
    _tag: PhantomData<fn() -> T>,
}

impl<T> Symbol<T> {
    fn new(raw: u32) -> Self {
        Symbol { raw, _tag: PhantomData }
    }

    /// The raw index of this symbol within its interner.
    pub const fn raw(self) -> u32 {
        self.raw
    }

    /// Rebuilds a symbol from its raw index — the persistence hook used by
    /// `earlybird-store` when decoding snapshots. The index is only
    /// meaningful against the interner whose contents were restored
    /// alongside it.
    pub const fn from_raw(raw: u32) -> Self {
        Symbol { raw, _tag: PhantomData }
    }
}

// Manual impls: deriving would wrongly bound `T`.
impl<T> Clone for Symbol<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Symbol<T> {}
impl<T> PartialEq for Symbol<T> {
    fn eq(&self, other: &Self) -> bool {
        self.raw == other.raw
    }
}
impl<T> Eq for Symbol<T> {}
impl<T> PartialOrd for Symbol<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Symbol<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.raw.cmp(&other.raw)
    }
}
impl<T> Hash for Symbol<T> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.raw.hash(state);
    }
}
impl<T> fmt::Debug for Symbol<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({})", self.raw)
    }
}

#[derive(Default)]
struct Inner {
    map: FastMap<Arc<str>, u32>,
    strings: Vec<Arc<str>>,
    /// Interner length at the last snapshot publication.
    published_len: usize,
}

impl Inner {
    /// Interns under the write lock (the caller holds it).
    fn intern_locked(&mut self, s: &str) -> u32 {
        if let Some(&raw) = self.map.get(s) {
            return raw;
        }
        let raw = u32::try_from(self.strings.len()).expect("interner full");
        let arc: Arc<str> = Arc::from(s);
        self.strings.push(Arc::clone(&arc));
        self.map.insert(arc, raw);
        raw
    }

    /// Whether enough strings landed since the last publication to justify
    /// rebuilding the snapshot. Geometric growth (an eighth of the
    /// published size, floor 64) keeps total republication work linear in
    /// the final table size.
    fn snapshot_stale(&self) -> bool {
        self.strings.len() >= self.published_len + (self.published_len / 8).max(64)
    }
}

/// The immutable lookup table a [`Published`] cell hands to readers.
struct Snap {
    map: FastMap<Arc<str>, u32>,
}

/// A lock-free read handle over an interner's published snapshot.
///
/// Acquire one per chunk with [`TypedInterner::reader`]; every
/// [`get`](InternerReader::get) is then a plain hash-map probe with no
/// lock and no atomic. The snapshot may trail the live table — strings
/// interned since publication simply miss; batch the misses and resolve
/// them once per chunk with [`TypedInterner::intern_batch`].
pub struct InternerReader<T> {
    snap: Arc<Snap>,
    _tag: PhantomData<fn() -> T>,
}

impl<T> InternerReader<T> {
    /// Looks up `s` in the snapshot without locking. `None` means the
    /// string was not interned *as of the snapshot* — it may exist in the
    /// live table.
    #[inline]
    pub fn get(&self, s: &str) -> Option<Symbol<T>> {
        self.snap.map.get(s).map(|&raw| Symbol::new(raw))
    }
}

impl<T> fmt::Debug for InternerReader<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("InternerReader").field("len", &self.snap.map.len()).finish()
    }
}

/// An append-only, internally synchronized string interner whose symbols are
/// tagged with `T`.
///
/// # Example
///
/// ```
/// use earlybird_logmodel::DomainInterner;
/// let i = DomainInterner::new();
/// let a = i.intern("nbc.com");
/// let b = i.intern("nbc.com");
/// assert_eq!(a, b);
/// assert_eq!(&*i.resolve(a), "nbc.com");
/// assert_eq!(i.len(), 1);
/// ```
pub struct TypedInterner<T> {
    inner: RwLock<Inner>,
    snap: Published<Snap>,
    _tag: PhantomData<fn() -> T>,
}

impl<T> TypedInterner<T> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        TypedInterner {
            inner: RwLock::new(Inner::default()),
            snap: Published::new(Snap { map: FastMap::default() }),
            _tag: PhantomData,
        }
    }

    /// Republishes the reader snapshot if enough strings landed since the
    /// last publication. Called with the write lock held, so publication
    /// order matches insertion order.
    fn maybe_republish(&self, inner: &mut Inner) {
        if inner.snapshot_stale() {
            inner.published_len = inner.strings.len();
            self.snap.publish(Arc::new(Snap { map: inner.map.clone() }));
        }
    }

    /// A lock-free read handle over the current published snapshot; see
    /// [`InternerReader`]. Acquire once per chunk.
    pub fn reader(&self) -> InternerReader<T> {
        InternerReader { snap: self.snap.load(), _tag: PhantomData }
    }

    /// Interns `s`, returning its symbol. Repeated calls with equal strings
    /// return equal symbols.
    pub fn intern(&self, s: &str) -> Symbol<T> {
        if let Some(&raw) = self.inner.read().expect("interner poisoned").map.get(s) {
            return Symbol::new(raw);
        }
        let mut inner = self.inner.write().expect("interner poisoned");
        let raw = inner.intern_locked(s);
        self.maybe_republish(&mut inner);
        Symbol::new(raw)
    }

    /// Interns a whole batch under a single write-lock acquisition, in
    /// order — the once-per-chunk resolution step for misses collected
    /// against an [`InternerReader`] snapshot. Duplicate strings in the
    /// batch receive equal symbols.
    pub fn intern_batch(&self, strs: &[&str]) -> Vec<Symbol<T>> {
        if strs.is_empty() {
            return Vec::new();
        }
        let mut inner = self.inner.write().expect("interner poisoned");
        let out = strs.iter().map(|s| Symbol::new(inner.intern_locked(s))).collect();
        self.maybe_republish(&mut inner);
        out
    }

    /// Looks up a string without interning it.
    pub fn get(&self, s: &str) -> Option<Symbol<T>> {
        self.inner.read().expect("interner poisoned").map.get(s).map(|&raw| Symbol::new(raw))
    }

    /// Resolves a symbol back to its string.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was produced by a different interner and is out of
    /// range for this one.
    pub fn resolve(&self, sym: Symbol<T>) -> Arc<str> {
        Arc::clone(
            self.inner
                .read()
                .expect("interner poisoned")
                .strings
                .get(sym.raw as usize)
                .expect("symbol from foreign interner"),
        )
    }

    /// Number of distinct strings interned.
    pub fn len(&self) -> usize {
        self.inner.read().expect("interner poisoned").strings.len()
    }

    /// Whether no strings have been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all interned strings, indexed by raw symbol.
    pub fn snapshot(&self) -> Vec<Arc<str>> {
        self.inner.read().expect("interner poisoned").strings.clone()
    }

    /// Snapshot of only the strings interned at or after raw symbol
    /// `start` (empty when `start` is past the end). An incremental
    /// freeze captures its delta through this without cloning — and
    /// refcount-churning — the whole table, which keeps the checkpoint
    /// stall O(day) instead of O(history).
    pub fn snapshot_tail(&self, start: usize) -> Vec<Arc<str>> {
        let inner = self.inner.read().expect("interner poisoned");
        inner.strings.get(start..).map(<[Arc<str>]>::to_vec).unwrap_or_default()
    }

    /// Applies a restored snapshot slice beginning at symbol index
    /// `start`, verifying that every string holds the symbol number it had
    /// when the snapshot was written (append-only numbering is what keeps
    /// restored symbols meaningful).
    ///
    /// The interner may already hold content — e.g. a dataset-shared
    /// interner passed back to a restore — as long as it agrees with the
    /// snapshot: indexes below the current length are *verified* against
    /// the existing strings, indexes at or beyond it are interned and must
    /// land on their recorded number.
    ///
    /// Returns `false` when `start` would leave a numbering gap, an
    /// existing string disagrees with the snapshot, or a string is a
    /// duplicate of one interned at a different index (either of which
    /// would silently renumber symbols).
    ///
    /// The whole batch runs under a single write-lock acquisition with
    /// capacity reserved up front — restore feeds entire table sections
    /// through here, so per-string lock round-trips would dominate the
    /// decode cost.
    pub fn extend_from_snapshot<S: AsRef<str>>(
        &self,
        start: usize,
        strings: impl IntoIterator<Item = S>,
    ) -> bool {
        let mut inner = self.inner.write().expect("interner poisoned");
        if start > inner.strings.len() {
            return false;
        }
        let iter = strings.into_iter();
        let additional = (start + iter.size_hint().0).saturating_sub(inner.strings.len());
        inner.strings.reserve(additional);
        inner.map.reserve(additional);
        let mut ok = true;
        for (k, s) in iter.enumerate() {
            let (idx, s) = (start + k, s.as_ref());
            if idx < inner.strings.len() {
                if &*inner.strings[idx] != s {
                    ok = false;
                    break;
                }
            } else if inner.intern_locked(s) as usize != idx {
                ok = false;
                break;
            }
        }
        self.maybe_republish(&mut inner);
        ok
    }

    /// A private copy of this interner: same strings, same numbering, new
    /// identity. Shard-local interning uses this — each shard forks the
    /// canonical table at day start, interns against its copy with zero
    /// cross-shard contention, and the merge remaps any locally minted
    /// tail symbols back by name.
    ///
    /// The fork starts with an empty published read snapshot (it
    /// republishes once enough new strings land); [`TypedInterner::intern`]
    /// and [`TypedInterner::get`] see the full table immediately.
    pub fn fork(&self) -> Self {
        let inner = self.inner.read().expect("interner poisoned");
        let forked = Inner {
            map: inner.map.clone(),
            strings: inner.strings.clone(),
            published_len: inner.strings.len(),
        };
        TypedInterner {
            inner: RwLock::new(forked),
            snap: Published::new(Snap { map: FastMap::default() }),
            _tag: PhantomData,
        }
    }
}

impl<T> Default for TypedInterner<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> fmt::Debug for TypedInterner<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TypedInterner").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let i = DomainInterner::new();
        let a = i.intern("x.com");
        let b = i.intern("x.com");
        let c = i.intern("y.com");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn resolve_returns_original() {
        let i = UaInterner::new();
        let s = i.intern("Mozilla/5.0 (X11; Linux)");
        assert_eq!(&*i.resolve(s), "Mozilla/5.0 (X11; Linux)");
    }

    #[test]
    fn get_does_not_intern() {
        let i = PathInterner::new();
        assert!(i.get("/logo.gif").is_none());
        let s = i.intern("/logo.gif");
        assert_eq!(i.get("/logo.gif"), Some(s));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn snapshot_preserves_order() {
        let i = DomainInterner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        let snap = i.snapshot();
        assert_eq!(&*snap[a.raw() as usize], "a");
        assert_eq!(&*snap[b.raw() as usize], "b");
    }

    #[test]
    fn symbols_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DomainSym>();
        assert_send_sync::<DomainInterner>();
    }

    #[test]
    fn concurrent_interning_agrees() {
        let i = std::sync::Arc::new(DomainInterner::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let i = std::sync::Arc::clone(&i);
            handles.push(std::thread::spawn(move || {
                (0..100).map(|k| i.intern(&format!("d{k}.com")).raw()).collect::<Vec<_>>()
            }));
        }
        let results: Vec<Vec<u32>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1], "all threads must observe identical symbols");
        }
        assert_eq!(i.len(), 100);
    }

    #[test]
    fn reader_snapshot_is_stale_but_consistent() {
        let i = DomainInterner::new();
        let before = i.reader();
        assert!(before.get("a.com").is_none());
        // Force at least one publication (threshold floor is 64).
        let syms: Vec<DomainSym> = (0..200).map(|k| i.intern(&format!("d{k}.com"))).collect();
        assert!(before.get("d0.com").is_none(), "old handles never see later strings");
        let after = i.reader();
        let visible = (0..200).filter(|&k| after.get(&format!("d{k}.com")).is_some()).count();
        assert!(visible >= 64, "snapshot republished during growth (saw {visible})");
        for (k, expected) in syms.iter().enumerate() {
            if let Some(sym) = after.get(&format!("d{k}.com")) {
                assert_eq!(sym, *expected, "snapshot symbols agree with the live table");
            }
        }
    }

    #[test]
    fn intern_batch_matches_sequential_interning() {
        let a = DomainInterner::new();
        let b = DomainInterner::new();
        let strs = ["x.com", "y.com", "x.com", "z.com", "y.com"];
        let batch = a.intern_batch(&strs);
        let seq: Vec<DomainSym> = strs.iter().map(|s| b.intern(s)).collect();
        assert_eq!(batch, seq);
        assert_eq!(a.len(), 3);
        assert!(a.intern_batch(&[]).is_empty());
    }

    #[test]
    fn extend_from_snapshot_verifies_and_appends() {
        let i = DomainInterner::new();
        i.intern("a");
        i.intern("b");
        assert!(i.extend_from_snapshot(1, ["b", "c"]), "overlap verifies, tail appends");
        assert_eq!(i.len(), 3);
        assert_eq!(&*i.resolve(DomainSym::from_raw(2)), "c");
        assert!(!i.extend_from_snapshot(0, ["x"]), "existing string disagrees");
        assert!(!i.extend_from_snapshot(5, ["y"]), "start past the end is a gap");
        assert!(!i.extend_from_snapshot(3, ["a"]), "duplicate would renumber");
        assert_eq!(i.len(), 3, "failed extends leave verified content only");
    }

    #[test]
    fn fork_preserves_numbering_and_diverges_privately() {
        let i = DomainInterner::new();
        let a = i.intern("a.com");
        let f = i.fork();
        assert_eq!(f.len(), 1);
        assert_eq!(f.get("a.com"), Some(a));
        assert_eq!(&*f.resolve(a), "a.com");
        let local = f.intern("new.com");
        assert_eq!(local.raw(), 1, "fork continues the shared numbering");
        assert!(i.get("new.com").is_none(), "fork growth is private");
        let canon = i.intern("other.com");
        assert_eq!(canon.raw(), 1, "original numbering unaffected by the fork");
    }

    #[test]
    fn serde_roundtrip_is_transparent() {
        let i = DomainInterner::new();
        let s = i.intern("roundtrip.net");
        let json = serde_json::to_string(&s).unwrap();
        assert_eq!(json, s.raw().to_string());
        let back: DomainSym = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
