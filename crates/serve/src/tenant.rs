//! One tenant: an isolated engine + store pair under the service's
//! concurrency and durability discipline.
//!
//! ## Locking model
//!
//! * `core` ([`std::sync::RwLock`]) guards the engine and the open-day
//!   map. Span pushes and day finishes take the write lock (ingest needs
//!   `&mut Engine`); every query — reports, investigations — takes the
//!   read lock only.
//! * The [`Persistence`] facade owns the tenant's store and runs commits
//!   on its background worker. A finish takes the *read* lock only long
//!   enough to freeze the day's delta (a short critical section), then
//!   releases every tenant lock and awaits the commit handle — both
//!   queries *and further ingest* proceed while the day's bytes hit
//!   storage, which is the slow part of sealing a day.
//! * Alert reads go through the lock-free-shared [`AlertLog`] handle and
//!   never touch the engine locks at all.
//!
//! ## Durability contract
//!
//! A `200` from `finish` means the frozen day's commit was awaited to
//! durability ([`CommitHandle::wait`]) *before* the response was written:
//! a `kill -9` after the ack cannot lose the day. Spans that were pushed
//! but never finished are not durable and vanish on crash — the span ack
//! says "absorbed", not "persisted".
//!
//! [`CommitHandle::wait`]: earlybird_engine::CommitHandle::wait

use crate::error::ServeError;
use crate::wire::{AlertsPage, FinishAck, InvestigateRequest, SpanAck, TenantSpec, TenantSummary};
use earlybird_engine::{
    AlertLog, AlertLogSink, DayState, Engine, EngineBuilder, IngestSource, InvestigationReport,
    LifecycleConfig, Persistence, SnapshotPolicy, StoreDir,
};
use earlybird_logmodel::Day;
use earlybird_obs::{Counter, Gauge, MetricsRegistry, StageTimer};
use earlybird_store::ObjectStore;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// Per-tenant admission-control ceilings; exceeding either rejects the
/// span with `429` + `Retry-After`.
#[derive(Clone, Copy, Debug)]
pub struct TenantLimits {
    /// Spans concurrently being absorbed (in-flight requests).
    pub max_inflight_spans: usize,
    /// Total bytes buffered across the tenant's open (unfinished) days.
    pub max_open_bytes: usize,
}

impl Default for TenantLimits {
    fn default() -> Self {
        TenantLimits { max_inflight_spans: 64, max_open_bytes: 512 << 20 }
    }
}

/// Cached per-tenant metric handles, all labeled `{tenant=...}`. Every
/// handle is an `Arc`-backed clone of a registry cell, so reads (the
/// summary row) and increments never take a tenant lock.
#[derive(Debug)]
struct TenantMetrics {
    ingest_records: Counter,
    ingest_bytes: Counter,
    span_parse_errors: Counter,
    admission_rejections: Counter,
    finish_commit: StageTimer,
    inflight_spans: Gauge,
    open_bytes: Gauge,
    /// The *store's* GC-failure counter — the same cell the tenant's
    /// [`StoreDir`] increments (metric identity is name + sorted labels).
    /// Holding a clone lets [`Tenant::summary`] report it without
    /// touching the store mutex, which a finish may hold for a while.
    store_gc_failures: Counter,
}

impl TenantMetrics {
    fn new(registry: &MetricsRegistry, name: &str, backend: &'static str) -> Self {
        let tenant: &[(&str, &str)] = &[("tenant", name)];
        TenantMetrics {
            ingest_records: registry.counter(
                "serve_ingest_records_total",
                "Records absorbed from span pushes",
                tenant,
            ),
            ingest_bytes: registry.counter(
                "serve_ingest_bytes_total",
                "Span payload bytes charged against open days",
                tenant,
            ),
            span_parse_errors: registry.counter(
                "serve_span_parse_errors_total",
                "Log lines rejected by the span parser",
                tenant,
            ),
            admission_rejections: registry.counter(
                "serve_admission_rejections_total",
                "Spans refused by admission control (HTTP 429)",
                tenant,
            ),
            finish_commit: registry.timer(
                "serve_finish_commit_micros",
                "Finish-to-durable latency: detection tail plus store commit",
                tenant,
            ),
            inflight_spans: registry.gauge(
                "serve_inflight_spans",
                "Span pushes currently being absorbed",
                tenant,
            ),
            open_bytes: registry.gauge(
                "serve_open_bytes",
                "Bytes buffered across open (unfinished) days",
                tenant,
            ),
            store_gc_failures: registry.counter(
                "store_gc_failures_total",
                "Best-effort GC deletions that failed (objects leak until quarantined)",
                &[("backend", backend), ("tenant", name)],
            ),
        }
    }
}

/// An open day plus the admission bookkeeping charged against it.
#[derive(Debug)]
struct OpenDay {
    state: DayState,
    bytes: usize,
}

/// Engine + open days: everything a request mutates under one lock.
#[derive(Debug)]
struct TenantCore {
    engine: Engine,
    open_days: BTreeMap<Day, OpenDay>,
}

/// One registered tenant.
#[derive(Debug)]
pub struct Tenant {
    name: String,
    core: RwLock<TenantCore>,
    persistence: Persistence,
    alerts: AlertLog,
    limits: TenantLimits,
    inflight_spans: AtomicUsize,
    open_bytes: AtomicUsize,
    /// Reports already covered by a store commit — the shutdown
    /// checkpoint is skipped when nothing new was ingested.
    persisted_reports: AtomicUsize,
    metrics: TenantMetrics,
}

/// Releases an in-flight-span reservation (and its gauge) on every exit
/// path.
struct InflightGuard<'t>(&'t Tenant);

impl Drop for InflightGuard<'_> {
    fn drop(&mut self) {
        self.0.inflight_spans.fetch_sub(1, Ordering::SeqCst);
        self.0.metrics.inflight_spans.dec();
    }
}

impl Tenant {
    /// Creates a tenant: builds a fresh engine from `spec`, creates its
    /// store in `scope`, and makes the registration durable by writing
    /// the initial full snapshot before returning.
    ///
    /// # Errors
    ///
    /// `400` for an invalid spec, `500` for store failures.
    pub fn create(
        name: &str,
        spec: &TenantSpec,
        scope: Box<dyn ObjectStore>,
        lifecycle: LifecycleConfig,
        limits: TenantLimits,
        registry: &Arc<MetricsRegistry>,
    ) -> Result<Tenant, ServeError> {
        let meta = spec.dataset_meta()?;
        let sink = AlertLogSink::new();
        let alerts = sink.log();
        let engine = spec
            .builder()
            .sink(sink)
            .metrics(Arc::clone(registry))
            .metric_label("tenant", name)
            .build(Arc::new(earlybird_logmodel::DomainInterner::new()), meta)
            .map_err(|e| ServeError::from_engine(&e))?;
        // `open_or_create`: the scope may hold the residue of a crashed,
        // never-acked creation (a manifest over an empty chain), which a
        // new PUT is entitled to claim. A *restorable* store here is
        // impossible — bind restores every non-empty scope into the
        // registry, and the registry rejected this name already.
        let mut dir = StoreDir::open_or_create_boxed(scope, lifecycle)
            .map_err(|e| ServeError::from_store(&e))?;
        dir.attach_metrics(registry, &[("tenant", name)]);
        let persistence = Persistence::new(dir, Self::policy());
        // Registration durability: an empty chain cannot be restored, so
        // a tenant that existed before a crash must already own a full
        // snapshot — awaited here, before the creation is acked.
        persistence
            .commit(&engine)
            .and_then(|handle| handle.wait())
            .map_err(|e| ServeError::from_store(&e))?;
        Ok(Tenant::assemble(name, engine, persistence, alerts, limits, registry))
    }

    /// Restores a tenant from its store scope after a cold start. All
    /// semantic configuration comes from the snapshot.
    ///
    /// Returns `None` when the scope holds a manifest but an *empty*
    /// chain — a crash hit between [`StoreDir::create_boxed`]'s initial
    /// manifest and the registration snapshot, so the tenant's creation
    /// was never acked and the scope is residue, not state. Skipping it
    /// (instead of failing the whole cold start) keeps the daemon's
    /// restart contract exactly at the ack boundary.
    ///
    /// # Errors
    ///
    /// `500` for a missing or corrupt chain.
    pub fn restore(
        name: &str,
        scope: Box<dyn ObjectStore>,
        lifecycle: LifecycleConfig,
        limits: TenantLimits,
        registry: &Arc<MetricsRegistry>,
    ) -> Result<Option<Tenant>, ServeError> {
        let mut dir =
            StoreDir::open_boxed(scope, lifecycle).map_err(|e| ServeError::from_store(&e))?;
        if dir.is_empty() {
            return Ok(None);
        }
        // Attach before the restore reads so the cold start's chain gets
        // fetched under the store's `get` span.
        dir.attach_metrics(registry, &[("tenant", name)]);
        let sink = AlertLogSink::new();
        let alerts = sink.log();
        let persistence = Persistence::new(dir, Self::policy());
        let builder = EngineBuilder::lanl()
            .sink(sink)
            .metrics(Arc::clone(registry))
            .metric_label("tenant", name);
        let engine = persistence.restore(builder).map_err(|e| ServeError::from_store(&e))?;
        Ok(Some(Tenant::assemble(name, engine, persistence, alerts, limits, registry)))
    }

    /// Every tenant runs the always-on policy: auto full/segment, commits
    /// on the facade's background worker (the finish path still awaits
    /// durability before acking), compaction tier per the store trigger.
    fn policy() -> SnapshotPolicy {
        SnapshotPolicy::default().background()
    }

    fn assemble(
        name: &str,
        engine: Engine,
        persistence: Persistence,
        alerts: AlertLog,
        limits: TenantLimits,
        registry: &MetricsRegistry,
    ) -> Tenant {
        let persisted = engine.reports().count();
        let metrics = TenantMetrics::new(registry, name, persistence.store().backend().kind());
        Tenant {
            name: name.to_string(),
            core: RwLock::new(TenantCore { engine, open_days: BTreeMap::new() }),
            persistence,
            alerts,
            limits,
            inflight_spans: AtomicUsize::new(0),
            open_bytes: AtomicUsize::new(0),
            persisted_reports: AtomicUsize::new(persisted),
            metrics,
        }
    }

    /// The tenant's name (== its store scope).
    pub fn name(&self) -> &str {
        &self.name
    }

    fn read_core(&self) -> std::sync::RwLockReadGuard<'_, TenantCore> {
        self.core.read().unwrap_or_else(PoisonError::into_inner)
    }

    fn write_core(&self) -> std::sync::RwLockWriteGuard<'_, TenantCore> {
        self.core.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Rejects a day that would regress behind the newest ingested day
    /// (the segment chain is append-only in day order). Duplicates of
    /// already-ingested days pass — they replay as no-ops.
    fn check_not_stale(core: &TenantCore, day: Day) -> Result<(), ServeError> {
        if core.engine.report(day).is_some() {
            return Ok(());
        }
        if let Some(&newest) = core.engine.reports().map(|r| &r.day).max() {
            if day < newest {
                return Err(ServeError::stale_day(day.index(), newest.index()));
            }
        }
        Ok(())
    }

    /// Absorbs one span of raw DNS log lines into `day`.
    ///
    /// # Errors
    ///
    /// `429` from admission control, `409` for a stale day.
    pub fn push_span(&self, day: Day, text: &str) -> Result<SpanAck, ServeError> {
        // Admission first, before any lock: a tenant at capacity must not
        // queue work behind its own backlog.
        let inflight = self.inflight_spans.fetch_add(1, Ordering::SeqCst) + 1;
        self.metrics.inflight_spans.inc();
        let guard = InflightGuard(self);
        if inflight > self.limits.max_inflight_spans {
            self.metrics.admission_rejections.inc();
            return Err(ServeError::over_capacity(format!(
                "{inflight} spans in flight exceeds the tenant ceiling of {}",
                self.limits.max_inflight_spans
            )));
        }
        if self.open_bytes.load(Ordering::SeqCst) + text.len() > self.limits.max_open_bytes {
            self.metrics.admission_rejections.inc();
            return Err(ServeError::over_capacity(format!(
                "open days hold {} buffered bytes; a {}-byte span would exceed the ceiling of {}",
                self.open_bytes.load(Ordering::SeqCst),
                text.len(),
                self.limits.max_open_bytes
            )));
        }

        let mut core = self.write_core();
        Self::check_not_stale(&core, day)?;
        let core = &mut *core;
        let (resumed, prior_bytes) = match core.open_days.remove(&day) {
            Some(open) => (core.engine.resume_day(open.state, IngestSource::Dns), open.bytes),
            None => (core.engine.begin_day(day, IngestSource::Dns), 0),
        };
        let mut ingest = resumed;
        let before = ingest.records_pushed();
        let span_errors = ingest.push_lines(text).len();
        let ack = SpanAck {
            day: day.index(),
            records_pushed: ingest.records_pushed() as u64,
            span_parse_errors: span_errors as u64,
            duplicate: ingest.is_duplicate(),
        };
        self.metrics.ingest_records.add((ingest.records_pushed() - before) as u64);
        self.metrics.span_parse_errors.add(span_errors as u64);
        let state = ingest.suspend();
        let charged = if ack.duplicate { 0 } else { text.len() };
        core.open_days.insert(day, OpenDay { state, bytes: prior_bytes + charged });
        self.open_bytes.fetch_add(charged, Ordering::SeqCst);
        self.metrics.ingest_bytes.add(charged as u64);
        self.metrics.open_bytes.add(charged as i64);
        drop(guard);
        Ok(ack)
    }

    /// Seals `day`: runs the detection tail, commits the day to the
    /// tenant's store, and only then returns the report. Finishing an
    /// already-ingested day replays its stored counters (`duplicate`)
    /// without touching the store.
    ///
    /// # Errors
    ///
    /// `404` when the day has no open ingest and was never ingested,
    /// `409` for stale days, `500` when the engine or the commit fails
    /// (the response is written only after a successful commit, so a
    /// `500` here means the day is NOT durable).
    pub fn finish_day(&self, day: Day) -> Result<FinishAck, ServeError> {
        // One span for the whole seal: detection tail + store commit —
        // the latency a client sees between POSTing finish and holding a
        // durable ack. Recorded on every exit path (drop), errors
        // included, because a slow failure is still a slow finish.
        let _finish_span = self.metrics.finish_commit.start();
        let report = {
            let mut core = self.write_core();
            Self::check_not_stale(&core, day)?;
            let core = &mut *core;
            let open = core.open_days.remove(&day);
            if open.is_none() && core.engine.report(day).is_none() {
                return Err(ServeError::unknown_day(day.index()));
            }
            let (ingest, bytes) = match open {
                Some(o) => (core.engine.resume_day(o.state, IngestSource::Dns), o.bytes),
                None => (core.engine.begin_day(day, IngestSource::Dns), 0),
            };
            let report = ingest.try_finish().map_err(|e| ServeError::from_engine(&e))?;
            self.open_bytes.fetch_sub(bytes, Ordering::SeqCst);
            self.metrics.open_bytes.add(-(bytes as i64));
            report
        };
        if report.duplicate {
            let generation = self.persistence.generation();
            return Ok(FinishAck { report, generation, durable: true });
        }
        // The freeze runs on `&Engine` under the read lock — a short
        // critical section — then every tenant lock is released before
        // the commit is awaited: queries AND further span pushes flow
        // while the day's bytes hit storage. The ack still waits for
        // durability.
        let (handle, reports) = {
            let core = self.read_core();
            let handle =
                self.persistence.commit(&core.engine).map_err(|e| ServeError::from_store(&e))?;
            (handle, core.engine.reports().count())
        };
        let outcome = handle.wait().map_err(|e| ServeError::from_store(&e))?;
        self.persisted_reports.store(reports, Ordering::SeqCst);
        Ok(FinishAck { report, generation: outcome.generation, durable: true })
    }

    /// All stored (counters-only) reports, ascending by day.
    pub fn reports(&self) -> Vec<earlybird_engine::DayReport> {
        self.read_core().engine.reports().cloned().collect()
    }

    /// The stored report for one day.
    ///
    /// # Errors
    ///
    /// `404` when the day was never ingested.
    pub fn report(&self, day: Day) -> Result<earlybird_engine::DayReport, ServeError> {
        self.read_core()
            .engine
            .report(day)
            .cloned()
            .ok_or_else(|| ServeError::unknown_day(day.index()))
    }

    /// Alerts with `sequence >= since`; never blocks on the engine locks.
    pub fn alerts_since(&self, since: u64) -> AlertsPage {
        let alerts = self.alerts.since(since);
        AlertsPage { next_since: alerts.last().map_or(since, |a| a.sequence + 1), alerts }
    }

    /// Runs one investigation against a retained day (read lock only, so
    /// investigations proceed during commits).
    ///
    /// # Errors
    ///
    /// `400` for an unknown mode, `404` for an unretained day.
    pub fn investigate(&self, req: &InvestigateRequest) -> Result<InvestigationReport, ServeError> {
        let investigation = req.to_investigation()?;
        self.read_core()
            .engine
            .investigate(Day::new(req.day), investigation)
            .map_err(|e| ServeError::from_engine(&e))
    }

    /// One summary row for `GET /v1/tenants`.
    pub fn summary(&self) -> TenantSummary {
        let core = self.read_core();
        TenantSummary {
            name: self.name.clone(),
            days_ingested: core.engine.reports().count() as u64,
            open_days: core.open_days.len() as u64,
            // The engine's counter, not the log's: it survives restore,
            // so cursors held across a restart never see a sequence
            // handed out twice.
            next_alert_sequence: core.engine.next_alert_sequence(),
            span_parse_errors: self.metrics.span_parse_errors.get(),
            // Read from the shared metric cell, never the store itself:
            // taking the store mutex here would stall the listing behind
            // an in-flight commit.
            gc_failures: self.metrics.store_gc_failures.get(),
        }
    }

    /// The drain step of a graceful shutdown: drops open (never-acked)
    /// days and checkpoints the engine if any report is not yet covered
    /// by a commit. Returns `(checkpointed, open_days_dropped)`.
    ///
    /// # Errors
    ///
    /// `500` when the final commit fails.
    pub fn drain_and_checkpoint(&self) -> Result<(bool, u64), ServeError> {
        let dropped = {
            let mut core = self.write_core();
            let dropped = core.open_days.len() as u64;
            let bytes: usize = core.open_days.values().map(|o| o.bytes).sum();
            core.open_days.clear();
            self.open_bytes.fetch_sub(bytes, Ordering::SeqCst);
            self.metrics.open_bytes.add(-(bytes as i64));
            dropped
        };
        let (handle, reports) = {
            let core = self.read_core();
            let reports = core.engine.reports().count();
            if reports == self.persisted_reports.load(Ordering::SeqCst) {
                drop(core);
                // Nothing new to snapshot, but in-flight background
                // commits must still land before the shutdown ack.
                self.persistence.drain().map_err(|e| ServeError::from_store(&e))?;
                return Ok((false, dropped));
            }
            let handle =
                self.persistence.commit(&core.engine).map_err(|e| ServeError::from_store(&e))?;
            (handle, reports)
        };
        handle.wait().map_err(|e| ServeError::from_store(&e))?;
        self.persisted_reports.store(reports, Ordering::SeqCst);
        Ok((true, dropped))
    }
}
