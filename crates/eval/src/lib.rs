//! Evaluation harnesses reproducing every table and figure of the DSN'15
//! paper on the synthetic LANL and AC datasets.
//!
//! * [`metrics`] — TDR / FDR / FNR / NDR (§V-C, §VI-B).
//! * [`lanl`] — the LANL challenge: pipeline run, Table II parameter sweep,
//!   Table III per-case results, Fig. 2 reduction series, Fig. 3 timing
//!   CDFs, and the Fig. 4 belief-propagation trace.
//! * [`ac`] — the enterprise evaluation: C&C model training, Fig. 5 score
//!   CDFs, the Fig. 6(a)/(b)/(c) threshold sweeps, and the Fig. 7/8
//!   community case studies.
//! * [`evasion`] — the §VIII evasion study: beacon jitter vs detection
//!   rate across the paper detector, a wide-parameter variant, and the
//!   baselines.
//! * [`report`] — fixed-width table rendering for experiment output.
//! * [`dot`] — Graphviz export of detected communities.
//! * [`export`] — JSON artifact export.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ac;
pub mod dot;
pub mod evasion;
pub mod export;
pub mod lanl;
pub mod metrics;
pub mod report;

pub use ac::{AcHarness, CaseStudy, Fig5, Fig6Row};
pub use evasion::{evasion_study, EvasionRow};
pub use lanl::{CampaignResult, Fig2Row, Fig3Data, LanlRun, Table2Row, Table3};
pub use metrics::{DetectionTally, Rates};
