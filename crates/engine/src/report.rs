//! Typed per-day and per-investigation reports.

use crate::alert::Alert;
use earlybird_core::BpOutcome;
use earlybird_logmodel::{Day, DomainSym};
use earlybird_pipeline::{DnsReductionCounts, NormalizationCounts, ProxyReductionCounts};
use serde::{Deserialize, Serialize};

/// Per-stage counters for one ingested day — the Fig. 2 reduction series
/// plus the detection-stage tallies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StageCounters {
    /// Raw records in the batch.
    pub records_in: usize,
    /// Log lines that failed to parse during streaming line ingestion.
    pub parse_errors: usize,
    /// Distinct folded domains before filtering ("All" in Fig. 2).
    pub domains_all: usize,
    /// After dropping internal destinations.
    pub domains_after_internal_filter: usize,
    /// After additionally dropping internal-server sources.
    pub domains_after_server_filter: usize,
    /// New destinations (never seen in the history).
    pub new_destinations: usize,
    /// Rare destinations (new + unpopular) — the detection candidates.
    pub rare_destinations: usize,
    /// Rare domains with at least one automated (beacon-like) host.
    pub automated_domains: usize,
    /// Automated domains whose score cleared the C&C threshold.
    pub cc_detections: usize,
    /// Belief-propagation iterations run during auto-investigation.
    pub bp_iterations: usize,
    /// Domains labeled malicious during auto-investigation (seeds included).
    pub bp_labeled: usize,
    /// Alerts emitted while ingesting the day.
    pub alerts_emitted: usize,
    /// Alert sinks that panicked (and were detached) while this day's
    /// alerts were delivered; the typed errors are available via
    /// [`crate::Engine::take_sink_errors`].
    pub sink_failures: usize,
    /// Wall-clock ingest time in microseconds.
    ///
    /// This is the one nondeterministic field: measurement, not state. It
    /// is excluded from the snapshot format (restored reports carry 0) and
    /// from [`StageCounters::deterministic_eq`]; per-stage timing detail
    /// lives in the metrics registry (`engine_stage_micros`), not here.
    pub wall_micros: u64,
}

impl StageCounters {
    /// Equality over every deterministic counter — everything except
    /// `wall_micros`, which is wall-clock measurement noise. This is the
    /// comparison every equivalence suite (streaming vs batch, restored vs
    /// uninterrupted, served vs embedded) should use: two runs over the
    /// same records must agree on all of it, bit for bit.
    pub fn deterministic_eq(&self, other: &StageCounters) -> bool {
        let strip = |s: &StageCounters| StageCounters { wall_micros: 0, ..*s };
        strip(self) == strip(other)
    }
}

/// One scored C&C candidate: a rare domain with automated connections.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CcCandidate {
    /// The (folded) domain.
    pub domain: DomainSym,
    /// Resolved name.
    pub name: String,
    /// Model score (regression score, or automated-host count under the
    /// LANL heuristic).
    pub score: f64,
    /// Number of hosts with automated connections to the domain.
    pub auto_hosts: usize,
    /// Estimated beacon period of the first automated host.
    pub period_secs: Option<u64>,
    /// Whether the full detector (threshold + model-specific rules) fired.
    pub detected: bool,
}

/// The typed result of [`crate::Engine::ingest_day`].
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct DayReport {
    /// The ingested day.
    pub day: Day,
    /// Whether the day fell in the bootstrap (profiling-only) period.
    pub bootstrap: bool,
    /// Whether this day had already been ingested; replays are a no-op (the
    /// cross-day popularity profiles must not be double-counted) and return
    /// the stored counters with this flag set.
    pub duplicate: bool,
    /// Per-stage counters.
    pub stages: StageCounters,
    /// DNS reduction counters (DNS batches only).
    pub dns_counts: Option<DnsReductionCounts>,
    /// Proxy reduction counters (proxy batches only).
    pub proxy_counts: Option<ProxyReductionCounts>,
    /// Normalization counters (proxy batches only).
    pub norm_counts: Option<NormalizationCounts>,
    /// Every automated rare domain with its score (operation days only),
    /// sorted by descending score then domain for determinism.
    pub cc_candidates: Vec<CcCandidate>,
    /// Auto-investigation outcome (when the engine is configured to expand
    /// detections through belief propagation during ingest).
    pub outcome: Option<BpOutcome>,
    /// Alerts emitted for this day, in delivery order.
    pub alerts: Vec<Alert>,
}

impl DayReport {
    /// The detected C&C candidates (score cleared the threshold).
    pub fn detections(&self) -> impl Iterator<Item = &CcCandidate> {
        self.cc_candidates.iter().filter(|c| c.detected)
    }
}

/// The result of an explicit [`crate::Engine::investigate`] call.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct InvestigationReport {
    /// The investigated day.
    pub day: Day,
    /// The raw belief-propagation outcome with per-iteration traces.
    pub outcome: BpOutcome,
    /// Whether seed domains count as detections (no-hint mode reports its
    /// own C&C seeds; SOC-hints mode does not re-count the hints).
    pub count_seeds: bool,
    /// Alerts emitted for this investigation, in delivery order.
    pub alerts: Vec<Alert>,
}

impl InvestigationReport {
    /// Names of the reported domains, respecting `count_seeds`.
    pub fn reported_names(&self) -> Vec<String> {
        self.alerts.iter().map(|a| a.name.clone()).collect()
    }
}

/// Summary of an enterprise training pass
/// ([`crate::Engine::train_enterprise`]).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TrainingReport {
    /// Training C&C samples used.
    pub cc_samples: usize,
    /// Training similarity samples used.
    pub sim_samples: usize,
    /// The fitted C&C model's R².
    pub cc_r_squared: f64,
    /// Per-feature `(name, weight, t-statistic, significant)` rows of the
    /// fitted C&C model.
    pub cc_summary: Vec<(String, f64, f64, bool)>,
    /// The fitted similarity model's R².
    pub sim_r_squared: f64,
    /// Per-feature `(name, weight, t-statistic, significant)` rows of the
    /// fitted similarity model.
    pub sim_summary: Vec<(String, f64, f64, bool)>,
    /// Population-average `(DomAge, DomValidity)` WHOIS defaults installed
    /// into the engine.
    pub whois_defaults: (f64, f64),
}
