//! The daemon: a bounded thread-per-connection HTTP server over a shared
//! tenant registry.
//!
//! * **Cold start** — [`Server::bind`] enumerates the root store's tenant
//!   scopes and restores every tenant before accepting a byte, so a
//!   restarted daemon answers queries for all previously-acked days
//!   immediately.
//! * **Concurrency** — connections are served by plain threads, bounded
//!   by a counting semaphore ([`ServerConfig::max_connections`]); within
//!   a connection, requests run sequentially (HTTP/1.1 keep-alive).
//!   Tenants are isolated: each owns its locks, so one tenant's heavy
//!   finish never blocks another's queries.
//! * **Shutdown** — `POST /v1/admin/shutdown` flips the draining flag
//!   (new work gets `503`), waits for in-flight requests, drops open
//!   days, checkpoints every tenant with unpersisted state, answers, and
//!   stops the accept loop.

use crate::error::ServeError;
use crate::http::{read_request, write_response, ReadError, Request, Response};
use crate::tenant::{Tenant, TenantLimits};
use crate::wire::{parse_day, ShutdownAck, TenantSpec, TenantsPage};
use earlybird_engine::LifecycleConfig;
use earlybird_obs::{Gauge, MetricsRegistry};
use earlybird_store::{validate_scope_name, ObjectStore};
use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError, RwLock};
use std::time::Duration;

/// Daemon configuration.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Concurrent connections served; excess connections wait.
    pub max_connections: usize,
    /// Per-request body ceiling in bytes.
    pub max_body_bytes: usize,
    /// Per-tenant admission ceilings.
    pub limits: TenantLimits,
    /// Store lifecycle (compaction trigger, retention) for every tenant.
    pub lifecycle: LifecycleConfig,
    /// The metrics registry every tenant's engine and store report into,
    /// served as Prometheus text at `GET /metrics`. Defaults to a fresh
    /// enabled registry; pass [`MetricsRegistry::disabled`] to skip span
    /// clock reads.
    pub metrics: Arc<MetricsRegistry>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            max_connections: 32,
            max_body_bytes: 64 << 20,
            limits: TenantLimits::default(),
            lifecycle: LifecycleConfig::default(),
            metrics: Arc::new(MetricsRegistry::new()),
        }
    }
}

/// The shared tenant registry: name → tenant, plus the root store the
/// scopes hang off.
struct Registry {
    /// The root store; `&self`-only API, but the trait is not `Sync`, so
    /// scoping new tenants goes through this mutex.
    root: Mutex<Box<dyn ObjectStore>>,
    tenants: RwLock<BTreeMap<String, Arc<Tenant>>>,
}

impl Registry {
    fn get(&self, name: &str) -> Result<Arc<Tenant>, ServeError> {
        self.tenants
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
            .cloned()
            .ok_or_else(|| ServeError::unknown_tenant(name))
    }
}

/// A bounded counting semaphore over `Mutex` + `Condvar`.
struct Semaphore {
    permits: Mutex<usize>,
    released: Condvar,
}

impl Semaphore {
    fn new(permits: usize) -> Self {
        Semaphore { permits: Mutex::new(permits), released: Condvar::new() }
    }

    fn acquire(&self) {
        let mut permits = self.permits.lock().unwrap_or_else(PoisonError::into_inner);
        while *permits == 0 {
            permits = self.released.wait(permits).unwrap_or_else(PoisonError::into_inner);
        }
        *permits -= 1;
    }

    fn release(&self) {
        *self.permits.lock().unwrap_or_else(PoisonError::into_inner) += 1;
        self.released.notify_one();
    }
}

struct Shared {
    cfg: ServerConfig,
    registry: Registry,
    draining: AtomicBool,
    stop_accepting: AtomicBool,
    active_requests: AtomicUsize,
    connections: Semaphore,
    connections_active: Gauge,
    requests_inflight: Gauge,
}

/// The running daemon. [`Server::bind`] restores tenants and starts
/// listening; [`Server::run`] serves until a shutdown request.
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listener and restores every tenant found under the root
    /// store's scopes (cold start).
    ///
    /// # Errors
    ///
    /// [`ServeError::internal`]-shaped failures for bind or restore
    /// problems — the daemon refuses to start half-restored.
    pub fn bind(root: Box<dyn ObjectStore>, cfg: ServerConfig) -> Result<Server, ServeError> {
        let listener = TcpListener::bind(&cfg.addr)
            .map_err(|e| ServeError::internal(format!("cannot bind {}: {e}", cfg.addr)))?;
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::internal(format!("cannot read bound address: {e}")))?;

        let mut tenants = BTreeMap::new();
        let scopes = root.scopes().map_err(|e| ServeError::from_store(&e))?;
        for name in scopes {
            let scope = root.scope(&name).map_err(|e| ServeError::from_store(&e))?;
            // A `None` is crash residue from an unacked creation; the
            // scope is skipped, not an error, and a later PUT may claim
            // the name again.
            if let Some(tenant) =
                Tenant::restore(&name, scope, cfg.lifecycle, cfg.limits, &cfg.metrics)?
            {
                tenants.insert(name, Arc::new(tenant));
            }
        }

        let shared = Arc::new(Shared {
            connections: Semaphore::new(cfg.max_connections.max(1)),
            connections_active: cfg.metrics.gauge(
                "serve_connections_active",
                "Connections currently holding a pool permit",
                &[],
            ),
            requests_inflight: cfg.metrics.gauge(
                "serve_requests_inflight",
                "Requests currently being dispatched",
                &[],
            ),
            cfg,
            registry: Registry { root: Mutex::new(root), tenants: RwLock::new(tenants) },
            draining: AtomicBool::new(false),
            stop_accepting: AtomicBool::new(false),
            active_requests: AtomicUsize::new(0),
        });
        Ok(Server { listener, addr, shared })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Tenants currently registered (restored + created).
    pub fn tenant_count(&self) -> usize {
        self.shared.registry.tenants.read().unwrap_or_else(PoisonError::into_inner).len()
    }

    /// Serves connections until a graceful shutdown completes. Returns
    /// once the accept loop has stopped and all worker threads finished.
    pub fn run(self) {
        let mut workers = Vec::new();
        for stream in self.listener.incoming() {
            if self.shared.stop_accepting.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            self.shared.connections.acquire();
            let shared = Arc::clone(&self.shared);
            let addr = self.addr;
            workers.push(std::thread::spawn(move || {
                shared.connections_active.inc();
                serve_connection(stream, &shared, addr);
                shared.connections_active.dec();
                shared.connections.release();
            }));
            workers.retain(|w| !w.is_finished());
        }
        for worker in workers {
            let _ = worker.join();
        }
    }

    /// Spawns [`Server::run`] on a background thread and returns a
    /// handle for tests and examples.
    pub fn spawn(self) -> ServerHandle {
        let addr = self.addr;
        let join = std::thread::spawn(move || self.run());
        ServerHandle { addr, join }
    }
}

/// Handle to a daemon spawned with [`Server::spawn`].
pub struct ServerHandle {
    addr: SocketAddr,
    join: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the daemon to exit (after a shutdown request).
    pub fn join(self) {
        let _ = self.join.join();
    }
}

fn serve_connection(stream: TcpStream, shared: &Shared, self_addr: SocketAddr) {
    // Every response is written as one buffer, but disable Nagle anyway
    // so acks never wait out a delayed-ACK window.
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else { return };
    let mut write_half = write_half;
    let mut reader = BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader, shared.cfg.max_body_bytes) {
            Ok(req) => req,
            Err(ReadError::Closed) | Err(ReadError::Io(_)) => return,
            Err(ReadError::Malformed(msg)) | Err(ReadError::TooLarge(msg)) => {
                let resp = ServeError::bad_request(msg).to_response();
                let _ = write_response(&mut write_half, &resp, false);
                return;
            }
        };
        let keep_alive = !request.wants_close();
        shared.active_requests.fetch_add(1, Ordering::SeqCst);
        shared.requests_inflight.inc();
        let response = dispatch(&request, shared, self_addr);
        shared.requests_inflight.dec();
        shared.active_requests.fetch_sub(1, Ordering::SeqCst);
        if write_response(&mut write_half, &response, keep_alive).is_err() || !keep_alive {
            return;
        }
    }
}

fn json_ok<T: serde::Serialize>(status: u16, value: &T) -> Response {
    Response::json(status, serde_json::to_string(value).expect("response serializes"))
}

fn dispatch(req: &Request, shared: &Shared, self_addr: SocketAddr) -> Response {
    match route(req, shared, self_addr) {
        Ok(resp) => resp,
        Err(err) => err.to_response(),
    }
}

fn route(req: &Request, shared: &Shared, self_addr: SocketAddr) -> Result<Response, ServeError> {
    let segments = req.segments();
    let method = req.method.as_str();

    match segments.as_slice() {
        // The scrape endpoint lives outside /v1: it follows the
        // Prometheus convention, not the service API's versioning.
        ["metrics"] if method == "GET" => {
            Ok(Response::text(200, shared.cfg.metrics.render_prometheus()))
        }
        ["v1", "healthz"] if method == "GET" => {
            let draining = shared.draining.load(Ordering::SeqCst);
            Ok(Response::json(200, format!("{{\"status\":\"ok\",\"draining\":{draining}}}")))
        }
        ["v1", "tenants"] if method == "GET" => {
            let tenants = shared.registry.tenants.read().unwrap_or_else(PoisonError::into_inner);
            let page = TenantsPage { tenants: tenants.values().map(|t| t.summary()).collect() };
            Ok(json_ok(200, &page))
        }
        ["v1", "admin", "shutdown"] if method == "POST" => shutdown(shared, self_addr),
        // Drains the registry's slow-op ring: each record is returned at
        // most once, so a polling operator sees every stall exactly once.
        ["v1", "admin", "slow-ops"] if method == "GET" => {
            let page = crate::wire::SlowOpsPage {
                slow_ops: shared
                    .cfg
                    .metrics
                    .take_slow_ops()
                    .into_iter()
                    .map(crate::wire::SlowOpWire::from)
                    .collect(),
            };
            Ok(json_ok(200, &page))
        }
        ["v1", tenant] if method == "PUT" => {
            refuse_if_draining(shared)?;
            create_tenant(shared, tenant, &req.body)
        }
        ["v1", tenant, "days", day, "spans"] if method == "POST" => {
            refuse_if_draining(shared)?;
            let tenant = shared.registry.get(tenant)?;
            let day = parse_day(day)?;
            let text = std::str::from_utf8(&req.body)
                .map_err(|_| ServeError::bad_request("span body must be UTF-8 log lines"))?;
            Ok(json_ok(200, &tenant.push_span(day, text)?))
        }
        ["v1", tenant, "days", day, "finish"] if method == "POST" => {
            refuse_if_draining(shared)?;
            let tenant = shared.registry.get(tenant)?;
            Ok(json_ok(200, &tenant.finish_day(parse_day(day)?)?))
        }
        ["v1", tenant, "days", day, "report"] if method == "GET" => {
            let tenant = shared.registry.get(tenant)?;
            Ok(json_ok(200, &tenant.report(parse_day(day)?)?))
        }
        ["v1", tenant, "reports"] if method == "GET" => {
            let tenant = shared.registry.get(tenant)?;
            let page = crate::wire::ReportsPage { reports: tenant.reports() };
            Ok(json_ok(200, &page))
        }
        ["v1", tenant, "alerts"] if method == "GET" => {
            let tenant = shared.registry.get(tenant)?;
            let since = match req.query_param("since") {
                None => 0,
                Some(raw) => raw.parse::<u64>().map_err(|_| {
                    ServeError::bad_request(format!("bad since cursor {raw:?} (expected a u64)"))
                })?,
            };
            Ok(json_ok(200, &tenant.alerts_since(since)))
        }
        ["v1", tenant, "investigate"] if method == "POST" => {
            refuse_if_draining(shared)?;
            let tenant = shared.registry.get(tenant)?;
            let body = std::str::from_utf8(&req.body)
                .map_err(|_| ServeError::bad_request("investigate body must be UTF-8 JSON"))?;
            let request: crate::wire::InvestigateRequest = serde_json::from_str(body)
                .map_err(|e| ServeError::bad_request(format!("bad investigate request: {e}")))?;
            Ok(json_ok(200, &tenant.investigate(&request)?))
        }
        // Known route shapes with the wrong verb get a 405, not a 404.
        ["metrics"]
        | ["v1", "tenants"]
        | ["v1", "admin", "shutdown" | "slow-ops"]
        | ["v1", _]
        | ["v1", _, "days", _, "spans" | "finish" | "report"]
        | ["v1", _, "reports" | "alerts" | "investigate"] => {
            Err(ServeError::method_not_allowed(method, &req.path))
        }
        _ => Err(ServeError::not_found(&req.path)),
    }
}

fn refuse_if_draining(shared: &Shared) -> Result<(), ServeError> {
    if shared.draining.load(Ordering::SeqCst) {
        Err(ServeError::draining())
    } else {
        Ok(())
    }
}

fn create_tenant(shared: &Shared, name: &str, body: &[u8]) -> Result<Response, ServeError> {
    validate_scope_name(name)
        .map_err(|e| ServeError::bad_request(format!("bad tenant name: {e}")))?;
    let body = std::str::from_utf8(body)
        .map_err(|_| ServeError::bad_request("tenant spec must be UTF-8 JSON"))?;
    let spec: TenantSpec = serde_json::from_str(body)
        .map_err(|e| ServeError::bad_request(format!("bad tenant spec: {e}")))?;

    {
        let tenants = shared.registry.tenants.read().unwrap_or_else(PoisonError::into_inner);
        if tenants.contains_key(name) {
            return Err(ServeError::tenant_exists(name));
        }
    }
    let scope = {
        let root = shared.registry.root.lock().unwrap_or_else(PoisonError::into_inner);
        root.scope(name).map_err(|e| ServeError::from_store(&e))?
    };
    let tenant = Tenant::create(
        name,
        &spec,
        scope,
        shared.cfg.lifecycle,
        shared.cfg.limits,
        &shared.cfg.metrics,
    )?;

    let mut tenants = shared.registry.tenants.write().unwrap_or_else(PoisonError::into_inner);
    if tenants.contains_key(name) {
        // Lost a PUT race; the winner's store already holds the scope.
        return Err(ServeError::tenant_exists(name));
    }
    let summary = tenant.summary();
    tenants.insert(name.to_string(), Arc::new(tenant));
    Ok(json_ok(201, &summary))
}

fn shutdown(shared: &Shared, self_addr: SocketAddr) -> Result<Response, ServeError> {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return Err(ServeError::draining());
    }
    // Wait out every other in-flight request (this one counts itself).
    while shared.active_requests.load(Ordering::SeqCst) > 1 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let tenants: Vec<Arc<Tenant>> = {
        let map = shared.registry.tenants.read().unwrap_or_else(PoisonError::into_inner);
        map.values().cloned().collect()
    };
    let mut checkpointed = 0u64;
    let mut dropped = 0u64;
    for tenant in tenants {
        let (wrote, open_dropped) = tenant.drain_and_checkpoint()?;
        checkpointed += u64::from(wrote);
        dropped += open_dropped;
    }
    shared.stop_accepting.store(true, Ordering::SeqCst);
    // Unblock the accept loop so run() can observe the stop flag.
    let _ = TcpStream::connect(self_addr);
    Ok(json_ok(
        200,
        &ShutdownAck { tenants_checkpointed: checkpointed, open_days_dropped: dropped },
    ))
}
