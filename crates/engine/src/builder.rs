//! Engine configuration and validated construction.

use crate::alert::AlertSink;
use crate::core_loop::Engine;
use crate::metrics::EngineMetrics;
use earlybird_core::{BpConfig, CcModel, PipelineConfig, SimScorer};
use earlybird_intel::WhoisRegistry;
use earlybird_logmodel::{DatasetMeta, DomainInterner, PathInterner, UaInterner};
use earlybird_obs::MetricsRegistry;
use earlybird_timing::AutomationDetector;
use std::fmt;
use std::sync::Arc;

/// A typed engine failure: configuration mistakes caught by
/// [`EngineBuilder::build`], unknown-day lookups, and runtime faults
/// (panicking alert sinks, crashed scoring workers) that previously
/// aborted the whole daily cycle.
#[derive(Debug)]
pub enum EngineError {
    /// A knob failed validation; the message names it.
    InvalidConfig(String),
    /// The requested day is not retained by the engine (bootstrap day, or
    /// never ingested).
    UnknownDay(earlybird_logmodel::Day),
    /// An alert sink panicked while consuming an alert. The sink has been
    /// detached so the daily cycle (and every other sink) continues;
    /// drain these via [`crate::Engine::take_sink_errors`].
    SinkPanicked {
        /// Index of the sink in attachment order.
        sink: usize,
        /// The panic payload, stringified.
        message: String,
    },
    /// A C&C scoring worker thread panicked; the day's detection pass
    /// cannot be trusted and is abandoned.
    WorkerPanicked(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::InvalidConfig(msg) => write!(f, "invalid engine config: {msg}"),
            EngineError::UnknownDay(day) => write!(f, "day {day:?} is not retained"),
            EngineError::SinkPanicked { sink, message } => {
                write!(f, "alert sink #{sink} panicked and was detached: {message}")
            }
            EngineError::WorkerPanicked(msg) => write!(f, "scoring worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

/// The complete, validated engine configuration. Built via
/// [`EngineBuilder`]; read back through [`Engine::config`].
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Reduction / profiling configuration (fold level, rarity thresholds).
    pub pipeline: PipelineConfig,
    /// The beacon detector used by the C&C stage.
    pub automation: AutomationDetector,
    /// The C&C scoring model (replaced in place by
    /// [`Engine::train_enterprise`]).
    pub cc_model: CcModel,
    /// The similarity scorer for belief propagation.
    pub sim: SimScorer,
    /// Belief-propagation limits.
    pub bp: BpConfig,
    /// WHOIS registry for registration features (absent for anonymized
    /// sources).
    pub whois: Option<WhoisRegistry>,
    /// Default `(DomAge, DomValidity)` when WHOIS data is missing.
    pub whois_defaults: (f64, f64),
    /// SOC-provided seed domain names (IOC feed), folded at build time and
    /// used by auto-investigation.
    pub soc_seed_domains: Vec<String>,
    /// Run belief propagation from the day's C&C detections (plus any SOC
    /// seeds present today) during [`Engine::ingest_day`].
    pub auto_investigate: bool,
    /// Worker threads for per-domain C&C scoring (1 = sequential).
    pub parallelism: usize,
    /// Minimum rare domains per worker before the scoring pass shards
    /// across threads; below `parallelism * parallel_threshold` domains the
    /// pass runs sequentially (thread spawn would dominate).
    pub parallel_threshold: usize,
    /// Minimum records per parse/reduce worker when a pushed ingest span is
    /// split across the pool (`Engine::begin_day` and the `ingest_day`
    /// wrapper); spans shorter than this run inline.
    pub ingest_chunk_records: usize,
    /// Override for the bootstrap/operation split; `None` uses
    /// [`DatasetMeta::bootstrap_days`].
    pub bootstrap_days: Option<u32>,
    /// Keep only the newest N operation days investigable (their contact
    /// indexes are the engine's dominant memory cost); older days are
    /// evicted and [`Engine::investigate`] returns `UnknownDay` for them.
    /// `None` (the default) retains every operation day, which the
    /// paper-evaluation harnesses need.
    pub retain_days: Option<usize>,
}

/// Builder for [`Engine`]: one place for every knob the DSN'15 loop needs.
pub struct EngineBuilder {
    cfg: EngineConfig,
    sinks: Vec<Box<dyn AlertSink + Send>>,
    uas: Option<Arc<UaInterner>>,
    paths: Option<Arc<PathInterner>>,
    metrics: Option<Arc<MetricsRegistry>>,
    metric_labels: Vec<(String, String)>,
}

impl EngineBuilder {
    /// LANL-mode defaults (§V): fold anonymized names to the third level,
    /// the paper's beacon detector, the two-host C&C heuristic, the
    /// additive similarity scorer, five BP iterations.
    pub fn lanl() -> Self {
        EngineBuilder {
            cfg: EngineConfig {
                pipeline: PipelineConfig::lanl(),
                automation: AutomationDetector::paper_default(),
                cc_model: CcModel::LanlHeuristic { min_hosts: 2, period_tolerance_secs: 10 },
                sim: SimScorer::lanl_default(),
                bp: BpConfig::lanl_default(),
                whois: None,
                whois_defaults: (0.0, 0.0),
                soc_seed_domains: Vec::new(),
                auto_investigate: false,
                parallelism: default_parallelism(),
                parallel_threshold: 512,
                ingest_chunk_records: 8_192,
                bootstrap_days: None,
                retain_days: None,
            },
            sinks: Vec::new(),
            uas: None,
            paths: None,
            metrics: None,
            metric_labels: Vec::new(),
        }
    }

    /// Enterprise-mode defaults (§VI): fold to the second level, larger BP
    /// cap. The C&C model starts as the conservative two-host heuristic and
    /// is upgraded to the trained regression by
    /// [`Engine::train_enterprise`].
    pub fn enterprise() -> Self {
        let mut b = Self::lanl();
        b.cfg.pipeline = PipelineConfig::enterprise();
        b.cfg.bp = BpConfig::enterprise_default();
        b
    }

    /// Replaces the reduction / profiling configuration.
    pub fn pipeline(mut self, pipeline: PipelineConfig) -> Self {
        self.cfg.pipeline = pipeline;
        self
    }

    /// Replaces the beacon detector.
    pub fn automation(mut self, automation: AutomationDetector) -> Self {
        self.cfg.automation = automation;
        self
    }

    /// Replaces the C&C scoring model.
    pub fn cc_model(mut self, model: CcModel) -> Self {
        self.cfg.cc_model = model;
        self
    }

    /// Replaces the similarity scorer.
    pub fn sim_scorer(mut self, sim: SimScorer) -> Self {
        self.cfg.sim = sim;
        self
    }

    /// Replaces the belief-propagation limits.
    pub fn bp(mut self, bp: BpConfig) -> Self {
        self.cfg.bp = bp;
        self
    }

    /// Installs a WHOIS registry for registration features.
    pub fn whois(mut self, whois: WhoisRegistry) -> Self {
        self.cfg.whois = Some(whois);
        self
    }

    /// Sets the `(DomAge, DomValidity)` defaults used when WHOIS data is
    /// missing or unparseable.
    pub fn whois_defaults(mut self, defaults: (f64, f64)) -> Self {
        self.cfg.whois_defaults = defaults;
        self
    }

    /// Adds one SOC seed (IOC) domain name.
    pub fn soc_seed(mut self, name: impl Into<String>) -> Self {
        self.cfg.soc_seed_domains.push(name.into());
        self
    }

    /// Adds many SOC seed domain names.
    pub fn soc_seeds<I: IntoIterator<Item = S>, S: Into<String>>(mut self, names: I) -> Self {
        self.cfg.soc_seed_domains.extend(names.into_iter().map(Into::into));
        self
    }

    /// Enables or disables auto-investigation during ingest.
    pub fn auto_investigate(mut self, enabled: bool) -> Self {
        self.cfg.auto_investigate = enabled;
        self
    }

    /// Sets the C&C-scoring worker-thread count (clamped to at least 1).
    pub fn parallelism(mut self, workers: usize) -> Self {
        self.cfg.parallelism = workers;
        self
    }

    /// Sets the minimum rare domains per worker below which the scoring
    /// pass stays sequential (clamped to at least 1).
    pub fn parallel_threshold(mut self, min_domains_per_worker: usize) -> Self {
        self.cfg.parallel_threshold = min_domains_per_worker;
        self
    }

    /// Sets the minimum records per parse/reduce worker for streaming
    /// ingest spans (clamped to at least 1).
    pub fn ingest_chunk_records(mut self, min_records_per_worker: usize) -> Self {
        self.cfg.ingest_chunk_records = min_records_per_worker;
        self
    }

    /// Installs the user-agent / URL-path interners used when parsing raw
    /// proxy log lines, so symbols stay consistent with records produced
    /// elsewhere (e.g. a `ProxyDataset`'s own interners). Fresh interners
    /// are created when omitted.
    pub fn proxy_interners(mut self, uas: Arc<UaInterner>, paths: Arc<PathInterner>) -> Self {
        self.uas = Some(uas);
        self.paths = Some(paths);
        self
    }

    /// Overrides the bootstrap/operation split from the dataset metadata.
    pub fn bootstrap_days(mut self, days: u32) -> Self {
        self.cfg.bootstrap_days = Some(days);
        self
    }

    /// Bounds engine memory on long streams: keep only the newest `days`
    /// operation days investigable, evicting older contact indexes.
    pub fn retain_days(mut self, days: usize) -> Self {
        self.cfg.retain_days = Some(days);
        self
    }

    /// Attaches an alert sink (may be called repeatedly; alerts fan out to
    /// every sink in attachment order).
    pub fn sink(mut self, sink: impl AlertSink + Send + 'static) -> Self {
        self.sinks.push(Box::new(sink));
        self
    }

    /// Attaches a shared [`MetricsRegistry`]: per-stage timings, ingest
    /// counters, and checkpoint bandwidth flow into it as `engine_*`
    /// series. Omitted, the engine records into a private enabled registry
    /// reachable via [`Engine::metrics`]. Like sinks, the registry is an
    /// attachment, not configuration — it is never persisted and never
    /// affects results.
    pub fn metrics(mut self, registry: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Adds one label to every metric series this engine registers (e.g.
    /// `("tenant", "acme")` in a multi-tenant service). May be called
    /// repeatedly.
    pub fn metric_label(mut self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.metric_labels.push((key.into(), value.into()));
        self
    }

    /// Validates the configuration and builds the engine over a dataset's
    /// raw-name interner and metadata.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] for out-of-range knobs.
    pub fn build(
        mut self,
        raw: Arc<DomainInterner>,
        meta: DatasetMeta,
    ) -> Result<Engine, EngineError> {
        validate_config(&self.cfg)?;
        let cfg = &mut self.cfg;
        cfg.parallelism = cfg.parallelism.max(1);
        cfg.parallel_threshold = cfg.parallel_threshold.max(1);
        cfg.ingest_chunk_records = cfg.ingest_chunk_records.max(1);
        let metrics = Self::make_metrics(self.metrics, &self.metric_labels);
        Ok(Engine::from_parts(self.cfg, self.sinks, raw, meta, self.uas, self.paths, metrics))
    }

    /// [`EngineBuilder::build`] wrapped in a [`crate::ShardedEngine`] with
    /// `shards` host-partitioned reduction lanes; results are byte-identical
    /// to the plain engine for any shard count.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError::InvalidConfig`] for out-of-range knobs or a
    /// zero shard count.
    pub fn build_sharded(
        self,
        raw: Arc<DomainInterner>,
        meta: DatasetMeta,
        shards: usize,
    ) -> Result<crate::ShardedEngine, EngineError> {
        if shards == 0 {
            return Err(EngineError::InvalidConfig(
                "a sharded engine needs at least one shard".into(),
            ));
        }
        Ok(crate::ShardedEngine::new(self.build(raw, meta)?, shards))
    }

    /// Registers the engine's metric handles against the attached registry
    /// (or a private enabled one when none was attached).
    pub(crate) fn make_metrics(
        registry: Option<Arc<MetricsRegistry>>,
        labels: &[(String, String)],
    ) -> EngineMetrics {
        EngineMetrics::new(registry.unwrap_or_else(|| Arc::new(MetricsRegistry::new())), labels)
    }

    /// Decomposes the builder into its configuration and attachments — used
    /// by the snapshot-restore path in [`crate::Engine`]'s `persist`
    /// module.
    #[allow(clippy::type_complexity)]
    pub(crate) fn into_parts(
        self,
    ) -> (
        EngineConfig,
        Vec<Box<dyn AlertSink + Send>>,
        Option<Arc<UaInterner>>,
        Option<Arc<PathInterner>>,
        EngineMetrics,
    ) {
        let metrics = Self::make_metrics(self.metrics, &self.metric_labels);
        (self.cfg, self.sinks, self.uas, self.paths, metrics)
    }
}

/// Shared validation for built and restored configurations: every invariant
/// the engine's constructors would otherwise `assert!`.
pub(crate) fn validate_config(cfg: &EngineConfig) -> Result<(), EngineError> {
    if cfg.pipeline.fold_level == 0 || cfg.pipeline.fold_level > 8 {
        return Err(EngineError::InvalidConfig(format!(
            "fold_level must be in 1..=8, got {}",
            cfg.pipeline.fold_level
        )));
    }
    if cfg.pipeline.unpopular_threshold == 0 {
        return Err(EngineError::InvalidConfig("unpopular_threshold must be at least 1".into()));
    }
    if cfg.pipeline.rare_ua_threshold == 0 {
        return Err(EngineError::InvalidConfig("rare_ua_threshold must be at least 1".into()));
    }
    if cfg.bp.max_iterations == 0 {
        return Err(EngineError::InvalidConfig("bp.max_iterations must be at least 1".into()));
    }
    if !cfg.sim.threshold().is_finite() {
        return Err(EngineError::InvalidConfig("similarity threshold must be finite".into()));
    }
    if !(cfg.whois_defaults.0.is_finite() && cfg.whois_defaults.1.is_finite()) {
        return Err(EngineError::InvalidConfig("whois defaults must be finite".into()));
    }
    if let CcModel::LanlHeuristic { min_hosts, .. } = cfg.cc_model {
        if min_hosts == 0 {
            return Err(EngineError::InvalidConfig(
                "LanlHeuristic min_hosts must be at least 1".into(),
            ));
        }
    }
    if cfg.retain_days == Some(0) {
        return Err(EngineError::InvalidConfig(
            "retain_days must be at least 1 (omit it to retain every day)".into(),
        ));
    }
    Ok(())
}

/// Default worker count: the machine's parallelism, capped to keep shard
/// overhead sensible on small days.
fn default_parallelism() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8)
}
