//! # earlybird-serve
//!
//! A multi-tenant ingest + query service daemon over the DSN'15 engine:
//! the shape the paper's detector takes when it runs *as a service* for
//! many enterprises instead of as a library inside one process.
//!
//! The daemon speaks a hand-rolled HTTP/1.1 + JSON protocol on
//! `std::net` — no async runtime, no HTTP dependency — with a bounded
//! thread-per-connection pool over a shared tenant registry:
//!
//! * [`server`] — the daemon: cold-start restore of every tenant from
//!   the root store's scopes, routing, draining shutdown.
//! * [`tenant`] — one tenant: an isolated [`earlybird_engine::Engine`] +
//!   [`earlybird_engine::StoreDir`] pair with per-tenant admission
//!   control and the read/write locking discipline that lets queries run
//!   concurrently with a day's store commit.
//! * [`wire`] — the typed JSON request/response bodies, shared between
//!   daemon and client.
//! * [`error`] — the `{code, message}` error envelope: every failure is
//!   a stable code under a meaningful status, and parses back typed.
//! * [`http`] — the minimal HTTP/1.1 layer (Content-Length bodies,
//!   keep-alive, hard size limits).
//! * [`client`] — a small blocking client for tests, examples, and
//!   benchmarks.
//!
//! Observability: every tenant's engine and store report into the
//! daemon's shared [`earlybird_engine::MetricsRegistry`]
//! ([`server::ServerConfig::metrics`]), joined by per-tenant service
//! series (`serve_ingest_*`, `serve_finish_commit_micros`, admission
//! rejections, in-flight gauges) and daemon-wide connection gauges. The
//! whole registry is served as Prometheus text at `GET /metrics`, and
//! `GET /v1/tenants` carries the per-tenant health counters inline.
//!
//! Durability contract: a `200` from `POST .../finish` is written only
//! after [`earlybird_engine::Persistence`] committed the
//! day to the tenant's store scope — a `kill -9` after the ack loses
//! nothing, and a restarted daemon restores every acked day for every
//! tenant before serving its first request. Span pushes are buffered,
//! not durable; the ack says "absorbed".
//!
//! See `SERVICE_API.md` at the repository root for the full route-by-
//! route protocol reference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod error;
pub mod http;
pub mod server;
pub mod tenant;
pub mod wire;

pub use client::{ClientError, ServeClient};
pub use error::ServeError;
pub use server::{Server, ServerConfig, ServerHandle};
pub use tenant::{Tenant, TenantLimits};
pub use wire::{
    AlertsPage, FinishAck, InvestigateRequest, ReportsPage, ShutdownAck, SpanAck, TenantSpec,
    TenantsPage,
};
