//! Daily pipeline orchestration: the "operation" loop of §III-E.
//!
//! [`DailyPipeline`] owns the cross-day state — domain/UA histories, the
//! fold table, the rare sieve — and turns each raw day batch into a
//! [`DayProduct`]: the reduced contacts indexed for detection, plus every
//! per-step counter the Fig. 2 reproduction needs. Bootstrap days only feed
//! the histories; operation days are compared against the profiles *before*
//! the profiles are updated.
//!
//! Ingestion is streaming-first: [`DailyPipeline::begin_dns_day`] /
//! [`DailyPipeline::begin_proxy_day`] open a [`DayAccum`] that absorbs the
//! day chunk by chunk ("updated incrementally daily" over logs too large to
//! materialize, §III-E), and [`DailyPipeline::finish_day`] seals it into a
//! [`DayOutcome`]. Chunk reduction borrows the pipeline immutably and is
//! thread-safe, so a caller may reduce disjoint chunks on parallel workers
//! (see [`DailyPipeline::reduce_dns_records`]) and absorb the results in
//! order; the whole-day `bootstrap_*` / `process_*` methods remain as the
//! single-chunk reference path.

use crate::context::DayContext;
use earlybird_intel::WhoisRegistry;
use earlybird_logmodel::{
    DatasetMeta, Day, DhcpLog, DnsDayLog, DnsQuery, DomainInterner, DomainSym, HostId, Ipv4,
    ProxyDayLog, ProxyRecord, UaSym,
};
use earlybird_pipeline::{
    normalize_proxy_chunk, normalize_proxy_day, reduce_dns_chunk, reduce_dns_day,
    reduce_proxy_chunk, reduce_proxy_day, ChunkReduction, DayIndex, DayIndexBuilder, DayReducer,
    DnsReductionCounts, DomainHistory, FoldTable, InternalFilter, NormalizationCounts,
    ProxyReductionCounts, RareSieve, ReductionConfig, UaHistory,
};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::sync::{Arc, Mutex};

/// Pipeline configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Domain fold level (2 for enterprise names, 3 for anonymized LANL).
    pub fold_level: usize,
    /// Rare-destination unpopularity threshold (10 hosts in the paper).
    pub unpopular_threshold: usize,
    /// Rare-UA host threshold (10 hosts in the paper).
    pub rare_ua_threshold: usize,
}

impl PipelineConfig {
    /// Enterprise (AC) configuration: fold to second level.
    pub fn enterprise() -> Self {
        PipelineConfig { fold_level: 2, unpopular_threshold: 10, rare_ua_threshold: 10 }
    }

    /// LANL configuration: fold anonymized names to third level.
    pub fn lanl() -> Self {
        PipelineConfig { fold_level: 3, unpopular_threshold: 10, rare_ua_threshold: 10 }
    }
}

/// The per-day output of the pipeline.
#[derive(Debug)]
pub struct DayProduct {
    /// The processed day.
    pub day: Day,
    /// Index over the day's reduced contacts.
    pub index: DayIndex,
    /// Folded-name interner (shared with the pipeline).
    pub folded: Arc<DomainInterner>,
    /// DNS reduction counters, for DNS days.
    pub dns_counts: Option<DnsReductionCounts>,
    /// Proxy reduction counters, for proxy days.
    pub proxy_counts: Option<ProxyReductionCounts>,
    /// Normalization counters, for proxy days.
    pub norm_counts: Option<NormalizationCounts>,
}

impl DayProduct {
    /// Builds the detector-facing context for this day.
    pub fn context<'a>(
        &'a self,
        whois: Option<&'a WhoisRegistry>,
        whois_defaults: (f64, f64),
    ) -> DayContext<'a> {
        DayContext {
            day: self.day,
            index: &self.index,
            folded: &self.folded,
            whois,
            whois_defaults,
        }
    }
}

/// Cross-day pipeline state.
///
/// Internal plumbing: callers should drive the daily cycle through
/// `earlybird-engine`'s `Engine::ingest_day` instead of calling the
/// `bootstrap_*` / `process_*` methods directly.
#[derive(Debug)]
pub struct DailyPipeline {
    cfg: PipelineConfig,
    fold: FoldTable,
    history: DomainHistory,
    ua_history: UaHistory,
    sieve: RareSieve,
    ip_literal_cache: Mutex<HashMap<DomainSym, bool>>,
}

impl DailyPipeline {
    /// Creates a pipeline over the dataset's raw-name interner.
    pub fn new(raw: Arc<DomainInterner>, cfg: PipelineConfig) -> Self {
        DailyPipeline {
            cfg,
            fold: FoldTable::new(raw, cfg.fold_level),
            history: DomainHistory::new(),
            ua_history: UaHistory::new(cfg.rare_ua_threshold),
            sieve: RareSieve::new(cfg.unpopular_threshold),
            ip_literal_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Reassembles a pipeline from checkpointed state — the persistence
    /// hook used by `earlybird-store` via the engine's restore path. The
    /// fold memo and IP-literal caches start empty and are rebuilt lazily;
    /// because `folded` already holds every folded name in its original
    /// numbering, re-folding reproduces identical symbols.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is invalid (zero fold level or thresholds); the
    /// engine validates restored configurations before calling this.
    pub fn from_restored(
        raw: Arc<DomainInterner>,
        folded: Arc<DomainInterner>,
        cfg: PipelineConfig,
        history: DomainHistory,
        ua_history: UaHistory,
    ) -> Self {
        DailyPipeline {
            cfg,
            fold: FoldTable::from_interners(raw, folded, cfg.fold_level),
            history,
            ua_history,
            sieve: RareSieve::new(cfg.unpopular_threshold),
            ip_literal_cache: Mutex::new(HashMap::new()),
        }
    }

    /// Replays a restored tail of the destination-history insertion log
    /// (see `DomainHistory::restore_extend`).
    pub fn restore_history_delta(
        &mut self,
        domains: impl IntoIterator<Item = DomainSym>,
        days_ingested: u32,
    ) {
        self.history.restore_extend(domains, days_ingested);
    }

    /// Replays a restored tail of the user-agent pair log.
    pub fn restore_ua_delta(&mut self, pairs: impl IntoIterator<Item = (UaSym, HostId)>) {
        self.ua_history.update_pairs(pairs);
    }

    /// The configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.cfg
    }

    /// The folded-name interner (shared with every [`DayProduct`]).
    pub fn folded_interner(&self) -> &Arc<DomainInterner> {
        self.fold.folded_interner()
    }

    /// Interns a seed domain name (IOC) into the folded namespace.
    pub fn intern_seed(&self, name: &str) -> DomainSym {
        self.fold.intern_folded(name)
    }

    /// The destination history (for inspection).
    pub fn history(&self) -> &DomainHistory {
        &self.history
    }

    /// The UA history (for inspection).
    pub fn ua_history(&self) -> &UaHistory {
        &self.ua_history
    }

    /// Ingests a bootstrap DNS day: reduction + history update, no
    /// detection.
    pub fn bootstrap_dns_day(&mut self, day: &DnsDayLog, meta: &DatasetMeta) -> DnsReductionCounts {
        let cfg = ReductionConfig::from_meta(meta);
        let (contacts, counts) = reduce_dns_day(day, meta, &self.fold, &cfg);
        self.history.update(&contacts);
        self.ua_history.update(&contacts);
        counts
    }

    /// Ingests a bootstrap proxy day.
    pub fn bootstrap_proxy_day(
        &mut self,
        day: &ProxyDayLog,
        dhcp: &DhcpLog,
        meta: &DatasetMeta,
    ) -> (NormalizationCounts, ProxyReductionCounts) {
        let (normalized, norm_counts) =
            normalize_proxy_day(day, dhcp, |r| self.is_ip_literal(r.domain));
        let cfg = ReductionConfig::from_meta(meta);
        let (contacts, counts) = reduce_proxy_day(&normalized, meta, &self.fold, &cfg);
        self.history.update(&contacts);
        self.ua_history.update(&contacts);
        (norm_counts, counts)
    }

    /// Processes an operation DNS day: reduce, extract rares against the
    /// *pre-update* history, index, then update the profiles.
    pub fn process_dns_day(&mut self, day: &DnsDayLog, meta: &DatasetMeta) -> DayProduct {
        let cfg = ReductionConfig::from_meta(meta);
        let (contacts, counts) = reduce_dns_day(day, meta, &self.fold, &cfg);
        let rare = self.sieve.extract(&contacts, &self.history);
        let index = DayIndex::build(day.day, &contacts, rare, Some(&self.ua_history));
        self.history.update(&contacts);
        self.ua_history.update(&contacts);
        DayProduct {
            day: day.day,
            index,
            folded: Arc::clone(self.fold.folded_interner()),
            dns_counts: Some(counts),
            proxy_counts: None,
            norm_counts: None,
        }
    }

    /// Processes an operation proxy day.
    pub fn process_proxy_day(
        &mut self,
        day: &ProxyDayLog,
        dhcp: &DhcpLog,
        meta: &DatasetMeta,
    ) -> DayProduct {
        let (normalized, norm_counts) =
            normalize_proxy_day(day, dhcp, |r| self.is_ip_literal(r.domain));
        let cfg = ReductionConfig::from_meta(meta);
        let (contacts, counts) = reduce_proxy_day(&normalized, meta, &self.fold, &cfg);
        let rare = self.sieve.extract(&contacts, &self.history);
        let index = DayIndex::build(day.day, &contacts, rare, Some(&self.ua_history));
        self.history.update(&contacts);
        self.ua_history.update(&contacts);
        DayProduct {
            day: day.day,
            index,
            folded: Arc::clone(self.fold.folded_interner()),
            dns_counts: None,
            proxy_counts: Some(counts),
            norm_counts: Some(norm_counts),
        }
    }

    // -- streaming ingestion ----------------------------------------------

    /// The raw-name interner the pipeline folds from (needed by callers
    /// that parse log lines directly into the pipeline's namespace).
    pub fn raw_interner(&self) -> &Arc<DomainInterner> {
        self.fold.raw_interner()
    }

    /// Opens a streaming DNS day. Push chunks with
    /// [`DailyPipeline::push_dns_chunk`] (or reduce them on parallel workers
    /// via [`DailyPipeline::reduce_dns_records`] and absorb in order), then
    /// seal with [`DailyPipeline::finish_day`].
    pub fn begin_dns_day(&self, day: Day, meta: &DatasetMeta, bootstrap: bool) -> DayAccum {
        self.begin_day(day, meta, bootstrap, DaySource::Dns)
    }

    /// Opens a streaming proxy day (see [`DailyPipeline::begin_dns_day`]).
    pub fn begin_proxy_day(&self, day: Day, meta: &DatasetMeta, bootstrap: bool) -> DayAccum {
        self.begin_day(day, meta, bootstrap, DaySource::Proxy)
    }

    fn begin_day(
        &self,
        day: Day,
        meta: &DatasetMeta,
        bootstrap: bool,
        source: DaySource,
    ) -> DayAccum {
        DayAccum {
            day,
            bootstrap,
            source,
            raw_records: 0,
            filter: InternalFilter::new(ReductionConfig::from_meta(meta)),
            reducer: DayReducer::new(),
            builder: (!bootstrap).then(|| DayIndexBuilder::new(day, self.sieve.threshold())),
            day_domains: HashSet::new(),
            ua_pairs: HashSet::new(),
            norm: NormalizationCounts::default(),
        }
    }

    /// Pre-interns the folded name of every query **sequentially, in record
    /// order** so that a subsequent parallel reduction of the same records
    /// performs only read-side cache hits. This is what keeps folded-symbol
    /// numbering deterministic (and therefore chunk-split invariant): the
    /// first fold of each name always happens here, in arrival order, never
    /// in a worker race.
    pub fn warm_dns_folds(&self, queries: &[DnsQuery]) {
        for q in queries {
            self.fold.fold(q.qname);
        }
    }

    /// Sequential fold warm-up for normalized proxy records (see
    /// [`DailyPipeline::warm_dns_folds`]).
    pub fn warm_proxy_folds(&self, records: &[ProxyRecord]) {
        for r in records {
            self.fold.fold(r.domain);
        }
    }

    /// Reduces one chunk of DNS queries against the accumulator's per-day
    /// filter state. Takes `&self` and `&DayAccum` only, so disjoint chunks
    /// may run on parallel workers — call [`DailyPipeline::warm_dns_folds`]
    /// over the full record span first, and absorb every result in chunk
    /// order with [`DailyPipeline::absorb_chunk`].
    pub fn reduce_dns_records(
        &self,
        accum: &DayAccum,
        queries: &[DnsQuery],
        meta: &DatasetMeta,
    ) -> ChunkReduction {
        reduce_dns_chunk(queries, meta, &self.fold, &accum.filter)
    }

    /// Normalizes one chunk of raw proxy records (UTC conversion, DHCP/VPN
    /// lease resolution, IP-literal filtering), preserving record order.
    /// Thread-safe; merge the counters with [`DayAccum::merge_norm`] in
    /// chunk order.
    pub fn normalize_proxy_records(
        &self,
        records: &[ProxyRecord],
        dhcp: &DhcpLog,
    ) -> (Vec<ProxyRecord>, NormalizationCounts) {
        normalize_proxy_chunk(records, dhcp, |r| self.is_ip_literal(r.domain))
    }

    /// Reduces one chunk of *normalized* proxy records (the parallel-worker
    /// counterpart of [`DailyPipeline::reduce_dns_records`]).
    pub fn reduce_proxy_records(
        &self,
        accum: &DayAccum,
        records: &[ProxyRecord],
        meta: &DatasetMeta,
    ) -> ChunkReduction {
        reduce_proxy_chunk(records, meta, &self.fold, &accum.filter)
    }

    /// Merges a reduced chunk into the day: counters into the
    /// [`DayReducer`], `(UA, host)` observations into the deferred
    /// user-agent update, and contacts into the [`DayIndexBuilder`]
    /// (operation days) or the deferred history set (bootstrap days).
    ///
    /// Chunks must be absorbed in push order for deterministic counters —
    /// the index itself is order-independent.
    pub fn absorb_chunk(&self, accum: &mut DayAccum, chunk: ChunkReduction) {
        accum.reducer.push_chunk(&chunk);
        for c in &chunk.contacts {
            if let Some(ua) = c.http.and_then(|h| h.ua) {
                accum.ua_pairs.insert((ua, c.host));
            }
        }
        match &mut accum.builder {
            Some(builder) => {
                builder.push_contacts(&chunk.contacts, &self.history, Some(&self.ua_history));
            }
            None => accum.day_domains.extend(chunk.contacts.iter().map(|c| c.domain)),
        }
    }

    /// Merges one shard's day-long accumulation into the canonical
    /// [`DayAccum`] — the deterministic-merge hook behind
    /// `earlybird-engine`'s `ShardedEngine`. The caller must already have
    /// remapped every domain symbol in the partial onto the canonical
    /// folded interner (see [`DayReducer::remap_domains`] /
    /// [`DayIndexBuilder::remap_domains`]); this method only unions.
    ///
    /// Merging is commutative over host-partitioned shards, but callers
    /// merge in shard order anyway so any future order-sensitive state
    /// stays deterministic.
    ///
    /// # Panics
    ///
    /// Panics if the partial disagrees with the accumulator on bootstrap
    /// mode (one carries an index builder, the other does not).
    pub fn absorb_shard_partial(&self, accum: &mut DayAccum, partial: ShardDayPartial) {
        accum.reducer.merge(partial.reducer);
        accum.ua_pairs.extend(partial.ua_pairs);
        match (&mut accum.builder, partial.builder) {
            (Some(canonical), Some(local)) => canonical.merge(local),
            (None, None) => accum.day_domains.extend(partial.day_domains),
            _ => panic!("shard partial disagrees with the day's bootstrap mode"),
        }
    }

    /// Sequential convenience: reduce + absorb one chunk of DNS queries.
    pub fn push_dns_chunk(&self, accum: &mut DayAccum, queries: &[DnsQuery], meta: &DatasetMeta) {
        accum.raw_records += queries.len();
        let chunk = self.reduce_dns_records(accum, queries, meta);
        self.absorb_chunk(accum, chunk);
    }

    /// Sequential convenience: normalize + reduce + absorb one chunk of raw
    /// proxy records.
    pub fn push_proxy_chunk(
        &self,
        accum: &mut DayAccum,
        records: &[ProxyRecord],
        dhcp: &DhcpLog,
        meta: &DatasetMeta,
    ) {
        accum.raw_records += records.len();
        let (normalized, counts) = self.normalize_proxy_records(records, dhcp);
        accum.merge_norm(&counts);
        let chunk = self.reduce_proxy_records(accum, &normalized, meta);
        self.absorb_chunk(accum, chunk);
    }

    /// Seals a streamed day: finalizes the index (operation days), then —
    /// and only then — folds the day's destinations and user agents into the
    /// cross-day histories, exactly like the whole-day path ("updated at the
    /// end of each day", §IV-A).
    pub fn finish_day(&mut self, accum: DayAccum) -> DayOutcome {
        let DayAccum {
            day,
            bootstrap: _,
            source,
            raw_records: _,
            filter: _,
            reducer,
            builder,
            day_domains,
            ua_pairs,
            norm,
        } = accum;
        let (dns_counts, proxy_counts, norm_counts) = match source {
            DaySource::Dns => (Some(reducer.dns_counts()), None, None),
            DaySource::Proxy => (None, Some(reducer.proxy_counts()), Some(norm)),
        };
        // The histories' insertion logs are checkpointed verbatim, so fold
        // each day's additions in sorted order: set semantics are unchanged
        // and snapshot bytes become run-to-run deterministic.
        let outcome = match builder {
            Some(builder) => {
                let index = builder.finalize();
                let mut domains: Vec<DomainSym> = index.domains().collect();
                domains.sort_unstable();
                self.history.update_domains(domains);
                DayOutcome::Operation(Box::new(DayProduct {
                    day,
                    index,
                    folded: Arc::clone(self.fold.folded_interner()),
                    dns_counts,
                    proxy_counts,
                    norm_counts,
                }))
            }
            None => {
                let mut domains: Vec<DomainSym> = day_domains.into_iter().collect();
                domains.sort_unstable();
                self.history.update_domains(domains);
                DayOutcome::Bootstrap { dns_counts, proxy_counts, norm_counts }
            }
        };
        let mut pairs: Vec<(UaSym, HostId)> = ua_pairs.into_iter().collect();
        pairs.sort_unstable();
        self.ua_history.update_pairs(pairs);
        outcome
    }

    /// Whether a raw destination "domain" is an IP literal (§IV-A drops
    /// those); memoized per symbol.
    fn is_ip_literal(&self, raw: DomainSym) -> bool {
        let cache = self.ip_literal_cache.lock().expect("ip-literal cache poisoned");
        if let Some(&v) = cache.get(&raw) {
            return v;
        }
        drop(cache);
        let name = self.fold.raw_interner().resolve(raw);
        let v = name.parse::<Ipv4>().is_ok();
        self.ip_literal_cache.lock().expect("ip-literal cache poisoned").insert(raw, v);
        v
    }
}

/// Which log source a streamed day carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum DaySource {
    Dns,
    Proxy,
}

/// In-flight state of one streamed day: per-day reduction filter and
/// counters, the incremental index builder (operation days), and the
/// deferred history/user-agent updates applied at
/// [`DailyPipeline::finish_day`].
///
/// A `DayAccum` holds no borrow of the pipeline, so the caller can keep
/// pushing chunks while sharing the pipeline immutably with reduction
/// workers.
#[derive(Debug)]
pub struct DayAccum {
    day: Day,
    bootstrap: bool,
    source: DaySource,
    raw_records: usize,
    filter: InternalFilter,
    reducer: DayReducer,
    builder: Option<DayIndexBuilder>,
    day_domains: HashSet<DomainSym>,
    ua_pairs: HashSet<(UaSym, HostId)>,
    norm: NormalizationCounts,
}

impl DayAccum {
    /// The day being streamed.
    pub fn day(&self) -> Day {
        self.day
    }

    /// Whether the day is a bootstrap (profiling-only) day.
    pub fn bootstrap(&self) -> bool {
        self.bootstrap
    }

    /// Whether the accumulator expects DNS records.
    pub fn is_dns(&self) -> bool {
        self.source == DaySource::Dns
    }

    /// Raw records pushed so far (pre-normalization for proxy days).
    pub fn records_in(&self) -> usize {
        self.raw_records
    }

    /// Adds raw (pre-normalization) records to the day's input tally; the
    /// parallel path calls this once per pushed span.
    pub fn count_raw_records(&mut self, n: usize) {
        self.raw_records += n;
    }

    /// Merges one chunk's normalization counters (proxy days).
    pub fn merge_norm(&mut self, counts: &NormalizationCounts) {
        self.norm.merge(counts);
    }
}

/// One shard's contribution to a streamed day, accumulated against a
/// shard-local folded interner and handed to
/// [`DailyPipeline::absorb_shard_partial`] after its domain symbols are
/// remapped onto the canonical table.
///
/// Mirrors the per-shard slice of [`DayAccum`]: reduction counters, the
/// index builder (operation days) or deferred history domains (bootstrap
/// days), and the deferred `(UA, host)` observations. Normalization
/// counters are absent — the sharded proxy path merges those at span level
/// via [`DayAccum::merge_norm`], in arrival order.
#[derive(Debug)]
pub struct ShardDayPartial {
    /// The shard's reduction counters.
    pub reducer: DayReducer,
    /// The shard's index builder (`None` on bootstrap days).
    pub builder: Option<DayIndexBuilder>,
    /// Deferred history domains (bootstrap days only).
    pub day_domains: HashSet<DomainSym>,
    /// Deferred `(UA, host)` observations.
    pub ua_pairs: HashSet<(UaSym, HostId)>,
}

/// What [`DailyPipeline::finish_day`] produced: profile-only counters for a
/// bootstrap day, or the full detector-facing [`DayProduct`] for an
/// operation day.
#[derive(Debug)]
pub enum DayOutcome {
    /// A bootstrap day: the histories were updated, nothing is indexed.
    Bootstrap {
        /// DNS reduction counters, for DNS days.
        dns_counts: Option<DnsReductionCounts>,
        /// Proxy reduction counters, for proxy days.
        proxy_counts: Option<ProxyReductionCounts>,
        /// Normalization counters, for proxy days.
        norm_counts: Option<NormalizationCounts>,
    },
    /// An operation day, indexed and ready for detection (boxed: the index
    /// dwarfs the bootstrap counters).
    Operation(Box<DayProduct>),
}

#[cfg(test)]
mod tests {
    use super::*;
    use earlybird_synthgen::lanl::{LanlConfig, LanlGenerator};

    #[test]
    fn bootstrap_then_operation_classifies_rares() {
        let gen = LanlGenerator::new(LanlConfig::tiny());
        let challenge = gen.generate();
        let meta = &challenge.dataset.meta;
        let mut pipeline =
            DailyPipeline::new(Arc::clone(&challenge.dataset.domains), PipelineConfig::lanl());

        for day in &challenge.dataset.days[..5] {
            pipeline.bootstrap_dns_day(day, meta);
        }
        assert!(pipeline.history().len() > 50, "history populated");

        let product = pipeline.process_dns_day(&challenge.dataset.days[5], meta);
        assert!(product.index.rare_count() > 0, "fresh domains appear daily");
        let counts = product.dns_counts.unwrap();
        assert!(counts.domains_all >= counts.domains_after_internal_filter);
        assert!(counts.domains_after_internal_filter >= counts.domains_after_server_filter);
        assert!(product.index.rare_count() <= counts.domains_after_server_filter);
    }

    #[test]
    fn campaign_domains_are_rare_on_their_day() {
        let gen = LanlGenerator::new(LanlConfig::tiny());
        let challenge = gen.generate();
        let meta = &challenge.dataset.meta;
        let mut pipeline =
            DailyPipeline::new(Arc::clone(&challenge.dataset.domains), PipelineConfig::lanl());

        let campaign = &challenge.campaigns[0];
        for day in &challenge.dataset.days {
            if day.day < campaign.day {
                pipeline.bootstrap_dns_day(day, meta);
            }
        }
        let product = pipeline.process_dns_day(challenge.dataset.day(campaign.day).unwrap(), meta);
        for name in campaign.answer_domains() {
            let sym = pipeline.folded_interner().get(name).expect("campaign domain indexed");
            assert!(product.index.is_rare(sym), "{name} must be rare on its campaign day");
        }
    }

    #[test]
    fn context_carries_whois_defaults() {
        let gen = LanlGenerator::new(LanlConfig::tiny());
        let challenge = gen.generate();
        let meta = &challenge.dataset.meta;
        let mut pipeline =
            DailyPipeline::new(Arc::clone(&challenge.dataset.domains), PipelineConfig::lanl());
        let product = pipeline.process_dns_day(&challenge.dataset.days[0], meta);
        let ctx = product.context(None, (123.0, 456.0));
        let any = product.index.rare_domains().next().expect("some rare domain");
        assert_eq!(ctx.whois_features(any), (123.0, 456.0));
    }

    #[test]
    fn streamed_day_matches_batch_day() {
        let gen = LanlGenerator::new(LanlConfig::tiny());
        let challenge = gen.generate();
        let meta = &challenge.dataset.meta;

        let mut batch =
            DailyPipeline::new(Arc::clone(&challenge.dataset.domains), PipelineConfig::lanl());
        let mut streamed =
            DailyPipeline::new(Arc::clone(&challenge.dataset.domains), PipelineConfig::lanl());

        for (i, day) in challenge.dataset.days[..6].iter().enumerate() {
            let bootstrap = i < 5;
            let batch_counts = if bootstrap {
                batch.bootstrap_dns_day(day, meta)
            } else {
                let product = batch.process_dns_day(day, meta);
                product.dns_counts.unwrap()
            };

            let mut accum = streamed.begin_dns_day(day.day, meta, bootstrap);
            for chunk in day.queries.chunks(97) {
                streamed.push_dns_chunk(&mut accum, chunk, meta);
            }
            assert_eq!(accum.records_in(), day.queries.len());
            match streamed.finish_day(accum) {
                DayOutcome::Bootstrap { dns_counts, .. } => {
                    assert!(bootstrap);
                    assert_eq!(dns_counts.unwrap(), batch_counts);
                }
                DayOutcome::Operation(product) => {
                    assert!(!bootstrap);
                    assert_eq!(product.dns_counts.unwrap(), batch_counts);
                    assert!(product.index.rare_count() > 0);
                }
            }
            assert_eq!(streamed.history().len(), batch.history().len(), "day {i}");
            assert_eq!(streamed.history().days_ingested(), batch.history().days_ingested());
        }

        // The operation day's rare sets agree between the two paths.
        let day = &challenge.dataset.days[6];
        let batch_product = batch.process_dns_day(day, meta);
        let mut accum = streamed.begin_dns_day(day.day, meta, false);
        streamed.push_dns_chunk(&mut accum, &day.queries, meta);
        let DayOutcome::Operation(stream_product) = streamed.finish_day(accum) else {
            panic!("operation day expected");
        };
        let mut batch_rare: Vec<DomainSym> = batch_product.index.rare_domains().collect();
        let mut stream_rare: Vec<DomainSym> = stream_product.index.rare_domains().collect();
        batch_rare.sort_unstable();
        stream_rare.sort_unstable();
        assert_eq!(batch_rare, stream_rare);
        assert_eq!(batch_product.index.new_count(), stream_product.index.new_count());
    }

    #[test]
    fn seed_interning_folds() {
        let gen = LanlGenerator::new(LanlConfig::tiny());
        let challenge = gen.generate();
        let pipeline =
            DailyPipeline::new(Arc::clone(&challenge.dataset.domains), PipelineConfig::lanl());
        let a = pipeline.intern_seed("deep.sub.rainbow.c3");
        let b = pipeline.intern_seed("sub.rainbow.c3");
        assert_eq!(a, b, "seeds fold to the pipeline's level");
    }
}
