//! Checkpoint/restore throughput: how fast the durability layer moves
//! engine state, reported alongside the ingest baseline in
//! `engine_benches.rs`. Both MB/s (snapshot bytes) and records/s (raw log
//! records whose derived state the snapshot carries) are reported for the
//! full-snapshot writer, the reader, and the incremental day-segment
//! writer.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use earlybird_engine::{
    compact_store, compact_store_tiered, DayBatch, Engine, EngineBuilder, LifecycleConfig, StoreDir,
};
use earlybird_synthgen::lanl::LanlChallenge;
use std::path::PathBuf;
use std::sync::Arc;

// Raw-stream restore flows through the one-release deprecated shim; the
// bench keeps measuring bare deserialization, without store-dir plumbing.
fn restore_raw(bytes: &[u8]) -> Engine {
    EngineBuilder::lanl().restore_stream(&mut &bytes[..]).expect("snapshot restores")
}

/// Engine with the benchmark-scale LANL history ingested (bootstrap plus
/// several operation days — profiles, UA history, and retained indexes all
/// populated). Returns the engine and the raw records behind its state.
fn loaded_engine(challenge: &LanlChallenge) -> (Engine, u64) {
    let mut engine = EngineBuilder::lanl()
        .build(Arc::clone(&challenge.dataset.domains), challenge.dataset.meta.clone())
        .expect("valid config");
    let boot = challenge.dataset.meta.bootstrap_days as usize;
    let mut records = 0u64;
    for day in &challenge.dataset.days[..boot + 6] {
        records += day.queries.len() as u64;
        engine.ingest_day(DayBatch::Dns(day));
    }
    (engine, records)
}

fn bench_checkpoint(c: &mut Criterion) {
    let challenge = earlybird_bench::lanl_world();
    let (engine, records) = loaded_engine(&challenge);
    let mut buf = Vec::new();
    engine.freeze().write_to(&mut buf).expect("checkpoint succeeds");
    let bytes = buf.len() as u64;

    let mut group = c.benchmark_group("store_checkpoint/lanl_small");
    group.throughput(Throughput::Bytes(bytes));
    group.bench_function("full_snapshot_mbps", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(bytes as usize);
            engine.freeze().write_to(&mut out).expect("checkpoint succeeds");
            out.len()
        })
    });
    group.finish();

    let mut group = c.benchmark_group("store_checkpoint/lanl_small");
    group.throughput(Throughput::Elements(records));
    group.bench_function("full_snapshot_records", |b| {
        b.iter(|| {
            let mut out = Vec::with_capacity(bytes as usize);
            engine.freeze().write_to(&mut out).expect("checkpoint succeeds");
            out.len()
        })
    });
    group.finish();
}

fn bench_checkpoint_day(c: &mut Criterion) {
    let challenge = earlybird_bench::lanl_world();
    let boot = challenge.dataset.meta.bootstrap_days as usize;
    let day = &challenge.dataset.days[boot + 6];

    // Measure one daily cycle's persistence cost: ingest the next day and
    // append its O(day) segment. Each iteration rebuilds from the restored
    // baseline so the delta is always exactly one day.
    let mut baseline = Vec::new();
    {
        let (engine, _) = loaded_engine(&challenge);
        engine.freeze().write_to(&mut baseline).expect("checkpoint succeeds");
    }

    let mut group = c.benchmark_group("store_checkpoint/lanl_small");
    group.throughput(Throughput::Elements(day.queries.len() as u64));
    group.bench_function("day_segment_records", |b| {
        b.iter(|| {
            let mut engine = restore_raw(&baseline);
            engine.ingest_day(DayBatch::Dns(day));
            let mut seg = Vec::new();
            engine.freeze_day().expect("segment freezes").write_to(&mut seg).expect("segment");
            seg.len()
        })
    });
    group.finish();
}

fn bench_restore(c: &mut Criterion) {
    let challenge = earlybird_bench::lanl_world();
    let (engine, records) = loaded_engine(&challenge);
    let mut snapshot = Vec::new();
    engine.freeze().write_to(&mut snapshot).expect("checkpoint succeeds");

    let mut group = c.benchmark_group("store_restore/lanl_small");
    group.throughput(Throughput::Bytes(snapshot.len() as u64));
    group.bench_function("full_snapshot_mbps", |b| b.iter(|| restore_raw(&snapshot)));
    group.finish();

    let mut group = c.benchmark_group("store_restore/lanl_small");
    group.throughput(Throughput::Elements(records));
    group.bench_function("full_snapshot_records", |b| b.iter(|| restore_raw(&snapshot)));
    group.finish();
}

fn bench_compaction(c: &mut Criterion) {
    let challenge = earlybird_bench::lanl_world();
    let master: PathBuf =
        std::env::temp_dir().join(format!("earlybird-bench-chain-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&master);
    let chain_bytes = earlybird_bench::build_lanl_chain(&challenge, &master);
    let scratch = master.with_extension("scratch");

    // Chain bytes in, one full block out: restore into a scratch engine,
    // re-snapshot, atomically swap the manifest.
    let mut group = c.benchmark_group("store_compaction/lanl_small");
    group.throughput(Throughput::Bytes(chain_bytes));
    group.bench_function("fold_chain_mbps", |b| {
        b.iter_batched(
            || {
                earlybird_bench::copy_store_dir(&master, &scratch);
                StoreDir::open(&scratch, LifecycleConfig::default()).expect("open copy")
            },
            |mut dir| compact_store(&mut dir).expect("compaction succeeds"),
            BatchSize::LargeInput,
        )
    });
    group.finish();

    // The tiered pass folds only the two oldest segments — replay (and so
    // latency) is bounded by the tier, not the chain length.
    let mut group = c.benchmark_group("store_compaction/lanl_small");
    group.throughput(Throughput::Bytes(chain_bytes));
    group.bench_function("fold_tier2_mbps", |b| {
        b.iter_batched(
            || {
                earlybird_bench::copy_store_dir(&master, &scratch);
                StoreDir::open(&scratch, LifecycleConfig::default()).expect("open copy")
            },
            |mut dir| compact_store_tiered(&mut dir, 2).expect("tiered pass succeeds"),
            BatchSize::LargeInput,
        )
    });
    group.finish();

    let _ = std::fs::remove_dir_all(&master);
    let _ = std::fs::remove_dir_all(&scratch);
}

criterion_group!(benches, bench_checkpoint, bench_checkpoint_day, bench_restore, bench_compaction);
criterion_main!(benches);
