//! The service, end to end: a daemon over a pluggable root store, two
//! tenants ingesting concurrently over HTTP, queries, an investigation,
//! a graceful shutdown — and a second daemon incarnation proving that
//! everything acked durable survives the restart.
//!
//! The storage medium comes from `EARLYBIRD_BACKEND` (`localfs` when
//! unset, or `mem` / `s3lite`), so the CI backend matrix drives the same
//! flow over every shipped [`ObjectStore`] implementation.
//!
//! Run with: `cargo run --release --example serve_client`

use earlybird::engine::{LocalFsBackend, MemBackend, ObjectStore, S3LiteBackend};
use earlybird::logmodel::{format_dns_line, DomainInterner};
use earlybird::serve::{InvestigateRequest, ServeClient, Server, ServerConfig, TenantSpec};
use earlybird::synthgen::lanl::{LanlConfig, LanlGenerator};
use std::path::PathBuf;
use std::sync::Arc;

/// The root store for one daemon incarnation. The handle-based backends
/// return another handle on the same shared state, so "restarting the
/// daemon" means opening a new box over what the previous one committed —
/// exactly what reopening a directory does for `localfs`.
enum Root {
    LocalFs(PathBuf),
    Mem(MemBackend),
    S3Lite(S3LiteBackend),
}

impl Root {
    fn select() -> Root {
        let name = std::env::var("EARLYBIRD_BACKEND").unwrap_or_else(|_| "localfs".into());
        match name.as_str() {
            "localfs" | "all" => {
                let root = std::env::temp_dir()
                    .join(format!("earlybird-serve-example-{}", std::process::id()));
                let _ = std::fs::remove_dir_all(&root);
                std::fs::create_dir_all(&root).expect("create store root");
                Root::LocalFs(root)
            }
            "mem" => Root::Mem(MemBackend::new()),
            "s3lite" => Root::S3Lite(S3LiteBackend::new()),
            other => panic!("EARLYBIRD_BACKEND={other:?} (expected localfs, mem, or s3lite)"),
        }
    }

    fn name(&self) -> &'static str {
        match self {
            Root::LocalFs(_) => "localfs",
            Root::Mem(_) => "mem",
            Root::S3Lite(_) => "s3lite",
        }
    }

    fn store(&self) -> Box<dyn ObjectStore> {
        match self {
            Root::LocalFs(root) => Box::new(LocalFsBackend::new(root).expect("open root")),
            Root::Mem(handle) => Box::new(handle.clone()),
            Root::S3Lite(handle) => Box::new(handle.clone()),
        }
    }

    fn cleanup(&self) {
        if let Root::LocalFs(root) = self {
            let _ = std::fs::remove_dir_all(root);
        }
    }
}

fn main() {
    let root = Root::select();
    println!("backend: {}", root.name());

    // A tiny synthetic enterprise, rendered to the tab-separated
    // interchange lines a real collector would POST.
    let challenge = LanlGenerator::new(LanlConfig::tiny()).generate();
    let meta = &challenge.dataset.meta;
    let spec = TenantSpec {
        n_hosts: meta.n_hosts,
        host_kinds: Vec::new(),
        internal_suffixes: meta.internal_suffixes.clone(),
        bootstrap_days: meta.bootstrap_days,
        total_days: meta.total_days,
        auto_investigate: true,
        soc_seeds: Vec::new(),
        retain_days: 0,
    };
    let domains: &Arc<DomainInterner> = &challenge.dataset.domains;
    let days: Vec<(u32, String)> = challenge
        .dataset
        .days
        .iter()
        .map(|day| {
            let mut text = String::new();
            for q in &day.queries {
                text.push_str(&format_dns_line(q, domains));
                text.push('\n');
            }
            (day.day.index(), text)
        })
        .collect();

    // ---- Incarnation #1: create tenants, ingest, query. ----------------
    let server = Server::bind(root.store(), ServerConfig::default()).expect("bind daemon");
    let addr = server.addr();
    let handle = server.spawn();
    println!("daemon listening on {addr}");

    // Two tenants ingesting the same feed concurrently, each isolated in
    // its own engine + store scope.
    let tenants = ["acme", "globex"];
    std::thread::scope(|scope| {
        for name in tenants {
            let days = &days;
            let spec = &spec;
            scope.spawn(move || {
                let mut client = ServeClient::new(addr);
                client.create_tenant(name, spec).expect("create tenant");
                for (day, text) in days {
                    // A collector may deliver a day in many spans; split
                    // each day in two to exercise resume.
                    let mid = text.len() / 2;
                    let mid = mid + text[mid..].find('\n').map_or(0, |i| i + 1);
                    let (head, tail) = text.split_at(mid);
                    client.push_span(name, *day, head).expect("push span");
                    client.push_span(name, *day, tail).expect("push span");
                    let ack = client.finish_day(name, *day).expect("finish day");
                    assert!(ack.durable, "a 200 finish is durable by contract");
                }
            });
        }
    });

    let mut client = ServeClient::new(addr);
    let page = client.tenants().expect("list tenants");
    for t in &page.tenants {
        println!(
            "tenant {:>6}: {} days ingested, next alert sequence {}",
            t.name, t.days_ingested, t.next_alert_sequence
        );
        assert_eq!(t.days_ingested, u64::from(meta.total_days));
    }

    // Both tenants saw the same feed, so their alert streams agree.
    let acme_alerts = client.alerts("acme", 0).expect("acme alerts");
    let globex_alerts = client.alerts("globex", 0).expect("globex alerts");
    assert_eq!(acme_alerts.alerts, globex_alerts.alerts, "same feed, same alerts");
    println!(
        "alerts: {} per tenant (cursor advances to {})",
        acme_alerts.alerts.len(),
        acme_alerts.next_since
    );
    let cursor = acme_alerts.next_since;

    // An on-demand investigation, seeded with a campaign's SOC hint
    // hosts — the paper's "SOC provides hints" mode over the wire.
    let campaign = challenge
        .campaigns
        .iter()
        .find(|c| !c.hint_hosts.is_empty())
        .expect("a campaign with hint hosts");
    let request = InvestigateRequest::hint_hosts(
        campaign.day.index(),
        campaign.hint_hosts.iter().map(|h| h.index()),
    );
    let outcome = client.investigate("acme", &request).expect("investigate");
    println!(
        "investigation of day {}: {} labeled domains, {} compromised hosts",
        campaign.day.index(),
        outcome.outcome.labeled.len(),
        outcome.outcome.compromised_hosts.len()
    );

    // ---- Graceful shutdown, then a cold second incarnation. ------------
    let ack = client.shutdown().expect("graceful shutdown");
    println!(
        "shutdown: {} tenants checkpointed, {} open days dropped",
        ack.tenants_checkpointed, ack.open_days_dropped
    );
    drop(client);
    handle.join();

    let server = Server::bind(root.store(), ServerConfig::default()).expect("rebind daemon");
    assert_eq!(server.tenant_count(), tenants.len(), "both tenants restore");
    let addr = server.addr();
    let handle = server.spawn();
    let mut client = ServeClient::new(addr);
    for name in tenants {
        let reports = client.reports(name).expect("restored reports").reports;
        assert_eq!(reports.len(), meta.total_days as usize, "every acked day survives");
    }
    // The alert log starts empty after a restart, but the cursor contract
    // holds: the next sequence resumes past everything already delivered.
    let after = client.alerts("acme", cursor).expect("alerts after restart");
    assert!(after.alerts.is_empty() && after.next_since == cursor);
    let page = client.tenants().expect("list tenants");
    assert!(page.tenants.iter().all(|t| t.next_alert_sequence >= cursor));
    println!(
        "restarted daemon restored {} tenants; alert cursors stay monotone",
        page.tenants.len()
    );

    client.shutdown().expect("second shutdown");
    drop(client);
    handle.join();
    root.cleanup();
    println!("service client example OK ({} backend)", root.name());
}
